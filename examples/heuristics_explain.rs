//! Heuristics, explained: for each workload query, show how the two
//! physical-design heuristics change the federated plan — which joins are
//! pushed down (H1), where each filter runs (H2), and why.
//!
//! ```text
//! cargo run --example heuristics_explain
//! ```

use fedlake::core::{DataSource, FederatedEngine, PlanConfig, PlanMode};
use fedlake::datagen::{build_lake_with, workload, LakeConfig};
use fedlake::netsim::NetworkProfile;

fn main() {
    let cfg = LakeConfig { scale: 0.2, ..Default::default() };
    for q in workload::all() {
        let lake = build_lake_with(&cfg, q.datasets);
        println!("==================================================================");
        println!("{} — {}\n", q.id, q.description);

        // The physical design the heuristics inspect.
        println!("physical design:");
        for source in lake.sources() {
            if let DataSource::Relational { id, db, .. } = source {
                for table in db.table_names() {
                    let tbl = db.table(table).expect("listed table");
                    let indexed: Vec<String> = tbl
                        .indexes()
                        .iter()
                        .map(|i| format!("{:?}", i.key_columns))
                        .collect();
                    println!(
                        "  {id}.{table}: {} rows, indexes on column positions {}",
                        tbl.len(),
                        indexed.join(" ")
                    );
                }
            }
        }
        println!();

        for (label, mode, network) in [
            ("UNAWARE", PlanMode::Unaware, NetworkProfile::GAMMA2),
            ("AWARE (push indexed filters, merge indexed joins)", PlanMode::AWARE, NetworkProfile::GAMMA2),
            ("AWARE with Heuristic 2 on a fast network", PlanMode::AWARE_H2, NetworkProfile::GAMMA1),
            ("AWARE with Heuristic 2 on a slow network", PlanMode::AWARE_H2, NetworkProfile::GAMMA3),
        ] {
            let engine = FederatedEngine::new(lake.clone(), PlanConfig::new(mode, network));
            let r = engine.execute_sparql(&q.sparql).expect("workload query");
            println!("-- {label} @ {}:", network.name);
            println!("{}", r.explain);
        }
    }
}
