//! Quickstart: build a two-source Semantic Data Lake by hand, run one
//! federated SPARQL query, and inspect the plan and the answers.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use fedlake::core::{DataLake, DataSource, FederatedEngine, PlanConfig};
use fedlake::mapping::{DatasetMapping, IriTemplate, TableMapping};
use fedlake::netsim::NetworkProfile;
use fedlake::relational::Database;

fn main() {
    // 1. A relational source: a tiny gene catalog in an embedded RDBMS.
    let mut db = Database::new("genes");
    db.execute("CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT, disease TEXT)")
        .expect("create table");
    db.execute(
        "INSERT INTO gene VALUES \
         ('brca1', 'BRCA1', 'breast-cancer'), \
         ('tp53', 'TP53', 'li-fraumeni'), \
         ('cftr', 'CFTR', 'cystic-fibrosis')",
    )
    .expect("insert rows");
    db.execute("CREATE INDEX idx_gene_disease ON gene (disease)").expect("create index");

    // 2. Its semantic mapping: table → class, columns → predicates.
    let mapping = DatasetMapping::new("genes").with_table(
        TableMapping::new(
            "gene",
            "http://example.org/vocab/Gene",
            IriTemplate::new("http://example.org/gene/{}"),
            "id",
        )
        .with_literal("label", "http://example.org/vocab/label")
        .with_reference(
            "disease",
            "http://example.org/vocab/associatedDisease",
            IriTemplate::new("http://example.org/disease/{}"),
        ),
    );

    // 3. An RDF source: disease descriptions in a native triple store.
    let mut graph = fedlake::rdf::Graph::new();
    for (id, name) in [
        ("breast-cancer", "Breast cancer"),
        ("li-fraumeni", "Li-Fraumeni syndrome"),
        ("cystic-fibrosis", "Cystic fibrosis"),
    ] {
        let s = fedlake::rdf::Term::iri(format!("http://example.org/disease/{id}"));
        graph.insert_terms(
            s.clone(),
            fedlake::rdf::Term::iri(fedlake::rdf::vocab::rdf::TYPE),
            fedlake::rdf::Term::iri("http://example.org/vocab/Disease"),
        );
        graph.insert_terms(
            s,
            fedlake::rdf::Term::iri("http://example.org/vocab/name"),
            fedlake::rdf::Term::literal(name),
        );
    }

    // 4. The lake keeps both sources in their native data models.
    let mut lake = DataLake::new();
    lake.add_source(DataSource::relational("genes", db, mapping));
    lake.add_source(DataSource::sparql("diseases", graph));

    // 5. Ask a federated question: which diseases are gene-associated?
    let engine = FederatedEngine::new(lake, PlanConfig::aware(NetworkProfile::GAMMA1));
    let result = engine
        .execute_sparql(
            r#"SELECT ?gl ?dn WHERE {
                ?g a <http://example.org/vocab/Gene> .
                ?g <http://example.org/vocab/label> ?gl .
                ?g <http://example.org/vocab/associatedDisease> ?d .
                ?d <http://example.org/vocab/name> ?dn .
            }"#,
        )
        .expect("federated execution");

    println!("Plan:\n{}", result.explain);
    println!("Answers ({}):", result.rows.len());
    for row in &result.rows {
        println!("  {row}");
    }
    println!(
        "\nSimulated execution time: {:.3} ms over {} ({} messages, {} rows transferred)",
        result.stats.execution_time.as_secs_f64() * 1000.0,
        result.stats.network,
        result.stats.messages,
        result.stats.rows_transferred,
    );
}
