//! The full synthetic LSLOD-like lake: build all ten life-science
//! datasets, print the catalog (tables, indexes, RDF molecule templates)
//! and run the complete experiment workload under both plan types.
//!
//! ```text
//! cargo run --release --example life_sciences_lake
//! ```

use fedlake::core::{DataSource, FederatedEngine, PlanConfig, PlanMode};
use fedlake::datagen::{build_lake, workload, LakeConfig};
use fedlake::netsim::NetworkProfile;

fn main() {
    let config = LakeConfig { scale: 0.5, ..Default::default() };
    println!("Building the ten-dataset lake (scale {}) …", config.scale);
    let lake = build_lake(&config);

    println!("\n== Catalog ==");
    for source in lake.sources() {
        match source {
            DataSource::Relational { id, db, .. } => {
                let tables: Vec<String> = db
                    .table_names()
                    .iter()
                    .map(|t| {
                        let tbl = db.table(t).expect("listed table");
                        let idx: Vec<&str> = tbl
                            .indexes()
                            .iter()
                            .map(|i| i.name.as_str())
                            .collect();
                        format!("{t} ({} rows; indexes: {})", tbl.len(), idx.join(", "))
                    })
                    .collect();
                println!("  [RDB]  {id}: {}", tables.join("; "));
            }
            DataSource::Sparql { id, graph } => {
                println!("  [RDF]  {id}: {} triples", graph.len());
            }
        }
    }
    println!("\n== RDF Molecule Templates ==");
    for mt in lake.molecule_templates() {
        println!(
            "  {} @ {} — {} predicates, {} links, {} instances",
            mt.class.rsplit('/').next().unwrap_or(&mt.class),
            mt.source_id,
            mt.predicates.len(),
            mt.links.len(),
            mt.cardinality
        );
    }

    println!("\n== Workload (QM, Q1–Q5) under NoDelay ==");
    println!(
        "{:<4} {:>9} {:>14} {:>14} {:>8}",
        "query", "answers", "unaware_ms", "aware_ms", "speedup"
    );
    for q in workload::all() {
        let run = |mode: PlanMode| {
            let engine = FederatedEngine::new(
                lake.clone(),
                PlanConfig::new(mode, NetworkProfile::NO_DELAY),
            );
            engine.execute_sparql(&q.sparql).expect("workload query")
        };
        let unaware = run(PlanMode::Unaware);
        let aware = run(PlanMode::AWARE);
        assert_eq!(unaware.rows.len(), aware.rows.len(), "{} answers differ", q.id);
        let u = unaware.stats.execution_time.as_secs_f64() * 1000.0;
        let a = aware.stats.execution_time.as_secs_f64() * 1000.0;
        println!(
            "{:<4} {:>9} {:>14.3} {:>14.3} {:>7.2}x",
            q.id,
            aware.rows.len(),
            u,
            a,
            u / a
        );
    }
}
