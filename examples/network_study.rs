//! Network study: how the four simulated network settings of the paper
//! (§3) affect the two plan types on the Figure 2 query, with answer
//! traces printed as they develop over simulated time.
//!
//! ```text
//! cargo run --release --example network_study
//! ```

use fedlake::core::{FederatedEngine, PlanConfig, PlanMode};
use fedlake::datagen::{build_lake_with, workload, LakeConfig};
use fedlake::netsim::NetworkProfile;

fn main() {
    let q3 = workload::q3();
    let lake = build_lake_with(&LakeConfig { scale: 0.5, ..Default::default() }, q3.datasets);
    println!("Query Q3 — {}\n", q3.description);
    println!(
        "{:<22} {:>12} {:>12} {:>9} {:>11}",
        "configuration", "first_ms", "total_ms", "answers", "rows_xfer"
    );
    for mode in [PlanMode::Unaware, PlanMode::AWARE] {
        for network in NetworkProfile::ALL {
            let engine =
                FederatedEngine::new(lake.clone(), PlanConfig::new(mode, network));
            let r = engine.execute_sparql(&q3.sparql).expect("q3");
            println!(
                "{:<22} {:>12.3} {:>12.3} {:>9} {:>11}",
                format!("{} / {}", mode.label(), network.name),
                r.stats.first_answer.map(|d| d.as_secs_f64() * 1000.0).unwrap_or(0.0),
                r.stats.execution_time.as_secs_f64() * 1000.0,
                r.stats.answers,
                r.stats.rows_transferred,
            );
        }
    }

    // Show one trace in detail: every tenth answer of the unaware plan
    // under the slowest network.
    let engine = FederatedEngine::new(
        lake.clone(),
        PlanConfig::unaware(NetworkProfile::GAMMA3),
    );
    let r = engine.execute_sparql(&q3.sparql).expect("q3");
    println!("\nAnswer trace (unaware / Gamma3), every answer:");
    for &(t, n) in r.trace.points() {
        println!("  {:>10.3} ms  -> answer #{n}", t.as_secs_f64() * 1000.0);
    }
    println!(
        "\nThe gamma network settings simulate per-message latencies of 0.3 / 3 / 4.5 ms\n\
         (means of Γ(1,0.3), Γ(3,1), Γ(3,1.5)) exactly as in the paper's §3; the\n\
         unaware plan ships the whole unfiltered trial table through that delay."
    );
}
