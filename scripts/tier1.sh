#!/usr/bin/env bash
# Tier-1 gate: offline release build, full test suite, clippy clean.
# Run from anywhere; operates on the repository that contains this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release (offline) =="
cargo build --release --offline --workspace --all-targets

echo "== cargo test -q (offline) =="
cargo test -q --offline --workspace

echo "== cargo clippy -D warnings (offline) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "tier-1: OK"
