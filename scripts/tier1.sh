#!/usr/bin/env bash
# Tier-1 gate: offline release build, full test suite, clippy clean.
# Run from anywhere; operates on the repository that contains this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release (offline) =="
cargo build --release --offline --workspace --all-targets

echo "== cargo test -q (offline) =="
cargo test -q --offline --workspace

# Scheduler equivalence: overlapped execution must be answer-identical to
# serialized and strictly faster on multi-source queries with delay.
echo "== overlap equivalence =="
cargo test -q --offline --test overlap_equivalence

# Seeded chaos suite: CHAOS_ITERS fault schedules per query/profile cell,
# run under both schedules (FEDLAKE_OVERLAP=1 switches the suite to the
# event-driven scheduler). The default (32) is the gate; raise for soak
# runs, e.g.
#   CHAOS_ITERS=512 scripts/tier1.sh
echo "== chaos suite, serialized (CHAOS_ITERS=${CHAOS_ITERS:-32}) =="
CHAOS_ITERS="${CHAOS_ITERS:-32}" cargo test -q --offline --test chaos_federation

echo "== chaos suite, overlapped (CHAOS_ITERS=${CHAOS_ITERS:-32}) =="
FEDLAKE_OVERLAP=1 CHAOS_ITERS="${CHAOS_ITERS:-32}" cargo test -q --offline --test chaos_federation

# Observability: span-tree/reconciliation/determinism invariants of the
# trace recorder, plus one chaos pass with tracing enabled — recording is
# contractually passive, so every chaos property must hold unchanged.
echo "== trace invariants =="
cargo test -q --offline --test trace_invariants

echo "== chaos suite, traced (CHAOS_ITERS=${CHAOS_ITERS:-32}) =="
FEDLAKE_TRACE=1 CHAOS_ITERS="${CHAOS_ITERS:-32}" cargo test -q --offline --test chaos_federation

# Replicas: FEDLAKE_REPLICAS=2 reruns the chaos property test with every
# source replicated two ways, so fault schedules also exercise replica
# failover and health-aware routing — under both schedules and with the
# trace recorder attached.
echo "== chaos suite, replicas (CHAOS_ITERS=${CHAOS_ITERS:-32}) =="
FEDLAKE_REPLICAS=2 CHAOS_ITERS="${CHAOS_ITERS:-32}" cargo test -q --offline --test chaos_federation

echo "== chaos suite, replicas + overlapped (CHAOS_ITERS=${CHAOS_ITERS:-32}) =="
FEDLAKE_REPLICAS=2 FEDLAKE_OVERLAP=1 CHAOS_ITERS="${CHAOS_ITERS:-32}" cargo test -q --offline --test chaos_federation

echo "== chaos suite, replicas + traced (CHAOS_ITERS=${CHAOS_ITERS:-32}) =="
FEDLAKE_REPLICAS=2 FEDLAKE_TRACE=1 CHAOS_ITERS="${CHAOS_ITERS:-32}" cargo test -q --offline --test chaos_federation

# Vectorized execution: FEDLAKE_BATCH=1 flips PlanConfig::default() to the
# batched driver, so the whole suite — equivalence, chaos, tracing —
# re-runs over RowBatch morsels. Plain, overlapped, traced and chaos
# passes mirror the row-mode gates above.
echo "== full suite, batched =="
FEDLAKE_BATCH=1 cargo test -q --offline --workspace

echo "== overlap equivalence, batched =="
FEDLAKE_BATCH=1 cargo test -q --offline --test overlap_equivalence

echo "== trace invariants, batched =="
FEDLAKE_BATCH=1 cargo test -q --offline --test trace_invariants

echo "== chaos suite, batched (CHAOS_ITERS=${CHAOS_ITERS:-32}) =="
FEDLAKE_BATCH=1 CHAOS_ITERS="${CHAOS_ITERS:-32}" cargo test -q --offline --test chaos_federation

echo "== chaos suite, batched + overlapped (CHAOS_ITERS=${CHAOS_ITERS:-32}) =="
FEDLAKE_BATCH=1 FEDLAKE_OVERLAP=1 CHAOS_ITERS="${CHAOS_ITERS:-32}" cargo test -q --offline --test chaos_federation

echo "== chaos suite, batched + traced (CHAOS_ITERS=${CHAOS_ITERS:-32}) =="
FEDLAKE_BATCH=1 FEDLAKE_TRACE=1 CHAOS_ITERS="${CHAOS_ITERS:-32}" cargo test -q --offline --test chaos_federation

# Cost-based planning: FEDLAKE_COST=1 flips PlanConfig::default() to the
# statistics-driven cost-based planner, so the whole suite — equivalence,
# chaos, tracing — re-runs over cost-ordered plans with bind joins chosen
# from the statistics catalog. The dedicated cost suite runs in the plain
# workspace pass above; here the other gates repeat under cost plans.
echo "== full suite, cost-based =="
FEDLAKE_COST=1 cargo test -q --offline --workspace

echo "== overlap equivalence, cost-based =="
FEDLAKE_COST=1 cargo test -q --offline --test overlap_equivalence

echo "== chaos suite, cost-based (CHAOS_ITERS=${CHAOS_ITERS:-32}) =="
FEDLAKE_COST=1 CHAOS_ITERS="${CHAOS_ITERS:-32}" cargo test -q --offline --test chaos_federation

echo "== chaos suite, cost-based + overlapped (CHAOS_ITERS=${CHAOS_ITERS:-32}) =="
FEDLAKE_COST=1 FEDLAKE_OVERLAP=1 CHAOS_ITERS="${CHAOS_ITERS:-32}" cargo test -q --offline --test chaos_federation

echo "== chaos suite, cost-based + traced (CHAOS_ITERS=${CHAOS_ITERS:-32}) =="
FEDLAKE_COST=1 FEDLAKE_TRACE=1 CHAOS_ITERS="${CHAOS_ITERS:-32}" cargo test -q --offline --test chaos_federation

# Serving layer: the determinism contract (same seed → bit-identical
# answers, stats and report; every served answer byte-equal to its solo
# execution), exact contention bounds under a constant-delay link,
# deadline isolation and the admission-gauge bound — plus a fixed-seed
# FEDLAKE_SERVE=1 mini-load smoke through the full lake_shell path.
echo "== serve determinism =="
FEDLAKE_SERVE=1 cargo test -q --offline --test serve_determinism

echo "== serve contention =="
cargo test -q --offline --test serve_contention

# Fleet observability: the flight recorder's passivity/determinism
# contract, the slow-query-log golden snapshot and the three watchdog
# anomaly families — then the serve and chaos determinism gates re-run
# with FEDLAKE_RECORDER=1, so every default-config engine records while
# the contracts above must hold unchanged (recording is passive).
echo "== fleet observability =="
cargo test -q --offline --test fleet_observability

echo "== serve determinism, recorded =="
FEDLAKE_RECORDER=1 FEDLAKE_SERVE=1 cargo test -q --offline --test serve_determinism

echo "== chaos suite, recorded (CHAOS_ITERS=${CHAOS_ITERS:-32}) =="
FEDLAKE_RECORDER=1 CHAOS_ITERS="${CHAOS_ITERS:-32}" cargo test -q --offline --test chaos_federation

echo "== chaos suite, recorded + traced (CHAOS_ITERS=${CHAOS_ITERS:-32}) =="
FEDLAKE_RECORDER=1 FEDLAKE_TRACE=1 CHAOS_ITERS="${CHAOS_ITERS:-32}" cargo test -q --offline --test chaos_federation

# Normalized plan cache: the dedicated equivalence suite (cache hits must
# replay byte-identical plans; mutations, drift and health flips must
# invalidate exactly the affected entries), then FEDLAKE_PLAN_CACHE=1
# flips PlanConfig::default() so the workspace, serve and chaos gates
# re-run with every repeat query served from the cache — the cache is
# contractually invisible, so every property must hold unchanged.
echo "== plan cache equivalence =="
cargo test -q --offline --test plan_cache

echo "== full suite, plan-cached =="
FEDLAKE_PLAN_CACHE=1 cargo test -q --offline --workspace

echo "== serve determinism, plan-cached =="
FEDLAKE_PLAN_CACHE=1 FEDLAKE_SERVE=1 cargo test -q --offline --test serve_determinism

echo "== chaos suite, plan-cached (CHAOS_ITERS=${CHAOS_ITERS:-32}) =="
FEDLAKE_PLAN_CACHE=1 CHAOS_ITERS="${CHAOS_ITERS:-32}" cargo test -q --offline --test chaos_federation

echo "== chaos suite, plan-cached + cost-based (CHAOS_ITERS=${CHAOS_ITERS:-32}) =="
FEDLAKE_PLAN_CACHE=1 FEDLAKE_COST=1 CHAOS_ITERS="${CHAOS_ITERS:-32}" cargo test -q --offline --test chaos_federation

echo "== serve smoke (lake_shell --serve, fixed seed) =="
cargo run -q --offline --release -p fedlake-bench --bin lake_shell -- \
    --serve --scale 0.02 --seed 7 --clients 4 --queries-per-client 1 \
    --arrival 0.5 --in-flight 2 > /dev/null

echo "== serve smoke, recorded (lake_shell --serve --recorder + exports) =="
obs_tmp="$(mktemp -d)"
cargo run -q --offline --release -p fedlake-bench --bin lake_shell -- \
    --serve --scale 0.02 --seed 7 --clients 4 --queries-per-client 1 \
    --arrival 0.5 --in-flight 2 --recorder --watchdog \
    --slow-log "$obs_tmp/slow.json" --prom-out "$obs_tmp/metrics.prom" \
    --serve-trace "$obs_tmp/serve.trace.json" --serve-html "$obs_tmp/serve.html" > /dev/null
for f in slow.json metrics.prom serve.trace.json serve.html; do
    [ -s "$obs_tmp/$f" ] || { echo "missing serve export $f"; exit 1; }
done
rm -rf "$obs_tmp"

echo "== serve smoke, plan-cached (lake_shell --serve --plan-cache) =="
cargo run -q --offline --release -p fedlake-bench --bin lake_shell -- \
    --serve --scale 0.02 --seed 7 --clients 4 --queries-per-client 2 \
    --arrival 0.5 --in-flight 2 --plan-cache > /dev/null

# Serve-only observability flags without --serve are a hard error (exit
# code 2), never a silent no-op.
echo "== lake_shell flag validation (obs flags require --serve) =="
if cargo run -q --offline --release -p fedlake-bench --bin lake_shell -- \
    --watchdog --query 'SELECT ?s WHERE { ?s ?p ?o }' > /dev/null 2>&1; then
    echo "lake_shell accepted --watchdog without --serve"
    exit 1
fi

echo "== cargo clippy -D warnings (offline) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "tier-1: OK"
