//! C1 — benchmark of the Q2 merged-SQL claim: unaware vs optimized merge
//! vs naive (N+1) merge.

use fedlake_bench::harness::Bench;
use fedlake_core::{FederatedEngine, MergeTranslation, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;

fn main() {
    let q2 = workload::q2();
    let lake = build_lake_with(&LakeConfig { scale: 0.1, ..Default::default() }, q2.datasets);
    let variants: [(&str, PlanMode, MergeTranslation); 3] = [
        ("unaware", PlanMode::Unaware, MergeTranslation::Optimized),
        ("merged_optimized", PlanMode::AWARE, MergeTranslation::Optimized),
        ("merged_naive", PlanMode::AWARE, MergeTranslation::Naive),
    ];
    let mut group = Bench::new("c1_q2_pushdown");
    for (label, mode, merge) in variants {
        let mut cfg = PlanConfig::new(mode, NetworkProfile::GAMMA2);
        cfg.merge_translation = merge;
        let engine = FederatedEngine::new(lake.clone(), cfg);
        group.bench(format!("{label}/{}", NetworkProfile::GAMMA2.name), || {
            engine.execute_sparql(&q2.sparql).unwrap()
        });
    }
    group.finish();
}
