//! C1 — benchmark of the Q2 merged-SQL claim: unaware vs optimized merge
//! vs naive (N+1) merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedlake_core::{FederatedEngine, MergeTranslation, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;
use std::time::Duration;

fn c1(c: &mut Criterion) {
    let q2 = workload::q2();
    let lake = build_lake_with(&LakeConfig { scale: 0.1, ..Default::default() }, q2.datasets);
    let variants: [(&str, PlanMode, MergeTranslation); 3] = [
        ("unaware", PlanMode::Unaware, MergeTranslation::Optimized),
        ("merged_optimized", PlanMode::AWARE, MergeTranslation::Optimized),
        ("merged_naive", PlanMode::AWARE, MergeTranslation::Naive),
    ];
    let mut group = c.benchmark_group("c1_q2_pushdown");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for (label, mode, merge) in variants {
        let mut cfg = PlanConfig::new(mode, NetworkProfile::GAMMA2);
        cfg.merge_translation = merge;
        let engine = FederatedEngine::new(lake.clone(), cfg);
        let id = BenchmarkId::new(label, NetworkProfile::GAMMA2.name);
        group.bench_function(id, |b| b.iter(|| engine.execute_sparql(&q2.sparql).unwrap()));
    }
    group.finish();
}

criterion_group!(benches, c1);
criterion_main!(benches);
