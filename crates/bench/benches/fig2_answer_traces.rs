//! F2 — benchmark of Q3 answer-trace production (the Figure 2
//! measurement) under both plan types and all four networks.

use fedlake_bench::harness::Bench;
use fedlake_core::{FederatedEngine, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;

fn main() {
    let q3 = workload::q3();
    let lake = build_lake_with(&LakeConfig { scale: 0.1, ..Default::default() }, q3.datasets);
    let mut group = Bench::new("fig2_answer_traces");
    for (label, mode) in [("unaware", PlanMode::Unaware), ("aware", PlanMode::AWARE)] {
        for network in NetworkProfile::ALL {
            let engine = FederatedEngine::new(lake.clone(), PlanConfig::new(mode, network));
            group.bench(format!("{label}/{}", network.name), || {
                let r = engine.execute_sparql(&q3.sparql).unwrap();
                assert!(r.trace.count() > 0);
                r
            });
        }
    }
    group.finish();
}
