//! F2 — benchmark of Q3 answer-trace production (the Figure 2
//! measurement) under both plan types and all four networks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedlake_core::{FederatedEngine, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;
use std::time::Duration;

fn fig2(c: &mut Criterion) {
    let q3 = workload::q3();
    let lake = build_lake_with(&LakeConfig { scale: 0.1, ..Default::default() }, q3.datasets);
    let mut group = c.benchmark_group("fig2_answer_traces");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for (label, mode) in [("unaware", PlanMode::Unaware), ("aware", PlanMode::AWARE)] {
        for network in NetworkProfile::ALL {
            let engine = FederatedEngine::new(lake.clone(), PlanConfig::new(mode, network));
            let id = BenchmarkId::new(label, network.name);
            group.bench_function(id, |b| {
                b.iter(|| {
                    let r = engine.execute_sparql(&q3.sparql).unwrap();
                    assert!(r.trace.count() > 0);
                    r
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, fig2);
criterion_main!(benches);
