//! T1 — wall-clock benchmark of the §3 experiment matrix: every workload
//! query under both plan types and the extreme network settings. The lake
//! is built once per case; the measurement is the federated execution
//! itself (planning + SQL + operators + simulated-time accounting).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedlake_core::{FederatedEngine, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;
use std::time::Duration;

fn t1(c: &mut Criterion) {
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };
    let mut group = c.benchmark_group("t1_exec_time");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for q in workload::experiment_queries() {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        for (label, mode) in [("unaware", PlanMode::Unaware), ("aware", PlanMode::AWARE)] {
            for network in [NetworkProfile::NO_DELAY, NetworkProfile::GAMMA3] {
                let engine =
                    FederatedEngine::new(lake.clone(), PlanConfig::new(mode, network));
                let id = BenchmarkId::new(format!("{}/{}", q.id, label), network.name);
                group.bench_with_input(id, &q, |b, q| {
                    b.iter(|| engine.execute_sparql(&q.sparql).unwrap())
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, t1);
criterion_main!(benches);
