//! T1 — wall-clock benchmark of the §3 experiment matrix: every workload
//! query under both plan types and the extreme network settings. The lake
//! is built once per case; the measurement is the federated execution
//! itself (planning + SQL + operators + simulated-time accounting).

use fedlake_bench::harness::Bench;
use fedlake_core::{FederatedEngine, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;

fn main() {
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };
    let mut group = Bench::new("t1_exec_time");
    for q in workload::experiment_queries() {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        for (label, mode) in [("unaware", PlanMode::Unaware), ("aware", PlanMode::AWARE)] {
            for network in [NetworkProfile::NO_DELAY, NetworkProfile::GAMMA3] {
                let engine =
                    FederatedEngine::new(lake.clone(), PlanConfig::new(mode, network));
                group.bench(format!("{}/{}/{}", q.id, label, network.name), || {
                    engine.execute_sparql(&q.sparql).unwrap()
                });
            }
        }
    }
    group.finish();
}
