//! Micro-benchmarks of the substrates the federation is built from: the
//! relational engine's access paths, the triple store's pattern matching,
//! the SPARQL local evaluator and the gamma sampler.

use fedlake_bench::harness::Bench;
use fedlake_datagen::{datasets, LakeConfig};
use fedlake_netsim::GammaSampler;
use fedlake_prng::Prng;
use fedlake_rdf::{Graph, Term, TriplePattern};

fn relational_access_paths() {
    let cfg = LakeConfig::default();
    let (db, _) = datasets::build_dataset(&cfg, "linkedct");
    let mut group = Bench::new("relational");
    group.bench("index_point_lookup", || {
        db.query("SELECT id FROM trial WHERE category = 'cat-7'").unwrap()
    });
    group.bench("seq_scan_filter", || {
        db.query("SELECT id FROM trial WHERE phase = 'Phase 2'").unwrap()
    });
    group.bench("pk_point_lookup", || {
        db.query("SELECT title FROM trial WHERE id = 't42'").unwrap()
    });
    let (db2, _) = datasets::build_dataset(&cfg, "diseasome");
    group.bench("indexed_join", || {
        db2.query("SELECT g.label, d.name FROM gene g JOIN disease d ON g.disease = d.id")
            .unwrap()
    });
    group.finish();
}

fn triple_store() {
    let mut g = Graph::new();
    for i in 0..20_000 {
        g.insert_terms(
            Term::iri(format!("http://x/s{}", i % 2000)),
            Term::iri(format!("http://x/p{}", i % 20)),
            Term::iri(format!("http://x/o{}", i % 500)),
        );
    }
    let p5 = g.id(&Term::iri("http://x/p5")).unwrap();
    let s9 = g.id(&Term::iri("http://x/s9")).unwrap();
    let mut group = Bench::new("triple_store");
    group.bench("match_by_predicate", || g.match_pattern(&TriplePattern::any().with_p(p5)));
    group.bench("match_by_subject", || g.match_pattern(&TriplePattern::any().with_s(s9)));
    group.finish();
}

fn sparql_local_eval() {
    use fedlake_sparql::{eval::evaluate, parser::parse_query};
    let cfg = LakeConfig { scale: 0.2, ..Default::default() };
    let (db, mapping) = datasets::build_dataset(&cfg, "diseasome");
    let graph = fedlake_mapping::lift_database(&db, &mapping);
    let q = parse_query(
        "SELECT ?gl ?dn WHERE { \
           ?g <http://lake.example/vocab/diseasome/label> ?gl . \
           ?g <http://lake.example/vocab/diseasome/associatedDisease> ?d . \
           ?d <http://lake.example/vocab/diseasome/name> ?dn }",
    )
    .unwrap();
    let mut group = Bench::new("sparql");
    group.bench("local_bgp_join", || evaluate(&q, &graph).unwrap());
    group.finish();
}

fn gamma_sampler() {
    let g = GammaSampler::new(3.0, 1.5);
    let mut rng = Prng::seed_from_u64(1);
    let mut group = Bench::new("netsim");
    group.bench("gamma_sample", || g.sample(&mut rng));
    group.finish();
}

fn main() {
    relational_access_paths();
    triple_store();
    sparql_local_eval();
    gamma_sampler();
}
