//! Micro-benchmarks of the substrates the federation is built from: the
//! relational engine's access paths, the triple store's pattern matching,
//! the SPARQL→SQL translation and the gamma sampler.

use criterion::{criterion_group, criterion_main, Criterion};
use fedlake_datagen::{datasets, LakeConfig};
use fedlake_netsim::GammaSampler;
use fedlake_rdf::{Graph, Term, TriplePattern};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn relational_access_paths(c: &mut Criterion) {
    let cfg = LakeConfig::default();
    let (db, _) = datasets::build_dataset(&cfg, "linkedct");
    let mut group = c.benchmark_group("relational");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("index_point_lookup", |b| {
        b.iter(|| db.query("SELECT id FROM trial WHERE category = 'cat-7'").unwrap())
    });
    group.bench_function("seq_scan_filter", |b| {
        b.iter(|| db.query("SELECT id FROM trial WHERE phase = 'Phase 2'").unwrap())
    });
    group.bench_function("pk_point_lookup", |b| {
        b.iter(|| db.query("SELECT title FROM trial WHERE id = 't42'").unwrap())
    });
    let (db2, _) = datasets::build_dataset(&cfg, "diseasome");
    group.bench_function("indexed_join", |b| {
        b.iter(|| {
            db2.query(
                "SELECT g.label, d.name FROM gene g JOIN disease d ON g.disease = d.id",
            )
            .unwrap()
        })
    });
    group.finish();
}

fn triple_store(c: &mut Criterion) {
    let mut g = Graph::new();
    for i in 0..20_000 {
        g.insert_terms(
            Term::iri(format!("http://x/s{}", i % 2000)),
            Term::iri(format!("http://x/p{}", i % 20)),
            Term::iri(format!("http://x/o{}", i % 500)),
        );
    }
    let p5 = g.id(&Term::iri("http://x/p5")).unwrap();
    let s9 = g.id(&Term::iri("http://x/s9")).unwrap();
    let mut group = c.benchmark_group("triple_store");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function("match_by_predicate", |b| {
        b.iter(|| g.match_pattern(&TriplePattern::any().with_p(p5)))
    });
    group.bench_function("match_by_subject", |b| {
        b.iter(|| g.match_pattern(&TriplePattern::any().with_s(s9)))
    });
    group.finish();
}

fn sparql_local_eval(c: &mut Criterion) {
    use fedlake_sparql::{eval::evaluate, parser::parse_query};
    let cfg = LakeConfig { scale: 0.2, ..Default::default() };
    let (db, mapping) = datasets::build_dataset(&cfg, "diseasome");
    let graph = fedlake_mapping::lift_database(&db, &mapping);
    let q = parse_query(
        "SELECT ?gl ?dn WHERE { \
           ?g <http://lake.example/vocab/diseasome/label> ?gl . \
           ?g <http://lake.example/vocab/diseasome/associatedDisease> ?d . \
           ?d <http://lake.example/vocab/diseasome/name> ?dn }",
    )
    .unwrap();
    c.bench_function("sparql_local_bgp_join", |b| {
        b.iter(|| evaluate(&q, &graph).unwrap())
    });
}

fn gamma_sampler(c: &mut Criterion) {
    let g = GammaSampler::new(3.0, 1.5);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("gamma_sample", |b| b.iter(|| g.sample(&mut rng)));
}

criterion_group!(
    benches,
    relational_access_paths,
    triple_store,
    sparql_local_eval,
    gamma_sampler
);
criterion_main!(benches);
