//! A1 — heuristic ablation benchmark: unaware / H1-only / H2-only / both,
//! over the full workload at Gamma 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedlake_core::{FederatedEngine, FilterPlacement, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;
use std::time::Duration;

fn a1(c: &mut Criterion) {
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };
    let modes: [(&str, PlanMode); 4] = [
        ("unaware", PlanMode::Unaware),
        (
            "h1_only",
            PlanMode::Aware { h1_join_pushdown: true, filters: FilterPlacement::Engine },
        ),
        (
            "h2_only",
            PlanMode::Aware { h1_join_pushdown: false, filters: FilterPlacement::PushIndexed },
        ),
        ("h1_h2", PlanMode::AWARE),
    ];
    let mut group = c.benchmark_group("a1_ablation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    let mut queries = vec![workload::motivating()];
    queries.extend(workload::experiment_queries());
    for q in &queries {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        for (label, mode) in modes {
            let engine = FederatedEngine::new(
                lake.clone(),
                PlanConfig::new(mode, NetworkProfile::GAMMA2),
            );
            let id = BenchmarkId::new(q.id, label);
            group.bench_with_input(id, q, |b, q| {
                b.iter(|| engine.execute_sparql(&q.sparql).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, a1);
criterion_main!(benches);
