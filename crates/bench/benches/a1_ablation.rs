//! A1 — heuristic ablation benchmark: unaware / H1-only / H2-only / both,
//! over the full workload at Gamma 2.

use fedlake_bench::harness::Bench;
use fedlake_core::{FederatedEngine, FilterPlacement, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;

fn main() {
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };
    let modes: [(&str, PlanMode); 4] = [
        ("unaware", PlanMode::Unaware),
        (
            "h1_only",
            PlanMode::Aware { h1_join_pushdown: true, filters: FilterPlacement::Engine },
        ),
        (
            "h2_only",
            PlanMode::Aware { h1_join_pushdown: false, filters: FilterPlacement::PushIndexed },
        ),
        ("h1_h2", PlanMode::AWARE),
    ];
    let mut group = Bench::new("a1_ablation");
    let mut queries = vec![workload::motivating()];
    queries.extend(workload::experiment_queries());
    for q in &queries {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        for (label, mode) in modes {
            let engine = FederatedEngine::new(
                lake.clone(),
                PlanConfig::new(mode, NetworkProfile::GAMMA2),
            );
            group.bench(format!("{}/{label}", q.id), || {
                engine.execute_sparql(&q.sparql).unwrap()
            });
        }
    }
    group.finish();
}
