//! C2 — benchmark of the filter-placement study: Q1 and Q3 under every
//! placement policy (engine / pushed / Heuristic 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedlake_core::{FederatedEngine, FilterPlacement, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;
use std::time::Duration;

fn c2(c: &mut Criterion) {
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };
    let placements: [(&str, FilterPlacement); 3] = [
        ("engine", FilterPlacement::Engine),
        ("pushed", FilterPlacement::PushIndexed),
        ("heuristic2", FilterPlacement::Heuristic2),
    ];
    let mut group = c.benchmark_group("c2_filter_placement");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(300));
    group.measurement_time(Duration::from_secs(2));
    for q in [workload::q1(), workload::q3()] {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        for (label, placement) in placements {
            for network in [NetworkProfile::NO_DELAY, NetworkProfile::GAMMA3] {
                let mode = PlanMode::Aware { h1_join_pushdown: true, filters: placement };
                let engine =
                    FederatedEngine::new(lake.clone(), PlanConfig::new(mode, network));
                let id = BenchmarkId::new(format!("{}/{label}", q.id), network.name);
                group.bench_with_input(id, &q, |b, q| {
                    b.iter(|| engine.execute_sparql(&q.sparql).unwrap())
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, c2);
criterion_main!(benches);
