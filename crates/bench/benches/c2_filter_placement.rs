//! C2 — benchmark of the filter-placement study: Q1 and Q3 under every
//! placement policy (engine / pushed / Heuristic 2).

use fedlake_bench::harness::Bench;
use fedlake_core::{FederatedEngine, FilterPlacement, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;

fn main() {
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };
    let placements: [(&str, FilterPlacement); 3] = [
        ("engine", FilterPlacement::Engine),
        ("pushed", FilterPlacement::PushIndexed),
        ("heuristic2", FilterPlacement::Heuristic2),
    ];
    let mut group = Bench::new("c2_filter_placement");
    for q in [workload::q1(), workload::q3()] {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        for (label, placement) in placements {
            for network in [NetworkProfile::NO_DELAY, NetworkProfile::GAMMA3] {
                let mode = PlanMode::Aware { h1_join_pushdown: true, filters: placement };
                let engine =
                    FederatedEngine::new(lake.clone(), PlanConfig::new(mode, network));
                group.bench(format!("{}/{label}/{}", q.id, network.name), || {
                    engine.execute_sparql(&q.sparql).unwrap()
                });
            }
        }
    }
    group.finish();
}
