//! Plain-text reporting: aligned tables, CSV and ASCII trace plots.

use crate::runner::RunOutcome;
use fedlake_core::AnswerTrace;
use std::time::Duration;

/// Formats a duration in milliseconds with three decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1000.0)
}

/// Renders rows as an aligned text table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let parts: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = *w))
            .collect();
        parts.join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Serializes outcomes as CSV.
pub fn outcomes_csv(outcomes: &[RunOutcome]) -> String {
    let mut out = String::from(
        "query,plan,network,time_ms,first_answer_ms,answers,rows_transferred,messages,sql_queries\n",
    );
    for o in outcomes {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{}\n",
            o.query,
            o.plan,
            o.network,
            ms(o.time),
            o.first_answer.map(ms).unwrap_or_default(),
            o.answers,
            o.rows_transferred,
            o.messages,
            o.sql_queries
        ));
    }
    out
}

/// ASCII plot of one or more answer traces on a shared time axis —
/// the text rendition of the paper's Figure 2 panels.
pub fn trace_plot(traces: &[(&str, &AnswerTrace)], width: usize, height: usize) -> String {
    let t_max = traces
        .iter()
        .map(|(_, t)| t.total_time())
        .max()
        .unwrap_or(Duration::ZERO)
        .as_secs_f64()
        .max(1e-9);
    let a_max = traces.iter().map(|(_, t)| t.count()).max().unwrap_or(0).max(1);
    let mut grid = vec![vec![' '; width]; height];
    let marks = ['*', '+', 'o', 'x', '#', '@'];
    for (i, (_, trace)) in traces.iter().enumerate() {
        let mark = marks[i % marks.len()];
        for &(t, c) in &trace.downsample(width * 2) {
            let x = ((t.as_secs_f64() / t_max) * (width - 1) as f64).round() as usize;
            let y = ((c as f64 / a_max as f64) * (height - 1) as f64).round() as usize;
            let row = height - 1 - y.min(height - 1);
            grid[row][x.min(width - 1)] = mark;
        }
    }
    let mut out = String::new();
    out.push_str(&format!("answers (max {a_max})\n"));
    for row in grid {
        out.push('|');
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!(
        "0{:>w$}\n",
        format!("{:.1} ms", t_max * 1000.0),
        w = width
    ));
    for (i, (name, _)) in traces.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", marks[i % marks.len()], name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["query", "time"],
            &[
                vec!["Q1".into(), "1.5".into()],
                vec!["Q200".into(), "10.25".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("query"));
        assert!(lines[2].ends_with("1.5"));
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(Duration::from_micros(1500)), "1.500");
    }

    #[test]
    fn trace_plot_renders() {
        let mut a = AnswerTrace::new();
        let mut b = AnswerTrace::new();
        for i in 1..=10u64 {
            a.record(Duration::from_millis(i));
            b.record(Duration::from_millis(i * 3));
        }
        let plot = trace_plot(&[("fast", &a), ("slow", &b)], 40, 10);
        assert!(plot.contains('*'));
        assert!(plot.contains('+'));
        assert!(plot.contains("fast"));
        assert!(plot.contains("30.0 ms"));
    }

    #[test]
    fn empty_traces_do_not_panic() {
        let t = AnswerTrace::new();
        let plot = trace_plot(&[("empty", &t)], 20, 5);
        assert!(plot.contains("max 1"));
    }
}
