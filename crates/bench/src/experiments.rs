//! The per-artifact experiment drivers (see the crate docs for the
//! artifact ↔ paper mapping).

use crate::report::{ms, outcomes_csv, table, trace_plot};
use crate::runner::{run_matrix, run_query, ExperimentSetup, RunOutcome};
use fedlake_core::{FilterPlacement, MergeTranslation, PlanMode};
use fedlake_datagen::workload;
use fedlake_netsim::NetworkProfile;

/// A rendered experiment: a human-readable report plus CSV artifacts.
#[derive(Debug, Clone, Default)]
pub struct ExperimentReport {
    /// The printable report.
    pub text: String,
    /// `(file name, content)` CSV artifacts.
    pub csv: Vec<(String, String)>,
}

/// F1 — Figure 1: the motivating query's two plans side by side.
pub fn figure1(setup: &ExperimentSetup) -> ExperimentReport {
    let qm = workload::motivating();
    let unaware = run_query(
        setup,
        &qm,
        PlanMode::Unaware,
        NetworkProfile::NO_DELAY,
        MergeTranslation::Optimized,
    );
    let aware = run_query(
        setup,
        &qm,
        PlanMode::AWARE,
        NetworkProfile::NO_DELAY,
        MergeTranslation::Optimized,
    );
    let mut text = String::new();
    text.push_str("## Figure 1 — query execution plans for the motivating query\n\n");
    text.push_str(&format!("SPARQL query (Figure 1a):\n{}\n\n", qm.sparql));
    text.push_str(&format!(
        "(b) Physical-design-UNAWARE plan — {} services, {} engine operators:\n{}\n",
        unaware.result.stats.services,
        unaware.result.stats.engine_operators,
        unaware.result.explain
    ));
    text.push_str(&format!(
        "(c) Physical-design-AWARE plan — {} services, {} engine operators, {} pushed-down join(s):\n{}\n",
        aware.result.stats.services,
        aware.result.stats.engine_operators,
        aware.result.stats.merged_services,
        aware.result.explain
    ));
    text.push_str(&format!(
        "Both plans return {} answers; the aware plan needs fewer engine-level operations\n\
         because the Diseasome gene–disease join is pushed to the source while the\n\
         unindexable species filter (duplication > 15 %) stays at the engine.\n",
        aware.answers
    ));
    ExperimentReport { text, csv: Vec::new() }
}

/// F2 — Figure 2: answer traces for Q3 under the four network settings,
/// for both plan types.
pub fn figure2(setup: &ExperimentSetup) -> ExperimentReport {
    let q3 = workload::q3();
    let mut outcomes: Vec<(PlanMode, Vec<RunOutcome>)> = Vec::new();
    for mode in [PlanMode::Unaware, PlanMode::AWARE] {
        let per_net = NetworkProfile::ALL
            .iter()
            .map(|&net| run_query(setup, &q3, mode, net, MergeTranslation::Optimized))
            .collect();
        outcomes.push((mode, per_net));
    }

    let mut text = String::new();
    text.push_str("## Figure 2 — answer traces for Q3 (answers over time)\n\n");
    let mut csv = Vec::new();
    for (mode, runs) in &outcomes {
        let panel = match mode {
            PlanMode::Unaware => "(a) Physical-Design-Unaware QEPs",
            _ => "(b) Physical-Design-Aware QEPs",
        };
        text.push_str(&format!("{panel}:\n"));
        let traces: Vec<(&str, &fedlake_core::AnswerTrace)> = runs
            .iter()
            .map(|o| (o.network, &o.result.trace))
            .collect();
        text.push_str(&trace_plot(&traces, 72, 16));
        text.push('\n');
        for o in runs {
            csv.push((
                format!("fig2_{}_{}.csv", mode.label().replace(['(', ')'], "_"), o.network),
                o.result.trace.to_csv(),
            ));
        }
    }
    // Panel (c): both plans under the slowest network.
    let both: Vec<(&str, &fedlake_core::AnswerTrace)> = outcomes
        .iter()
        .map(|(mode, runs)| {
            let gamma3 = runs.last().expect("four networks per mode");
            (
                if matches!(mode, PlanMode::Unaware) { "unaware@Gamma3" } else { "aware@Gamma3" },
                &gamma3.result.trace,
            )
        })
        .collect();
    text.push_str("(c) Both QEPs under Gamma 3:\n");
    text.push_str(&trace_plot(&both, 72, 16));
    text.push('\n');

    let mut rows = Vec::new();
    for (_, runs) in &outcomes {
        for o in runs {
            rows.push(vec![
                o.plan.clone(),
                o.network.to_string(),
                ms(o.time),
                o.first_answer.map(ms).unwrap_or_default(),
                o.answers.to_string(),
                o.rows_transferred.to_string(),
            ]);
        }
    }
    text.push_str(&table(
        &["plan", "network", "time_ms", "first_ms", "answers", "rows_xfer"],
        &rows,
    ));
    text.push_str(
        "\nSlow networks have a higher impact on the unaware traces; the aware plan's\n\
         pushed (indexed) filter keeps the transferred intermediate result small.\n",
    );
    ExperimentReport { text, csv }
}

/// T1 — the §3 experiment matrix: Q1–Q5 × {unaware, aware} × four
/// networks (the paper's eight configurations per query).
pub fn table1(setup: &ExperimentSetup) -> ExperimentReport {
    let queries = workload::experiment_queries();
    let outcomes = run_matrix(
        setup,
        &queries,
        &[PlanMode::Unaware, PlanMode::AWARE],
        &NetworkProfile::ALL,
    );
    let mut rows = Vec::new();
    for o in &outcomes {
        rows.push(vec![
            o.query.to_string(),
            o.plan.clone(),
            o.network.to_string(),
            ms(o.time),
            o.first_answer.map(ms).unwrap_or_default(),
            o.answers.to_string(),
            o.rows_transferred.to_string(),
            o.sql_queries.to_string(),
        ]);
    }
    let mut text = String::new();
    text.push_str("## Table 1 — execution times, Q1–Q5 × 2 plan types × 4 networks\n\n");
    text.push_str(&table(
        &["query", "plan", "network", "time_ms", "first_ms", "answers", "rows_xfer", "sql"],
        &rows,
    ));
    ExperimentReport {
        text,
        csv: vec![("table1.csv".to_string(), outcomes_csv(&outcomes))],
    }
}

/// C1 — the Q2 claim: the optimized merged SQL roughly halves execution
/// time versus the unaware plan, while the naive translation backfires.
pub fn q2_pushdown(setup: &ExperimentSetup) -> ExperimentReport {
    let q2 = workload::q2();
    let mut rows = Vec::new();
    let mut outcomes = Vec::new();
    for network in NetworkProfile::ALL {
        let unaware = run_query(setup, &q2, PlanMode::Unaware, network, MergeTranslation::Optimized);
        let optimized = run_query(setup, &q2, PlanMode::AWARE, network, MergeTranslation::Optimized);
        let naive = run_query(setup, &q2, PlanMode::AWARE, network, MergeTranslation::Naive);
        let base = unaware.time.as_secs_f64();
        rows.push(vec![
            network.name.to_string(),
            ms(unaware.time),
            ms(optimized.time),
            format!("{:.2}", optimized.time.as_secs_f64() / base),
            ms(naive.time),
            format!("{:.2}", naive.time.as_secs_f64() / base),
            naive.sql_queries.to_string(),
        ]);
        outcomes.extend([unaware, optimized, naive]);
    }
    let mut text = String::new();
    text.push_str("## C1 — Q2 join pushdown: unaware vs merged SQL (optimized and naive)\n\n");
    text.push_str(&table(
        &[
            "network",
            "unaware_ms",
            "merged_opt_ms",
            "opt/unaware",
            "merged_naive_ms",
            "naive/unaware",
            "naive_sql_queries",
        ],
        &rows,
    ));
    text.push_str(
        "\nThe optimized merged SQL approximately halves the execution time (§3);\n\
         the naive N+1 translation pushes the join down but still loses to the\n\
         unaware plan — Ontario's reported translation limitation.\n",
    );
    ExperimentReport {
        text,
        csv: vec![("q2_pushdown.csv".to_string(), outcomes_csv(&outcomes))],
    }
}

/// C2 — the filter-placement study behind Heuristic 2: Q1 (string filter,
/// index unusable) vs Q3 (equality filter, index usable), across every
/// placement policy and network.
pub fn h2_study(setup: &ExperimentSetup) -> ExperimentReport {
    let placements: [(&str, PlanMode); 3] = [
        (
            "engine",
            PlanMode::Aware { h1_join_pushdown: true, filters: FilterPlacement::Engine },
        ),
        (
            "pushed",
            PlanMode::Aware { h1_join_pushdown: true, filters: FilterPlacement::PushIndexed },
        ),
        (
            "heuristic2",
            PlanMode::Aware { h1_join_pushdown: true, filters: FilterPlacement::Heuristic2 },
        ),
    ];
    let mut text = String::new();
    text.push_str("## C2 — filter placement study (Heuristic 2)\n\n");
    let mut outcomes = Vec::new();
    for q in [workload::q1(), workload::q3()] {
        let mut rows = Vec::new();
        for network in NetworkProfile::ALL {
            let mut cells = vec![network.name.to_string()];
            for (_, mode) in &placements {
                let o = run_query(setup, &q, *mode, network, MergeTranslation::Optimized);
                cells.push(ms(o.time));
                outcomes.push(o);
            }
            rows.push(cells);
        }
        text.push_str(&format!("{} — {}\n", q.id, q.description));
        text.push_str(&table(
            &["network", "engine_ms", "pushed_ms", "heuristic2_ms"],
            &rows,
        ));
        text.push('\n');
    }
    text.push_str(
        "Q1: the engine placement wins on fast networks (the paper's experience) and\n\
         loses on slow ones — Heuristic 2 tracks the better side via its network\n\
         condition. Q3: pushing wins everywhere because the RDB turns the equality\n\
         filter into an index lookup — the case the paper says needs more study.\n",
    );
    ExperimentReport {
        text,
        csv: vec![("h2_study.csv".to_string(), outcomes_csv(&outcomes))],
    }
}

/// A1 — heuristic ablations over the whole workload at Gamma 2: each
/// heuristic's individual contribution.
pub fn ablation(setup: &ExperimentSetup) -> ExperimentReport {
    let modes: [(&str, PlanMode); 4] = [
        ("unaware", PlanMode::Unaware),
        (
            "h1 only",
            PlanMode::Aware { h1_join_pushdown: true, filters: FilterPlacement::Engine },
        ),
        (
            "h2 only",
            PlanMode::Aware { h1_join_pushdown: false, filters: FilterPlacement::PushIndexed },
        ),
        ("h1+h2", PlanMode::AWARE),
    ];
    let network = NetworkProfile::GAMMA2;
    let mut rows = Vec::new();
    let mut outcomes = Vec::new();
    let mut queries = vec![workload::motivating()];
    queries.extend(workload::experiment_queries());
    for q in &queries {
        let mut cells = vec![q.id.to_string()];
        for (_, mode) in &modes {
            let o = run_query(setup, q, *mode, network, MergeTranslation::Optimized);
            cells.push(ms(o.time));
            outcomes.push(o);
        }
        rows.push(cells);
    }
    let mut text = String::new();
    text.push_str("## A1 — heuristic ablation (Gamma 2), execution time in ms\n\n");
    text.push_str(&table(
        &["query", "unaware", "h1 only", "h2 only", "h1+h2"],
        &rows,
    ));
    text.push_str(
        "\nH1 matters where two stars share an endpoint (QM, Q2, Q4, Q5); H2 matters\n\
         where an indexed attribute is filtered (Q1, Q3). The full aware plan\n\
         combines both.\n",
    );
    ExperimentReport {
        text,
        csv: vec![("ablation.csv".to_string(), outcomes_csv(&outcomes))],
    }
}

/// A2 — §5 future work: *"studying different kinds of query decomposition
/// (e.g., triple-based instead of star-shaped sub-queries)"*. Runs the
/// workload under both strategies.
pub fn decomposition_study(setup: &ExperimentSetup) -> ExperimentReport {
    use fedlake_core::DecompositionStrategy;
    let mut rows = Vec::new();
    let mut outcomes = Vec::new();
    let mut queries = vec![workload::motivating()];
    queries.extend(workload::experiment_queries());
    for q in &queries {
        for network in [NetworkProfile::NO_DELAY, NetworkProfile::GAMMA2] {
            let mut star_cfg = fedlake_core::PlanConfig::aware(network);
            star_cfg.decomposition = DecompositionStrategy::StarShaped;
            let mut triple_cfg = star_cfg;
            triple_cfg.decomposition = DecompositionStrategy::TripleBased;
            let star = crate::runner::run_with(setup, q, star_cfg);
            let triple = crate::runner::run_with(setup, q, triple_cfg);
            rows.push(vec![
                q.id.to_string(),
                network.name.to_string(),
                ms(star.time),
                star.result.stats.services.to_string(),
                ms(triple.time),
                triple.result.stats.services.to_string(),
                format!("{:.2}", triple.time.as_secs_f64() / star.time.as_secs_f64()),
            ]);
            outcomes.extend([star, triple]);
        }
    }
    let mut text = String::new();
    text.push_str("## A2 — decomposition study: star-shaped vs triple-based sub-queries\n\n");
    text.push_str(&table(
        &["query", "network", "star_ms", "star_svc", "triple_ms", "triple_svc", "triple/star"],
        &rows,
    ));
    text.push_str(
        "\nTriple-based decomposition issues one request per triple pattern, multiplying\n\
         services and engine-level joins; star-shaped grouping (ANAPSID/MULDER) is the\n\
         better default — quantifying the §5 research question.\n",
    );
    ExperimentReport {
        text,
        csv: vec![("decomposition_study.csv".to_string(), outcomes_csv(&outcomes))],
    }
}

/// A3 — §5 future work: *"investigate the performance of different
/// implementations of relational databases in order to gain a deeper
/// understanding of why filter expressions seem to perform better at query
/// engine level"*. Reruns the filter-placement comparison under an RDB
/// whose filter evaluation is cheaper than the engine's.
pub fn rdb_variants(setup: &ExperimentSetup) -> ExperimentReport {
    use fedlake_netsim::CostModel;
    let variants: [(&str, CostModel); 2] = [
        ("slow-filter RDB (default)", CostModel::default()),
        ("fast-filter RDB", CostModel::rdb_filter_favouring()),
    ];
    let mut text = String::new();
    text.push_str("## A3 — RDB implementation variants and Heuristic 2\n\n");
    let mut outcomes = Vec::new();
    for (label, cost) in variants {
        let q1 = workload::q1();
        let network = NetworkProfile::NO_DELAY;
        let mut engine_cfg = fedlake_core::PlanConfig::new(
            PlanMode::Aware { h1_join_pushdown: true, filters: FilterPlacement::Engine },
            network,
        );
        engine_cfg.cost = cost;
        let mut pushed_cfg = fedlake_core::PlanConfig::aware(network);
        pushed_cfg.cost = cost;
        let engine_side = crate::runner::run_with(setup, &q1, engine_cfg);
        let pushed = crate::runner::run_with(setup, &q1, pushed_cfg);
        text.push_str(&format!(
            "{label}: Q1 at NoDelay — engine filter {} ms vs pushed filter {} ms → {}\n",
            ms(engine_side.time),
            ms(pushed.time),
            if engine_side.time < pushed.time {
                "engine placement wins (H2's stated experience holds)"
            } else {
                "pushed placement wins (H2's stated experience inverts)"
            }
        ));
        outcomes.extend([engine_side, pushed]);
    }
    text.push_str(
        "\nThe paper's observation that engine-side string filtering beats the RDB is an\n\
         artifact of the RDB implementation: with a filter-efficient RDB the preference\n\
         inverts, which is exactly why §5 calls for studying other RDBMS.\n",
    );
    ExperimentReport {
        text,
        csv: vec![("rdb_variants.csv".to_string(), outcomes_csv(&outcomes))],
    }
}

/// A4 — §5 future work: *"studying … not normalized tables"*. Rebuilds
/// Diseasome as one wide denormalized table and compares the workload
/// queries that touch it.
pub fn normalization_study(setup: &ExperimentSetup) -> ExperimentReport {
    use fedlake_datagen::{build_lake_with, LakeConfig};
    let denorm_lake_cfg = LakeConfig {
        denormalized: vec!["diseasome".into()],
        ..setup.lake.clone()
    };
    let mut rows = Vec::new();
    let mut text = String::new();
    text.push_str("## A4 — physical-design study: 3NF vs denormalized Diseasome\n\n");
    for q in [workload::motivating(), workload::q5()] {
        for network in [NetworkProfile::NO_DELAY, NetworkProfile::GAMMA2] {
            let run_on = |lake_cfg: &LakeConfig, mode: PlanMode| {
                let lake = build_lake_with(lake_cfg, q.datasets);
                let mut cfg = fedlake_core::PlanConfig::new(mode, network);
                cfg.seed = setup.run_seed;
                let engine = fedlake_core::FederatedEngine::new(lake, cfg);
                engine.execute_sparql(&q.sparql).expect("workload query")
            };
            let norm_aware = run_on(&setup.lake, PlanMode::AWARE);
            let denorm_aware = run_on(&denorm_lake_cfg, PlanMode::AWARE);
            let denorm_unaware = run_on(&denorm_lake_cfg, PlanMode::Unaware);
            rows.push(vec![
                q.id.to_string(),
                network.name.to_string(),
                ms(norm_aware.stats.execution_time),
                ms(denorm_aware.stats.execution_time),
                ms(denorm_unaware.stats.execution_time),
                denorm_aware.rows.len().to_string(),
            ]);
        }
    }
    text.push_str(&table(
        &["query", "network", "3nf_aware_ms", "denorm_aware_ms", "denorm_unaware_ms", "answers"],
        &rows,
    ));
    text.push_str(
        "\nWith the denormalized design the aware plan's gene–disease merge becomes a\n\
         single-table SELECT (no join at all), while the unaware plan still ships two\n\
         sub-queries — the physical design changes which plan is best, the paper's\n\
         overall thesis.\n",
    );
    ExperimentReport { text, csv: Vec::new() }
}


/// A5 — message-granularity ablation: the paper delays *each* retrieved
/// answer (one row per message); batching rows per message changes how
/// much the network setting matters and therefore where Heuristic 2's
/// trade-off sits.
pub fn batching_study(setup: &ExperimentSetup) -> ExperimentReport {
    let q3 = workload::q3();
    let mut rows = Vec::new();
    for batch in [1usize, 16, 64, 256] {
        for (label, mode) in [("unaware", PlanMode::Unaware), ("aware", PlanMode::AWARE)] {
            let mut cfg = fedlake_core::PlanConfig::new(mode, NetworkProfile::GAMMA2);
            cfg.rows_per_message = batch;
            let o = crate::runner::run_with(setup, &q3, cfg);
            rows.push(vec![
                batch.to_string(),
                label.to_string(),
                ms(o.time),
                o.messages.to_string(),
                o.rows_transferred.to_string(),
            ]);
        }
    }
    let mut text = String::new();
    text.push_str("## A5 — message batching (Q3 at Gamma 2)\n\n");
    text.push_str(&table(
        &["rows_per_message", "plan", "time_ms", "messages", "rows_xfer"],
        &rows,
    ));
    text.push_str(
        "\nThe paper's per-answer delay (1 row/message) maximizes the network's share\n\
         of the execution time; batching shrinks the unaware plan's penalty, which is\n\
         why the heuristics' benefit depends on the wrapper's retrieval granularity —\n\
         one of the implementation effects §3 says influence the heuristics.\n",
    );
    ExperimentReport { text, csv: Vec::new() }
}


/// A6 — engine join strategy ablation: ANAPSID's symmetric hash join vs
/// the dependent bind join (bindings shipped as SQL `IN` lists), across
/// the workload's selectivity spectrum.
pub fn join_strategy_study(setup: &ExperimentSetup) -> ExperimentReport {
    use fedlake_core::EngineJoin;
    let mut rows = Vec::new();
    let network = NetworkProfile::GAMMA2;
    let mut queries = vec![workload::motivating()];
    queries.extend(workload::experiment_queries());
    for q in &queries {
        let hash_cfg = fedlake_core::PlanConfig::new(PlanMode::Unaware, network);
        let mut bind_cfg = hash_cfg;
        bind_cfg.engine_join = EngineJoin::Bind { batch_size: 16 };
        let hash = crate::runner::run_with(setup, q, hash_cfg);
        let bind = crate::runner::run_with(setup, q, bind_cfg);
        rows.push(vec![
            q.id.to_string(),
            ms(hash.time),
            hash.rows_transferred.to_string(),
            ms(bind.time),
            bind.rows_transferred.to_string(),
            bind.sql_queries.to_string(),
            format!("{:.2}", bind.time.as_secs_f64() / hash.time.as_secs_f64()),
        ]);
    }
    let mut text = String::new();
    text.push_str("## A6 — engine join strategy (unaware plans, Gamma 2)\n\n");
    text.push_str(&table(
        &["query", "symhash_ms", "symhash_rows", "bind_ms", "bind_rows", "bind_sql", "bind/hash"],
        &rows,
    ));
    text.push_str(
        "\nThe bind join wins when the left side is selective relative to the right\n\
         star (it ships keys instead of fetching the star in full) and loses when the\n\
         left is large (per-batch query overhead) — the classical dependent-join\n\
         trade-off ANAPSID's adaptive operators navigate.\n",
    );
    ExperimentReport { text, csv: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> ExperimentSetup {
        ExperimentSetup::at_scale(0.05)
    }

    #[test]
    fn figure1_reports_plan_difference() {
        let r = figure1(&setup());
        assert!(r.text.contains("UNAWARE"));
        assert!(r.text.contains("AWARE"));
        assert!(r.text.contains("pushed-down join"));
    }

    #[test]
    fn figure2_emits_traces_and_csv() {
        let r = figure2(&setup());
        assert!(r.text.contains("(a) Physical-Design-Unaware"));
        assert!(r.text.contains("(c) Both QEPs"));
        assert_eq!(r.csv.len(), 8);
        assert!(r.csv[0].1.starts_with("time_s,answers"));
    }

    #[test]
    fn table1_has_forty_cells() {
        let r = table1(&setup());
        // 5 queries × 2 plans × 4 networks = 40 data rows (+ header lines).
        let data_rows = r.csv[0].1.lines().count() - 1;
        assert_eq!(data_rows, 40);
    }

    #[test]
    fn q2_and_ablation_render() {
        let r = q2_pushdown(&setup());
        assert!(r.text.contains("naive/unaware"));
        let r = ablation(&setup());
        assert!(r.text.contains("h1+h2"));
    }
}
