//! The experiment harness binary: regenerates every table and figure of
//! the paper's evaluation against the synthetic lake.
//!
//! ```text
//! experiments [--figure1] [--figure2] [--table1] [--q2-pushdown]
//!             [--h2-study] [--ablation] [--all]
//!             [--scale S] [--seed N] [--out DIR]
//! ```
//!
//! Without selection flags, `--all` is assumed. With `--out DIR`, CSV
//! artifacts are written there.

use fedlake_bench::experiments::{
    ablation, batching_study, decomposition_study, figure1, figure2, h2_study,
    join_strategy_study, normalization_study, q2_pushdown, rdb_variants, table1,
    ExperimentReport,
};
use fedlake_bench::ExperimentSetup;
use fedlake_datagen::LakeConfig;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    which: Vec<&'static str>,
    scale: f64,
    seed: u64,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut which = Vec::new();
    let mut scale = 1.0;
    let mut seed = LakeConfig::default().seed;
    let mut out = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--figure1" => which.push("figure1"),
            "--figure2" => which.push("figure2"),
            "--table1" => which.push("table1"),
            "--q2-pushdown" => which.push("q2-pushdown"),
            "--h2-study" => which.push("h2-study"),
            "--ablation" => which.push("ablation"),
            "--decomposition-study" => which.push("decomposition-study"),
            "--rdb-variants" => which.push("rdb-variants"),
            "--normalization-study" => which.push("normalization-study"),
            "--batching-study" => which.push("batching-study"),
            "--join-strategy-study" => which.push("join-strategy-study"),
            "--all" => which.extend([
                "figure1",
                "figure2",
                "table1",
                "q2-pushdown",
                "h2-study",
                "ablation",
                "decomposition-study",
                "rdb-variants",
                "normalization-study",
                "batching-study",
                "join-strategy-study",
            ]),
            "--scale" => {
                scale = argv
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "--seed" => {
                seed = argv
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--out" => {
                out = Some(PathBuf::from(argv.next().ok_or("--out needs a value")?));
            }
            "--help" | "-h" => {
                return Err("usage: experiments [--figure1|--figure2|--table1|--q2-pushdown|\
                            --h2-study|--ablation|--all] [--scale S] [--seed N] [--out DIR]"
                    .to_string());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if which.is_empty() {
        which.extend([
            "figure1",
            "figure2",
            "table1",
            "q2-pushdown",
            "h2-study",
            "ablation",
            "decomposition-study",
            "rdb-variants",
            "normalization-study",
            "batching-study",
            "join-strategy-study",
        ]);
    }
    Ok(Args { which, scale, seed, out })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let setup = ExperimentSetup {
        lake: LakeConfig { scale: args.scale, seed: args.seed, ..Default::default() },
        run_seed: 7,
    };
    println!(
        "FedLake experiment harness — scale {}, generator seed {:#x}\n",
        args.scale, args.seed
    );
    for which in &args.which {
        let report: ExperimentReport = match *which {
            "figure1" => figure1(&setup),
            "figure2" => figure2(&setup),
            "table1" => table1(&setup),
            "q2-pushdown" => q2_pushdown(&setup),
            "h2-study" => h2_study(&setup),
            "ablation" => ablation(&setup),
            "decomposition-study" => decomposition_study(&setup),
            "rdb-variants" => rdb_variants(&setup),
            "normalization-study" => normalization_study(&setup),
            "batching-study" => batching_study(&setup),
            "join-strategy-study" => join_strategy_study(&setup),
            other => unreachable!("validated flag {other}"),
        };
        println!("{}", report.text);
        if let Some(dir) = &args.out {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            for (name, content) in &report.csv {
                let path = dir.join(name);
                if let Err(e) = std::fs::write(&path, content) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("wrote {}", path.display());
            }
        }
    }
    ExitCode::SUCCESS
}
