//! An interactive SPARQL shell over the synthetic data lake.
//!
//! ```text
//! lake_shell [--scale S] [--seed N] [--mode unaware|aware|h2]
//!            [--network NoDelay|Gamma1|Gamma2|Gamma3]
//!            [--format table|json|csv] [--query SPARQL]
//!            [--analyze] [--trace-out FILE.json]
//!            [--replicas N] [--outage ENDPOINT] [--batch-size N]
//!            [--cost-based] [--plan-cache] [--recorder]
//!            [--slow-log FILE.json] [--watchdog] [--prom-out FILE]
//!            [--serve-trace FILE.json] [--serve-html FILE.html]
//! ```
//!
//! A serve mode (`--serve`, or env `FEDLAKE_SERVE=1`) replaces the REPL
//! with a seeded concurrent load: `--clients N` sessions draw from a
//! weighted `--mix` of the paper's Q1–Q5 templates, arrive by an
//! exponential process (`--arrival MS`), queue behind `--in-flight N`
//! admission slots and optional `--deadline MS` budgets, and share one
//! simulated clock and link map — so concurrent queries contend for the
//! same wrapper links. Prints a per-job outcome table, the server
//! metrics rollup, and the summary report JSON (throughput in simulated
//! time, p50/p95/p99 latency, Jain fairness).
//!
//! `--analyze` turns tracing on and prints an `EXPLAIN ANALYZE` view of
//! every executed query (the plan tree annotated with actual rows, times
//! and per-link fault counts). `--trace-out FILE.json` records a Chrome
//! trace-event file of the last executed query — load it at
//! `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! The observability flags ride on the fleet flight recorder
//! (`--recorder`, or env `FEDLAKE_RECORDER=1`): `--slow-log FILE` writes
//! the stable-JSON slow-query log of the run (queries past a latency or
//! q-error threshold, with plan, per-operator and per-link actuals — it
//! implies tracing), `--watchdog` prints the windowed SLO rollup and any
//! typed anomalies (misestimates, degraded links, admission pressure),
//! `--prom-out FILE` writes the serve metrics registry as Prometheus
//! text, and `--serve-trace` / `--serve-html` export the fleet timeline
//! (one lane per client and per link) as a Chrome trace / an HTML page.
//! All five summarize a `--serve` run: passing any of them without
//! `--serve` is rejected with exit code 2 instead of silently
//! producing nothing.
//!
//! `--plan-cache` (or env `FEDLAKE_PLAN_CACHE=1`) turns on the
//! normalized logical-plan cache: repeat queries replay byte-identical
//! plans without re-planning, and a serve run prints the cache's
//! hit/miss/eviction/invalidation counters.
//!
//! `--replicas N` replicates every source N ways (endpoints `id#r0` …),
//! and `--outage ENDPOINT` (repeatable) puts an endless outage on one
//! endpoint — together with `.explain on` they demonstrate replica
//! failover and health-aware routing: the first query burns its retry
//! budget on the dark replica and fails over; re-running it shows the
//! planner routing to the healthy replica up front.
//!
//! Without `--query`, reads queries from stdin: each query is terminated
//! by a blank line (or EOF). Meta-commands: `.explain on|off`,
//! `.mode <m>`, `.network <n>`, `.workload <id>` (run a predefined
//! workload query), `.quit`.

use fedlake_core::{FaultPlan, FederatedEngine, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake, workload, LakeConfig};
use fedlake_netsim::NetworkProfile;
use fedlake_serve::{Mix, ServeSpec};
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::time::Duration;

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Table,
    Json,
    Csv,
}

struct Shell {
    engine: FederatedEngine,
    format: Format,
    explain: bool,
    analyze: bool,
    trace_out: Option<std::path::PathBuf>,
}

fn parse_mode(s: &str) -> Option<PlanMode> {
    match s.to_ascii_lowercase().as_str() {
        "unaware" => Some(PlanMode::Unaware),
        "aware" => Some(PlanMode::AWARE),
        "h2" => Some(PlanMode::AWARE_H2),
        _ => None,
    }
}

fn parse_network(s: &str) -> Option<NetworkProfile> {
    NetworkProfile::ALL
        .into_iter()
        .find(|n| n.name.eq_ignore_ascii_case(s))
}

impl Shell {
    fn run_query(&self, sparql: &str) {
        match self.engine.execute_sparql(sparql) {
            Err(e) => eprintln!("error: {e}"),
            Ok(result) => {
                if self.explain {
                    println!("{}", result.explain);
                }
                if self.analyze {
                    match result.explain_analyze() {
                        Some(report) => println!("{report}"),
                        None => eprintln!("--analyze: no trace recorded"),
                    }
                }
                if let Some(path) = &self.trace_out {
                    match result.chrome_trace() {
                        Some(json) => match std::fs::write(path, json) {
                            Ok(()) => eprintln!("trace written to {}", path.display()),
                            Err(e) => eprintln!("--trace-out {}: {e}", path.display()),
                        },
                        None => eprintln!("--trace-out: no trace recorded"),
                    }
                }
                match self.format {
                    Format::Json => println!("{}", result.to_json()),
                    Format::Csv => print!("{}", result.to_csv()),
                    Format::Table => {
                        for row in &result.rows {
                            println!("{row}");
                        }
                    }
                }
                println!(
                    "-- {} answer(s) in {:.3} ms simulated ({} / {}, {} messages)",
                    result.rows.len(),
                    result.stats.execution_time.as_secs_f64() * 1000.0,
                    result.stats.plan_label,
                    result.stats.network,
                    result.stats.messages
                );
                if result.stats.degraded || result.stats.retries > 0 {
                    println!(
                        "-- faults: {} retries, degraded: {}, per-source failures: {:?}",
                        result.stats.retries,
                        result.stats.degraded,
                        result.stats.source_failures
                    );
                }
            }
        }
    }

    fn meta(&mut self, line: &str) -> bool {
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some(".quit") | Some(".exit") => return false,
            Some(".explain") => match parts.next() {
                Some("on") => self.explain = true,
                Some("off") => self.explain = false,
                _ => eprintln!("usage: .explain on|off"),
            },
            Some(".mode") => match parts.next().and_then(parse_mode) {
                Some(mode) => {
                    let mut cfg = *self.engine.config();
                    cfg.mode = mode;
                    self.engine.set_config(cfg);
                    println!("mode: {}", mode.label());
                }
                None => eprintln!("usage: .mode unaware|aware|h2"),
            },
            Some(".network") => match parts.next().and_then(parse_network) {
                Some(net) => {
                    let mut cfg = *self.engine.config();
                    cfg.network = net;
                    self.engine.set_config(cfg);
                    println!("network: {net}");
                }
                None => eprintln!("usage: .network NoDelay|Gamma1|Gamma2|Gamma3"),
            },
            Some(".workload") => match parts.next().and_then(workload::by_id) {
                Some(q) => {
                    println!("-- {}: {}", q.id, q.description);
                    println!("{}", q.sparql);
                    self.run_query(&q.sparql);
                }
                None => {
                    eprintln!("available: QM, Q1, Q2, Q3, Q4, Q5");
                }
            },
            _ => eprintln!("meta-commands: .explain, .mode, .network, .workload, .quit"),
        }
        true
    }
}

/// Observability outputs of one run (all optional).
#[derive(Default)]
struct ObsOut {
    slow_log: Option<std::path::PathBuf>,
    watchdog: bool,
    prom_out: Option<std::path::PathBuf>,
    serve_trace: Option<std::path::PathBuf>,
    serve_html: Option<std::path::PathBuf>,
}

impl ObsOut {
    fn wants_recorder(&self) -> bool {
        self.slow_log.is_some()
            || self.watchdog
            || self.serve_trace.is_some()
            || self.serve_html.is_some()
    }
}

/// Rejects observability flags that would silently no-op.
///
/// `--slow-log`, `--watchdog`, `--prom-out`, `--serve-trace` and
/// `--serve-html` all summarize a `--serve` run; in REPL / one-shot
/// mode they produce nothing, which historically degraded to a note on
/// stderr that was easy to miss. Make the mismatch a hard,
/// deterministic error instead so scripts fail fast.
fn validate_obs_flags(serve: bool, obs: &ObsOut) -> Result<(), String> {
    if serve {
        return Ok(());
    }
    let mut offenders = Vec::new();
    if obs.slow_log.is_some() {
        offenders.push("--slow-log");
    }
    if obs.watchdog {
        offenders.push("--watchdog");
    }
    if obs.prom_out.is_some() {
        offenders.push("--prom-out");
    }
    if obs.serve_trace.is_some() {
        offenders.push("--serve-trace");
    }
    if obs.serve_html.is_some() {
        offenders.push("--serve-html");
    }
    if offenders.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} only summarize(s) a --serve run and would silently no-op \
             here; add --serve (or FEDLAKE_SERVE=1)",
            offenders.join(", ")
        ))
    }
}

fn write_file(what: &str, path: &std::path::Path, bytes: &str) {
    match std::fs::write(path, bytes) {
        Ok(()) => eprintln!("{what} written to {}", path.display()),
        Err(e) => eprintln!("{what} {}: {e}", path.display()),
    }
}

/// Runs the seeded concurrent load and prints the outcome table, the
/// server metrics rollup and the report JSON.
fn run_serve(engine: &FederatedEngine, spec: &ServeSpec, obs: &ObsOut) -> ExitCode {
    let r = match fedlake_serve::run(engine, spec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let ms = |d: Duration| d.as_secs_f64() * 1e3;
    println!(
        "{:<8} {:<18} {:>12} {:>12} {:>8}  status",
        "client", "query", "arrival ms", "latency ms", "rows"
    );
    for out in &r.outcome.outcomes {
        let status = match &out.error {
            Some(e) => format!("error: {e}"),
            None if out.degraded => "degraded".to_string(),
            None => "ok".to_string(),
        };
        println!(
            "{:<8} {:<18} {:>12.3} {:>12.3} {:>8}  {status}",
            out.client,
            out.label,
            ms(out.arrival),
            ms(out.latency),
            out.rows.len()
        );
    }
    println!("\n== server rollup ==\n{}", r.outcome.metrics.render());
    println!("== report ==\n{}", r.report.to_json());
    if engine.config().plan_cache {
        let s = engine.plan_cache_stats();
        println!(
            "== plan cache ==\nlookups {} hits {} misses {} evictions {} invalidations {}",
            s.lookups, s.hits, s.misses, s.evictions, s.invalidations
        );
    }
    if let Some(path) = &obs.prom_out {
        write_file("prometheus exposition", path, &r.outcome.metrics.prometheus());
    }
    if let Some(path) = &obs.slow_log {
        let records = r.slow_queries(&fedlake_core::SlowLogConfig::default());
        eprintln!("slow-query log: {} record(s)", records.len());
        write_file("slow-query log", path, &fedlake_core::slow_log_json(&records));
    }
    if obs.watchdog {
        match r.watchdog(&fedlake_core::WatchdogConfig::default()) {
            Some(report) => println!("== watchdog ==\n{}", report.render()),
            None => eprintln!("--watchdog: recorder was off"),
        }
    }
    if let Some(recording) = &r.outcome.recording {
        if let Some(path) = &obs.serve_trace {
            write_file("serve trace", path, &fedlake_core::serve_chrome_trace(recording));
        }
        if let Some(path) = &obs.serve_html {
            write_file("serve timeline", path, &fedlake_core::serve_timeline_html(recording));
        }
    } else if obs.serve_trace.is_some() || obs.serve_html.is_some() {
        eprintln!("--serve-trace/--serve-html: recorder was off");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut scale = 0.3;
    let mut seed = LakeConfig::default().seed;
    let mut mode = PlanMode::AWARE;
    let mut network = NetworkProfile::GAMMA1;
    let mut format = Format::Table;
    let mut one_shot: Option<String> = None;
    let mut analyze = false;
    let mut trace_out: Option<std::path::PathBuf> = None;
    let mut replicas: u32 = 1;
    let mut outages: Vec<String> = Vec::new();
    let mut batch_size: Option<usize> = None;
    let mut cost_based = false;
    let mut plan_cache = false;
    let mut recorder = std::env::var("FEDLAKE_RECORDER").map(|v| v == "1").unwrap_or(false);
    let mut obs = ObsOut::default();
    let mut serve = std::env::var("FEDLAKE_SERVE").map(|v| v == "1").unwrap_or(false);
    let mut serve_spec = ServeSpec::default();
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut next = |what: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("{what} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--scale" => scale = next("--scale").parse().unwrap_or(0.3),
            "--seed" => seed = next("--seed").parse().unwrap_or(seed),
            "--mode" => {
                mode = parse_mode(&next("--mode")).unwrap_or_else(|| {
                    eprintln!("bad --mode");
                    std::process::exit(2);
                })
            }
            "--network" => {
                network = parse_network(&next("--network")).unwrap_or_else(|| {
                    eprintln!("bad --network");
                    std::process::exit(2);
                })
            }
            "--format" => {
                format = match next("--format").as_str() {
                    "json" => Format::Json,
                    "csv" => Format::Csv,
                    _ => Format::Table,
                }
            }
            "--query" => one_shot = Some(next("--query")),
            "--analyze" => analyze = true,
            "--trace-out" => trace_out = Some(next("--trace-out").into()),
            "--replicas" => {
                replicas = next("--replicas").parse().unwrap_or_else(|_| {
                    eprintln!("bad --replicas");
                    std::process::exit(2);
                })
            }
            "--outage" => outages.push(next("--outage")),
            "--cost-based" => cost_based = true,
            "--plan-cache" => plan_cache = true,
            "--recorder" => recorder = true,
            "--slow-log" => obs.slow_log = Some(next("--slow-log").into()),
            "--watchdog" => obs.watchdog = true,
            "--prom-out" => obs.prom_out = Some(next("--prom-out").into()),
            "--serve-trace" => obs.serve_trace = Some(next("--serve-trace").into()),
            "--serve-html" => obs.serve_html = Some(next("--serve-html").into()),
            "--serve" => serve = true,
            "--clients" => {
                serve_spec.clients = next("--clients").parse().unwrap_or_else(|_| {
                    eprintln!("bad --clients");
                    std::process::exit(2);
                })
            }
            "--queries-per-client" => {
                serve_spec.queries_per_client =
                    next("--queries-per-client").parse().unwrap_or_else(|_| {
                        eprintln!("bad --queries-per-client");
                        std::process::exit(2);
                    })
            }
            "--mix" => {
                serve_spec.mix = Mix::parse(&next("--mix")).unwrap_or_else(|e| {
                    eprintln!("bad --mix: {e}");
                    std::process::exit(2);
                })
            }
            "--arrival" => {
                let ms: f64 = next("--arrival").parse().unwrap_or_else(|_| {
                    eprintln!("bad --arrival");
                    std::process::exit(2);
                });
                serve_spec.mean_interarrival = Duration::from_secs_f64(ms / 1e3);
            }
            "--in-flight" => {
                serve_spec.max_in_flight = next("--in-flight").parse().unwrap_or_else(|_| {
                    eprintln!("bad --in-flight");
                    std::process::exit(2);
                })
            }
            "--deadline" => {
                let ms: f64 = next("--deadline").parse().unwrap_or_else(|_| {
                    eprintln!("bad --deadline");
                    std::process::exit(2);
                });
                serve_spec.deadline = Some(Duration::from_secs_f64(ms / 1e3));
            }
            "--batch-size" => {
                batch_size = Some(next("--batch-size").parse().unwrap_or_else(|_| {
                    eprintln!("bad --batch-size");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!(
                    "lake_shell [--scale S] [--seed N] [--mode unaware|aware|h2] \
                     [--network NoDelay|Gamma1|Gamma2|Gamma3] [--format table|json|csv] \
                     [--query SPARQL] [--analyze] [--trace-out FILE.json] \
                     [--replicas N] [--outage ENDPOINT] [--batch-size N] [--cost-based] \
                     [--serve --clients N --queries-per-client N --mix SPEC \
                     --arrival MS --in-flight N --deadline MS]\n\n\
                     --analyze            print EXPLAIN ANALYZE (plan tree with actual rows,\n\
                     \x20                    times, messages and per-link fault counts)\n\
                     --trace-out FILE     write a Chrome trace-event JSON of the executed\n\
                     \x20                    query (chrome://tracing or ui.perfetto.dev)\n\
                     --replicas N         replicate every source N ways (endpoints id#r0 …)\n\
                     --outage ENDPOINT    endless outage on one endpoint (repeatable);\n\
                     \x20                    with --replicas, queries fail over and the\n\
                     \x20                    planner learns to route around it\n\
                     --batch-size N       run the vectorized executor with N-row morsels\n\
                     \x20                    (also via FEDLAKE_BATCH=1 / FEDLAKE_BATCH_SIZE)\n\
                     --cost-based         statistics-driven cost-based join ordering\n\
                     \x20                    (also via FEDLAKE_COST=1); EXPLAIN ANALYZE then\n\
                     \x20                    shows estimated vs. actual rows per operator\n\
                     --plan-cache         normalized logical-plan cache: repeat queries\n\
                     \x20                    replay byte-identical plans without re-planning\n\
                     \x20                    (also via FEDLAKE_PLAN_CACHE=1)\n\
                     --serve              serve a seeded concurrent load instead of the REPL\n\
                     \x20                    (also via FEDLAKE_SERVE=1); prints per-job\n\
                     \x20                    outcomes, the server rollup and the report JSON\n\
                     --recorder           fleet flight recorder (also via FEDLAKE_RECORDER=1);\n\
                     \x20                    structured lifecycle events behind every flag below\n\
                     --slow-log FILE      write the slow-query log of a --serve run as stable\n\
                     \x20                    JSON (implies --recorder and tracing)\n\
                     --watchdog           print windowed SLO rollups and typed anomalies\n\
                     \x20                    (misestimate, link-degraded, admission-pressure)\n\
                     --prom-out FILE      write the serve metrics registry as Prometheus text\n\
                     --serve-trace FILE   write the fleet timeline as Chrome trace-event JSON\n\
                     \x20                    (one lane per client and per link)\n\
                     --serve-html FILE    write the fleet timeline as a static HTML/SVG page\n\
                     --clients N          concurrent client sessions (default 8)\n\
                     --queries-per-client N  queries each client issues (default 2)\n\
                     --mix SPEC           weighted template mix, e.g. Q1=2,Q3,Q5 (default\n\
                     \x20                    Q1..Q5 at weight 1)\n\
                     --arrival MS         mean exponential inter-arrival gap (0 = batch at t=0)\n\
                     --in-flight N        admission bound (0 = unbounded, default 8)\n\
                     --deadline MS        per-query deadline relative to arrival"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Err(msg) = validate_obs_flags(serve, &obs) {
        eprintln!("error: {msg}");
        return ExitCode::from(2);
    }

    eprintln!("building the ten-dataset lake (scale {scale}) …");
    let mut lake = build_lake(&LakeConfig { scale, seed, ..Default::default() });
    if replicas > 1 {
        let ids: Vec<String> = lake.sources().iter().map(|s| s.id().to_string()).collect();
        for id in ids {
            lake.set_replicas(id, replicas);
        }
        eprintln!("every source replicated {replicas} ways");
    }
    let mut cfg = PlanConfig::new(mode, network);
    cfg.tracing = analyze || trace_out.is_some();
    if recorder || obs.wants_recorder() {
        cfg.recorder = true;
        // The slow-query log's per-operator/per-link sections come from
        // per-session traces.
        if obs.slow_log.is_some() {
            cfg.tracing = true;
        }
        eprintln!("flight recorder: on");
    }
    if cost_based {
        cfg.cost_based = true;
        eprintln!("cost-based planning: statistics-driven join ordering");
    }
    if plan_cache {
        cfg.plan_cache = true;
    }
    if cfg.plan_cache {
        eprintln!("plan cache: normalized logical plans replayed on repeat queries");
    }
    if let Some(n) = batch_size {
        cfg.batch = true;
        cfg.batch_size = n.max(1);
        eprintln!("vectorized execution: {}-row morsels", cfg.batch_size);
    }
    let mut engine = FederatedEngine::new(lake, cfg);
    for endpoint in &outages {
        engine.set_source_faults(
            endpoint.clone(),
            FaultPlan {
                outage_after: Some(0),
                outage_len: u64::MAX,
                ..FaultPlan::NONE
            },
        );
        eprintln!("endless outage injected on {endpoint}");
    }
    let engine = engine;

    if serve {
        serve_spec.seed = seed;
        eprintln!(
            "serving {} client(s) x {} query(ies), mix {:?}, seed {seed}",
            serve_spec.clients,
            serve_spec.queries_per_client,
            serve_spec.mix.0.iter().map(|(id, w)| format!("{id}={w}")).collect::<Vec<_>>()
        );
        return run_serve(&engine, &serve_spec, &obs);
    }

    let mut shell = Shell { engine, format, explain: false, analyze, trace_out };

    if let Some(q) = one_shot {
        shell.run_query(&q);
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "enter SPARQL terminated by a blank line; .workload QM|Q1..Q5 runs the paper's \
         queries; .quit exits"
    );
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    loop {
        if buffer.is_empty() {
            eprint!("fedlake> ");
        } else {
            eprint!("     ...> ");
        }
        let _ = std::io::stderr().flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => {
                if !buffer.trim().is_empty() {
                    shell.run_query(&buffer);
                }
                break;
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("stdin error: {e}");
                break;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('.') {
            if !shell.meta(trimmed) {
                break;
            }
            continue;
        }
        if trimmed.is_empty() {
            if !buffer.trim().is_empty() {
                shell.run_query(&buffer);
                buffer.clear();
            }
            continue;
        }
        buffer.push_str(&line);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_flags_require_serve() {
        let mut obs = ObsOut::default();
        assert!(validate_obs_flags(false, &obs).is_ok());
        assert!(validate_obs_flags(true, &obs).is_ok());

        obs.watchdog = true;
        let err = validate_obs_flags(false, &obs).unwrap_err();
        assert!(err.contains("--watchdog"), "{err}");
        assert!(validate_obs_flags(true, &obs).is_ok());
    }

    #[test]
    fn obs_flag_errors_name_every_offender() {
        let obs = ObsOut {
            slow_log: Some("slow.json".into()),
            watchdog: true,
            prom_out: Some("metrics.prom".into()),
            serve_trace: Some("trace.json".into()),
            serve_html: Some("timeline.html".into()),
        };
        let err = validate_obs_flags(false, &obs).unwrap_err();
        for flag in
            ["--slow-log", "--watchdog", "--prom-out", "--serve-trace", "--serve-html"]
        {
            assert!(err.contains(flag), "missing {flag} in {err}");
        }
    }
}
