//! Compares the interned slot-row representation against the reference
//! term-row (`BTreeMap<Var, Term>`) representation on the operations the
//! row currency dominates: symmetric-hash-join probing, DISTINCT
//! insertion, projection, and the end-to-end Q2 federated execution.
//!
//! Emits `BENCH_rows.json` (in the current directory) with median ns/op
//! per case and the reference/interned speedup factor. Before measuring,
//! it asserts both representations produce identical answers on the
//! synthetic inputs and on Q2.

use fedlake_bench::harness::{format_ns, Bench, Measurement};
use fedlake_core::operators::{
    DistinctOp, ExecCtx, ProjectOp, RowsOp, SymHashJoin,
};
use fedlake_core::reference::{
    DistinctRefOp, ProjectRefOp, RefOp, RowsRefOp, SymHashJoinRef,
};
use fedlake_core::{FederatedEngine, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::clock::shared_virtual;
use fedlake_netsim::{CostModel, NetworkProfile};
use fedlake_rdf::{SharedInterner, Term};
use fedlake_sparql::binding::{encode_row, Row, RowSchema, SlotRow, Var};
use std::sync::Arc;

const N_ROWS: usize = 2_000;
const N_KEYS: usize = 400;

struct Fixture {
    schema: Arc<RowSchema>,
    interner: SharedInterner,
    left_rows: Vec<Row>,
    right_rows: Vec<Row>,
    left_slots: Vec<SlotRow>,
    right_slots: Vec<SlotRow>,
}

fn fixture() -> Fixture {
    let schema = Arc::new(RowSchema::new(
        ["j", "a", "b"].into_iter().map(Var::new),
    ));
    let interner = SharedInterner::new();
    let mk = |side: &str, i: usize, payload_var: &str| {
        Row::new()
            .with("j", Term::iri(format!("http://x/key{}", i % N_KEYS)))
            .with(payload_var, Term::iri(format!("http://x/{side}{i}")))
    };
    let left_rows: Vec<Row> = (0..N_ROWS).map(|i| mk("l", i, "a")).collect();
    let right_rows: Vec<Row> = (0..N_ROWS).map(|i| mk("r", i, "b")).collect();
    let enc = |rows: &[Row]| -> Vec<SlotRow> {
        let mut dict = interner.lock();
        rows.iter().map(|r| encode_row(r, &schema, &mut dict)).collect()
    };
    let left_slots = enc(&left_rows);
    let right_slots = enc(&right_rows);
    Fixture { schema, interner, left_rows, right_rows, left_slots, right_slots }
}

fn ctx(f: &Fixture) -> ExecCtx {
    ExecCtx::new(
        shared_virtual(),
        CostModel::default(),
        Arc::clone(&f.schema),
        f.interner.clone(),
    )
}

fn join_slots(f: &Fixture) -> usize {
    let mut c = ctx(f);
    let mut j = SymHashJoin::new(
        Box::new(RowsOp::new(f.left_slots.clone())),
        Box::new(RowsOp::new(f.right_slots.clone())),
        vec![f.schema.slot(&Var::new("j")).unwrap()],
    );
    let mut n = 0;
    while let Some(r) = fedlake_core::operators::FedOp::next(&mut j, &mut c).unwrap() {
        std::hint::black_box(r);
        n += 1;
    }
    n
}

fn join_ref(f: &Fixture) -> usize {
    let mut c = ctx(f);
    let mut j = SymHashJoinRef::new(
        Box::new(RowsRefOp::new(f.left_rows.clone())),
        Box::new(RowsRefOp::new(f.right_rows.clone())),
        vec![Var::new("j")],
    );
    let mut n = 0;
    while let Some(r) = j.next(&mut c).unwrap() {
        std::hint::black_box(r);
        n += 1;
    }
    n
}

fn distinct_slots(f: &Fixture) -> usize {
    let mut c = ctx(f);
    let mut d = DistinctOp::new(Box::new(RowsOp::new(f.left_slots.clone())));
    let mut n = 0;
    while let Some(r) = fedlake_core::operators::FedOp::next(&mut d, &mut c).unwrap() {
        std::hint::black_box(r);
        n += 1;
    }
    n
}

fn distinct_ref(f: &Fixture) -> usize {
    let mut c = ctx(f);
    let mut d = DistinctRefOp::new(Box::new(RowsRefOp::new(f.left_rows.clone())));
    let mut n = 0;
    while let Some(r) = d.next(&mut c).unwrap() {
        std::hint::black_box(r);
        n += 1;
    }
    n
}

fn project_slots(f: &Fixture) -> usize {
    let mut c = ctx(f);
    let keep = f.schema.slots_of(&[Var::new("j")]);
    let mut p = ProjectOp::new(Box::new(RowsOp::new(f.left_slots.clone())), keep);
    let mut n = 0;
    while let Some(r) = fedlake_core::operators::FedOp::next(&mut p, &mut c).unwrap() {
        std::hint::black_box(r);
        n += 1;
    }
    n
}

fn project_ref(f: &Fixture) -> usize {
    let mut c = ctx(f);
    let mut p =
        ProjectRefOp::new(Box::new(RowsRefOp::new(f.left_rows.clone())), vec![Var::new("j")]);
    let mut n = 0;
    while let Some(r) = p.next(&mut c).unwrap() {
        std::hint::black_box(r);
        n += 1;
    }
    n
}

struct Case {
    name: &'static str,
    reference_ns: f64,
    interned_ns: f64,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.reference_ns / self.interned_ns
    }
}

fn per_op(m: &Measurement, ops: usize) -> f64 {
    m.median_ns / ops as f64
}

fn main() {
    let f = fixture();

    // Representation equivalence on the synthetic inputs.
    assert_eq!(join_slots(&f), join_ref(&f), "join answers diverge");
    assert_eq!(distinct_slots(&f), distinct_ref(&f), "distinct answers diverge");
    assert_eq!(project_slots(&f), project_ref(&f), "project answers diverge");

    // End-to-end Q2: plan once, execute through both engines. Unaware mode
    // keeps the join in the engine (AWARE merges it into one SQL query, so
    // the row representation would barely matter).
    let q2 = workload::q2();
    let lake = build_lake_with(&LakeConfig { scale: 0.3, ..Default::default() }, q2.datasets);
    let engine = FederatedEngine::new(
        lake,
        PlanConfig::new(PlanMode::Unaware, NetworkProfile::NO_DELAY),
    );
    let planned = engine
        .plan(&fedlake_sparql::parser::parse_query(&q2.sparql).unwrap())
        .unwrap();
    {
        let a = engine.execute_planned(&planned).unwrap();
        let b = engine.execute_planned_reference(&planned).unwrap();
        let sorted = |rows: &[Row]| {
            let mut v: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(sorted(&a.rows), sorted(&b.rows), "Q2 answers diverge");
    }

    let probes = 2 * N_ROWS; // both join inputs are probed once per row

    let mut b = Bench::new("rows_interned");
    b.bench("join_probe", || join_slots(&f));
    b.bench("distinct_insert", || distinct_slots(&f));
    b.bench("project", || project_slots(&f));
    b.bench("q2_end_to_end", || engine.execute_planned(&planned).unwrap());
    let interned = b.finish();

    let mut b = Bench::new("rows_reference");
    b.bench("join_probe", || join_ref(&f));
    b.bench("distinct_insert", || distinct_ref(&f));
    b.bench("project", || project_ref(&f));
    b.bench("q2_end_to_end", || engine.execute_planned_reference(&planned).unwrap());
    let reference = b.finish();

    let ops = [probes, N_ROWS, N_ROWS, 1];
    let cases: Vec<Case> = ["join_probe", "distinct_insert", "project", "q2_end_to_end"]
        .iter()
        .enumerate()
        .map(|(i, name)| Case {
            name,
            reference_ns: per_op(&reference[i], ops[i]),
            interned_ns: per_op(&interned[i], ops[i]),
        })
        .collect();

    println!("\n== speedup (reference BTreeMap rows / interned slot rows) ==");
    let mut json = String::from(
        "{\n  \"benchmark\": \"row_representation\",\n  \"units\": \"median ns per operation\",\n  \"cases\": [\n",
    );
    for (i, c) in cases.iter().enumerate() {
        println!(
            "{:<24} reference {:>12}  interned {:>12}  speedup {:>6.2}x",
            c.name,
            format_ns(c.reference_ns),
            format_ns(c.interned_ns),
            c.speedup()
        );
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"reference_btreemap_ns\": {:.1}, \"interned_slots_ns\": {:.1}, \"speedup\": {:.3}}}{}\n",
            c.name,
            c.reference_ns,
            c.interned_ns,
            c.speedup(),
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_rows.json", &json).expect("write BENCH_rows.json");
    println!("\nwrote BENCH_rows.json");

    overlap_section();
}

/// Serialized vs overlapped schedule: simulated `execution_time` /
/// `first_answer` per workload query under every network profile. The
/// simulated clock is deterministic, so each cell is a single run, and the
/// answer sets are asserted byte-identical before timings are reported.
/// Emits `BENCH_overlap.json`.
fn overlap_section() {
    let lake_cfg = LakeConfig { scale: 0.2, ..Default::default() };
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let sorted = |rows: &[Row]| {
        let mut v: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
        v.sort();
        v
    };

    println!("\n== overlapped source I/O (simulated ms, serialized vs overlapped) ==");
    let mut json = String::from(
        "{\n  \"benchmark\": \"overlapped_source_io\",\n  \"units\": \"simulated ms\",\n  \"cases\": [\n",
    );
    let mut first_case = true;
    for q in workload::experiment_queries() {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        let ast = fedlake_sparql::parser::parse_query(&q.sparql).unwrap();
        for network in NetworkProfile::ALL {
            let ser_cfg = PlanConfig::new(PlanMode::Unaware, network);
            let mut ovl_cfg = ser_cfg;
            ovl_cfg.overlap = true;
            let ser_engine = FederatedEngine::new(lake.clone(), ser_cfg);
            let planned = ser_engine.plan(&ast).unwrap();
            let ser = ser_engine.execute_planned(&planned).unwrap();
            let ovl = FederatedEngine::new(lake.clone(), ovl_cfg)
                .execute_planned(&planned)
                .unwrap();
            assert_eq!(
                sorted(&ser.rows),
                sorted(&ovl.rows),
                "{}/{}: schedules must agree on answers",
                q.id,
                network.name
            );
            let services = planned.plan.service_count();
            if services > 1 && network.delay.mean_ms() > 0.0 {
                assert!(
                    ovl.stats.execution_time < ser.stats.execution_time,
                    "{}/{}: {services} services must overlap",
                    q.id,
                    network.name
                );
            }
            let (st, ot) = (ms(ser.stats.execution_time), ms(ovl.stats.execution_time));
            let (sf, of) = (
                ser.stats.first_answer.map(ms).unwrap_or(0.0),
                ovl.stats.first_answer.map(ms).unwrap_or(0.0),
            );
            println!(
                "{:<4} {:<8} services {:>2}  exec {:>9.3} -> {:>9.3}  first {:>9.3} -> {:>9.3}  speedup {:>5.2}x",
                q.id, network.name, services, st, ot, sf, of,
                if ot > 0.0 { st / ot } else { 1.0 }
            );
            if !first_case {
                json.push_str(",\n");
            }
            first_case = false;
            json.push_str(&format!(
                "    {{\"query\": \"{}\", \"network\": \"{}\", \"services\": {}, \
                 \"serialized_ms\": {:.6}, \"overlapped_ms\": {:.6}, \
                 \"serialized_first_ms\": {:.6}, \"overlapped_first_ms\": {:.6}, \
                 \"speedup\": {:.3}}}",
                q.id,
                network.name,
                services,
                st,
                ot,
                sf,
                of,
                if ot > 0.0 { st / ot } else { 1.0 }
            ));
        }
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_overlap.json", &json).expect("write BENCH_overlap.json");
    println!("\nwrote BENCH_overlap.json");
}
