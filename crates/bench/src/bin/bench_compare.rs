//! Compares the interned slot-row representation against the reference
//! term-row (`BTreeMap<Var, Term>`) representation on the operations the
//! row currency dominates: symmetric-hash-join probing, DISTINCT
//! insertion, projection, and the end-to-end Q2 federated execution.
//!
//! Emits `BENCH_rows.json` (in the current directory) with median ns/op
//! per case and the reference/interned speedup factor. Before measuring,
//! it asserts both representations produce identical answers on the
//! synthetic inputs and on Q2. Follow-up sections emit
//! `BENCH_overlap.json` (serialized vs overlapped schedule),
//! `BENCH_cost.json` (heuristic vs cost-based planning),
//! `BENCH_batch.json` (per-row vs vectorized driver, with a batch-size
//! sweep), `BENCH_obs.json` (tracing overhead) and `BENCH_serve.json`
//! (concurrent serving: simulated throughput, p50/p95/p99 latency and
//! Jain fairness at 1/8/32 clients, asserted bit-identical across two
//! reruns with every served answer byte-equal to its solo execution).

use fedlake_bench::harness::{format_ns, Bench, Measurement};
use fedlake_core::operators::{
    DistinctOp, ExecCtx, ProjectOp, RowsOp, SymHashJoin,
};
use fedlake_core::reference::{
    DistinctRefOp, ProjectRefOp, RefOp, RowsRefOp, SymHashJoinRef,
};
use fedlake_core::{FederatedEngine, PlanConfig, PlanMode};
use fedlake_datagen::{build_lake_with, workload, LakeConfig};
use fedlake_netsim::clock::shared_virtual;
use fedlake_netsim::{CostModel, NetworkProfile};
use fedlake_rdf::{SharedInterner, Term};
use fedlake_sparql::binding::{encode_row, Row, RowSchema, SlotRow, Var};
use std::sync::Arc;

const N_ROWS: usize = 2_000;
const N_KEYS: usize = 400;

struct Fixture {
    schema: Arc<RowSchema>,
    interner: SharedInterner,
    left_rows: Vec<Row>,
    right_rows: Vec<Row>,
    left_slots: Vec<SlotRow>,
    right_slots: Vec<SlotRow>,
}

fn fixture() -> Fixture {
    let schema = Arc::new(RowSchema::new(
        ["j", "a", "b"].into_iter().map(Var::new),
    ));
    let interner = SharedInterner::new();
    let mk = |side: &str, i: usize, payload_var: &str| {
        Row::new()
            .with("j", Term::iri(format!("http://x/key{}", i % N_KEYS)))
            .with(payload_var, Term::iri(format!("http://x/{side}{i}")))
    };
    let left_rows: Vec<Row> = (0..N_ROWS).map(|i| mk("l", i, "a")).collect();
    let right_rows: Vec<Row> = (0..N_ROWS).map(|i| mk("r", i, "b")).collect();
    let enc = |rows: &[Row]| -> Vec<SlotRow> {
        let mut dict = interner.lock();
        rows.iter().map(|r| encode_row(r, &schema, &mut dict)).collect()
    };
    let left_slots = enc(&left_rows);
    let right_slots = enc(&right_rows);
    Fixture { schema, interner, left_rows, right_rows, left_slots, right_slots }
}

fn ctx(f: &Fixture) -> ExecCtx {
    ExecCtx::new(
        shared_virtual(),
        CostModel::default(),
        Arc::clone(&f.schema),
        f.interner.clone(),
    )
}

fn join_slots(f: &Fixture) -> usize {
    let mut c = ctx(f);
    let mut j = SymHashJoin::new(
        Box::new(RowsOp::new(f.left_slots.clone())),
        Box::new(RowsOp::new(f.right_slots.clone())),
        vec![f.schema.slot(&Var::new("j")).unwrap()],
    );
    let mut n = 0;
    while let Some(r) = fedlake_core::operators::FedOp::next(&mut j, &mut c).unwrap() {
        std::hint::black_box(r);
        n += 1;
    }
    n
}

fn join_ref(f: &Fixture) -> usize {
    let mut c = ctx(f);
    let mut j = SymHashJoinRef::new(
        Box::new(RowsRefOp::new(f.left_rows.clone())),
        Box::new(RowsRefOp::new(f.right_rows.clone())),
        vec![Var::new("j")],
    );
    let mut n = 0;
    while let Some(r) = j.next(&mut c).unwrap() {
        std::hint::black_box(r);
        n += 1;
    }
    n
}

fn distinct_slots(f: &Fixture) -> usize {
    let mut c = ctx(f);
    let mut d = DistinctOp::new(Box::new(RowsOp::new(f.left_slots.clone())));
    let mut n = 0;
    while let Some(r) = fedlake_core::operators::FedOp::next(&mut d, &mut c).unwrap() {
        std::hint::black_box(r);
        n += 1;
    }
    n
}

fn distinct_ref(f: &Fixture) -> usize {
    let mut c = ctx(f);
    let mut d = DistinctRefOp::new(Box::new(RowsRefOp::new(f.left_rows.clone())));
    let mut n = 0;
    while let Some(r) = d.next(&mut c).unwrap() {
        std::hint::black_box(r);
        n += 1;
    }
    n
}

fn project_slots(f: &Fixture) -> usize {
    let mut c = ctx(f);
    let keep = f.schema.slots_of(&[Var::new("j")]);
    let mut p = ProjectOp::new(Box::new(RowsOp::new(f.left_slots.clone())), keep);
    let mut n = 0;
    while let Some(r) = fedlake_core::operators::FedOp::next(&mut p, &mut c).unwrap() {
        std::hint::black_box(r);
        n += 1;
    }
    n
}

fn project_ref(f: &Fixture) -> usize {
    let mut c = ctx(f);
    let mut p =
        ProjectRefOp::new(Box::new(RowsRefOp::new(f.left_rows.clone())), vec![Var::new("j")]);
    let mut n = 0;
    while let Some(r) = p.next(&mut c).unwrap() {
        std::hint::black_box(r);
        n += 1;
    }
    n
}

struct Case {
    name: &'static str,
    reference_ns: f64,
    interned_ns: f64,
}

impl Case {
    fn speedup(&self) -> f64 {
        self.reference_ns / self.interned_ns
    }
}

fn per_op(m: &Measurement, ops: usize) -> f64 {
    m.median_ns / ops as f64
}

fn main() {
    let f = fixture();

    // Representation equivalence on the synthetic inputs.
    assert_eq!(join_slots(&f), join_ref(&f), "join answers diverge");
    assert_eq!(distinct_slots(&f), distinct_ref(&f), "distinct answers diverge");
    assert_eq!(project_slots(&f), project_ref(&f), "project answers diverge");

    // End-to-end Q2: plan once, execute through both engines. Unaware mode
    // keeps the join in the engine (AWARE merges it into one SQL query, so
    // the row representation would barely matter).
    let q2 = workload::q2();
    let lake = build_lake_with(&LakeConfig { scale: 0.3, ..Default::default() }, q2.datasets);
    let engine = FederatedEngine::new(
        lake,
        PlanConfig::new(PlanMode::Unaware, NetworkProfile::NO_DELAY),
    );
    let planned = engine
        .plan(&fedlake_sparql::parser::parse_query(&q2.sparql).unwrap())
        .unwrap();
    {
        let a = engine.execute_planned(&planned).unwrap();
        let b = engine.execute_planned_reference(&planned).unwrap();
        let sorted = |rows: &[Row]| {
            let mut v: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(sorted(&a.rows), sorted(&b.rows), "Q2 answers diverge");
    }

    let probes = 2 * N_ROWS; // both join inputs are probed once per row

    let mut b = Bench::new("rows_interned");
    b.bench("join_probe", || join_slots(&f));
    b.bench("distinct_insert", || distinct_slots(&f));
    b.bench("project", || project_slots(&f));
    b.bench("q2_end_to_end", || engine.execute_planned(&planned).unwrap());
    let interned = b.finish();

    let mut b = Bench::new("rows_reference");
    b.bench("join_probe", || join_ref(&f));
    b.bench("distinct_insert", || distinct_ref(&f));
    b.bench("project", || project_ref(&f));
    b.bench("q2_end_to_end", || engine.execute_planned_reference(&planned).unwrap());
    let reference = b.finish();

    let ops = [probes, N_ROWS, N_ROWS, 1];
    let cases: Vec<Case> = ["join_probe", "distinct_insert", "project", "q2_end_to_end"]
        .iter()
        .enumerate()
        .map(|(i, name)| Case {
            name,
            reference_ns: per_op(&reference[i], ops[i]),
            interned_ns: per_op(&interned[i], ops[i]),
        })
        .collect();

    println!("\n== speedup (reference BTreeMap rows / interned slot rows) ==");
    let mut json = String::from(
        "{\n  \"benchmark\": \"row_representation\",\n  \"units\": \"median ns per operation\",\n  \"cases\": [\n",
    );
    for (i, c) in cases.iter().enumerate() {
        println!(
            "{:<24} reference {:>12}  interned {:>12}  speedup {:>6.2}x",
            c.name,
            format_ns(c.reference_ns),
            format_ns(c.interned_ns),
            c.speedup()
        );
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"reference_btreemap_ns\": {:.1}, \"interned_slots_ns\": {:.1}, \"speedup\": {:.3}}}{}\n",
            c.name,
            c.reference_ns,
            c.interned_ns,
            c.speedup(),
            if i + 1 < cases.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write("BENCH_rows.json", &json).expect("write BENCH_rows.json");
    println!("\nwrote BENCH_rows.json");

    overlap_section();
    cost_section();
    batch_section();
    obs_section();
    serve_section();
    plancache_section();
}

/// Heuristic vs cost-based planning: simulated `execution_time` and
/// intermediate-result traffic per workload query under the delayed
/// profiles. Both plans run to completion and their sorted answer sets
/// are asserted byte-identical before timings are reported; on the
/// cross-source join queries (Q3–Q5) under the slow profiles the
/// cost-based plan must be strictly faster. Emits `BENCH_cost.json`.
fn cost_section() {
    let lake_cfg = LakeConfig { scale: 0.2, ..Default::default() };
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let sorted = |rows: &[Row]| {
        let mut v: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
        v.sort();
        v
    };

    println!("\n== cost-based planning (simulated ms, heuristic vs cost-based) ==");
    let mut json = String::from(
        "{\n  \"benchmark\": \"cost_based_planning\",\n  \"units\": \"simulated ms\",\n  \"cases\": [\n",
    );
    let mut first_case = true;
    let mut cost_wins = 0usize;
    for q in workload::experiment_queries() {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        let ast = fedlake_sparql::parser::parse_query(&q.sparql).unwrap();
        for network in [
            NetworkProfile::GAMMA1,
            NetworkProfile::GAMMA2,
            NetworkProfile::GAMMA3,
        ] {
            let mut heur_cfg = PlanConfig::new(PlanMode::AWARE, network);
            heur_cfg.cost_based = false;
            let mut cost_cfg = heur_cfg;
            cost_cfg.cost_based = true;
            let heur_engine = FederatedEngine::new(lake.clone(), heur_cfg);
            let cost_engine = FederatedEngine::new(lake.clone(), cost_cfg);
            let heur_planned = heur_engine.plan(&ast).unwrap();
            let cost_planned = cost_engine.plan(&ast).unwrap();
            let heur = heur_engine.execute_planned(&heur_planned).unwrap();
            let cost = cost_engine.execute_planned(&cost_planned).unwrap();
            assert_eq!(
                sorted(&heur.rows),
                sorted(&cost.rows),
                "{}/{}: planners must agree on answers",
                q.id,
                network.name
            );
            let (ht, ct) = (ms(heur.stats.execution_time), ms(cost.stats.execution_time));
            if ct < ht && network.delay.mean_ms() >= 1.0 {
                cost_wins += 1;
            }
            let report = &cost_planned.report;
            println!(
                "{:<4} {:<8} {:<11} exec {:>9.3} -> {:>9.3}  rows {:>6} -> {:>6}  \
                 costed {:>2}  binds {}  speedup {:>5.2}x",
                q.id,
                network.name,
                report.strategy.label(),
                ht,
                ct,
                heur.stats.rows_transferred,
                cost.stats.rows_transferred,
                report.plans_costed,
                report.bind_joins,
                if ct > 0.0 { ht / ct } else { 1.0 }
            );
            if !first_case {
                json.push_str(",\n");
            }
            first_case = false;
            json.push_str(&format!(
                "    {{\"query\": \"{}\", \"network\": \"{}\", \"strategy\": \"{}\", \
                 \"heuristic_ms\": {:.6}, \"cost_ms\": {:.6}, \
                 \"heuristic_rows_transferred\": {}, \"cost_rows_transferred\": {}, \
                 \"plans_costed\": {}, \"bind_joins\": {}, \"speedup\": {:.3}}}",
                q.id,
                network.name,
                report.strategy.label(),
                ht,
                ct,
                heur.stats.rows_transferred,
                cost.stats.rows_transferred,
                report.plans_costed,
                report.bind_joins,
                if ct > 0.0 { ht / ct } else { 1.0 }
            ));
        }
    }
    assert!(
        cost_wins >= 2,
        "cost-based planning must beat the heuristics on at least two \
         delayed-network cells (got {cost_wins})"
    );
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_cost.json", &json).expect("write BENCH_cost.json");
    println!("\nwrote BENCH_cost.json");
}

/// Vectorized batch executor vs the per-row interned executor: host
/// wall-clock of the full `execute_planned` on Q2–Q5, Unaware mode (the
/// joins stay in the engine) under the default delayed profile (Gamma1)
/// with 1024-row message chunks, so morsel width — not simulated link
/// chatter — is what the two drivers disagree on. Answers are asserted
/// byte-identical per cell before timing, and a batch-size sweep
/// (64/256/1024/4096) is recorded per query. Emits `BENCH_batch.json`.
fn batch_section() {
    const SIZES: [usize; 4] = [64, 256, 1024, 4096];
    const DEFAULT_SIZE: usize = 1024;
    let lake_cfg = LakeConfig { scale: 0.3, ..Default::default() };
    let sorted = |rows: &[Row]| {
        let mut v: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
        v.sort();
        v
    };

    println!("\n== vectorized batches (host wall-clock, per-row vs batched driver) ==");
    let mut json = String::from(
        "{\n  \"benchmark\": \"vectorized_batches\",\n  \"units\": \"median ns per end-to-end execution\",\n  \"network\": \"Gamma1\",\n  \"mode\": \"unaware\",\n  \"rows_per_message\": 1024,\n  \"default_batch_size\": 1024,\n  \"cases\": [\n",
    );
    let mut first = true;
    for q in workload::experiment_queries() {
        if !matches!(q.id, "Q2" | "Q3" | "Q4" | "Q5") {
            continue;
        }
        let lake = build_lake_with(&lake_cfg, q.datasets);
        let ast = fedlake_sparql::parser::parse_query(&q.sparql).unwrap();
        let mut row_cfg = PlanConfig::new(PlanMode::Unaware, NetworkProfile::GAMMA1);
        row_cfg.rows_per_message = 1024;
        row_cfg.batch = false;
        let row_engine = FederatedEngine::new(lake.clone(), row_cfg);
        let planned = row_engine.plan(&ast).unwrap();
        let row_answers = sorted(&row_engine.execute_planned(&planned).unwrap().rows);

        let batch_engine = |size: usize| {
            let mut cfg = row_cfg;
            cfg.batch = true;
            cfg.batch_size = size;
            FederatedEngine::new(lake.clone(), cfg)
        };
        for &size in &SIZES {
            let r = batch_engine(size).execute_planned(&planned).unwrap();
            assert_eq!(
                sorted(&r.rows),
                row_answers,
                "{}: batch({size}) answers diverge from per-row driver",
                q.id
            );
        }

        let mut b = Bench::new(format!("batch/{}", q.id));
        b.bench("per_row", || row_engine.execute_planned(&planned).unwrap());
        for &size in &SIZES {
            let engine = batch_engine(size);
            b.bench(format!("batch_{size}"), || {
                engine.execute_planned(&planned).unwrap()
            });
        }
        let m = b.finish();
        let row_ns = m[0].median_ns;
        let by_size: Vec<f64> = m[1..].iter().map(|x| x.median_ns).collect();
        let default_ns = by_size[SIZES.iter().position(|&s| s == DEFAULT_SIZE).unwrap()];
        println!(
            "{:<4} per-row {:>12}  batch(1024) {:>12}  speedup {:>5.2}x",
            q.id,
            format_ns(row_ns),
            format_ns(default_ns),
            row_ns / default_ns
        );
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"per_row_ns\": {:.1}, \"batch_ns\": {{{}}}, \"speedup\": {:.3}}}",
            q.id,
            row_ns,
            SIZES
                .iter()
                .zip(&by_size)
                .map(|(s, ns)| format!("\"{s}\": {ns:.1}"))
                .collect::<Vec<_>>()
                .join(", "),
            row_ns / default_ns
        ));
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_batch.json", &json).expect("write BENCH_batch.json");
    println!("\nwrote BENCH_batch.json");
}

/// Observability overhead. With tracing off the sink is a `None` and every
/// hook is a single branch, so the disabled path must cost nothing
/// measurable. The pre-instrumentation binary no longer exists to compare
/// against, so the honest in-binary check is two interleaved series of the
/// same disabled-sink execution per query: their floors (minimum samples)
/// must agree within 2% — any real per-hook cost would be deterministic
/// and shift the floor, while scheduler noise only inflates samples. The
/// enabled-recorder overhead is reported alongside as information.
///
/// A serve-scale section applies the same contract to the fleet flight
/// recorder: an 8-client serve run with the recorder off is A/B-floored
/// within 2%, the recorder-on run is informational, and before timing,
/// the recorder-on and recorder-off runs are asserted byte-identical in
/// answers, report JSON and metrics — the passivity proof at fleet scale.
/// Emits `BENCH_obs.json`.
fn obs_section() {
    const MAX_DELTA: f64 = 0.02;
    let lake_cfg = LakeConfig { scale: 0.1, ..Default::default() };

    let mut json = String::from(
        "{\n  \"benchmark\": \"tracing_overhead\",\n  \"units\": \"floor ns per end-to-end execution\",\n  \"max_disabled_ab_delta\": 0.02,\n  \"cases\": [\n",
    );
    let mut first = true;
    println!("\n== tracing overhead (disabled A/B must agree within 2%; enabled is informational) ==");
    for q in workload::experiment_queries() {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        let ast = fedlake_sparql::parser::parse_query(&q.sparql).unwrap();
        let off_cfg = PlanConfig::new(PlanMode::AWARE, NetworkProfile::NO_DELAY);
        let mut on_cfg = off_cfg;
        on_cfg.tracing = true;
        let off_engine = FederatedEngine::new(lake.clone(), off_cfg);
        let planned = off_engine.plan(&ast).unwrap();
        let on_engine = FederatedEngine::new(lake.clone(), on_cfg);

        // The 2% bound needs samples interleaved round-robin (A, B,
        // enabled, A, B, …): sequential series pick up clock-frequency and
        // cache drift that dwarfs the bound, while interleaving exposes
        // both disabled series to the same drift. The harness measures one
        // case at a time, so this section samples by hand.
        let sample = |f: &mut dyn FnMut(), iters: u64| -> f64 {
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                f();
            }
            t0.elapsed().as_nanos() as f64 / iters as f64
        };
        let mut run_off = || std::mem::drop(off_engine.execute_planned(&planned).unwrap());
        let mut run_on = || std::mem::drop(on_engine.execute_planned(&planned).unwrap());
        let once = sample(&mut run_off, 1).max(1.0);
        let iters = ((50.0 * 1e6 / once) as u64).clamp(1, 100_000);
        sample(&mut run_on, iters.min(20)); // warm both paths
        // The two disabled series strictly alternate with nothing else in
        // between: both are the same code, so any drift (frequency,
        // allocator, scheduler) lands on both symmetrically. Each series
        // is summarized by its *floor* (minimum sample): CPU contention
        // only ever inflates a sample, so the floor tracks the uncontended
        // cost and a real per-hook cost would still shift it. A round of
        // sustained contention can nonetheless spoil a whole attempt, so
        // the measurement retries (fresh sample sets) before declaring a
        // divergence real. The enabled series is measured afterwards —
        // interleaving it would tax whichever series runs next with the
        // allocator state its recording leaves behind.
        let floor = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let mut result = None;
        for attempt in 1..=5 {
            let (mut sa, mut sb) = (Vec::new(), Vec::new());
            for round in 0..51 {
                if round % 2 == 0 {
                    sa.push(sample(&mut run_off, iters));
                    sb.push(sample(&mut run_off, iters));
                } else {
                    sb.push(sample(&mut run_off, iters));
                    sa.push(sample(&mut run_off, iters));
                }
            }
            let (a, bb) = (floor(&sa), floor(&sb));
            let delta = (a - bb).abs() / a.min(bb);
            if delta < MAX_DELTA {
                result = Some((a, bb, delta));
                break;
            }
            eprintln!(
                "{}: attempt {attempt}: disabled-sink floors diverge by {:.2}% ({} vs {}), resampling",
                q.id,
                delta * 100.0,
                format_ns(a),
                format_ns(bb)
            );
        }
        let (a, bb, delta) = result.unwrap_or_else(|| {
            panic!(
                "{}: disabled-sink A/B floors still diverge by more than {:.0}% after 5 attempts",
                q.id,
                MAX_DELTA * 100.0
            )
        });
        let mut se = Vec::new();
        for _ in 0..9 {
            se.push(sample(&mut run_on, iters));
        }
        let on = floor(&se);
        println!(
            "{:<4} disabled {:>12} / {:>12} (delta {:>5.2}%)  enabled {:>12} ({:+.1}%)",
            q.id,
            format_ns(a),
            format_ns(bb),
            delta * 100.0,
            format_ns(on),
            (on / a.min(bb) - 1.0) * 100.0
        );
        if !first {
            json.push_str(",\n");
        }
        first = false;
        json.push_str(&format!(
            "    {{\"query\": \"{}\", \"disabled_a_ns\": {:.1}, \"disabled_b_ns\": {:.1}, \
             \"disabled_ab_delta\": {:.5}, \"enabled_ns\": {:.1}, \"enabled_overhead\": {:.5}}}",
            q.id,
            a,
            bb,
            delta,
            on,
            on / a.min(bb) - 1.0
        ));
    }
    json.push_str("\n  ],\n");
    json.push_str(&serve_obs_section());
    json.push('}');
    json.push('\n');
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("\nwrote BENCH_obs.json");
}

/// The serve-scale half of the observability contract: recorder
/// passivity (byte-identity on vs off) asserted first, then the
/// disabled-path floor A/B within 2% and the recorder-on floor as
/// information. Returns the `"serve": {…}` JSON fragment of
/// `BENCH_obs.json`.
fn serve_obs_section() -> String {
    use fedlake_serve::{run, sorted_csv, ServeSpec};
    use std::time::Duration;
    const MAX_DELTA: f64 = 0.02;

    let lake_cfg = LakeConfig { scale: 0.05, ..Default::default() };
    let lake = build_lake_with(&lake_cfg, &ServeSpec::default().mix.datasets());
    let spec = ServeSpec {
        clients: 8,
        queries_per_client: 2,
        seed: 7,
        mean_interarrival: Duration::from_micros(500),
        max_in_flight: 8,
        ..Default::default()
    };
    let config = |recorder: bool| {
        let mut c = PlanConfig::new(PlanMode::AWARE, NetworkProfile::GAMMA1);
        c.seed = 1;
        c.recorder = recorder;
        c
    };

    // Passivity: the recorder must change nothing observable.
    let off = run(&FederatedEngine::new(lake.clone(), config(false)), &spec).expect("serve off");
    let on = run(&FederatedEngine::new(lake.clone(), config(true)), &spec).expect("serve on");
    assert_eq!(
        off.report.to_json(),
        on.report.to_json(),
        "recorder on/off must produce byte-identical serve reports"
    );
    assert_eq!(
        off.outcome.metrics.render(),
        on.outcome.metrics.render(),
        "recorder on/off must produce byte-identical serve metrics"
    );
    for (x, y) in off.outcome.outcomes.iter().zip(&on.outcome.outcomes) {
        assert_eq!(
            sorted_csv(&x.vars, &x.rows),
            sorted_csv(&y.vars, &y.rows),
            "{}: recorder on/off answers diverge",
            x.label
        );
    }
    assert!(off.outcome.recording.is_none() && on.outcome.recording.is_some());
    let events = on.outcome.recording.as_ref().map_or(0, |r| r.events.len());

    // Same floor-A/B methodology as the per-query section, over the whole
    // serve run (jobs are prebuilt once so only `serve` itself is timed).
    let off_engine = FederatedEngine::new(lake.clone(), config(false));
    let on_engine = FederatedEngine::new(lake.clone(), config(true));
    let (jobs_off, _) = fedlake_serve::build_jobs(&off_engine, &spec).expect("jobs");
    let serve_cfg = spec.serve_config();
    let sample = |engine: &FederatedEngine, iters: u64| -> f64 {
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            std::hint::black_box(engine.serve(&jobs_off, &serve_cfg).expect("serve"));
        }
        t0.elapsed().as_nanos() as f64 / iters as f64
    };
    let once = sample(&off_engine, 1).max(1.0);
    let iters = ((50.0 * 1e6 / once) as u64).clamp(1, 1_000);
    sample(&on_engine, iters.min(5)); // warm both paths
    let floor = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let mut result = None;
    for attempt in 1..=5 {
        let (mut sa, mut sb) = (Vec::new(), Vec::new());
        for round in 0..21 {
            if round % 2 == 0 {
                sa.push(sample(&off_engine, iters));
                sb.push(sample(&off_engine, iters));
            } else {
                sb.push(sample(&off_engine, iters));
                sa.push(sample(&off_engine, iters));
            }
        }
        let (a, bb) = (floor(&sa), floor(&sb));
        let delta = (a - bb).abs() / a.min(bb);
        if delta < MAX_DELTA {
            result = Some((a, bb, delta));
            break;
        }
        eprintln!(
            "serve: attempt {attempt}: disabled-recorder floors diverge by {:.2}% ({} vs {}), resampling",
            delta * 100.0,
            format_ns(a),
            format_ns(bb)
        );
    }
    let (a, bb, delta) = result.unwrap_or_else(|| {
        panic!(
            "serve: disabled-recorder A/B floors still diverge by more than {:.0}% after 5 attempts",
            MAX_DELTA * 100.0
        )
    });
    let mut se = Vec::new();
    for _ in 0..9 {
        se.push(sample(&on_engine, iters));
    }
    let on_ns = floor(&se);
    println!(
        "serve disabled {:>12} / {:>12} (delta {:>5.2}%)  recorder {:>12} ({:+.1}%)  {events} events",
        format_ns(a),
        format_ns(bb),
        delta * 100.0,
        format_ns(on_ns),
        (on_ns / a.min(bb) - 1.0) * 100.0
    );
    format!(
        "  \"serve\": {{\"clients\": {}, \"jobs\": {}, \"recorded_events\": {events}, \
         \"disabled_a_ns\": {:.1}, \"disabled_b_ns\": {:.1}, \"disabled_ab_delta\": {:.5}, \
         \"recorder_ns\": {:.1}, \"recorder_overhead\": {:.5}}}\n",
        spec.clients,
        spec.clients * spec.queries_per_client,
        a,
        bb,
        delta,
        on_ns,
        on_ns / a.min(bb) - 1.0
    )
}

/// Serialized vs overlapped schedule: simulated `execution_time` /
/// `first_answer` per workload query under every network profile. The
/// simulated clock is deterministic, so each cell is a single run, and the
/// answer sets are asserted byte-identical before timings are reported.
/// Emits `BENCH_overlap.json`.
fn overlap_section() {
    let lake_cfg = LakeConfig { scale: 0.2, ..Default::default() };
    let ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
    let sorted = |rows: &[Row]| {
        let mut v: Vec<String> = rows.iter().map(|r| r.to_string()).collect();
        v.sort();
        v
    };

    println!("\n== overlapped source I/O (simulated ms, serialized vs overlapped) ==");
    let mut json = String::from(
        "{\n  \"benchmark\": \"overlapped_source_io\",\n  \"units\": \"simulated ms\",\n  \"cases\": [\n",
    );
    let mut first_case = true;
    for q in workload::experiment_queries() {
        let lake = build_lake_with(&lake_cfg, q.datasets);
        let ast = fedlake_sparql::parser::parse_query(&q.sparql).unwrap();
        for network in NetworkProfile::ALL {
            let ser_cfg = PlanConfig::new(PlanMode::Unaware, network);
            let mut ovl_cfg = ser_cfg;
            ovl_cfg.overlap = true;
            let ser_engine = FederatedEngine::new(lake.clone(), ser_cfg);
            let planned = ser_engine.plan(&ast).unwrap();
            let ser = ser_engine.execute_planned(&planned).unwrap();
            let ovl = FederatedEngine::new(lake.clone(), ovl_cfg)
                .execute_planned(&planned)
                .unwrap();
            assert_eq!(
                sorted(&ser.rows),
                sorted(&ovl.rows),
                "{}/{}: schedules must agree on answers",
                q.id,
                network.name
            );
            let services = planned.plan.service_count();
            if planned.plan.independent_service_count() > 1 && network.delay.mean_ms() > 0.0 {
                assert!(
                    ovl.stats.execution_time < ser.stats.execution_time,
                    "{}/{}: {services} services must overlap",
                    q.id,
                    network.name
                );
            }
            let (st, ot) = (ms(ser.stats.execution_time), ms(ovl.stats.execution_time));
            let (sf, of) = (
                ser.stats.first_answer.map(ms).unwrap_or(0.0),
                ovl.stats.first_answer.map(ms).unwrap_or(0.0),
            );
            println!(
                "{:<4} {:<8} services {:>2}  exec {:>9.3} -> {:>9.3}  first {:>9.3} -> {:>9.3}  speedup {:>5.2}x",
                q.id, network.name, services, st, ot, sf, of,
                if ot > 0.0 { st / ot } else { 1.0 }
            );
            if !first_case {
                json.push_str(",\n");
            }
            first_case = false;
            json.push_str(&format!(
                "    {{\"query\": \"{}\", \"network\": \"{}\", \"services\": {}, \
                 \"serialized_ms\": {:.6}, \"overlapped_ms\": {:.6}, \
                 \"serialized_first_ms\": {:.6}, \"overlapped_first_ms\": {:.6}, \
                 \"speedup\": {:.3}}}",
                q.id,
                network.name,
                services,
                st,
                ot,
                sf,
                of,
                if ot > 0.0 { st / ot } else { 1.0 }
            ));
        }
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_overlap.json", &json).expect("write BENCH_overlap.json");
    println!("\nwrote BENCH_overlap.json");
}

/// Concurrent serving: the default Q1–Q5 mix offered by 1, 8 and 32
/// seeded clients against one engine on one shared clock and link map.
/// Everything is simulated time, so each cell is one run; determinism is
/// enforced by re-running each client count and asserting the outcomes
/// are bit-identical, and correctness by byte-comparing every served
/// answer set against a solo execution of the same instantiated query.
/// Emits `BENCH_serve.json`.
fn serve_section() {
    use fedlake_serve::{run, solo_golden, sorted_csv, ServeSpec};
    use std::time::Duration;

    let lake_cfg = LakeConfig { scale: 0.05, ..Default::default() };
    let config = || {
        let mut c = PlanConfig::new(PlanMode::AWARE, NetworkProfile::GAMMA1);
        c.seed = 1;
        c
    };
    let lake = build_lake_with(&lake_cfg, &ServeSpec::default().mix.datasets());

    println!("\n== concurrent serving (simulated time, seeded workload mix) ==");
    let mut json = String::from(
        "{\n  \"benchmark\": \"serve\",\n  \"units\": \"simulated ns\",\n  \"reports\": [\n",
    );
    for (i, clients) in [1usize, 8, 32].into_iter().enumerate() {
        let spec = ServeSpec {
            clients,
            queries_per_client: 2,
            seed: 7,
            mean_interarrival: Duration::from_micros(500),
            max_in_flight: 8,
            ..Default::default()
        };
        let a = run(&FederatedEngine::new(lake.clone(), config()), &spec)
            .expect("serve run");
        let b = run(&FederatedEngine::new(lake.clone(), config()), &spec)
            .expect("serve rerun");
        assert_eq!(
            a.report, b.report,
            "{clients} clients: serve reruns must be bit-identical"
        );
        assert_eq!(a.outcome.metrics.render(), b.outcome.metrics.render());
        for ((inst, x), y) in a.instances.iter().zip(&a.outcome.outcomes).zip(&b.outcome.outcomes)
        {
            let served = sorted_csv(&x.vars, &x.rows);
            assert_eq!(
                served,
                sorted_csv(&y.vars, &y.rows),
                "{}: answers must be byte-identical across reruns",
                x.label
            );
            let golden = solo_golden(&lake, config(), &inst.sparql).expect("solo golden");
            assert_eq!(
                served,
                sorted_csv(&golden.vars, &golden.rows),
                "{}: served answers must byte-match the solo execution",
                x.label
            );
        }
        let r = &a.report;
        println!(
            "clients {:>2}  jobs {:>3}  qps {:>10.3}  p50 {:>9.3} ms  p95 {:>9.3} ms  p99 {:>9.3} ms  jain {:.3}",
            r.clients,
            r.jobs,
            r.qps_sim,
            r.p50_ns as f64 / 1e6,
            r.p95_ns as f64 / 1e6,
            r.p99_ns as f64 / 1e6,
            r.jain
        );
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!("    {}", r.to_json()));
    }
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json");
}

/// The normalized plan cache under repeat traffic: the 32-client serve
/// mix planned cold (cache off), cold-through-the-cache (first pass,
/// all misses) and warm (second pass, all hits). Correctness first —
/// every served answer set and the summary report must be byte-equal
/// with the cache on and off — then the planning wall-clock per job.
/// Planning here is real time, not simulated: it is engine-side work
/// the cache exists to elide. Emits `BENCH_plancache.json`.
fn plancache_section() {
    use fedlake_serve::{build_jobs, run, sorted_csv, ServeSpec};
    use std::time::Duration;

    let lake_cfg = LakeConfig { scale: 0.05, ..Default::default() };
    let config = |plan_cache: bool| {
        let mut c = PlanConfig::new(PlanMode::AWARE, NetworkProfile::GAMMA1);
        c.seed = 1;
        c.plan_cache = plan_cache;
        c
    };
    let spec = ServeSpec {
        clients: 32,
        queries_per_client: 2,
        seed: 7,
        mean_interarrival: Duration::from_micros(500),
        max_in_flight: 8,
        ..Default::default()
    };
    let lake = build_lake_with(&lake_cfg, &spec.mix.datasets());

    // Correctness: the cache must be invisible in every answer byte.
    let off = run(&FederatedEngine::new(lake.clone(), config(false)), &spec)
        .expect("serve run, cache off");
    let on_engine = FederatedEngine::new(lake.clone(), config(true));
    let on = run(&on_engine, &spec).expect("serve run, cache on");
    assert_eq!(off.report, on.report, "the cache must not change the rollup");
    for (x, y) in off.outcome.outcomes.iter().zip(&on.outcome.outcomes) {
        assert_eq!(x.label, y.label);
        assert_eq!(
            sorted_csv(&x.vars, &x.rows),
            sorted_csv(&y.vars, &y.rows),
            "{}: cached answers must byte-match uncached",
            x.label
        );
    }

    // Planning cost: ns per job, wall clock. The warm pass replans the
    // exact job list the first pass populated the cache with, so it must
    // hit on every lookup — that assertion is the deterministic part;
    // the timings are informative.
    let time_build = |engine: &FederatedEngine| {
        let started = std::time::Instant::now();
        let (jobs, _) = build_jobs(engine, &spec).expect("build jobs");
        (started.elapsed().as_nanos() as f64 / jobs.len() as f64, jobs)
    };
    let (cold_ns, cold_jobs) = time_build(&FederatedEngine::new(lake.clone(), config(false)));
    let warm_engine = FederatedEngine::new(lake, config(true));
    let (_, _) = time_build(&warm_engine);
    let (warm_ns, warm_jobs) = time_build(&warm_engine);
    assert!(
        warm_jobs.iter().all(|j| j.cached),
        "the warm pass must replay every plan"
    );
    let stats = warm_engine.plan_cache_stats();
    assert_eq!(stats.lookups, stats.hits + stats.misses, "{stats:?}");
    assert!(stats.hits as usize >= warm_jobs.len(), "{stats:?}");

    let jobs = cold_jobs.len();
    let hit_rate = stats.hits as f64 / stats.lookups as f64;
    let speedup = cold_ns / warm_ns;
    println!("\n== normalized plan cache (32-client mix, wall-clock planning) ==");
    println!(
        "jobs {jobs}  lookups {}  hits {}  misses {}  hit rate {:.3}",
        stats.lookups, stats.hits, stats.misses, hit_rate
    );
    println!(
        "planning per job: cold {:>10}  warm {:>10}  speedup {speedup:.2}x",
        format_ns(cold_ns),
        format_ns(warm_ns)
    );
    let json = format!(
        "{{\n  \"benchmark\": \"plan_cache\",\n  \"units\": \"wall-clock ns per planned job\",\n  \
         \"clients\": {},\n  \"jobs\": {jobs},\n  \"lookups\": {},\n  \"hits\": {},\n  \
         \"misses\": {},\n  \"evictions\": {},\n  \"invalidations\": {},\n  \
         \"hit_rate\": {hit_rate:.3},\n  \"cold_plan_ns_per_job\": {cold_ns:.1},\n  \
         \"cached_plan_ns_per_job\": {warm_ns:.1},\n  \"speedup\": {speedup:.3}\n}}\n",
        spec.clients, stats.lookups, stats.hits, stats.misses, stats.evictions,
        stats.invalidations,
    );
    std::fs::write("BENCH_plancache.json", &json).expect("write BENCH_plancache.json");
    println!("\nwrote BENCH_plancache.json");
}
