//! A minimal, dependency-free micro-benchmark harness.
//!
//! Each measurement calibrates an iteration count targeting a fixed
//! per-sample duration, collects an odd number of samples and reports the
//! median ns/op — robust against scheduler noise without requiring an
//! external statistics crate. Benches register with [`Bench::bench`] and
//! print a fixed-width table via [`Bench::finish`]; the measured results
//! are also returned so callers (e.g. `bench_compare`) can serialize
//! them.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured benchmark case.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Fully qualified case name (`group/name`).
    pub name: String,
    /// Median time per iteration in nanoseconds.
    pub median_ns: f64,
    /// Iterations per sample used after calibration.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

/// A named group of benchmark cases.
pub struct Bench {
    group: String,
    target_sample: Duration,
    samples: usize,
    results: Vec<Measurement>,
}

impl Bench {
    /// Creates a benchmark group with default settings (15 samples of
    /// ~5 ms each).
    pub fn new(group: impl Into<String>) -> Self {
        Bench {
            group: group.into(),
            target_sample: Duration::from_millis(5),
            samples: 15,
            results: Vec::new(),
        }
    }

    /// Overrides the per-sample time budget.
    pub fn sample_time(mut self, d: Duration) -> Self {
        self.target_sample = d;
        self
    }

    /// Overrides the sample count (rounded up to odd for a true median).
    pub fn samples(mut self, n: usize) -> Self {
        self.samples = if n.is_multiple_of(2) { n + 1 } else { n };
        self
    }

    /// Measures `f`, recording the median ns per iteration.
    pub fn bench<R>(&mut self, name: impl AsRef<str>, mut f: impl FnMut() -> R) {
        // Warm up and calibrate: how many iterations fill one sample?
        let t0 = Instant::now();
        black_box(f());
        let mut once = t0.elapsed();
        if once.is_zero() {
            once = Duration::from_nanos(1);
        }
        let iters = (self.target_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        // A second warm-up round at the calibrated count settles caches.
        for _ in 0..iters.min(100) {
            black_box(f());
        }
        let mut per_iter: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let median_ns = per_iter[per_iter.len() / 2];
        self.results.push(Measurement {
            name: format!("{}/{}", self.group, name.as_ref()),
            median_ns,
            iters_per_sample: iters,
            samples: self.samples,
        });
    }

    /// Prints the group's table and returns the measurements.
    pub fn finish(self) -> Vec<Measurement> {
        println!("\n== {} ==", self.group);
        println!("{:<56} {:>14} {:>10}", "case", "median", "iters");
        for m in &self.results {
            println!(
                "{:<56} {:>14} {:>10}",
                m.name,
                format_ns(m.median_ns),
                m.iters_per_sample
            );
        }
        self.results
    }
}

/// Formats nanoseconds human-readably (ns/µs/ms/s).
pub fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something_positive() {
        let mut b = Bench::new("t").sample_time(Duration::from_micros(200)).samples(3);
        b.bench("add", || std::hint::black_box(2u64) + 2);
        let r = b.finish();
        assert_eq!(r.len(), 1);
        assert!(r[0].median_ns > 0.0);
        assert_eq!(r[0].samples, 3);
    }

    #[test]
    fn format_ranges() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(12_000_000_000.0).ends_with('s'));
    }
}
