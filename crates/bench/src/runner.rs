//! Shared experiment runner: lakes, configurations and single executions.

use fedlake_core::{
    FedResult, FederatedEngine, MergeTranslation, PlanConfig, PlanMode,
};
use fedlake_datagen::workload::WorkloadQuery;
use fedlake_datagen::{build_lake_with, LakeConfig};
use fedlake_netsim::NetworkProfile;
use std::collections::HashMap;
use std::time::Duration;

/// The lake/scale setup an experiment runs against.
#[derive(Debug, Clone)]
pub struct ExperimentSetup {
    /// Data generator configuration.
    pub lake: LakeConfig,
    /// Link RNG seed.
    pub run_seed: u64,
}

impl Default for ExperimentSetup {
    fn default() -> Self {
        ExperimentSetup { lake: LakeConfig::default(), run_seed: 7 }
    }
}

impl ExperimentSetup {
    /// A setup at the given generator scale.
    pub fn at_scale(scale: f64) -> Self {
        ExperimentSetup {
            lake: LakeConfig { scale, ..Default::default() },
            run_seed: 7,
        }
    }
}

/// One execution's reported numbers.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Query id.
    pub query: &'static str,
    /// Plan label.
    pub plan: String,
    /// Network name.
    pub network: &'static str,
    /// Simulated execution time.
    pub time: Duration,
    /// Simulated time of the first answer.
    pub first_answer: Option<Duration>,
    /// Number of answers.
    pub answers: u64,
    /// Rows transferred over the wrapper links.
    pub rows_transferred: u64,
    /// Messages over the links.
    pub messages: u64,
    /// SQL queries issued.
    pub sql_queries: u64,
    /// The full result (trace, explain, …).
    pub result: FedResult,
}

/// Builds the lake for a query and executes it under a full [`PlanConfig`]
/// (the general entry point; [`run_query`] covers the common case).
pub fn run_with(setup: &ExperimentSetup, q: &WorkloadQuery, mut cfg: PlanConfig) -> RunOutcome {
    let lake = build_lake_with(&setup.lake, q.datasets);
    cfg.seed = setup.run_seed;
    let engine = FederatedEngine::new(lake, cfg);
    let result = engine
        .execute_sparql(&q.sparql)
        .unwrap_or_else(|e| panic!("{} under {}: {e}", q.id, cfg.mode.label()));
    RunOutcome {
        query: q.id,
        plan: cfg.mode.label(),
        network: cfg.network.name,
        time: result.stats.execution_time,
        first_answer: result.stats.first_answer,
        answers: result.stats.answers,
        rows_transferred: result.stats.rows_transferred,
        messages: result.stats.messages,
        sql_queries: result.stats.sql_queries,
        result,
    }
}

/// Builds the (cached-per-process would be nicer, but generation is fast)
/// lake for a query and executes it under one configuration.
pub fn run_query(
    setup: &ExperimentSetup,
    q: &WorkloadQuery,
    mode: PlanMode,
    network: NetworkProfile,
    merge: MergeTranslation,
) -> RunOutcome {
    let lake = build_lake_with(&setup.lake, q.datasets);
    let mut cfg = PlanConfig::new(mode, network);
    cfg.merge_translation = merge;
    cfg.seed = setup.run_seed;
    let engine = FederatedEngine::new(lake, cfg);
    let result = engine
        .execute_sparql(&q.sparql)
        .unwrap_or_else(|e| panic!("{} under {}/{}: {e}", q.id, mode.label(), network.name));
    RunOutcome {
        query: q.id,
        plan: mode.label(),
        network: network.name,
        time: result.stats.execution_time,
        first_answer: result.stats.first_answer,
        answers: result.stats.answers,
        rows_transferred: result.stats.rows_transferred,
        messages: result.stats.messages,
        sql_queries: result.stats.sql_queries,
        result,
    }
}

/// Runs a full (query × mode × network) matrix; the paper's eight
/// configurations are `modes = [Unaware, AWARE]` × the four networks.
pub fn run_matrix(
    setup: &ExperimentSetup,
    queries: &[WorkloadQuery],
    modes: &[PlanMode],
    networks: &[NetworkProfile],
) -> Vec<RunOutcome> {
    let mut out = Vec::new();
    for q in queries {
        for &mode in modes {
            for &network in networks {
                out.push(run_query(setup, q, mode, network, MergeTranslation::Optimized));
            }
        }
    }
    out
}

/// Groups outcomes by query id, preserving order.
pub fn by_query<'a>(outcomes: &'a [RunOutcome]) -> Vec<(&'static str, Vec<&'a RunOutcome>)> {
    let mut order: Vec<&'static str> = Vec::new();
    let mut map: HashMap<&'static str, Vec<&'a RunOutcome>> = HashMap::new();
    for o in outcomes {
        if !order.contains(&o.query) {
            order.push(o.query);
        }
        map.entry(o.query).or_default().push(o);
    }
    order
        .into_iter()
        .map(|q| (q, map.remove(q).unwrap_or_default()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlake_datagen::workload;

    #[test]
    fn run_query_produces_outcome() {
        let setup = ExperimentSetup::at_scale(0.1);
        let q = workload::q1();
        let o = run_query(
            &setup,
            &q,
            PlanMode::Unaware,
            NetworkProfile::NO_DELAY,
            MergeTranslation::Optimized,
        );
        assert_eq!(o.query, "Q1");
        assert!(o.answers > 0);
        assert!(o.time > Duration::ZERO);
    }

    #[test]
    fn matrix_covers_all_cells() {
        let setup = ExperimentSetup::at_scale(0.05);
        let queries = vec![workload::q1()];
        let outcomes = run_matrix(
            &setup,
            &queries,
            &[PlanMode::Unaware, PlanMode::AWARE],
            &NetworkProfile::ALL,
        );
        assert_eq!(outcomes.len(), 8);
        let grouped = by_query(&outcomes);
        assert_eq!(grouped.len(), 1);
        assert_eq!(grouped[0].1.len(), 8);
    }
}
