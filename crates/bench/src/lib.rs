//! # fedlake-bench
//!
//! The benchmark harness regenerating the paper's evaluation artifacts:
//!
//! | ID | Paper artifact | Harness entry |
//! |----|----------------|---------------|
//! | F1 | Figure 1 (plan comparison)            | [`experiments::figure1`] |
//! | F2 | Figure 2 (Q3 answer traces)           | [`experiments::figure2`] |
//! | T1 | §3 8-configuration comparison         | [`experiments::table1`] |
//! | C1 | §3 Q2 merged-SQL ≈ halves claim       | [`experiments::q2_pushdown`] |
//! | C2 | §3 Q1/Q3 filter-placement study       | [`experiments::h2_study`] |
//! | A1 | heuristic ablations                   | [`experiments::ablation`] |
//! | A2 | §5: decomposition strategies          | [`experiments::decomposition_study`] |
//! | A3 | §5: RDB implementation variants       | [`experiments::rdb_variants`] |
//! | A4 | §5: 3NF vs denormalized tables        | [`experiments::normalization_study`] |
//! | A5 | message-granularity ablation          | [`experiments::batching_study`] |
//! | A6 | symmetric-hash vs bind join ablation  | [`experiments::join_strategy_study`] |
//!
//! The `experiments` binary drives these from the command line; the
//! benches in `benches/` (on the in-repo [`harness`]) measure the
//! implementation's wall-clock performance on the same workload, and the
//! `bench_compare` binary contrasts the interned slot-row representation
//! against the reference term-row representation.

pub mod experiments;
pub mod harness;
pub mod report;
pub mod runner;

pub use runner::{run_query, run_with, ExperimentSetup, RunOutcome};
