//! An indexed, in-memory triple store.
//!
//! [`Graph`] keeps three covering indexes (`SPO`, `POS`, `OSP`) as sorted
//! sets of id-triples, so any triple pattern with at least one bound
//! component is answered by a range scan over the most selective index.

use crate::dict::{Dictionary, TermId};
use crate::term::Term;
use crate::Triple;
use std::collections::BTreeSet;
use std::ops::Bound;

/// A triple pattern over interned ids; `None` components are wildcards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject constraint.
    pub s: Option<TermId>,
    /// Predicate constraint.
    pub p: Option<TermId>,
    /// Object constraint.
    pub o: Option<TermId>,
}

impl TriplePattern {
    /// A pattern matching every triple.
    pub fn any() -> Self {
        Self::default()
    }

    /// Builder: constrain the subject.
    pub fn with_s(mut self, s: TermId) -> Self {
        self.s = Some(s);
        self
    }

    /// Builder: constrain the predicate.
    pub fn with_p(mut self, p: TermId) -> Self {
        self.p = Some(p);
        self
    }

    /// Builder: constrain the object.
    pub fn with_o(mut self, o: TermId) -> Self {
        self.o = Some(o);
        self
    }

    /// True when `t` matches this pattern.
    pub fn matches(&self, t: &Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }
}

/// Which index a pattern lookup used; exposed for tests and EXPLAIN output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexChoice {
    /// Subject-predicate-object index.
    Spo,
    /// Predicate-object-subject index.
    Pos,
    /// Object-subject-predicate index.
    Osp,
    /// Full scan of the SPO index.
    FullScan,
}

/// An in-memory RDF graph with its own term dictionary.
#[derive(Debug, Default, Clone)]
pub struct Graph {
    dict: Dictionary,
    spo: BTreeSet<(u32, u32, u32)>,
    pos: BTreeSet<(u32, u32, u32)>,
    osp: BTreeSet<(u32, u32, u32)>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// The graph's term dictionary.
    pub fn dict(&self) -> &Dictionary {
        &self.dict
    }

    /// Interns a term in this graph's dictionary.
    pub fn intern(&mut self, term: Term) -> TermId {
        self.dict.intern(term)
    }

    /// Resolves a term id.
    pub fn term(&self, id: TermId) -> Option<&Term> {
        self.dict.term(id)
    }

    /// Looks up the id of a term without interning.
    pub fn id(&self, term: &Term) -> Option<TermId> {
        self.dict.id(term)
    }

    /// Inserts a triple of already-interned ids. Returns true when new.
    pub fn insert(&mut self, t: Triple) -> bool {
        let added = self.spo.insert((t.s.0, t.p.0, t.o.0));
        if added {
            self.pos.insert((t.p.0, t.o.0, t.s.0));
            self.osp.insert((t.o.0, t.s.0, t.p.0));
        }
        added
    }

    /// Interns three terms and inserts the resulting triple.
    pub fn insert_terms(&mut self, s: Term, p: Term, o: Term) -> Triple {
        let t = Triple::new(self.intern(s), self.intern(p), self.intern(o));
        self.insert(t);
        t
    }

    /// Removes a triple. Returns true when it was present.
    pub fn remove(&mut self, t: Triple) -> bool {
        let removed = self.spo.remove(&(t.s.0, t.p.0, t.o.0));
        if removed {
            self.pos.remove(&(t.p.0, t.o.0, t.s.0));
            self.osp.remove(&(t.o.0, t.s.0, t.p.0));
        }
        removed
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True when the graph holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// True when the triple is present.
    pub fn contains(&self, t: Triple) -> bool {
        self.spo.contains(&(t.s.0, t.p.0, t.o.0))
    }

    /// Iterates all triples in SPO order.
    pub fn iter(&self) -> impl Iterator<Item = Triple> + '_ {
        self.spo
            .iter()
            .map(|&(s, p, o)| Triple::new(TermId(s), TermId(p), TermId(o)))
    }

    /// Chooses the index that serves `pattern` with a contiguous range scan.
    pub fn index_for(pattern: &TriplePattern) -> IndexChoice {
        match (pattern.s, pattern.p, pattern.o) {
            (Some(_), _, _) => IndexChoice::Spo,
            (None, Some(_), _) => IndexChoice::Pos,
            (None, None, Some(_)) => IndexChoice::Osp,
            (None, None, None) => IndexChoice::FullScan,
        }
    }

    /// Matches a triple pattern, returning the triples in an index-defined
    /// order. Uses a range scan on the most selective covering index.
    pub fn match_pattern(&self, pattern: &TriplePattern) -> Vec<Triple> {
        match Self::index_for(pattern) {
            IndexChoice::Spo => {
                let s = pattern.s.expect("SPO choice implies bound subject").0;
                let range = match (pattern.p, pattern.o) {
                    (Some(p), Some(o)) => {
                        let t = Triple::new(TermId(s), p, o);
                        return if self.contains(t) { vec![t] } else { Vec::new() };
                    }
                    (Some(p), None) => (
                        Bound::Included((s, p.0, 0)),
                        Bound::Included((s, p.0, u32::MAX)),
                    ),
                    (None, _) => (
                        Bound::Included((s, 0, 0)),
                        Bound::Included((s, u32::MAX, u32::MAX)),
                    ),
                };
                self.spo
                    .range(range)
                    .map(|&(s, p, o)| Triple::new(TermId(s), TermId(p), TermId(o)))
                    .filter(|t| pattern.matches(t))
                    .collect()
            }
            IndexChoice::Pos => {
                let p = pattern.p.expect("POS choice implies bound predicate").0;
                let range = match pattern.o {
                    Some(o) => (
                        Bound::Included((p, o.0, 0)),
                        Bound::Included((p, o.0, u32::MAX)),
                    ),
                    None => (
                        Bound::Included((p, 0, 0)),
                        Bound::Included((p, u32::MAX, u32::MAX)),
                    ),
                };
                self.pos
                    .range(range)
                    .map(|&(p, o, s)| Triple::new(TermId(s), TermId(p), TermId(o)))
                    .filter(|t| pattern.matches(t))
                    .collect()
            }
            IndexChoice::Osp => {
                let o = pattern.o.expect("OSP choice implies bound object").0;
                self.osp
                    .range((
                        Bound::Included((o, 0, 0)),
                        Bound::Included((o, u32::MAX, u32::MAX)),
                    ))
                    .map(|&(o, s, p)| Triple::new(TermId(s), TermId(p), TermId(o)))
                    .collect()
            }
            IndexChoice::FullScan => self.iter().collect(),
        }
    }

    /// Counts the matches of a pattern without materializing terms.
    pub fn count_pattern(&self, pattern: &TriplePattern) -> usize {
        self.match_pattern(pattern).len()
    }

    /// All distinct predicates in the graph (useful for RDF-MT extraction).
    pub fn predicates(&self) -> Vec<TermId> {
        let mut out: Vec<TermId> = Vec::new();
        let mut last: Option<u32> = None;
        for &(p, _, _) in &self.pos {
            if last != Some(p) {
                out.push(TermId(p));
                last = Some(p);
            }
        }
        out
    }

    /// All distinct subjects that have predicate `rdf:type` with object `class`.
    pub fn instances_of(&self, class: TermId) -> Vec<TermId> {
        let type_id = match self.dict.id(&Term::iri(crate::vocab::rdf::TYPE)) {
            Some(id) => id,
            None => return Vec::new(),
        };
        self.match_pattern(&TriplePattern::any().with_p(type_id).with_o(class))
            .into_iter()
            .map(|t| t.s)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        g.insert_terms(Term::iri("s1"), Term::iri("p1"), Term::iri("o1"));
        g.insert_terms(Term::iri("s1"), Term::iri("p1"), Term::iri("o2"));
        g.insert_terms(Term::iri("s1"), Term::iri("p2"), Term::iri("o1"));
        g.insert_terms(Term::iri("s2"), Term::iri("p1"), Term::iri("o1"));
        g.insert_terms(Term::iri("s2"), Term::iri("p2"), Term::literal("x"));
        g
    }

    #[test]
    fn insert_deduplicates() {
        let mut g = Graph::new();
        g.insert_terms(Term::iri("s"), Term::iri("p"), Term::iri("o"));
        g.insert_terms(Term::iri("s"), Term::iri("p"), Term::iri("o"));
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn remove_updates_all_indexes() {
        let mut g = Graph::new();
        let t = g.insert_terms(Term::iri("s"), Term::iri("p"), Term::iri("o"));
        assert!(g.remove(t));
        assert!(!g.remove(t));
        assert!(g.is_empty());
        assert!(g.match_pattern(&TriplePattern::any().with_p(t.p)).is_empty());
        assert!(g.match_pattern(&TriplePattern::any().with_o(t.o)).is_empty());
    }

    #[test]
    fn pattern_by_subject() {
        let g = sample();
        let s1 = g.id(&Term::iri("s1")).unwrap();
        let hits = g.match_pattern(&TriplePattern::any().with_s(s1));
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|t| t.s == s1));
    }

    #[test]
    fn pattern_by_predicate() {
        let g = sample();
        let p1 = g.id(&Term::iri("p1")).unwrap();
        let hits = g.match_pattern(&TriplePattern::any().with_p(p1));
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|t| t.p == p1));
    }

    #[test]
    fn pattern_by_object() {
        let g = sample();
        let o1 = g.id(&Term::iri("o1")).unwrap();
        let hits = g.match_pattern(&TriplePattern::any().with_o(o1));
        assert_eq!(hits.len(), 3);
        assert!(hits.iter().all(|t| t.o == o1));
    }

    #[test]
    fn pattern_fully_bound() {
        let g = sample();
        let s1 = g.id(&Term::iri("s1")).unwrap();
        let p1 = g.id(&Term::iri("p1")).unwrap();
        let o2 = g.id(&Term::iri("o2")).unwrap();
        let hits = g.match_pattern(&TriplePattern { s: Some(s1), p: Some(p1), o: Some(o2) });
        assert_eq!(hits.len(), 1);
        let miss = g.match_pattern(&TriplePattern { s: Some(o2), p: Some(p1), o: Some(s1) });
        assert!(miss.is_empty());
    }

    #[test]
    fn pattern_subject_predicate() {
        let g = sample();
        let s1 = g.id(&Term::iri("s1")).unwrap();
        let p1 = g.id(&Term::iri("p1")).unwrap();
        let hits = g.match_pattern(&TriplePattern { s: Some(s1), p: Some(p1), o: None });
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn pattern_subject_object_filters_predicate() {
        let g = sample();
        let s1 = g.id(&Term::iri("s1")).unwrap();
        let o1 = g.id(&Term::iri("o1")).unwrap();
        let hits = g.match_pattern(&TriplePattern { s: Some(s1), p: None, o: Some(o1) });
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|t| t.s == s1 && t.o == o1));
    }

    #[test]
    fn pattern_predicate_object() {
        let g = sample();
        let p1 = g.id(&Term::iri("p1")).unwrap();
        let o1 = g.id(&Term::iri("o1")).unwrap();
        let hits = g.match_pattern(&TriplePattern { s: None, p: Some(p1), o: Some(o1) });
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn full_scan_returns_everything() {
        let g = sample();
        assert_eq!(g.match_pattern(&TriplePattern::any()).len(), g.len());
    }

    #[test]
    fn index_choice() {
        let s = TermId(0);
        assert_eq!(Graph::index_for(&TriplePattern::any().with_s(s)), IndexChoice::Spo);
        assert_eq!(Graph::index_for(&TriplePattern::any().with_p(s)), IndexChoice::Pos);
        assert_eq!(Graph::index_for(&TriplePattern::any().with_o(s)), IndexChoice::Osp);
        assert_eq!(Graph::index_for(&TriplePattern::any()), IndexChoice::FullScan);
    }

    #[test]
    fn predicates_are_distinct() {
        let g = sample();
        assert_eq!(g.predicates().len(), 2);
    }

    #[test]
    fn instances_of_class() {
        let mut g = Graph::new();
        g.insert_terms(
            Term::iri("s1"),
            Term::iri(crate::vocab::rdf::TYPE),
            Term::iri("C"),
        );
        g.insert_terms(
            Term::iri("s2"),
            Term::iri(crate::vocab::rdf::TYPE),
            Term::iri("C"),
        );
        g.insert_terms(
            Term::iri("s3"),
            Term::iri(crate::vocab::rdf::TYPE),
            Term::iri("D"),
        );
        let c = g.id(&Term::iri("C")).unwrap();
        assert_eq!(g.instances_of(c).len(), 2);
    }
}
