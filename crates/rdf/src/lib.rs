//! # fedlake-rdf
//!
//! An in-memory RDF data model and triple store.
//!
//! This crate provides the RDF substrate of the FedLake Semantic Data Lake:
//! RDF terms ([`Term`]), triples ([`Triple`]), an interning dictionary
//! ([`Dictionary`]) and an indexed, in-memory triple store ([`Graph`]) with
//! `SPO`/`POS`/`OSP` indexes and triple-pattern matching. N-Triples parsing
//! and serialization live in [`ntriples`].
//!
//! The store is the storage layer behind the SPARQL-endpoint members of a
//! data lake (see `fedlake-core`), and the target model for the RDF lifting
//! of relational datasets (see `fedlake-mapping`).
//!
//! ## Example
//!
//! ```
//! use fedlake_rdf::{Graph, Term};
//!
//! let mut g = Graph::new();
//! g.insert_terms(
//!     Term::iri("http://example.org/alice"),
//!     Term::iri("http://xmlns.com/foaf/0.1/knows"),
//!     Term::iri("http://example.org/bob"),
//! );
//! assert_eq!(g.len(), 1);
//! ```

pub mod dict;
pub mod error;
pub mod graph;
pub mod hash;
pub mod ntriples;
pub mod term;
pub mod vocab;

pub use dict::{Dictionary, SharedInterner, TermId};
pub use hash::{BuildFastHasher, FastMap, FastSet};
pub use error::RdfError;
pub use graph::{Graph, TriplePattern};
pub use term::{Literal, Term};

/// A triple of interned term identifiers, valid with respect to the
/// [`Dictionary`] of the [`Graph`] that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Triple {
    /// Subject term id (an IRI or blank node).
    pub s: TermId,
    /// Predicate term id (an IRI).
    pub p: TermId,
    /// Object term id (any term).
    pub o: TermId,
}

impl Triple {
    /// Creates a triple from three interned term ids.
    pub fn new(s: TermId, p: TermId, o: TermId) -> Self {
        Triple { s, p, o }
    }
}
