//! RDF terms: IRIs, blank nodes and literals.

use std::fmt;

/// An RDF literal: a lexical form with an optional language tag or datatype.
///
/// Plain literals carry neither a language tag nor a datatype (they are
/// treated as `xsd:string` for value comparisons). A literal never has both
/// a language tag and an explicit datatype.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    /// The lexical form of the literal.
    pub lexical: String,
    /// Language tag, as in `"chat"@en`.
    pub lang: Option<String>,
    /// Datatype IRI, as in `"42"^^xsd:integer`.
    pub datatype: Option<String>,
}

impl Literal {
    /// A plain (untyped, untagged) string literal.
    pub fn plain(lexical: impl Into<String>) -> Self {
        Literal { lexical: lexical.into(), lang: None, datatype: None }
    }

    /// A language-tagged literal.
    pub fn lang_tagged(lexical: impl Into<String>, lang: impl Into<String>) -> Self {
        Literal { lexical: lexical.into(), lang: Some(lang.into()), datatype: None }
    }

    /// A datatyped literal.
    pub fn typed(lexical: impl Into<String>, datatype: impl Into<String>) -> Self {
        Literal { lexical: lexical.into(), lang: None, datatype: Some(datatype.into()) }
    }

    /// An `xsd:integer` literal.
    pub fn integer(v: i64) -> Self {
        Literal::typed(v.to_string(), crate::vocab::xsd::INTEGER)
    }

    /// An `xsd:double` literal.
    pub fn double(v: f64) -> Self {
        Literal::typed(v.to_string(), crate::vocab::xsd::DOUBLE)
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(v: bool) -> Self {
        Literal::typed(v.to_string(), crate::vocab::xsd::BOOLEAN)
    }

    /// Tries to interpret this literal as an integer value.
    pub fn as_integer(&self) -> Option<i64> {
        self.lexical.parse().ok()
    }

    /// Tries to interpret this literal as a double value.
    pub fn as_double(&self) -> Option<f64> {
        self.lexical.parse().ok()
    }

    /// True when the literal is numeric (by datatype or by lexical form when
    /// untyped).
    pub fn is_numeric(&self) -> bool {
        match self.datatype.as_deref() {
            Some(dt) => crate::vocab::xsd::is_numeric(dt),
            None => false,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", escape(&self.lexical))?;
        if let Some(lang) = &self.lang {
            write!(f, "@{lang}")?;
        } else if let Some(dt) = &self.datatype {
            write!(f, "^^<{dt}>")?;
        }
        Ok(())
    }
}

/// An RDF term.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// An IRI reference, stored without the angle brackets.
    Iri(String),
    /// A blank node with its local label (without the `_:` prefix).
    Blank(String),
    /// A literal.
    Literal(Literal),
}

impl Term {
    /// Creates an IRI term.
    pub fn iri(v: impl Into<String>) -> Self {
        Term::Iri(v.into())
    }

    /// Creates a blank-node term.
    pub fn blank(label: impl Into<String>) -> Self {
        Term::Blank(label.into())
    }

    /// Creates a plain string literal term.
    pub fn literal(v: impl Into<String>) -> Self {
        Term::Literal(Literal::plain(v))
    }

    /// Creates an `xsd:integer` literal term.
    pub fn integer(v: i64) -> Self {
        Term::Literal(Literal::integer(v))
    }

    /// Creates an `xsd:double` literal term.
    pub fn double(v: f64) -> Self {
        Term::Literal(Literal::double(v))
    }

    /// Returns the IRI string when this term is an IRI.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the literal when this term is a literal.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// True for IRIs.
    pub fn is_iri(&self) -> bool {
        matches!(self, Term::Iri(_))
    }

    /// True for literals.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }

    /// True for blank nodes.
    pub fn is_blank(&self) -> bool {
        matches!(self, Term::Blank(_))
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(v) => write!(f, "<{v}>"),
            Term::Blank(l) => write!(f, "_:{l}"),
            Term::Literal(l) => write!(f, "{l}"),
        }
    }
}

/// Escapes a literal's lexical form for N-Triples output.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_iri() {
        assert_eq!(Term::iri("http://x.org/a").to_string(), "<http://x.org/a>");
    }

    #[test]
    fn display_blank() {
        assert_eq!(Term::blank("b0").to_string(), "_:b0");
    }

    #[test]
    fn display_plain_literal() {
        assert_eq!(Term::literal("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn display_lang_literal() {
        let t = Term::Literal(Literal::lang_tagged("chat", "en"));
        assert_eq!(t.to_string(), "\"chat\"@en");
    }

    #[test]
    fn display_typed_literal() {
        assert_eq!(
            Term::integer(42).to_string(),
            "\"42\"^^<http://www.w3.org/2001/XMLSchema#integer>"
        );
    }

    #[test]
    fn escape_special_chars() {
        let t = Term::literal("a\"b\\c\nd");
        assert_eq!(t.to_string(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn literal_numeric_interpretation() {
        assert_eq!(Literal::integer(7).as_integer(), Some(7));
        assert_eq!(Literal::double(1.5).as_double(), Some(1.5));
        assert!(Literal::integer(7).is_numeric());
        assert!(!Literal::plain("x").is_numeric());
    }

    #[test]
    fn term_accessors() {
        assert_eq!(Term::iri("a").as_iri(), Some("a"));
        assert!(Term::literal("x").as_iri().is_none());
        assert!(Term::literal("x").is_literal());
        assert!(Term::blank("x").is_blank());
        assert!(Term::iri("x").is_iri());
    }
}
