//! Fast, deterministic hashing for interning and join tables.
//!
//! `std`'s default `RandomState` seeds SipHash per process, which is both
//! slow on the short keys this workspace hashes (interned `TermId` slices,
//! term strings, relational values) and randomized across runs. Nothing in
//! the engine may depend on map iteration order anyway — answers are
//! produced from insertion-ordered vectors — so the hasher only needs to
//! be fast and well-distributed, not DoS-resistant: the inputs are the
//! lake's own data, not attacker-controlled network input.
//!
//! [`FastHasher`] is a multiply-rotate hasher in the `FxHash` family: each
//! 8-byte word is folded into the state with a rotate, xor and an odd
//! multiplicative constant, and `finish` applies an xorshift-multiply
//! avalanche so the high bits (which hashbrown uses for its control bytes)
//! are well mixed. The seed is a compile-time constant, so a `(seed,
//! config)` pair hashes identically on every run — map *contents* are
//! reproducible even though the engine never relies on their order.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

/// Odd multiplicative constant (the 64-bit golden-ratio constant used by
/// Fibonacci hashing); any odd constant with a balanced bit pattern works.
const MULT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Fixed, build-independent seed state.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiply-rotate hasher with a fixed seed. See the module docs
/// for why determinism is safe here.
#[derive(Debug, Clone)]
pub struct FastHasher {
    state: u64,
}

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(29) ^ word).wrapping_mul(MULT);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        let mut x = self.state;
        x ^= x >> 32;
        x = x.wrapping_mul(0xd6e8_feb8_6659_fd93);
        x ^= x >> 32;
        x
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(buf));
        }
        // Fold the length in so `"a\0"` and `"a"` (and other zero-padded
        // tails) cannot collide by construction.
        self.mix(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FastHasher`]; the zero-sized state makes
/// `FastMap::default()` a drop-in replacement for `HashMap::new()`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildFastHasher;

impl BuildHasher for BuildFastHasher {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher { state: SEED }
    }
}

/// A `HashMap` keyed by the deterministic [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildFastHasher>;

/// A `HashSet` keyed by the deterministic [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildFastHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash + ?Sized>(v: &T) -> u64 {
        BuildFastHasher.hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(hash_of(&"federated"), hash_of(&"federated"));
        assert_eq!(hash_of(&[1u32, 2, 3][..]), hash_of(&[1u32, 2, 3][..]));
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
    }

    #[test]
    fn distinguishes_lengths_and_contents() {
        assert_ne!(hash_of(&"a"), hash_of(&"a\0"));
        assert_ne!(hash_of(&""), hash_of(&"\0"));
        assert_ne!(hash_of(&[1u32, 2][..]), hash_of(&[1u32, 2, 0][..]));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
    }

    #[test]
    fn works_as_map_and_set_hasher() {
        let mut m: FastMap<String, u32> = FastMap::default();
        m.insert("x".into(), 1);
        m.insert("y".into(), 2);
        assert_eq!(m.get("x"), Some(&1));
        let mut s: FastSet<Vec<u32>> = FastSet::default();
        assert!(s.insert(vec![1, 2]));
        assert!(!s.insert(vec![1, 2]));
    }
}
