//! Error types for the RDF crate.

use std::fmt;

/// Errors produced while parsing or manipulating RDF data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RdfError {
    /// An N-Triples line could not be parsed; carries the line number
    /// (1-based) and a description.
    Syntax { line: usize, message: String },
    /// A term id was used with a dictionary that does not know it.
    UnknownTermId(u64),
}

impl fmt::Display for RdfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RdfError::Syntax { line, message } => {
                write!(f, "N-Triples syntax error at line {line}: {message}")
            }
            RdfError::UnknownTermId(id) => write!(f, "unknown term id {id}"),
        }
    }
}

impl std::error::Error for RdfError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_syntax_error() {
        let e = RdfError::Syntax { line: 3, message: "bad IRI".into() };
        assert!(e.to_string().contains("line 3"));
        assert!(e.to_string().contains("bad IRI"));
    }

    #[test]
    fn display_unknown_id() {
        assert!(RdfError::UnknownTermId(9).to_string().contains('9'));
    }
}
