//! Term interning.
//!
//! Graphs store triples as triples of [`TermId`]s; the [`Dictionary`] maps
//! between ids and full [`Term`]s. Interning keeps the triple indexes
//! compact (12 bytes per triple per index) and makes joins and comparisons
//! integer comparisons.

use crate::hash::FastMap;
use crate::term::Term;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A compact identifier for an interned RDF term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl TermId {
    /// Sentinel for "no term": an unbound slot in a solution mapping.
    /// Never allocated by [`Dictionary::intern`].
    pub const UNBOUND: TermId = TermId(u32::MAX);

    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional mapping between [`Term`]s and [`TermId`]s.
///
/// Ids are dense and allocated in insertion order, so they can be used to
/// index side tables.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<Term>,
    ids: FastMap<Term, TermId>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its id. Idempotent.
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.ids.get(&term) {
            return id;
        }
        let raw = u32::try_from(self.terms.len()).expect("dictionary overflow");
        assert!(raw != u32::MAX, "dictionary overflow");
        let id = TermId(raw);
        self.terms.push(term.clone());
        self.ids.insert(term, id);
        id
    }

    /// Looks up the id of `term` without interning it.
    pub fn id(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Resolves an id back to its term.
    pub fn term(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id.index())
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over all `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }
}

/// A query-scoped, append-only term interner shareable across operators
/// and source boundaries.
///
/// Every wrapper stream and engine operator participating in one query
/// execution holds a clone, so a term arriving from any source maps to the
/// same [`TermId`] everywhere — which is what lets joins compare raw ids.
/// Ids are never recycled: the interner only grows for the lifetime of the
/// query and is dropped wholesale when execution finishes.
#[derive(Debug, Default, Clone)]
pub struct SharedInterner {
    inner: Arc<Mutex<Dictionary>>,
}

impl SharedInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the underlying dictionary (non-poisoning).
    pub fn lock(&self) -> MutexGuard<'_, Dictionary> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Interns `term`, returning its query-wide id.
    pub fn intern(&self, term: Term) -> TermId {
        self.lock().intern(term)
    }

    /// Resolves an id back to an owned term.
    pub fn resolve(&self, id: TermId) -> Option<Term> {
        self.lock().term(id).cloned()
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(Term::iri("http://x/a"));
        let b = d.intern(Term::iri("http://x/a"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut d = Dictionary::new();
        let a = d.intern(Term::iri("a"));
        let b = d.intern(Term::iri("b"));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn roundtrip() {
        let mut d = Dictionary::new();
        let t = Term::literal("v");
        let id = d.intern(t.clone());
        assert_eq!(d.term(id), Some(&t));
        assert_eq!(d.id(&t), Some(id));
    }

    #[test]
    fn lookup_missing() {
        let d = Dictionary::new();
        assert!(d.id(&Term::iri("nope")).is_none());
        assert!(d.term(TermId(0)).is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn distinct_terms_distinct_ids() {
        let mut d = Dictionary::new();
        // IRI "a" and literal "a" are different terms.
        let i = d.intern(Term::iri("a"));
        let l = d.intern(Term::literal("a"));
        assert_ne!(i, l);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut d = Dictionary::new();
        d.intern(Term::iri("a"));
        d.intern(Term::iri("b"));
        let pairs: Vec<_> = d.iter().map(|(id, t)| (id.index(), t.clone())).collect();
        assert_eq!(pairs, vec![(0, Term::iri("a")), (1, Term::iri("b"))]);
    }

    #[test]
    fn shared_interner_agrees_across_clones() {
        let a = SharedInterner::new();
        let b = a.clone();
        let id_a = a.intern(Term::iri("http://x/a"));
        let id_b = b.intern(Term::iri("http://x/a"));
        assert_eq!(id_a, id_b);
        assert_eq!(a.len(), 1);
        assert_eq!(b.resolve(id_a), Some(Term::iri("http://x/a")));
    }

    #[test]
    fn unbound_sentinel_never_resolves() {
        let i = SharedInterner::new();
        i.intern(Term::iri("a"));
        assert_eq!(i.resolve(TermId::UNBOUND), None);
    }
}
