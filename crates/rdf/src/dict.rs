//! Term interning.
//!
//! Graphs store triples as triples of [`TermId`]s; the [`Dictionary`] maps
//! between ids and full [`Term`]s. Interning keeps the triple indexes
//! compact (12 bytes per triple per index) and makes joins and comparisons
//! integer comparisons.

use crate::term::Term;
use std::collections::HashMap;

/// A compact identifier for an interned RDF term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TermId(pub u32);

impl TermId {
    /// The raw index value.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A bidirectional mapping between [`Term`]s and [`TermId`]s.
///
/// Ids are dense and allocated in insertion order, so they can be used to
/// index side tables.
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<Term>,
    ids: HashMap<Term, TermId>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `term`, returning its id. Idempotent.
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.ids.get(&term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("dictionary overflow"));
        self.terms.push(term.clone());
        self.ids.insert(term, id);
        id
    }

    /// Looks up the id of `term` without interning it.
    pub fn id(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Resolves an id back to its term.
    pub fn term(&self, id: TermId) -> Option<&Term> {
        self.terms.get(id.index())
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no term has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterates over all `(id, term)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(Term::iri("http://x/a"));
        let b = d.intern(Term::iri("http://x/a"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut d = Dictionary::new();
        let a = d.intern(Term::iri("a"));
        let b = d.intern(Term::iri("b"));
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
    }

    #[test]
    fn roundtrip() {
        let mut d = Dictionary::new();
        let t = Term::literal("v");
        let id = d.intern(t.clone());
        assert_eq!(d.term(id), Some(&t));
        assert_eq!(d.id(&t), Some(id));
    }

    #[test]
    fn lookup_missing() {
        let d = Dictionary::new();
        assert!(d.id(&Term::iri("nope")).is_none());
        assert!(d.term(TermId(0)).is_none());
        assert!(d.is_empty());
    }

    #[test]
    fn distinct_terms_distinct_ids() {
        let mut d = Dictionary::new();
        // IRI "a" and literal "a" are different terms.
        let i = d.intern(Term::iri("a"));
        let l = d.intern(Term::literal("a"));
        assert_ne!(i, l);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut d = Dictionary::new();
        d.intern(Term::iri("a"));
        d.intern(Term::iri("b"));
        let pairs: Vec<_> = d.iter().map(|(id, t)| (id.index(), t.clone())).collect();
        assert_eq!(pairs, vec![(0, Term::iri("a")), (1, Term::iri("b"))]);
    }
}
