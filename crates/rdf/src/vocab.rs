//! Well-known vocabulary IRIs used throughout the data lake.

/// RDF core vocabulary.
pub mod rdf {
    /// `rdf:type`.
    pub const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
}

/// RDFS vocabulary.
pub mod rdfs {
    /// `rdfs:label`.
    pub const LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";
}

/// XML Schema datatypes.
pub mod xsd {
    /// `xsd:string`.
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    /// `xsd:integer`.
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    /// `xsd:decimal`.
    pub const DECIMAL: &str = "http://www.w3.org/2001/XMLSchema#decimal";
    /// `xsd:double`.
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    /// `xsd:boolean`.
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    /// `xsd:date`.
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";

    /// True when `dt` denotes a numeric XSD datatype.
    pub fn is_numeric(dt: &str) -> bool {
        matches!(dt, INTEGER | DECIMAL | DOUBLE)
            || dt == "http://www.w3.org/2001/XMLSchema#float"
            || dt == "http://www.w3.org/2001/XMLSchema#int"
            || dt == "http://www.w3.org/2001/XMLSchema#long"
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn numeric_datatypes() {
        assert!(super::xsd::is_numeric(super::xsd::INTEGER));
        assert!(super::xsd::is_numeric(super::xsd::DOUBLE));
        assert!(!super::xsd::is_numeric(super::xsd::STRING));
    }
}
