//! N-Triples parsing and serialization.
//!
//! Supports the subset of N-Triples needed by the data lake: IRIs, blank
//! nodes, plain / language-tagged / datatyped literals with the standard
//! string escapes, `#` comments and blank lines.

use crate::error::RdfError;
use crate::graph::Graph;
use crate::term::{Literal, Term};

/// Parses an N-Triples document into a new [`Graph`].
pub fn parse(input: &str) -> Result<Graph, RdfError> {
    let mut g = Graph::new();
    parse_into(input, &mut g)?;
    Ok(g)
}

/// Parses an N-Triples document, inserting the triples into `graph`.
pub fn parse_into(input: &str, graph: &mut Graph) -> Result<(), RdfError> {
    for (lineno, raw) in input.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (s, p, o) = parse_line(line).map_err(|message| RdfError::Syntax {
            line: lineno + 1,
            message,
        })?;
        graph.insert_terms(s, p, o);
    }
    Ok(())
}

/// Serializes a graph as an N-Triples document (SPO index order).
pub fn serialize(graph: &Graph) -> String {
    let mut out = String::new();
    for t in graph.iter() {
        let s = graph.term(t.s).expect("triple subject must be interned");
        let p = graph.term(t.p).expect("triple predicate must be interned");
        let o = graph.term(t.o).expect("triple object must be interned");
        out.push_str(&format!("{s} {p} {o} .\n"));
    }
    out
}

fn parse_line(line: &str) -> Result<(Term, Term, Term), String> {
    let mut cursor = Cursor::new(line);
    let s = cursor.term()?;
    cursor.skip_ws();
    let p = cursor.term()?;
    cursor.skip_ws();
    let o = cursor.term()?;
    cursor.skip_ws();
    cursor.expect('.')?;
    cursor.skip_ws();
    if !cursor.at_end() && !cursor.rest().starts_with('#') {
        return Err(format!("trailing content: {:?}", cursor.rest()));
    }
    Ok((s, p, o))
}

struct Cursor<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(input: &'a str) -> Self {
        Cursor { input, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(format!("expected {c:?}, found {:?}", self.peek()))
        }
    }

    fn term(&mut self) -> Result<Term, String> {
        match self.peek() {
            Some('<') => self.iri(),
            Some('_') => self.blank(),
            Some('"') => self.literal(),
            other => Err(format!("expected term, found {other:?}")),
        }
    }

    fn iri(&mut self) -> Result<Term, String> {
        self.expect('<')?;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == '>' {
                let iri = &self.input[start..self.pos];
                self.bump();
                return Ok(Term::iri(iri));
            }
            if c.is_whitespace() {
                break;
            }
            self.bump();
        }
        Err("unterminated IRI".into())
    }

    fn blank(&mut self) -> Result<Term, String> {
        self.expect('_')?;
        self.expect(':')?;
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '-') {
            self.bump();
        }
        if self.pos == start {
            return Err("empty blank node label".into());
        }
        Ok(Term::blank(&self.input[start..self.pos]))
    }

    fn literal(&mut self) -> Result<Term, String> {
        self.expect('"')?;
        let mut lexical = String::new();
        loop {
            match self.bump() {
                Some('"') => break,
                Some('\\') => match self.bump() {
                    Some('n') => lexical.push('\n'),
                    Some('r') => lexical.push('\r'),
                    Some('t') => lexical.push('\t'),
                    Some('"') => lexical.push('"'),
                    Some('\\') => lexical.push('\\'),
                    Some('u') => lexical.push(self.unicode_escape(4)?),
                    Some('U') => lexical.push(self.unicode_escape(8)?),
                    other => return Err(format!("bad escape: {other:?}")),
                },
                Some(c) => lexical.push(c),
                None => return Err("unterminated literal".into()),
            }
        }
        match self.peek() {
            Some('@') => {
                self.bump();
                let start = self.pos;
                while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == '-') {
                    self.bump();
                }
                if self.pos == start {
                    return Err("empty language tag".into());
                }
                Ok(Term::Literal(Literal::lang_tagged(
                    lexical,
                    &self.input[start..self.pos],
                )))
            }
            Some('^') => {
                self.bump();
                self.expect('^')?;
                match self.iri()? {
                    Term::Iri(dt) => Ok(Term::Literal(Literal::typed(lexical, dt))),
                    _ => unreachable!("iri() only returns Term::Iri"),
                }
            }
            _ => Ok(Term::Literal(Literal::plain(lexical))),
        }
    }

    fn unicode_escape(&mut self, digits: usize) -> Result<char, String> {
        let start = self.pos;
        for _ in 0..digits {
            if self.bump().is_none() {
                return Err("truncated unicode escape".into());
            }
        }
        let hex = &self.input[start..self.pos];
        let cp = u32::from_str_radix(hex, 16).map_err(|_| format!("bad unicode escape {hex:?}"))?;
        char::from_u32(cp).ok_or_else(|| format!("invalid code point U+{cp:X}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TriplePattern;

    #[test]
    fn parse_simple_triple() {
        let g = parse("<http://x/s> <http://x/p> <http://x/o> .\n").unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn parse_literals() {
        let doc = r#"<http://x/s> <http://x/p> "plain" .
<http://x/s> <http://x/p> "tagged"@en .
<http://x/s> <http://x/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
"#;
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 3);
        assert!(g.id(&Term::Literal(Literal::lang_tagged("tagged", "en"))).is_some());
        assert!(g.id(&Term::integer(42)).is_some());
    }

    #[test]
    fn parse_blank_nodes() {
        let g = parse("_:a <http://x/p> _:b .\n").unwrap();
        assert_eq!(g.len(), 1);
        assert!(g.id(&Term::blank("a")).is_some());
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let doc = "# a comment\n\n<http://x/s> <http://x/p> <http://x/o> . # trailing\n";
        let g = parse(doc).unwrap();
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn parse_escapes() {
        let g = parse(r#"<http://x/s> <http://x/p> "a\"b\\c\nd" ."#).unwrap();
        assert!(g.id(&Term::literal("a\"b\\c\nd")).is_some());
    }

    #[test]
    fn parse_unicode_escape() {
        let g = parse(r#"<http://x/s> <http://x/p> "é" ."#).unwrap();
        assert!(g.id(&Term::literal("é")).is_some());
    }

    #[test]
    fn error_carries_line_number() {
        let err = parse("<http://x/s> <http://x/p> <http://x/o> .\nnot a triple\n").unwrap_err();
        match err {
            RdfError::Syntax { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    #[test]
    fn missing_dot_is_error() {
        assert!(parse("<http://x/s> <http://x/p> <http://x/o>\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let doc = r#"<http://x/s> <http://x/p> "v\"1" .
<http://x/s> <http://x/p> "42"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/s> <http://x/q> "hello"@en-GB .
_:b <http://x/p> <http://x/o> .
"#;
        let g = parse(doc).unwrap();
        let ser = serialize(&g);
        let g2 = parse(&ser).unwrap();
        assert_eq!(g.len(), g2.len());
        for t in g.iter() {
            let s = g.term(t.s).unwrap().clone();
            let p = g.term(t.p).unwrap().clone();
            let o = g.term(t.o).unwrap().clone();
            let pat = TriplePattern {
                s: g2.id(&s),
                p: g2.id(&p),
                o: g2.id(&o),
            };
            assert!(pat.s.is_some() && pat.p.is_some() && pat.o.is_some());
            assert_eq!(g2.match_pattern(&pat).len(), 1);
        }
    }
}
