//! Randomized tests for the triple store: index agreement, pattern
//! matching vs. naive filtering, and N-Triples round-trips. Inputs are
//! generated from a seeded in-repo PRNG so every run explores the same
//! (large) case set deterministically.

use fedlake_prng::Prng;
use fedlake_rdf::{ntriples, Graph, Literal, Term, TriplePattern};

/// A small universe of term components so collisions (and therefore
/// matches) are frequent.
fn arb_term(rng: &mut Prng) -> Term {
    match rng.gen_range(0..5) {
        0 => Term::iri(format!("http://example.org/r{}", rng.gen_range(0u8..8))),
        1 => Term::blank(format!("b{}", rng.gen_range(0u8..4))),
        2 => Term::literal(format!("lit{}", rng.gen_range(0u8..6))),
        3 => Term::integer(rng.gen_range(-3i64..3)),
        _ => {
            let len = rng.gen_range(0usize..4);
            let s: String = (0..len)
                .map(|_| (b'a' + rng.gen_range(0u8..26)) as char)
                .collect();
            Term::Literal(Literal::lang_tagged(s, format!("l{}", rng.gen_range(0u8..2))))
        }
    }
}

fn arb_triples(rng: &mut Prng) -> Vec<(Term, Term, Term)> {
    let n = rng.gen_range(0usize..60);
    (0..n)
        .map(|_| (arb_term(rng), arb_term(rng), arb_term(rng)))
        .collect()
}

/// Any pattern answered via an index must equal naive filtering over all
/// triples.
#[test]
fn pattern_matching_agrees_with_full_scan() {
    let mut rng = Prng::seed_from_u64(0x9a7e_0001);
    for _ in 0..128 {
        let triples = arb_triples(&mut rng);
        let mut g = Graph::new();
        for (s, p, o) in &triples {
            g.insert_terms(s.clone(), p.clone(), o.clone());
        }
        let all: Vec<_> = g.iter().collect();
        // Derive a pattern from a random existing triple (if any).
        let (idx, bs, bp, bo) = (
            rng.gen_range(0u32..u32::MAX) as usize,
            rng.gen_bool(0.5),
            rng.gen_bool(0.5),
            rng.gen_bool(0.5),
        );
        let pattern = if all.is_empty() {
            TriplePattern::any()
        } else {
            let t = all[idx % all.len()];
            TriplePattern {
                s: bs.then_some(t.s),
                p: bp.then_some(t.p),
                o: bo.then_some(t.o),
            }
        };
        let via_index: std::collections::BTreeSet<_> =
            g.match_pattern(&pattern).into_iter().collect();
        let naive: std::collections::BTreeSet<_> =
            all.iter().copied().filter(|t| pattern.matches(t)).collect();
        assert_eq!(via_index, naive);
    }
}

/// Insert/remove keeps all three indexes consistent.
#[test]
fn remove_restores_previous_state() {
    let mut rng = Prng::seed_from_u64(0x9a7e_0002);
    for _ in 0..128 {
        let triples = arb_triples(&mut rng);
        let mut g = Graph::new();
        let mut inserted = Vec::new();
        for (s, p, o) in &triples {
            inserted.push(g.insert_terms(s.clone(), p.clone(), o.clone()));
        }
        let full_len = g.len();
        // Remove every other triple, then verify matching still agrees.
        let removed: Vec<_> = inserted.iter().copied().step_by(2).collect();
        for t in &removed {
            g.remove(*t);
        }
        assert!(g.len() <= full_len);
        for t in &removed {
            assert!(!g.contains(*t));
            // All three index-backed access paths must agree it is gone.
            assert!(!g.match_pattern(&TriplePattern::any().with_s(t.s)).contains(t));
            assert!(!g.match_pattern(&TriplePattern::any().with_p(t.p)).contains(t));
            assert!(!g.match_pattern(&TriplePattern::any().with_o(t.o)).contains(t));
        }
    }
}

/// serialize ∘ parse is the identity on graphs (up to triple set).
#[test]
fn ntriples_roundtrip() {
    let mut rng = Prng::seed_from_u64(0x9a7e_0003);
    for _ in 0..128 {
        let triples = arb_triples(&mut rng);
        let mut g = Graph::new();
        for (s, p, o) in &triples {
            // N-Triples requires IRI/blank subjects and IRI predicates.
            let s = match s {
                Term::Literal(_) => Term::iri("http://example.org/fixed-s"),
                other => other.clone(),
            };
            let p = match p {
                Term::Iri(_) => p.clone(),
                _ => Term::iri("http://example.org/fixed-p"),
            };
            g.insert_terms(s, p, o.clone());
        }
        let doc = ntriples::serialize(&g);
        let g2 = ntriples::parse(&doc).unwrap();
        assert_eq!(g.len(), g2.len());
        let set1: std::collections::BTreeSet<String> = doc.lines().map(String::from).collect();
        let doc2 = ntriples::serialize(&g2);
        let set2: std::collections::BTreeSet<String> = doc2.lines().map(String::from).collect();
        assert_eq!(set1, set2);
    }
}
