//! Property-based tests for the triple store: index agreement, pattern
//! matching vs. naive filtering, and N-Triples round-trips.

use fedlake_rdf::{ntriples, Graph, Literal, Term, TriplePattern};
use proptest::prelude::*;

/// A small universe of term components so collisions (and therefore matches)
/// are frequent.
fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        (0u8..8).prop_map(|i| Term::iri(format!("http://example.org/r{i}"))),
        (0u8..4).prop_map(|i| Term::blank(format!("b{i}"))),
        (0u8..6).prop_map(|i| Term::literal(format!("lit{i}"))),
        (-3i64..3).prop_map(Term::integer),
        ("[a-z]{0,3}", 0u8..2)
            .prop_map(|(s, l)| Term::Literal(Literal::lang_tagged(s, format!("l{l}")))),
    ]
}

fn arb_triples() -> impl Strategy<Value = Vec<(Term, Term, Term)>> {
    prop::collection::vec((arb_term(), arb_term(), arb_term()), 0..60)
}

proptest! {
    /// Any pattern answered via an index must equal naive filtering over all
    /// triples.
    #[test]
    fn pattern_matching_agrees_with_full_scan(
        triples in arb_triples(),
        pick in (any::<u16>(), any::<bool>(), any::<bool>(), any::<bool>()),
    ) {
        let mut g = Graph::new();
        for (s, p, o) in &triples {
            g.insert_terms(s.clone(), p.clone(), o.clone());
        }
        let all: Vec<_> = g.iter().collect();
        // Derive a pattern from a random existing triple (if any).
        let (idx, bs, bp, bo) = pick;
        let pattern = if all.is_empty() {
            TriplePattern::any()
        } else {
            let t = all[idx as usize % all.len()];
            TriplePattern {
                s: bs.then_some(t.s),
                p: bp.then_some(t.p),
                o: bo.then_some(t.o),
            }
        };
        let via_index: std::collections::BTreeSet<_> =
            g.match_pattern(&pattern).into_iter().collect();
        let naive: std::collections::BTreeSet<_> =
            all.iter().copied().filter(|t| pattern.matches(t)).collect();
        prop_assert_eq!(via_index, naive);
    }

    /// Insert/remove keeps all three indexes consistent.
    #[test]
    fn remove_restores_previous_state(triples in arb_triples()) {
        let mut g = Graph::new();
        let mut inserted = Vec::new();
        for (s, p, o) in &triples {
            inserted.push(g.insert_terms(s.clone(), p.clone(), o.clone()));
        }
        let full_len = g.len();
        // Remove every other triple, then verify matching still agrees.
        let removed: Vec<_> = inserted.iter().copied().step_by(2).collect();
        for t in &removed {
            g.remove(*t);
        }
        prop_assert!(g.len() <= full_len);
        for t in &removed {
            prop_assert!(!g.contains(*t));
            // All three index-backed access paths must agree it is gone.
            prop_assert!(!g
                .match_pattern(&TriplePattern::any().with_s(t.s))
                .contains(t));
            prop_assert!(!g
                .match_pattern(&TriplePattern::any().with_p(t.p))
                .contains(t));
            prop_assert!(!g
                .match_pattern(&TriplePattern::any().with_o(t.o))
                .contains(t));
        }
    }

    /// serialize ∘ parse is the identity on graphs (up to triple set).
    #[test]
    fn ntriples_roundtrip(triples in arb_triples()) {
        let mut g = Graph::new();
        for (s, p, o) in &triples {
            // N-Triples requires IRI/blank subjects and IRI predicates.
            let s = match s {
                Term::Literal(_) => Term::iri("http://example.org/fixed-s"),
                other => other.clone(),
            };
            let p = match p {
                Term::Iri(_) => p.clone(),
                _ => Term::iri("http://example.org/fixed-p"),
            };
            g.insert_terms(s, p, o.clone());
        }
        let doc = ntriples::serialize(&g);
        let g2 = ntriples::parse(&doc).unwrap();
        prop_assert_eq!(g.len(), g2.len());
        let set1: std::collections::BTreeSet<String> = doc.lines().map(String::from).collect();
        let doc2 = ntriples::serialize(&g2);
        let set2: std::collections::BTreeSet<String> = doc2.lines().map(String::from).collect();
        prop_assert_eq!(set1, set2);
    }
}
