//! End-to-end federation tests over a two-source lake, checked against the
//! lifted-graph oracle: whatever plan mode and network the engine runs
//! with, its answers must equal a local SPARQL evaluation over the RDF
//! lifting of all sources.

use fedlake_core::config::FilterPlacement;
use fedlake_core::{
    DataLake, DataSource, FederatedEngine, MergeTranslation, PlanConfig, PlanMode,
};
use fedlake_mapping::{lift_database, DatasetMapping, IriTemplate, TableMapping};
use fedlake_netsim::NetworkProfile;
use fedlake_rdf::Graph;
use fedlake_relational::Database;
use fedlake_sparql::binding::Row;
use fedlake_sparql::eval::evaluate;
use fedlake_sparql::parser::parse_query;
use std::collections::BTreeSet;

const V: &str = "http://lake.example/vocab/";

/// Builds a small two-dataset relational lake:
///  * `affymetrix`: gene(id, label, species, disease_ref) — species is
///    skewed (not indexable), disease_ref is an indexed FK-like column.
///  * `diseasome`: disease(id, name, class).
fn build_lake(index_join_attr: bool) -> (DataLake, Graph) {
    let mut affy = Database::new("affymetrix");
    affy.execute(
        "CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT, species TEXT, disease TEXT)",
    )
    .unwrap();
    for i in 0..40 {
        let species = if i % 4 == 0 { "Homo sapiens" } else { "Mus musculus" };
        affy.execute(&format!(
            "INSERT INTO gene VALUES ('g{i}', 'gene {i}', '{species}', 'd{}')",
            i % 10
        ))
        .unwrap();
    }
    if index_join_attr {
        affy.execute("CREATE INDEX idx_gene_disease ON gene (disease)").unwrap();
    }
    let affy_mapping = DatasetMapping::new("affymetrix").with_table(
        TableMapping::new(
            "gene",
            format!("{V}Gene"),
            IriTemplate::new("http://lake.example/affymetrix/gene/{}"),
            "id",
        )
        .with_literal("label", &format!("{V}label"))
        .with_literal("species", &format!("{V}species"))
        .with_reference(
            "disease",
            &format!("{V}associatedDisease"),
            IriTemplate::new("http://lake.example/diseasome/disease/{}"),
        ),
    );

    let mut dis = Database::new("diseasome");
    dis.execute("CREATE TABLE disease (id TEXT PRIMARY KEY, name TEXT, class TEXT)")
        .unwrap();
    for i in 0..10 {
        dis.execute(&format!(
            "INSERT INTO disease VALUES ('d{i}', 'disease {i}', 'class{}')",
            i % 3
        ))
        .unwrap();
    }
    let dis_mapping = DatasetMapping::new("diseasome").with_table(
        TableMapping::new(
            "disease",
            format!("{V}Disease"),
            IriTemplate::new("http://lake.example/diseasome/disease/{}"),
            "id",
        )
        .with_literal("name", &format!("{V}name"))
        .with_literal("class", &format!("{V}class")),
    );

    // The oracle: a single graph lifting every source.
    let mut oracle = lift_database(&affy, &affy_mapping);
    let dis_graph = lift_database(&dis, &dis_mapping);
    for t in dis_graph.iter() {
        oracle.insert_terms(
            dis_graph.term(t.s).unwrap().clone(),
            dis_graph.term(t.p).unwrap().clone(),
            dis_graph.term(t.o).unwrap().clone(),
        );
    }

    let mut lake = DataLake::new();
    lake.add_source(DataSource::relational("affymetrix", affy, affy_mapping));
    lake.add_source(DataSource::relational("diseasome", dis, dis_mapping));
    (lake, oracle)
}

fn q_join_filter() -> String {
    format!(
        r#"SELECT ?g ?n WHERE {{
            ?g a <{V}Gene> .
            ?g <{V}species> ?sp .
            ?g <{V}associatedDisease> ?d .
            ?d <{V}name> ?n .
            FILTER(CONTAINS(?sp, "sapiens"))
        }}"#
    )
}

fn answers(rows: &[Row]) -> BTreeSet<String> {
    rows.iter().map(|r| r.to_string()).collect()
}

fn oracle_answers(oracle: &Graph, sparql: &str) -> BTreeSet<String> {
    let q = parse_query(sparql).unwrap();
    answers(&evaluate(&q, oracle).unwrap())
}

#[test]
fn all_configurations_agree_with_oracle() {
    let (lake, oracle) = build_lake(true);
    let sparql = q_join_filter();
    let expected = oracle_answers(&oracle, &sparql);
    assert_eq!(expected.len(), 10, "10 sapiens genes with diseases");

    let modes = [
        PlanMode::Unaware,
        PlanMode::AWARE,
        PlanMode::AWARE_H2,
        PlanMode::Aware { h1_join_pushdown: true, filters: FilterPlacement::PushAll },
        PlanMode::Aware { h1_join_pushdown: false, filters: FilterPlacement::Heuristic2 },
        PlanMode::Aware { h1_join_pushdown: false, filters: FilterPlacement::Engine },
    ];
    for mode in modes {
        for network in NetworkProfile::ALL {
            let engine = FederatedEngine::new(lake.clone(), PlanConfig::new(mode, network));
            let result = engine.execute_sparql(&sparql).unwrap();
            assert_eq!(
                answers(&result.rows),
                expected,
                "mode {} network {}",
                mode.label(),
                network.name
            );
        }
    }
}

#[test]
fn unaware_plan_keeps_work_at_engine() {
    let (lake, _) = build_lake(true);
    let engine = FederatedEngine::new(
        lake,
        PlanConfig::unaware(NetworkProfile::GAMMA3),
    );
    let result = engine.execute_sparql(&q_join_filter()).unwrap();
    // Two services (one per star), an engine join and an engine filter.
    assert_eq!(result.stats.services, 2);
    assert_eq!(result.stats.merged_services, 0);
    assert!(result.stats.engine_operators >= 2, "{}", result.explain);
    assert!(result.stats.engine_filter_evals > 0);
    assert!(result.stats.engine_join_probes > 0);
}

#[test]
fn h2_pushes_indexed_filter_only_on_slow_networks() {
    // A lake whose species column is indexed, so H2's index condition
    // holds and only the network speed decides the filter placement.
    let mut affy = Database::new("affymetrix");
    affy.execute("CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT, species TEXT)")
        .unwrap();
    for i in 0..20 {
        affy.execute(&format!("INSERT INTO gene VALUES ('g{i}', 'l{i}', 'sp{i}')"))
            .unwrap();
    }
    affy.execute("CREATE INDEX idx_species ON gene (species)").unwrap();
    let mapping = DatasetMapping::new("affymetrix").with_table(
        TableMapping::new(
            "gene",
            format!("{V}Gene"),
            IriTemplate::new("http://lake.example/affymetrix/gene/{}"),
            "id",
        )
        .with_literal("species", &format!("{V}species")),
    );
    let mut lake2 = DataLake::new();
    lake2.add_source(DataSource::relational("affymetrix", affy, mapping));
    let sparql = format!(
        r#"SELECT ?g WHERE {{ ?g <{V}species> ?sp . FILTER(?sp = "sp3") }}"#
    );

    // Fast network: filter stays at the engine.
    let fast = FederatedEngine::new(
        lake2.clone(),
        PlanConfig::new(PlanMode::AWARE_H2, NetworkProfile::GAMMA1),
    );
    let r_fast = fast.execute_sparql(&sparql).unwrap();
    assert!(r_fast.stats.engine_filter_evals > 0, "{}", r_fast.explain);
    assert!(!r_fast.explain.contains("sp3' "), "{}", r_fast.explain);

    // Slow network: indexed filter is pushed into the SQL.
    let slow = FederatedEngine::new(
        lake2.clone(),
        PlanConfig::new(PlanMode::AWARE_H2, NetworkProfile::GAMMA3),
    );
    let r_slow = slow.execute_sparql(&sparql).unwrap();
    assert_eq!(r_slow.stats.engine_filter_evals, 0, "{}", r_slow.explain);
    assert!(r_slow.explain.contains("= 'sp3'"), "{}", r_slow.explain);

    // Same single answer either way.
    assert_eq!(r_fast.rows.len(), 1);
    assert_eq!(answers(&r_fast.rows), answers(&r_slow.rows));
    // The pushed filter shrinks the transferred intermediate result.
    assert!(r_slow.stats.rows_transferred < r_fast.stats.rows_transferred);
}

#[test]
fn h1_merges_only_when_join_attribute_indexed() {
    let sparql = q_join_filter();

    // H1 needs both stars at the *same* source: both tables in one DB.
    let mut db = Database::new("diseasome");
    db.execute(
        "CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT, species TEXT, disease TEXT)",
    )
    .unwrap();
    db.execute("CREATE TABLE disease (id TEXT PRIMARY KEY, name TEXT, class TEXT)")
        .unwrap();
    for i in 0..30 {
        let species = if i % 3 == 0 { "Homo sapiens" } else { "Mus musculus" };
        db.execute(&format!(
            "INSERT INTO gene VALUES ('g{i}', 'gene {i}', '{species}', 'd{}')",
            i % 6
        ))
        .unwrap();
    }
    for i in 0..6 {
        db.execute(&format!(
            "INSERT INTO disease VALUES ('d{i}', 'disease {i}', 'c{}')",
            i % 2
        ))
        .unwrap();
    }
    let mapping = DatasetMapping::new("diseasome")
        .with_table(
            TableMapping::new(
                "gene",
                format!("{V}Gene"),
                IriTemplate::new("http://lake.example/diseasome/gene/{}"),
                "id",
            )
            .with_literal("label", &format!("{V}label"))
            .with_literal("species", &format!("{V}species"))
            .with_reference(
                "disease",
                &format!("{V}associatedDisease"),
                IriTemplate::new("http://lake.example/diseasome/disease/{}"),
            ),
        )
        .with_table(
            TableMapping::new(
                "disease",
                format!("{V}Disease"),
                IriTemplate::new("http://lake.example/diseasome/disease/{}"),
                "id",
            )
            .with_literal("name", &format!("{V}name"))
            .with_literal("class", &format!("{V}class")),
        );

    // Without an index on the FK column, H1 must NOT merge.
    let mut lake_noidx = DataLake::new();
    lake_noidx.add_source(DataSource::relational("diseasome", db.clone(), mapping.clone()));
    let engine = FederatedEngine::new(
        lake_noidx,
        PlanConfig::aware(NetworkProfile::NO_DELAY),
    );
    let r = engine.execute_sparql(&sparql).unwrap();
    assert_eq!(r.stats.merged_services, 0, "{}", r.explain);
    assert_eq!(r.stats.services, 2);

    // With the index, H1 merges the stars into one SQL join.
    let mut db_idx = db.clone();
    db_idx.execute("CREATE INDEX idx_gene_disease ON gene (disease)").unwrap();
    let mut lake_idx = DataLake::new();
    lake_idx.add_source(DataSource::relational("diseasome", db_idx, mapping));
    let engine = FederatedEngine::new(
        lake_idx.clone(),
        PlanConfig::aware(NetworkProfile::NO_DELAY),
    );
    let r_merged = engine.execute_sparql(&sparql).unwrap();
    assert_eq!(r_merged.stats.merged_services, 1, "{}", r_merged.explain);
    assert_eq!(r_merged.stats.services, 1);
    assert!(r_merged.explain.contains("JOIN"), "{}", r_merged.explain);

    // Same answers, fewer transferred rows than the unaware plan.
    let unaware = FederatedEngine::new(
        lake_idx,
        PlanConfig::unaware(NetworkProfile::NO_DELAY),
    );
    let r_unaware = unaware.execute_sparql(&sparql).unwrap();
    assert_eq!(answers(&r_merged.rows), answers(&r_unaware.rows));
    assert!(r_merged.stats.rows_transferred <= r_unaware.stats.rows_transferred);
}

#[test]
fn slow_networks_hurt_unaware_plans_more() {
    // The paper's headline observation: "the impact of network delays is
    // higher in the case of physical-design-unaware query execution plans."
    let (lake, _) = build_lake(true);
    let sparql = q_join_filter();
    let time = |mode: PlanMode, net: NetworkProfile| {
        let engine = FederatedEngine::new(lake.clone(), PlanConfig::new(mode, net));
        engine.execute_sparql(&sparql).unwrap().stats.execution_time
    };
    let unaware_fast = time(PlanMode::Unaware, NetworkProfile::NO_DELAY);
    let unaware_slow = time(PlanMode::Unaware, NetworkProfile::GAMMA3);
    let aware_fast = time(PlanMode::AWARE, NetworkProfile::NO_DELAY);
    let aware_slow = time(PlanMode::AWARE, NetworkProfile::GAMMA3);
    let unaware_slowdown = unaware_slow.as_secs_f64() / unaware_fast.as_secs_f64();
    let aware_slowdown = aware_slow.as_secs_f64() / aware_fast.as_secs_f64();
    assert!(
        unaware_slow >= aware_slow,
        "aware must not be slower under Gamma3: unaware={unaware_slow:?} aware={aware_slow:?}"
    );
    assert!(
        unaware_slowdown >= aware_slowdown * 0.9,
        "network delay should hit the unaware plan at least as hard: \
         unaware {unaware_slowdown:.2}x vs aware {aware_slowdown:.2}x"
    );
}

#[test]
fn naive_merge_translation_is_slower_than_optimized() {
    // §3: Ontario's unoptimized merged translation increases execution
    // time; the forced optimized SQL roughly halves it vs. unaware.
    let mut db = Database::new("d");
    db.execute("CREATE TABLE a (id TEXT PRIMARY KEY, b_ref TEXT, v TEXT)").unwrap();
    db.execute("CREATE TABLE b (id TEXT PRIMARY KEY, w TEXT)").unwrap();
    for i in 0..50 {
        db.execute(&format!("INSERT INTO a VALUES ('a{i}', 'b{}', 'v{i}')", i % 25))
            .unwrap();
    }
    for i in 0..25 {
        db.execute(&format!("INSERT INTO b VALUES ('b{i}', 'w{i}')")).unwrap();
    }
    db.execute("CREATE INDEX idx_a_bref ON a (b_ref)").unwrap();
    let mapping = DatasetMapping::new("d")
        .with_table(
            TableMapping::new("a", format!("{V}A"), IriTemplate::new("http://d/a/{}"), "id")
                .with_literal("v", &format!("{V}v"))
                .with_reference("b_ref", &format!("{V}toB"), IriTemplate::new("http://d/b/{}")),
        )
        .with_table(
            TableMapping::new("b", format!("{V}B"), IriTemplate::new("http://d/b/{}"), "id")
                .with_literal("w", &format!("{V}w")),
        );
    let mut lake = DataLake::new();
    lake.add_source(DataSource::relational("d", db, mapping));
    let sparql = format!(
        "SELECT ?v ?w WHERE {{ ?a <{V}v> ?v . ?a <{V}toB> ?b . ?b <{V}w> ?w }}"
    );

    let run = |mode: PlanMode, mt: MergeTranslation| {
        let mut cfg = PlanConfig::new(mode, NetworkProfile::GAMMA2);
        cfg.merge_translation = mt;
        let engine = FederatedEngine::new(lake.clone(), cfg);
        engine.execute_sparql(&sparql).unwrap()
    };
    let unaware = run(PlanMode::Unaware, MergeTranslation::Optimized);
    let optimized = run(PlanMode::AWARE, MergeTranslation::Optimized);
    let naive = run(PlanMode::AWARE, MergeTranslation::Naive);

    // All three agree on answers.
    assert_eq!(answers(&optimized.rows), answers(&unaware.rows));
    assert_eq!(answers(&naive.rows), answers(&unaware.rows));
    assert_eq!(naive.stats.sql_queries, 51, "N+1 behaviour");
    // Qualitative ordering of §3: naive merged > unaware > optimized.
    assert!(
        optimized.stats.execution_time < unaware.stats.execution_time,
        "optimized {:?} vs unaware {:?}",
        optimized.stats.execution_time,
        unaware.stats.execution_time
    );
    assert!(
        naive.stats.execution_time > optimized.stats.execution_time,
        "naive {:?} vs optimized {:?}",
        naive.stats.execution_time,
        optimized.stats.execution_time
    );
}

#[test]
fn heterogeneous_lake_rdf_plus_relational() {
    // One star answered by a native RDF source, one by a relational one.
    let mut g = Graph::new();
    for i in 0..10 {
        let s = fedlake_rdf::Term::iri(format!("http://lake.example/drugbank/drug/dr{i}"));
        g.insert_terms(
            s.clone(),
            fedlake_rdf::Term::iri(fedlake_rdf::vocab::rdf::TYPE),
            fedlake_rdf::Term::iri(format!("{V}Drug")),
        );
        g.insert_terms(
            s.clone(),
            fedlake_rdf::Term::iri(format!("{V}treats")),
            fedlake_rdf::Term::iri(format!(
                "http://lake.example/diseasome/disease/d{}",
                i % 10
            )),
        );
        g.insert_terms(
            s,
            fedlake_rdf::Term::iri(format!("{V}drugName")),
            fedlake_rdf::Term::literal(format!("drug {i}")),
        );
    }
    let (mut lake, _) = build_lake(true);
    lake.add_source(DataSource::sparql("drugbank", g));

    let sparql = format!(
        "SELECT ?dn ?n WHERE {{ \
           ?dr a <{V}Drug> . ?dr <{V}drugName> ?dn . ?dr <{V}treats> ?d . \
           ?d <{V}name> ?n }}"
    );
    for mode in [PlanMode::Unaware, PlanMode::AWARE] {
        let engine =
            FederatedEngine::new(lake.clone(), PlanConfig::new(mode, NetworkProfile::GAMMA1));
        let result = engine.execute_sparql(&sparql).unwrap();
        assert_eq!(result.rows.len(), 10, "mode {}: {}", mode.label(), result.explain);
    }
}

#[test]
fn traces_are_monotone_and_deterministic() {
    let (lake, _) = build_lake(true);
    let engine = FederatedEngine::new(
        lake.clone(),
        PlanConfig::unaware(NetworkProfile::GAMMA2),
    );
    let a = engine.execute_sparql(&q_join_filter()).unwrap();
    let b = engine.execute_sparql(&q_join_filter()).unwrap();
    assert_eq!(a.trace, b.trace, "virtual-clock runs are deterministic");
    let pts = a.trace.points();
    assert!(!pts.is_empty());
    for w in pts.windows(2) {
        assert!(w[0].0 <= w[1].0, "time is monotone");
        assert!(w[0].1 < w[1].1, "answer count strictly increases");
    }
    assert!(a.trace.total_time() >= pts.last().unwrap().0);
}

#[test]
fn limit_stops_streaming_early() {
    let (lake, _) = build_lake(true);
    let no_limit = FederatedEngine::new(
        lake.clone(),
        PlanConfig::unaware(NetworkProfile::GAMMA2),
    )
    .execute_sparql(&q_join_filter())
    .unwrap();
    let limited = FederatedEngine::new(
        lake,
        PlanConfig::unaware(NetworkProfile::GAMMA2),
    )
    .execute_sparql(&format!("{} LIMIT 2", q_join_filter()))
    .unwrap();
    assert_eq!(limited.rows.len(), 2);
    assert!(
        limited.stats.execution_time < no_limit.stats.execution_time,
        "early termination must save simulated time"
    );
}

#[test]
fn union_when_multiple_sources_offer_a_class() {
    // Two relational sources expose the same class: the star becomes a
    // Union of two services, and answers accumulate from both.
    let make_source = |id: &str, offset: usize| {
        let mut db = Database::new(id);
        db.execute("CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT)").unwrap();
        for i in 0..5 {
            db.execute(&format!(
                "INSERT INTO gene VALUES ('g{}', 'label {}')",
                i + offset,
                i + offset
            ))
            .unwrap();
        }
        let mapping = DatasetMapping::new(id).with_table(
            TableMapping::new(
                "gene",
                format!("{V}Gene"),
                IriTemplate::new(format!("http://lake.example/{id}/gene/{{}}")),
                "id",
            )
            .with_literal("label", &format!("{V}label")),
        );
        DataSource::relational(id, db, mapping)
    };
    let mut lake = DataLake::new();
    lake.add_source(make_source("left", 0));
    lake.add_source(make_source("right", 100));
    let sparql = format!("SELECT ?g ?l WHERE {{ ?g a <{V}Gene> . ?g <{V}label> ?l }}");
    for mode in [PlanMode::Unaware, PlanMode::AWARE] {
        let engine =
            FederatedEngine::new(lake.clone(), PlanConfig::new(mode, NetworkProfile::GAMMA1));
        let r = engine.execute_sparql(&sparql).unwrap();
        assert_eq!(r.rows.len(), 10, "mode {}:\n{}", mode.label(), r.explain);
        assert!(r.explain.contains("Union"), "{}", r.explain);
        assert_eq!(r.stats.services, 2);
    }
}

#[test]
fn federated_solution_modifiers() {
    let (lake, _) = build_lake(true);
    let base = format!(
        "SELECT ?n WHERE {{ ?g <{V}associatedDisease> ?d . ?d <{V}name> ?n }}"
    );
    let engine = FederatedEngine::new(lake, PlanConfig::aware(NetworkProfile::NO_DELAY));

    // DISTINCT collapses the 40 gene–disease pairs to 10 disease names.
    let distinct = engine
        .execute_sparql(&base.replace("SELECT ?n", "SELECT DISTINCT ?n"))
        .unwrap();
    assert_eq!(distinct.rows.len(), 10);

    // ORDER BY + LIMIT + OFFSET paginate deterministically.
    let page = engine
        .execute_sparql(&format!(
            "{} ORDER BY ?n LIMIT 3 OFFSET 2",
            base.replace("SELECT ?n", "SELECT DISTINCT ?n")
        ))
        .unwrap();
    assert_eq!(page.rows.len(), 3);
    let names: Vec<String> = page
        .rows
        .iter()
        .map(|r| {
            r.get(&fedlake_sparql::binding::Var::new("n"))
                .unwrap()
                .as_literal()
                .unwrap()
                .lexical
                .clone()
        })
        .collect();
    assert_eq!(names, vec!["disease 2", "disease 3", "disease 4"]);
}

#[test]
fn empty_lake_and_unanswerable_queries_error_cleanly() {
    let lake = DataLake::new();
    let engine = FederatedEngine::new(lake, PlanConfig::default());
    let err = engine
        .execute_sparql("SELECT ?x WHERE { ?x <http://nope/p> ?y }")
        .unwrap_err();
    assert!(matches!(err, fedlake_core::FedError::NoSourceFor(_)), "{err}");

    // Empty BGP is rejected by the federated planner.
    let (lake, _) = build_lake(true);
    let engine = FederatedEngine::new(lake, PlanConfig::default());
    let err = engine.execute_sparql("SELECT * WHERE { }").unwrap_err();
    assert!(matches!(err, fedlake_core::FedError::Unsupported(_)), "{err}");
}

#[test]
fn query_with_no_answers_completes_with_clean_trace() {
    let (lake, _) = build_lake(true);
    let engine = FederatedEngine::new(lake, PlanConfig::aware(NetworkProfile::GAMMA2));
    let r = engine
        .execute_sparql(&format!(
            r#"SELECT ?g WHERE {{ ?g <{V}species> ?sp . FILTER(?sp = "No such species") }}"#
        ))
        .unwrap();
    assert!(r.rows.is_empty());
    assert_eq!(r.trace.count(), 0);
    assert!(r.trace.first_answer().is_none());
    // Completion time is still recorded (sources were contacted).
    assert!(r.trace.total_time() > std::time::Duration::ZERO);
    assert!(r.stats.messages > 0);
}

#[test]
fn optional_federation_matches_oracle() {
    // OPTIONAL across sources: every gene row survives; names only where
    // the disease exists. Verified against the local OPTIONAL-capable
    // evaluator over the lifted lake.
    let (lake, oracle) = build_lake(true);
    let sparql = format!(
        "SELECT ?g ?sp ?n WHERE {{\n\
           ?g a <{V}Gene> . ?g <{V}species> ?sp .\n\
           OPTIONAL {{ ?g <{V}associatedDisease> ?d . ?d <{V}name> ?n }}\n\
         }}"
    );
    let expected = oracle_answers(&oracle, &sparql);
    assert_eq!(expected.len(), 40, "one row per gene");
    for mode in [PlanMode::Unaware, PlanMode::AWARE] {
        for network in [NetworkProfile::NO_DELAY, NetworkProfile::GAMMA2] {
            let engine = FederatedEngine::new(lake.clone(), PlanConfig::new(mode, network));
            let r = engine.execute_sparql(&sparql).unwrap();
            assert_eq!(
                answers(&r.rows),
                expected,
                "mode {} network {}\n{}",
                mode.label(),
                network.name,
                r.explain
            );
            assert!(r.explain.contains("LeftJoin (OPTIONAL)"), "{}", r.explain);
        }
    }
}

#[test]
fn optional_with_unmatched_rows() {
    // A lake where some genes reference a disease that does not exist:
    // those rows must survive the OPTIONAL with ?n unbound.
    let mut affy = Database::new("affymetrix");
    affy.execute("CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT, disease TEXT)")
        .unwrap();
    for i in 0..6 {
        // Even genes point at existing diseases, odd ones at missing ones.
        affy.execute(&format!(
            "INSERT INTO gene VALUES ('g{i}', 'gene {i}', 'd{}')",
            if i % 2 == 0 { i.to_string() } else { format!("missing{i}") }
        ))
        .unwrap();
    }
    let affy_mapping = DatasetMapping::new("affymetrix").with_table(
        TableMapping::new(
            "gene",
            format!("{V}Gene"),
            IriTemplate::new("http://lake.example/affymetrix/gene/{}"),
            "id",
        )
        .with_literal("label", &format!("{V}label"))
        .with_reference(
            "disease",
            &format!("{V}associatedDisease"),
            IriTemplate::new("http://lake.example/diseasome/disease/{}"),
        ),
    );
    let mut dis = Database::new("diseasome");
    dis.execute("CREATE TABLE disease (id TEXT PRIMARY KEY, name TEXT)").unwrap();
    for i in [0, 2, 4] {
        dis.execute(&format!("INSERT INTO disease VALUES ('d{i}', 'disease {i}')"))
            .unwrap();
    }
    let dis_mapping = DatasetMapping::new("diseasome").with_table(
        TableMapping::new(
            "disease",
            format!("{V}Disease"),
            IriTemplate::new("http://lake.example/diseasome/disease/{}"),
            "id",
        )
        .with_literal("name", &format!("{V}name")),
    );
    let mut lake = DataLake::new();
    lake.add_source(DataSource::relational("affymetrix", affy, affy_mapping));
    lake.add_source(DataSource::relational("diseasome", dis, dis_mapping));

    let sparql = format!(
        "SELECT ?g ?n WHERE {{ ?g <{V}label> ?l . \
         OPTIONAL {{ ?g <{V}associatedDisease> ?d . ?d <{V}name> ?n }} }}"
    );
    let engine = FederatedEngine::new(lake, PlanConfig::aware(NetworkProfile::GAMMA1));
    let r = engine.execute_sparql(&sparql).unwrap();
    assert_eq!(r.rows.len(), 6, "{}", r.explain);
    let bound = r
        .rows
        .iter()
        .filter(|row| row.is_bound(&fedlake_sparql::binding::Var::new("n")))
        .count();
    assert_eq!(bound, 3, "only genes with existing diseases bind ?n");
}

#[test]
fn correlated_optionals_are_rejected() {
    let (lake, _) = build_lake(true);
    // ?x is bound only inside OPTIONALs but shared between two of them.
    let sparql = format!(
        "SELECT * WHERE {{ ?g a <{V}Gene> . \
         OPTIONAL {{ ?g <{V}label> ?x }} . \
         OPTIONAL {{ ?d <{V}name> ?x }} }}"
    );
    let engine = FederatedEngine::new(lake, PlanConfig::default());
    let err = engine.execute_sparql(&sparql).unwrap_err();
    assert!(matches!(err, fedlake_core::FedError::Unsupported(_)), "{err}");
}

#[test]
fn union_pattern_federates_and_matches_oracle() {
    // { sapiens genes } UNION { musculus genes }, joined with the disease
    // star outside the union — exercises Union + Join over the block.
    let (lake, oracle) = build_lake(true);
    let sparql = format!(
        "SELECT ?g ?n WHERE {{\n\
           {{ ?g <{V}species> \"Homo sapiens\" }} UNION {{ ?g <{V}species> \"Mus musculus\" }}\n\
           ?g <{V}associatedDisease> ?d .\n\
           ?d <{V}name> ?n .\n\
         }}"
    );
    let expected = oracle_answers(&oracle, &sparql);
    assert_eq!(expected.len(), 40, "every gene is one of the two species");
    for mode in [PlanMode::Unaware, PlanMode::AWARE] {
        let engine =
            FederatedEngine::new(lake.clone(), PlanConfig::new(mode, NetworkProfile::GAMMA1));
        let r = engine.execute_sparql(&sparql).unwrap();
        assert_eq!(
            answers(&r.rows),
            expected,
            "mode {}\n{}",
            mode.label(),
            r.explain
        );
        assert!(r.explain.contains("Union"), "{}", r.explain);
    }
}

#[test]
fn pure_union_query_without_required_part() {
    let (lake, oracle) = build_lake(true);
    let sparql = format!(
        "SELECT ?x WHERE {{ {{ ?x a <{V}Gene> }} UNION {{ ?x a <{V}Disease> }} }}"
    );
    let expected = oracle_answers(&oracle, &sparql);
    assert_eq!(expected.len(), 50, "40 genes + 10 diseases");
    let engine = FederatedEngine::new(lake, PlanConfig::aware(NetworkProfile::NO_DELAY));
    let r = engine.execute_sparql(&sparql).unwrap();
    assert_eq!(answers(&r.rows), expected, "{}", r.explain);
}

#[test]
fn union_with_filter_and_optional_composes() {
    let (lake, oracle) = build_lake(true);
    // A filter over the union variable plus an optional extension.
    let sparql = format!(
        "SELECT ?g ?sp ?n WHERE {{\n\
           {{ ?g <{V}species> ?sp . FILTER(CONTAINS(?sp, \"sapiens\")) }}\n\
           UNION\n\
           {{ ?g <{V}species> ?sp . FILTER(CONTAINS(?sp, \"musculus\")) }}\n\
           OPTIONAL {{ ?g <{V}associatedDisease> ?d . ?d <{V}name> ?n }}\n\
         }}"
    );
    let expected = oracle_answers(&oracle, &sparql);
    let engine = FederatedEngine::new(lake, PlanConfig::aware(NetworkProfile::GAMMA1));
    let r = engine.execute_sparql(&sparql).unwrap();
    assert_eq!(answers(&r.rows), expected, "{}", r.explain);
    assert!(r.explain.contains("Union"), "{}", r.explain);
    assert!(r.explain.contains("LeftJoin"), "{}", r.explain);
}

#[test]
fn bind_join_agrees_with_hash_join_and_ships_fewer_rows() {
    use fedlake_core::EngineJoin;
    // A selective left (4 sapiens genes out of 40) against a large right
    // (200 diseases): the bind join ships only the 4 needed keys instead
    // of fetching the whole disease table.
    let mut affy = Database::new("affymetrix");
    affy.execute(
        "CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT, species TEXT, disease TEXT)",
    )
    .unwrap();
    for i in 0..40 {
        let species = if i % 10 == 0 { "Homo sapiens" } else { "Mus musculus" };
        affy.execute(&format!(
            "INSERT INTO gene VALUES ('g{i}', 'gene {i}', '{species}', 'd{}')",
            i * 5
        ))
        .unwrap();
    }
    let affy_mapping = DatasetMapping::new("affymetrix").with_table(
        TableMapping::new(
            "gene",
            format!("{V}Gene"),
            IriTemplate::new("http://lake.example/affymetrix/gene/{}"),
            "id",
        )
        .with_literal("label", &format!("{V}label"))
        .with_literal("species", &format!("{V}species"))
        .with_reference(
            "disease",
            &format!("{V}associatedDisease"),
            IriTemplate::new("http://lake.example/diseasome/disease/{}"),
        ),
    );
    let mut dis = Database::new("diseasome");
    dis.execute("CREATE TABLE disease (id TEXT PRIMARY KEY, name TEXT)").unwrap();
    for i in 0..200 {
        dis.execute(&format!("INSERT INTO disease VALUES ('d{i}', 'disease {i}')"))
            .unwrap();
    }
    let dis_mapping = DatasetMapping::new("diseasome").with_table(
        TableMapping::new(
            "disease",
            format!("{V}Disease"),
            IriTemplate::new("http://lake.example/diseasome/disease/{}"),
            "id",
        )
        .with_literal("name", &format!("{V}name")),
    );
    let mut lake = DataLake::new();
    lake.add_source(DataSource::relational("affymetrix", affy, affy_mapping));
    lake.add_source(DataSource::relational("diseasome", dis, dis_mapping));

    let sparql = q_join_filter();
    // This test exercises the *heuristic* EngineJoin knob; pin the
    // cost-based planner off so FEDLAKE_COST=1 runs keep the contrast.
    let mut hash_cfg = PlanConfig::unaware(NetworkProfile::GAMMA2);
    hash_cfg.cost_based = false;
    let hash = FederatedEngine::new(lake.clone(), hash_cfg)
        .execute_sparql(&sparql)
        .unwrap();
    let mut cfg = PlanConfig::unaware(NetworkProfile::GAMMA2);
    cfg.cost_based = false;
    cfg.engine_join = EngineJoin::Bind { batch_size: 8 };
    let bind = FederatedEngine::new(lake, cfg)
        .execute_sparql(&sparql)
        .unwrap();
    assert_eq!(answers(&bind.rows), answers(&hash.rows), "{}", bind.explain);
    assert_eq!(bind.rows.len(), 4);
    assert!(bind.explain.contains("BindJoin"), "{}", bind.explain);
    assert!(
        bind.stats.rows_transferred < hash.stats.rows_transferred,
        "bind {} vs hash {}",
        bind.stats.rows_transferred,
        hash.stats.rows_transferred
    );
    // And under this (selective, slow-network) regime it is faster.
    assert!(
        bind.stats.execution_time < hash.stats.execution_time,
        "bind {:?} vs hash {:?}",
        bind.stats.execution_time,
        hash.stats.execution_time
    );
}

#[test]
fn bind_join_composes_with_optional_and_union() {
    use fedlake_core::EngineJoin;
    let (lake, oracle) = build_lake(true);
    let sparql = format!(
        "SELECT ?g ?n WHERE {{\n\
           {{ ?g <{V}species> \"Homo sapiens\" }} UNION {{ ?g <{V}species> \"Mus musculus\" }}\n\
           OPTIONAL {{ ?g <{V}associatedDisease> ?d . ?d <{V}name> ?n }}\n\
         }}"
    );
    let expected = oracle_answers(&oracle, &sparql);
    let mut cfg = PlanConfig::aware(NetworkProfile::GAMMA1);
    cfg.engine_join = EngineJoin::Bind { batch_size: 4 };
    let r = FederatedEngine::new(lake, cfg).execute_sparql(&sparql).unwrap();
    assert_eq!(answers(&r.rows), expected, "{}", r.explain);
}

#[test]
fn fed_result_serializes_to_w3c_formats() {
    let (lake, _) = build_lake(true);
    let engine = FederatedEngine::new(lake, PlanConfig::aware(NetworkProfile::NO_DELAY));
    let r = engine
        .execute_sparql(&format!(
            "SELECT ?g ?n WHERE {{ ?g <{V}associatedDisease> ?d . ?d <{V}name> ?n }} \
             ORDER BY ?g LIMIT 2"
        ))
        .unwrap();
    let json = r.to_json();
    assert!(json.starts_with("{\"head\":{\"vars\":[\"g\",\"n\"]}"), "{json}");
    assert!(json.contains("\"type\":\"uri\""), "{json}");
    assert!(json.contains("\"type\":\"literal\""), "{json}");
    assert_eq!(json.matches("\"g\":").count(), 2, "{json}");
    let csv = r.to_csv();
    let lines: Vec<&str> = csv.trim_end().split("\r\n").collect();
    assert_eq!(lines[0], "g,n");
    assert_eq!(lines.len(), 3);
    assert!(lines[1].starts_with("http://lake.example/affymetrix/gene/"), "{csv}");
}

#[test]
fn batched_messages_reduce_simulated_time_but_not_answers() {
    let (lake, _) = build_lake(true);
    let run = |rows_per_message: usize| {
        let mut cfg = PlanConfig::unaware(NetworkProfile::GAMMA2);
        cfg.rows_per_message = rows_per_message;
        FederatedEngine::new(lake.clone(), cfg)
            .execute_sparql(&q_join_filter())
            .unwrap()
    };
    let per_row = run(1);
    let batched = run(32);
    assert_eq!(answers(&per_row.rows), answers(&batched.rows));
    assert!(batched.stats.messages < per_row.stats.messages);
    assert!(batched.stats.execution_time < per_row.stats.execution_time);
    // Rows transferred are identical — only the framing changes.
    assert_eq!(batched.stats.rows_transferred, per_row.stats.rows_transferred);
}
