//! Failure-injection tests: a lake whose semantic layer is broken (wrong
//! table names, wrong columns, malformed mappings) must surface clean
//! errors through the federated engine — never panics, never silent empty
//! results where the failure is detectable.

use fedlake_core::{DataLake, DataSource, FedError, FederatedEngine, PlanConfig};
use fedlake_mapping::{DatasetMapping, IriTemplate, TableMapping};
use fedlake_netsim::NetworkProfile;
use fedlake_relational::Database;

const V: &str = "http://f/v/";

fn db_with_gene_table() -> Database {
    let mut db = Database::new("src");
    db.execute("CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT)").unwrap();
    db.execute("INSERT INTO gene VALUES ('g1', 'BRCA1')").unwrap();
    db
}

fn engine_with(mapping: DatasetMapping) -> FederatedEngine {
    let mut lake = DataLake::new();
    lake.add_source(DataSource::relational("src", db_with_gene_table(), mapping));
    FederatedEngine::new(lake, PlanConfig::aware(NetworkProfile::NO_DELAY))
}

#[test]
fn mapping_to_missing_table_fails_at_planning() {
    let mapping = DatasetMapping::new("src").with_table(
        TableMapping::new(
            "nonexistent",
            format!("{V}Gene"),
            IriTemplate::new("http://f/gene/{}"),
            "id",
        )
        .with_literal("label", &format!("{V}label")),
    );
    let engine = engine_with(mapping);
    let err = engine
        .execute_sparql(&format!("SELECT ?l WHERE {{ ?g <{V}label> ?l }}"))
        .unwrap_err();
    assert!(matches!(err, FedError::Internal(_)), "{err}");
    assert!(err.to_string().contains("nonexistent"), "{err}");
}

#[test]
fn mapping_to_missing_column_fails_at_execution() {
    // The mapping names a column the table does not have: planning builds
    // SQL, the source rejects it, and the error carries the column name.
    let mapping = DatasetMapping::new("src").with_table(
        TableMapping::new(
            "gene",
            format!("{V}Gene"),
            IriTemplate::new("http://f/gene/{}"),
            "id",
        )
        .with_literal("label", &format!("{V}label"))
        .with_literal("ghost_column", &format!("{V}ghost")),
    );
    let engine = engine_with(mapping);
    let err = engine
        .execute_sparql(&format!(
            "SELECT ?x WHERE {{ ?g <{V}label> ?l . ?g <{V}ghost> ?x }}"
        ))
        .unwrap_err();
    match err {
        // The subject-column lookup catches it at translation time…
        FedError::Internal(m) => assert!(m.contains("ghost"), "{m}"),
        // …or the relational engine rejects the generated SQL.
        FedError::Sql(e) => assert!(e.to_string().contains("ghost"), "{e}"),
        other => panic!("unexpected error kind: {other}"),
    }
}

#[test]
fn mapping_with_wrong_subject_column_errors() {
    let mapping = DatasetMapping::new("src").with_table(
        TableMapping::new(
            "gene",
            format!("{V}Gene"),
            IriTemplate::new("http://f/gene/{}"),
            "no_such_key",
        )
        .with_literal("label", &format!("{V}label")),
    );
    let engine = engine_with(mapping);
    let err = engine
        .execute_sparql(&format!("SELECT ?l WHERE {{ ?g <{V}label> ?l }}"))
        .unwrap_err();
    // The generated SQL selects the bogus key column; the source rejects.
    assert!(matches!(err, FedError::Sql(_)), "{err}");
}

#[test]
fn ground_subject_not_matching_template_errors() {
    let mapping = DatasetMapping::new("src").with_table(
        TableMapping::new(
            "gene",
            format!("{V}Gene"),
            IriTemplate::new("http://f/gene/{}"),
            "id",
        )
        .with_literal("label", &format!("{V}label")),
    );
    let engine = engine_with(mapping);
    // Subject IRI from a different namespace cannot be keyed.
    let err = engine
        .execute_sparql(&format!(
            "SELECT ?l WHERE {{ <http://other/ns/g1> <{V}label> ?l }}"
        ))
        .unwrap_err();
    assert!(matches!(err, FedError::Internal(_)), "{err}");
}

#[test]
fn plan_against_missing_source_yields_no_such_source() {
    let mapping = DatasetMapping::new("src").with_table(
        TableMapping::new(
            "gene",
            format!("{V}Gene"),
            IriTemplate::new("http://f/gene/{}"),
            "id",
        )
        .with_literal("label", &format!("{V}label")),
    );
    let engine = engine_with(mapping);
    let ast = fedlake_sparql::parser::parse_query(&format!(
        "SELECT ?l WHERE {{ ?g <{V}label> ?l }}"
    ))
    .unwrap();
    let planned = engine.plan(&ast).unwrap();
    // The plan names source "src"; an engine over a lake without it must
    // fail with the typed error, not a panic or an opaque string.
    let empty = FederatedEngine::new(
        DataLake::new(),
        PlanConfig::aware(NetworkProfile::NO_DELAY),
    );
    let err = empty.execute_planned(&planned).unwrap_err();
    assert!(matches!(err, FedError::NoSuchSource(ref id) if id == "src"), "{err}");
    assert!(err.to_string().contains("src"), "{err}");
    let err = empty.execute_planned_reference(&planned).unwrap_err();
    assert!(matches!(err, FedError::NoSuchSource(ref id) if id == "src"), "{err}");
}

#[test]
fn parse_errors_surface_as_sparql_errors() {
    let mapping = DatasetMapping::new("src").with_table(
        TableMapping::new(
            "gene",
            format!("{V}Gene"),
            IriTemplate::new("http://f/gene/{}"),
            "id",
        )
        .with_literal("label", &format!("{V}label")),
    );
    let engine = engine_with(mapping);
    let err = engine.execute_sparql("SELEC ?x WHER { }").unwrap_err();
    assert!(matches!(err, FedError::Sparql(_)), "{err}");
}

#[test]
fn variable_class_over_relational_source_errors() {
    let mapping = DatasetMapping::new("src").with_table(
        TableMapping::new(
            "gene",
            format!("{V}Gene"),
            IriTemplate::new("http://f/gene/{}"),
            "id",
        )
        .with_literal("label", &format!("{V}label")),
    );
    let engine = engine_with(mapping);
    // `?g a ?c` needs a triple store; the only source is relational, so
    // the translation step rejects the variable class.
    let err = engine
        .execute_sparql("SELECT ?c WHERE { ?g a ?c }")
        .unwrap_err();
    assert!(matches!(err, FedError::Unsupported(_)), "{err}");
}
