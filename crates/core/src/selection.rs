//! Source selection: matching star-shaped sub-queries against the lake's
//! RDF Molecule Templates (the MULDER/Ontario strategy).

use crate::decompose::StarSubquery;
use crate::error::FedError;
use crate::health::HealthView;
use crate::lake::DataLake;
use fedlake_mapping::RdfMoleculeTemplate;

/// One candidate source for a star: the source id and the molecule
/// template that matched.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The matched source.
    pub source_id: String,
    /// The class whose molecule matched.
    pub class: String,
    /// Estimated instances at the source.
    pub cardinality: usize,
}

/// Selects the candidate sources for one star.
///
/// A molecule template matches when (a) the star's class constraint, if
/// any, equals the template's class, and (b) the template offers every
/// ground predicate of the star. Stars with variable predicates can only
/// be answered by SPARQL sources (full triple stores).
pub fn candidates_for(star: &StarSubquery, lake: &DataLake) -> Vec<Candidate> {
    if star.has_variable_predicate() {
        // Only native RDF stores answer variable-predicate stars.
        return lake
            .sources()
            .iter()
            .filter(|s| !s.is_relational())
            .map(|s| Candidate {
                source_id: s.id().to_string(),
                class: star.class.clone().unwrap_or_default(),
                cardinality: 0,
            })
            .collect();
    }
    let preds = star.predicates();
    lake.molecule_templates()
        .iter()
        .filter(|mt| class_matches(mt, star) && mt.offers_all(&preds))
        .map(|mt| Candidate {
            source_id: mt.source_id.clone(),
            class: mt.class.clone(),
            cardinality: mt.cardinality,
        })
        .collect()
}

fn class_matches(mt: &RdfMoleculeTemplate, star: &StarSubquery) -> bool {
    match &star.class {
        Some(c) => &mt.class == c,
        None => true,
    }
}

/// Selects sources for every star; errors when a star has no candidate.
pub fn select_sources(
    stars: &[StarSubquery],
    lake: &DataLake,
) -> Result<Vec<Vec<Candidate>>, FedError> {
    select_sources_with_health(stars, lake, &HealthView::empty(), false).map(|(c, _)| c)
}

/// Health-aware source selection: like [`select_sources`], but when
/// `degraded_ok` is set, a candidate whose replica endpoints have *all*
/// crossed the failure threshold is demoted — it is skipped for the star
/// as long as at least one healthier candidate remains, and its source id
/// is reported back so the engine can mark the answer degraded. A star
/// whose candidates are all degraded keeps them: partial answers beat no
/// answers, and strict mode never skips (failover handles faults there).
///
/// Returns the per-star candidate lists and the skipped source ids (in
/// deterministic first-seen order, deduplicated).
pub fn select_sources_with_health(
    stars: &[StarSubquery],
    lake: &DataLake,
    health: &HealthView,
    degraded_ok: bool,
) -> Result<(Vec<Vec<Candidate>>, Vec<String>), FedError> {
    let mut skipped: Vec<String> = Vec::new();
    let mut per_star = Vec::with_capacity(stars.len());
    for star in stars {
        let cands = candidates_for(star, lake);
        if cands.is_empty() {
            return Err(FedError::NoSourceFor(star.subject.to_string()));
        }
        let kept: Vec<Candidate> = if degraded_ok {
            let degraded = |c: &Candidate| {
                health.all_degraded(
                    lake.replica_endpoints(&c.source_id).iter().map(String::as_str),
                )
            };
            let healthy: Vec<Candidate> =
                cands.iter().filter(|c| !degraded(c)).cloned().collect();
            if healthy.is_empty() {
                cands
            } else {
                for c in &cands {
                    if degraded(c) && !skipped.contains(&c.source_id) {
                        skipped.push(c.source_id.clone());
                    }
                }
                healthy
            }
        } else {
            cands
        };
        per_star.push(kept);
    }
    Ok((per_star, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use crate::source::DataSource;
    use fedlake_mapping::{DatasetMapping, IriTemplate, TableMapping};
    use fedlake_relational::Database;
    use fedlake_sparql::parser::parse_query;

    fn lake() -> DataLake {
        let mut db = Database::new("diseasome");
        db.execute("CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT)").unwrap();
        db.execute("INSERT INTO gene VALUES ('g1', 'BRCA1')").unwrap();
        db.execute("INSERT INTO gene VALUES ('g2', 'TP53')").unwrap();
        let mapping = DatasetMapping::new("diseasome").with_table(
            TableMapping::new(
                "gene",
                "http://v/Gene",
                IriTemplate::new("http://d/gene/{}"),
                "id",
            )
            .with_literal("label", "http://v/label"),
        );
        let mut lake = DataLake::new();
        lake.add_source(DataSource::relational("diseasome", db, mapping));

        // A SPARQL source offering a different class.
        let mut g = fedlake_rdf::Graph::new();
        g.insert_terms(
            fedlake_rdf::Term::iri("http://d/d1"),
            fedlake_rdf::Term::iri(fedlake_rdf::vocab::rdf::TYPE),
            fedlake_rdf::Term::iri("http://v/Drug"),
        );
        g.insert_terms(
            fedlake_rdf::Term::iri("http://d/d1"),
            fedlake_rdf::Term::iri("http://v/name"),
            fedlake_rdf::Term::literal("Aspirin"),
        );
        lake.add_source(DataSource::sparql("drugbank", g));
        lake
    }

    fn stars(q: &str) -> Vec<StarSubquery> {
        decompose(&parse_query(q).unwrap()).unwrap().stars
    }

    #[test]
    fn class_constrained_selection() {
        let lake = lake();
        let s = stars("SELECT * WHERE { ?g a <http://v/Gene> . ?g <http://v/label> ?l }");
        let c = candidates_for(&s[0], &lake);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].source_id, "diseasome");
        assert_eq!(c[0].cardinality, 2);
    }

    #[test]
    fn predicate_based_selection_without_class() {
        let lake = lake();
        let s = stars("SELECT * WHERE { ?g <http://v/label> ?l }");
        let c = candidates_for(&s[0], &lake);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].source_id, "diseasome");
    }

    #[test]
    fn missing_predicate_excludes_source() {
        let lake = lake();
        let s = stars("SELECT * WHERE { ?g <http://v/label> ?l . ?g <http://v/unknown> ?u }");
        assert!(candidates_for(&s[0], &lake).is_empty());
        assert!(matches!(
            select_sources(&s, &lake),
            Err(FedError::NoSourceFor(_))
        ));
    }

    #[test]
    fn sparql_source_selected_for_its_class() {
        let lake = lake();
        let s = stars("SELECT * WHERE { ?d a <http://v/Drug> . ?d <http://v/name> ?n }");
        let c = candidates_for(&s[0], &lake);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].source_id, "drugbank");
    }

    #[test]
    fn variable_predicate_goes_to_sparql_sources_only() {
        let lake = lake();
        let s = stars("SELECT * WHERE { ?s ?p ?o }");
        let c = candidates_for(&s[0], &lake);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].source_id, "drugbank");
    }

    #[test]
    fn degraded_candidates_are_skipped_only_when_safe() {
        use crate::health::SourceHealth;
        let mut lake = lake();
        // A second SPARQL source offering the same Drug molecule.
        let mut g = fedlake_rdf::Graph::new();
        g.insert_terms(
            fedlake_rdf::Term::iri("http://d/d2"),
            fedlake_rdf::Term::iri(fedlake_rdf::vocab::rdf::TYPE),
            fedlake_rdf::Term::iri("http://v/Drug"),
        );
        g.insert_terms(
            fedlake_rdf::Term::iri("http://d/d2"),
            fedlake_rdf::Term::iri("http://v/name"),
            fedlake_rdf::Term::literal("Ibuprofen"),
        );
        lake.add_source(DataSource::sparql("drugbank2", g));
        let s = stars("SELECT * WHERE { ?d a <http://v/Drug> . ?d <http://v/name> ?n }");

        let health = SourceHealth::new();
        health.observe("drugbank", 0, 9);
        let view =
            HealthView { endpoints: health.snapshot(), threshold: 8, generation: health.generation() };

        // degraded_ok: the unhealthy candidate is demoted and reported.
        let (cands, skipped) = select_sources_with_health(&s, &lake, &view, true).unwrap();
        assert_eq!(cands[0].len(), 1);
        assert_eq!(cands[0][0].source_id, "drugbank2");
        assert_eq!(skipped, vec!["drugbank".to_string()]);

        // Strict mode keeps every candidate (failover handles faults).
        let (cands, skipped) = select_sources_with_health(&s, &lake, &view, false).unwrap();
        assert_eq!(cands[0].len(), 2);
        assert!(skipped.is_empty());

        // When every candidate is degraded, none are dropped.
        health.observe("drugbank2", 0, 9);
        let view =
            HealthView { endpoints: health.snapshot(), threshold: 8, generation: health.generation() };
        let (cands, skipped) = select_sources_with_health(&s, &lake, &view, true).unwrap();
        assert_eq!(cands[0].len(), 2);
        assert!(skipped.is_empty());
    }

    #[test]
    fn select_sources_covers_all_stars() {
        let lake = lake();
        let s = stars(
            "SELECT * WHERE { ?g a <http://v/Gene> . ?g <http://v/label> ?l . \
             ?d a <http://v/Drug> . ?d <http://v/name> ?n }",
        );
        let per_star = select_sources(&s, &lake).unwrap();
        assert_eq!(per_star.len(), 2);
        assert_eq!(per_star[0][0].source_id, "diseasome");
        assert_eq!(per_star[1][0].source_id, "drugbank");
    }
}
