//! Source selection: matching star-shaped sub-queries against the lake's
//! RDF Molecule Templates (the MULDER/Ontario strategy).

use crate::decompose::StarSubquery;
use crate::error::FedError;
use crate::lake::DataLake;
use fedlake_mapping::RdfMoleculeTemplate;

/// One candidate source for a star: the source id and the molecule
/// template that matched.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The matched source.
    pub source_id: String,
    /// The class whose molecule matched.
    pub class: String,
    /// Estimated instances at the source.
    pub cardinality: usize,
}

/// Selects the candidate sources for one star.
///
/// A molecule template matches when (a) the star's class constraint, if
/// any, equals the template's class, and (b) the template offers every
/// ground predicate of the star. Stars with variable predicates can only
/// be answered by SPARQL sources (full triple stores).
pub fn candidates_for(star: &StarSubquery, lake: &DataLake) -> Vec<Candidate> {
    if star.has_variable_predicate() {
        // Only native RDF stores answer variable-predicate stars.
        return lake
            .sources()
            .iter()
            .filter(|s| !s.is_relational())
            .map(|s| Candidate {
                source_id: s.id().to_string(),
                class: star.class.clone().unwrap_or_default(),
                cardinality: 0,
            })
            .collect();
    }
    let preds = star.predicates();
    lake.molecule_templates()
        .iter()
        .filter(|mt| class_matches(mt, star) && mt.offers_all(&preds))
        .map(|mt| Candidate {
            source_id: mt.source_id.clone(),
            class: mt.class.clone(),
            cardinality: mt.cardinality,
        })
        .collect()
}

fn class_matches(mt: &RdfMoleculeTemplate, star: &StarSubquery) -> bool {
    match &star.class {
        Some(c) => &mt.class == c,
        None => true,
    }
}

/// Selects sources for every star; errors when a star has no candidate.
pub fn select_sources(
    stars: &[StarSubquery],
    lake: &DataLake,
) -> Result<Vec<Vec<Candidate>>, FedError> {
    stars
        .iter()
        .map(|star| {
            let cands = candidates_for(star, lake);
            if cands.is_empty() {
                Err(FedError::NoSourceFor(star.subject.to_string()))
            } else {
                Ok(cands)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use crate::source::DataSource;
    use fedlake_mapping::{DatasetMapping, IriTemplate, TableMapping};
    use fedlake_relational::Database;
    use fedlake_sparql::parser::parse_query;

    fn lake() -> DataLake {
        let mut db = Database::new("diseasome");
        db.execute("CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT)").unwrap();
        db.execute("INSERT INTO gene VALUES ('g1', 'BRCA1')").unwrap();
        db.execute("INSERT INTO gene VALUES ('g2', 'TP53')").unwrap();
        let mapping = DatasetMapping::new("diseasome").with_table(
            TableMapping::new(
                "gene",
                "http://v/Gene",
                IriTemplate::new("http://d/gene/{}"),
                "id",
            )
            .with_literal("label", "http://v/label"),
        );
        let mut lake = DataLake::new();
        lake.add_source(DataSource::relational("diseasome", db, mapping));

        // A SPARQL source offering a different class.
        let mut g = fedlake_rdf::Graph::new();
        g.insert_terms(
            fedlake_rdf::Term::iri("http://d/d1"),
            fedlake_rdf::Term::iri(fedlake_rdf::vocab::rdf::TYPE),
            fedlake_rdf::Term::iri("http://v/Drug"),
        );
        g.insert_terms(
            fedlake_rdf::Term::iri("http://d/d1"),
            fedlake_rdf::Term::iri("http://v/name"),
            fedlake_rdf::Term::literal("Aspirin"),
        );
        lake.add_source(DataSource::sparql("drugbank", g));
        lake
    }

    fn stars(q: &str) -> Vec<StarSubquery> {
        decompose(&parse_query(q).unwrap()).unwrap().stars
    }

    #[test]
    fn class_constrained_selection() {
        let lake = lake();
        let s = stars("SELECT * WHERE { ?g a <http://v/Gene> . ?g <http://v/label> ?l }");
        let c = candidates_for(&s[0], &lake);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].source_id, "diseasome");
        assert_eq!(c[0].cardinality, 2);
    }

    #[test]
    fn predicate_based_selection_without_class() {
        let lake = lake();
        let s = stars("SELECT * WHERE { ?g <http://v/label> ?l }");
        let c = candidates_for(&s[0], &lake);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].source_id, "diseasome");
    }

    #[test]
    fn missing_predicate_excludes_source() {
        let lake = lake();
        let s = stars("SELECT * WHERE { ?g <http://v/label> ?l . ?g <http://v/unknown> ?u }");
        assert!(candidates_for(&s[0], &lake).is_empty());
        assert!(matches!(
            select_sources(&s, &lake),
            Err(FedError::NoSourceFor(_))
        ));
    }

    #[test]
    fn sparql_source_selected_for_its_class() {
        let lake = lake();
        let s = stars("SELECT * WHERE { ?d a <http://v/Drug> . ?d <http://v/name> ?n }");
        let c = candidates_for(&s[0], &lake);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].source_id, "drugbank");
    }

    #[test]
    fn variable_predicate_goes_to_sparql_sources_only() {
        let lake = lake();
        let s = stars("SELECT * WHERE { ?s ?p ?o }");
        let c = candidates_for(&s[0], &lake);
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].source_id, "drugbank");
    }

    #[test]
    fn select_sources_covers_all_stars() {
        let lake = lake();
        let s = stars(
            "SELECT * WHERE { ?g a <http://v/Gene> . ?g <http://v/label> ?l . \
             ?d a <http://v/Drug> . ?d <http://v/name> ?n }",
        );
        let per_star = select_sources(&s, &lake).unwrap();
        assert_eq!(per_star.len(), 2);
        assert_eq!(per_star[0][0].source_id, "diseasome");
        assert_eq!(per_star[1][0].source_id, "drugbank");
    }
}
