//! Source wrappers.
//!
//! A wrapper executes a service request against its source and streams the
//! resulting solution mappings to the engine. Network delays are simulated
//! here, exactly as in the paper: *"Network delays are simulated within
//! the SQL wrapper …; delaying the retrieval of the next answer from the
//! source"* (§3). Every message pulled through the wrapper advances the
//! shared clock by a sampled latency (via [`Link`]); the source's own
//! computation advances it by the cost model's price for the work the
//! relational engine reports.
//!
//! Wrappers are the encode boundary of the slot-row representation: lifted
//! terms are interned into the query-scoped dictionary here, so everything
//! downstream of a wrapper handles `u32` ids only.

use crate::error::FedError;
use crate::fedplan::{NaiveJoin, ReplicaRoute, ServiceKind, ServiceNode, SqlRequest};
use crate::lake::{logical_source_id, DataLake};
use crate::obs::SpanKind;
use crate::operators::{BoxedOp, ExecCtx, FedOp, Poll};
use crate::source::DataSource;
use crate::translate::{sql_single, Lift, OutputBinding, StarPart};
use fedlake_mapping::lift::{term_to_value, value_key, value_to_term};
use fedlake_netsim::cost::fedlake_relational_cost;
use fedlake_netsim::{EventTime, Link};
use fedlake_rdf::{Dictionary, FastMap, TermId};
use fedlake_relational::{Database, ResultSet, Value};
use fedlake_sparql::binding::{encode_row, Row, RowBatch, RowSchema, SlotRow};
use fedlake_sparql::eval::eval_bgp;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A stream's resolved connection to one logical source: the replica
/// endpoints (with their links) in the planner's preferred order, plus a
/// sticky cursor at the replica currently serving the stream.
///
/// Failover semantics live here: when the active replica exhausts its
/// retry budget the transfer helpers advance the cursor and continue the
/// stream's *remaining* messages on the next endpoint (a resumable result
/// stream), never returning to an earlier replica within the stream. Only
/// when the last endpoint's budget is spent does the stream surface
/// [`FedError::SourceUnavailable`] — attributed to the logical source,
/// with the total attempt count across every replica tried.
#[derive(Debug)]
pub struct SourceRoute {
    logical: String,
    endpoints: Vec<(String, Arc<Link>)>,
    active: AtomicUsize,
}

impl SourceRoute {
    /// A route over explicit endpoints, preferred first. Panics on an
    /// empty endpoint list — a route must lead somewhere.
    pub fn new(logical: impl Into<String>, endpoints: Vec<(String, Arc<Link>)>) -> Self {
        assert!(!endpoints.is_empty(), "a route needs at least one endpoint");
        SourceRoute { logical: logical.into(), endpoints, active: AtomicUsize::new(0) }
    }

    /// The unreplicated route: one endpoint, named like the source.
    pub fn single(id: impl Into<String>, link: Arc<Link>) -> Self {
        let id = id.into();
        SourceRoute::new(id.clone(), vec![(id, link)])
    }

    /// The logical source id this route serves.
    pub fn logical(&self) -> &str {
        &self.logical
    }

    fn len(&self) -> usize {
        self.endpoints.len()
    }

    fn active(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    fn set_active(&self, idx: usize) {
        self.active.store(idx, Ordering::Relaxed);
    }

    fn endpoint(&self, idx: usize) -> (&str, &Link) {
        let (id, link) = &self.endpoints[idx];
        (id.as_str(), link.as_ref())
    }

    /// The endpoint currently serving the stream.
    pub fn active_endpoint(&self) -> &str {
        &self.endpoints[self.active()].0
    }

    /// The link currently serving the stream.
    pub fn active_link(&self) -> &Link {
        &self.endpoints[self.active()].1
    }
}

/// Resolves a plan node's routing decision against a query's link map:
/// the planner's ordered endpoints when the node carries a
/// [`ReplicaRoute`], otherwise the plain source id.
pub fn route_for(
    source_id: &str,
    route: &Option<ReplicaRoute>,
    links: &std::collections::HashMap<String, Arc<Link>>,
) -> Result<SourceRoute, FedError> {
    let endpoint_ids: Vec<&str> = match route {
        Some(r) => r.endpoints.iter().map(String::as_str).collect(),
        None => vec![source_id],
    };
    let mut endpoints = Vec::with_capacity(endpoint_ids.len());
    for id in endpoint_ids {
        let link = links
            .get(id)
            .ok_or_else(|| FedError::NoSuchSource(id.to_string()))?;
        endpoints.push((id.to_string(), Arc::clone(link)));
    }
    Ok(SourceRoute::new(source_id, endpoints))
}

/// Opens the operator streaming a service's answers.
pub fn open_service<'a>(
    node: &ServiceNode,
    lake: &'a DataLake,
    route: SourceRoute,
    rows_per_message: usize,
) -> Result<BoxedOp<'a>, FedError> {
    let source = lake
        .source(&node.source_id)
        .ok_or_else(|| FedError::NoSuchSource(node.source_id.clone()))?;
    match (&node.kind, source) {
        (ServiceKind::Sparql { star, filters }, DataSource::Sparql { graph, .. }) => {
            Ok(Box::new(SparqlStream {
                graph,
                star: star.clone(),
                filters: filters.clone(),
                route,
                rows_per_message,
                state: None,
                flight: None,
            }))
        }
        (ServiceKind::Sql { request, .. }, DataSource::Relational { db, .. }) => match request {
            SqlRequest::Single(q) | SqlRequest::MergedOptimized(q) => Ok(Box::new(SqlStream {
                db,
                sql: q.sql.clone(),
                outputs: q.outputs.clone(),
                route,
                rows_per_message,
                state: None,
                flight: None,
            })),
            SqlRequest::MergedNaive { outer, inner, join } => Ok(Box::new(NaiveStream {
                db,
                outer_sql: outer.sql.clone(),
                outer_outputs: outer.outputs.clone(),
                inner: inner.clone(),
                join: join.clone(),
                route,
                rows_per_message,
                state: None,
                flight: None,
            })),
        },
        (kind, src) => Err(FedError::Internal(format!(
            "service kind {kind:?} does not match source {}",
            src.id()
        ))),
    }
}

/// The backoff pause actually charged before the next attempt: the full
/// exponential backoff, clamped so a query never waits past its own
/// deadline. `now` is the time the clamp is evaluated at — the shared
/// clock for the serialized schedule, the failing link's local failure
/// time for the overlapped one.
fn clamped_backoff(
    policy: &crate::config::RetryPolicy,
    attempt: u32,
    deadline: Option<Duration>,
    now: Duration,
) -> Duration {
    let pause = policy.backoff_after(attempt);
    match deadline {
        Some(d) => pause.min(d.saturating_sub(now)),
        None => pause,
    }
}

/// Transfers one message over the route's active replica, retrying per
/// the context's [`crate::config::RetryPolicy`]. Every failed attempt
/// charges the detection timeout to the simulated clock; every retry
/// additionally charges the (deadline-clamped) exponential backoff. A
/// replica that exhausts its attempt budget triggers an immediate
/// failover — no backoff — to the next endpoint on the route, which gets
/// a fresh budget; only exhausting the *last* endpoint yields
/// [`FedError::SourceUnavailable`], attributed to the logical source with
/// the total attempts across all replicas tried.
pub fn transfer_with_retry(
    route: &SourceRoute,
    rows: usize,
    ctx: &mut ExecCtx,
) -> Result<(), FedError> {
    let policy = ctx.retry;
    let budget = policy.attempts();
    let replicas = route.len();
    let mut total_attempts = 0u32;
    for idx in route.active()..replicas {
        let (endpoint, link) = route.endpoint(idx);
        for attempt in 0..budget {
            match link.try_transfer_message(rows) {
                Ok(()) => {
                    route.set_active(idx);
                    return Ok(());
                }
                Err(_fault) => {
                    total_attempts += 1;
                    // The receiver waited `timeout` before concluding the
                    // attempt failed, whatever the failure mode was.
                    ctx.clock.advance(policy.timeout);
                    if ctx.trace.is_enabled() {
                        let now = ctx.clock.now();
                        ctx.trace.source_span(
                            SpanKind::Timeout,
                            endpoint,
                            "detection timeout",
                            now - policy.timeout,
                            now,
                            0,
                        );
                    }
                    let budget_spent = attempt + 1 == budget;
                    if budget_spent && idx + 1 == replicas {
                        return Err(FedError::SourceUnavailable {
                            source: route.logical().to_string(),
                            attempts: total_attempts,
                        });
                    }
                    ctx.stats.retries += 1;
                    ctx.recorder.retry(ctx.clock.now(), endpoint, attempt);
                    if !budget_spent {
                        let pause =
                            clamped_backoff(&policy, attempt, ctx.deadline, ctx.clock.now());
                        ctx.clock.advance(pause);
                        if ctx.trace.is_enabled() {
                            let now = ctx.clock.now();
                            ctx.trace.source_span(
                                SpanKind::Backoff,
                                endpoint,
                                &format!("backoff before attempt {}", attempt + 2),
                                now - pause,
                                now,
                                0,
                            );
                        }
                    }
                }
            }
        }
        // Budget exhausted on this replica: fail over to the next one.
        let (next, _) = route.endpoint(idx + 1);
        route.set_active(idx + 1);
        if let Some(obs) = link.observer() {
            obs.on_failover(route.logical(), endpoint, next);
        }
        ctx.recorder.failover(ctx.clock.now(), route.logical(), endpoint, next);
    }
    unreachable!("loop returns on success or on the last endpoint's final attempt")
}

/// Transfers `total_rows` rows in messages of `rows_per_message`, retrying
/// each message per the context's policy. An empty result still costs one
/// (empty) message, mirroring [`Link::transfer_rows`].
pub fn transfer_rows_with_retry(
    route: &SourceRoute,
    total_rows: usize,
    rows_per_message: usize,
    ctx: &mut ExecCtx,
) -> Result<(), FedError> {
    assert!(rows_per_message > 0, "message size must be positive");
    if total_rows == 0 {
        return transfer_with_retry(route, 0, ctx);
    }
    let mut remaining = total_rows;
    while remaining > 0 {
        let n = remaining.min(rows_per_message);
        transfer_with_retry(route, n, ctx)?;
        remaining -= n;
    }
    Ok(())
}

/// Schedules one message (with its full retry-and-failover chain) on the
/// route's link timelines starting no earlier than `start`: the
/// overlapped-schedule counterpart of [`transfer_with_retry`]. Detection
/// timeouts and backoffs become link occupancy instead of shared-clock
/// advances, so one source's retries never stall another source's
/// transfers; a failover continues the chain on the successor endpoint's
/// timeline at the predecessor's failure time. Returns the completion
/// time on success (the route's active cursor then names the endpoint
/// that delivered, so callers chain follow-up work on the right link); on
/// an exhausted route returns the failure time along with the error (the
/// caller surfaces the error only once that time is due, mirroring when
/// the serialized schedule would have observed it).
pub fn schedule_transfer_with_retry(
    route: &SourceRoute,
    rows: usize,
    start: Duration,
    ctx: &mut ExecCtx,
) -> Result<Duration, (Duration, FedError)> {
    let policy = ctx.retry;
    let budget = policy.attempts();
    let replicas = route.len();
    let mut at = start;
    let mut total_attempts = 0u32;
    for idx in route.active()..replicas {
        let (endpoint, link) = route.endpoint(idx);
        for attempt in 0..budget {
            let (done, result) = link.schedule_message(rows, at);
            match result {
                Ok(()) => {
                    route.set_active(idx);
                    return Ok(done);
                }
                Err(_fault) => {
                    total_attempts += 1;
                    let failed_at = link.schedule_busy(policy.timeout, done);
                    if ctx.trace.is_enabled() {
                        ctx.trace.source_span(
                            SpanKind::Timeout,
                            endpoint,
                            "detection timeout",
                            done,
                            failed_at,
                            0,
                        );
                    }
                    let budget_spent = attempt + 1 == budget;
                    if budget_spent && idx + 1 == replicas {
                        return Err((
                            failed_at,
                            FedError::SourceUnavailable {
                                source: route.logical().to_string(),
                                attempts: total_attempts,
                            },
                        ));
                    }
                    ctx.stats.retries += 1;
                    ctx.recorder.retry(failed_at, endpoint, attempt);
                    if budget_spent {
                        // Immediate failover: the successor picks up at
                        // the predecessor's failure time, no backoff.
                        at = failed_at;
                    } else {
                        let pause = clamped_backoff(&policy, attempt, ctx.deadline, failed_at);
                        at = link.schedule_busy(pause, failed_at);
                        if ctx.trace.is_enabled() {
                            ctx.trace.source_span(
                                SpanKind::Backoff,
                                endpoint,
                                &format!("backoff before attempt {}", attempt + 2),
                                failed_at,
                                at,
                                0,
                            );
                        }
                    }
                }
            }
        }
        let (next, _) = route.endpoint(idx + 1);
        route.set_active(idx + 1);
        if let Some(obs) = link.observer() {
            obs.on_failover(route.logical(), endpoint, next);
        }
        ctx.recorder.failover(at, route.logical(), endpoint, next);
    }
    unreachable!("loop returns on success or on the last endpoint's final attempt")
}

/// Schedules `total_rows` rows as a chain of messages of
/// `rows_per_message` on the route's timelines; the overlapped
/// counterpart of [`transfer_rows_with_retry`].
pub fn schedule_rows_with_retry(
    route: &SourceRoute,
    total_rows: usize,
    rows_per_message: usize,
    start: Duration,
    ctx: &mut ExecCtx,
) -> Result<Duration, (Duration, FedError)> {
    assert!(rows_per_message > 0, "message size must be positive");
    if total_rows == 0 {
        return schedule_transfer_with_retry(route, 0, start, ctx);
    }
    let mut at = start;
    let mut remaining = total_rows;
    while remaining > 0 {
        let n = remaining.min(rows_per_message);
        at = schedule_transfer_with_retry(route, n, at, ctx)?;
        remaining -= n;
    }
    Ok(at)
}

/// Converts the relational engine's counters to the netsim mirror type.
pub fn convert_cost(c: &fedlake_relational::CostStats) -> fedlake_relational_cost::CostStats {
    fedlake_relational_cost::CostStats {
        rows_scanned: c.rows_scanned,
        index_probes: c.index_probes,
        index_rows: c.index_rows,
        filter_evals: c.filter_evals,
        hash_build_rows: c.hash_build_rows,
        hash_probe_rows: c.hash_probe_rows,
        sort_rows: c.sort_rows,
        rows_output: c.rows_output,
    }
}

/// Lifts one relational value through its output binding and interns the
/// resulting term.
fn lift_value(v: &Value, ob: &OutputBinding, dict: &mut Dictionary) -> TermId {
    let term = match &ob.lift {
        Lift::SubjectIri(t) | Lift::RefIri(t) => fedlake_rdf::Term::iri(t.apply(&value_key(v))),
        Lift::Literal(dt) => value_to_term(v, *dt),
    };
    dict.intern(term)
}

/// Lifts a SQL result set directly into slot rows, interning each lifted
/// term. The slot of each output column is resolved once, not per row,
/// and each column memoizes the values it has already lifted: the lift is
/// a pure function of `(value, binding)`, and relational columns repeat
/// heavily (foreign keys, categories), so a memo hit skips IRI minting
/// and term interning entirely — the ids are identical either way. Text
/// and integer keys cover the lake's schemas; rarer value kinds take the
/// direct path.
pub fn lift_result(
    rs: &ResultSet,
    outputs: &[OutputBinding],
    schema: &RowSchema,
    dict: &mut Dictionary,
) -> Vec<SlotRow> {
    let slots: Vec<Option<usize>> = outputs.iter().map(|ob| schema.slot(&ob.var)).collect();
    let mut text_memo: Vec<FastMap<&str, TermId>> =
        (0..outputs.len()).map(|_| FastMap::default()).collect();
    let mut int_memo: Vec<FastMap<i64, TermId>> =
        (0..outputs.len()).map(|_| FastMap::default()).collect();
    rs.rows
        .iter()
        .map(|row| {
            let mut out = SlotRow::unbound(schema.len());
            for (i, ob) in outputs.iter().enumerate() {
                let Some(slot) = slots[i] else { continue };
                let v = &row[i];
                let id = match v {
                    Value::Null => continue,
                    Value::Text(s) => match text_memo[i].get(s.as_str()) {
                        Some(&id) => id,
                        None => {
                            let id = lift_value(v, ob, dict);
                            text_memo[i].insert(s, id);
                            id
                        }
                    },
                    Value::Int(n) => match int_memo[i].get(n) {
                        Some(&id) => id,
                        None => {
                            let id = lift_value(v, ob, dict);
                            int_memo[i].insert(*n, id);
                            id
                        }
                    },
                    _ => lift_value(v, ob, dict),
                };
                out.set(slot, id);
            }
            out
        })
        .collect()
}

/// Columnar lift for the batch-driven executor: one `TermId` buffer per
/// slot, written column-at-a-time with the same per-column value memo as
/// [`lift_result`]. Produces exactly the ids [`lift_result`] would assign
/// to each cell — only the interning *order* (and therefore the raw id
/// numbering) differs, which nothing downstream observes: ids never leave
/// the execution, and every consumer compares or decodes them.
fn lift_result_cols(
    rs: &ResultSet,
    outputs: &[OutputBinding],
    schema: &RowSchema,
    dict: &mut Dictionary,
) -> LiftedSource {
    let n = rs.rows.len();
    let mut cols = vec![vec![TermId::UNBOUND; n]; schema.len()];
    for (i, ob) in outputs.iter().enumerate() {
        let Some(slot) = schema.slot(&ob.var) else { continue };
        let col = &mut cols[slot];
        let mut text_memo: FastMap<&str, TermId> = FastMap::default();
        let mut int_memo: FastMap<i64, TermId> = FastMap::default();
        for (r, row) in rs.rows.iter().enumerate() {
            let v = &row[i];
            col[r] = match v {
                Value::Null => continue,
                Value::Text(s) => match text_memo.get(s.as_str()) {
                    Some(&id) => id,
                    None => {
                        let id = lift_value(v, ob, dict);
                        text_memo.insert(s, id);
                        id
                    }
                },
                Value::Int(k) => match int_memo.get(k) {
                    Some(&id) => id,
                    None => {
                        let id = lift_value(v, ob, dict);
                        int_memo.insert(*k, id);
                        id
                    }
                },
                _ => lift_value(v, ob, dict),
            };
        }
    }
    LiftedSource { cols, rows: n, sql_cost: None }
}

/// One source's materialized, lifted result: column-major `TermId`
/// buffers, one per schema slot, plus the source-side cost counters the
/// simulation charges per execution. Cached by the engine across
/// executions of the same planned query (ids stay valid because the
/// engine's interner is append-only and shared with every execution);
/// serving a hit re-charges the stored cost so the *simulated* execution
/// is byte-identical to a cold run — only wall-clock time changes.
#[derive(Debug)]
pub struct LiftedSource {
    cols: Vec<Vec<TermId>>,
    rows: usize,
    sql_cost: Option<fedlake_relational_cost::CostStats>,
}

/// Engine-owned cache of lifted source results, keyed by the schema's
/// slot-layout fingerprint plus a per-stream signature (source id,
/// request text, output bindings). Valid for the engine's lifetime: the
/// engine owns the lake, so source contents cannot change underneath it.
pub type SharedLiftCache =
    Arc<std::sync::Mutex<fedlake_rdf::FastMap<(u64, String), Arc<LiftedSource>>>>;

/// Fingerprint of a schema's slot layout: FNV-1a over the slot-ordered
/// variable names. Cached column buffers are indexed by slot, so two
/// schemas with the same fingerprint lay rows out identically and may
/// share cache entries. An address-based key would be unsound here: a
/// dropped schema's allocation can be reused by a *different* layout with
/// the same stream signature, which would serve wrongly-slotted columns.
pub(crate) fn schema_fingerprint(schema: &RowSchema) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in schema.vars() {
        for b in v.name().as_bytes() {
            h = (h ^ *b as u64).wrapping_mul(0x100_0000_01b3);
        }
        // Separator so ["ab","c"] and ["a","bc"] cannot collide.
        h = (h ^ 0x1f).wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn lift_cache_get(ctx: &ExecCtx, key: &(u64, String)) -> Option<Arc<LiftedSource>> {
    ctx.lifts.lock().unwrap_or_else(|e| e.into_inner()).get(key).cloned()
}

fn lift_cache_put(ctx: &ExecCtx, key: (u64, String), value: Arc<LiftedSource>) {
    ctx.lifts.lock().unwrap_or_else(|e| e.into_inner()).insert(key, value);
}

/// Column-major delivery cursor over a (possibly shared) lifted result:
/// morsels slice out as contiguous id copies — no per-row allocation
/// anywhere between the source and the operator tree.
struct ColumnStore {
    data: Arc<LiftedSource>,
    cursor: usize,
}

impl ColumnStore {
    fn new(data: Arc<LiftedSource>) -> Self {
        ColumnStore { data, cursor: 0 }
    }

    fn remaining(&self) -> usize {
        self.data.rows - self.cursor
    }

    /// Slices the next `take` rows out as a dense batch.
    fn take_batch(&mut self, take: usize) -> RowBatch {
        let start = self.cursor;
        self.cursor += take;
        RowBatch::from_cols(
            self.data.cols.iter().map(|c| c[start..self.cursor].to_vec()).collect(),
        )
    }

    /// Gathers the next row (the row-pull compatibility path: a stream
    /// materialized columnar can still serve an operator that pulls rows).
    fn take_row(&mut self) -> SlotRow {
        let mut out = SlotRow::unbound(self.data.cols.len());
        for (slot, c) in self.data.cols.iter().enumerate() {
            out.set(slot, c[self.cursor]);
        }
        self.cursor += 1;
        out
    }
}

/// Materialized payload of a [`Delivery`]: row-major for the row-pull
/// executor (and sources that produce rows anyway), column-major when the
/// batch-driven executor asked the stream to materialize that way.
enum Materialized {
    Rows(VecDeque<SlotRow>),
    Cols(ColumnStore),
}

/// Shared message-batched delivery of a materialized result.
struct Delivery {
    data: Materialized,
    batch_left: usize,
    empty_notified: bool,
}

impl Delivery {
    fn new(rows: Vec<SlotRow>) -> Self {
        Delivery {
            data: Materialized::Rows(rows.into()),
            batch_left: 0,
            empty_notified: false,
        }
    }

    fn new_columnar(store: ColumnStore) -> Self {
        Delivery { data: Materialized::Cols(store), batch_left: 0, empty_notified: false }
    }

    fn remaining(&self) -> usize {
        match &self.data {
            Materialized::Rows(rows) => rows.len(),
            Materialized::Cols(store) => store.remaining(),
        }
    }

    /// Pulls the next row, transferring a message (with retries) when the
    /// current batch is exhausted. Returns `None` when drained (after the
    /// empty-result notification message when there were no rows at all).
    fn pull(
        &mut self,
        route: &SourceRoute,
        rows_per_message: usize,
        ctx: &mut ExecCtx,
    ) -> Result<Option<SlotRow>, FedError> {
        if self.remaining() == 0 {
            if !self.empty_notified {
                self.empty_notified = true;
                transfer_with_retry(route, 0, ctx)?;
            }
            return Ok(None);
        }
        if self.batch_left == 0 {
            let n = self.remaining().min(rows_per_message);
            transfer_with_retry(route, n, ctx)?;
            self.batch_left = n;
        }
        self.batch_left -= 1;
        self.empty_notified = true;
        Ok(Some(match &mut self.data {
            Materialized::Rows(rows) => rows.pop_front().expect("rows remain"),
            Materialized::Cols(store) => store.take_row(),
        }))
    }

    /// Batched pull: delivers the remainder of the current message chunk
    /// (capped at `max`) as one [`RowBatch`]. Message boundaries are
    /// identical to [`Delivery::pull`] — a batch never spans a chunk, so
    /// the per-link transfer order is the same row for row; only how many
    /// rows the caller receives per call changes.
    fn pull_batch(
        &mut self,
        route: &SourceRoute,
        rows_per_message: usize,
        max: usize,
        ctx: &mut ExecCtx,
    ) -> Result<Option<RowBatch>, FedError> {
        if self.remaining() == 0 {
            if !self.empty_notified {
                self.empty_notified = true;
                transfer_with_retry(route, 0, ctx)?;
            }
            return Ok(None);
        }
        if self.batch_left == 0 {
            let n = self.remaining().min(rows_per_message);
            transfer_with_retry(route, n, ctx)?;
            self.batch_left = n;
        }
        self.empty_notified = true;
        let take = self.batch_left.min(max.max(1));
        let batch = match &mut self.data {
            Materialized::Rows(rows) => {
                let mut batch = RowBatch::with_capacity(ctx.schema.len(), take);
                for _ in 0..take {
                    let row = rows.pop_front().expect("batch_left rows remain");
                    batch.push_row(&row);
                }
                batch
            }
            Materialized::Cols(store) => store.take_batch(take),
        };
        self.batch_left -= take;
        Ok(Some(batch))
    }
}

/// One message in flight on the overlapped schedule: the completion event
/// plus the rows it carries (none for a request or an empty-result
/// notification). `err` is set when the retry budget was exhausted; the
/// error surfaces only once the failure time is due, exactly when the
/// serialized schedule would have observed it.
struct Flight {
    ev: EventTime,
    rows: Vec<SlotRow>,
    err: Option<FedError>,
}

/// The overlapped counterpart of [`Delivery`]: a bounded prefetch queue
/// with at most one message in flight on the link at a time. Rows become
/// deliverable when their message's completion event is due; while a
/// message is in the air the owner reports `Poll::Pending`, letting the
/// engine drain *other* sources in the meantime.
struct FlightDelivery {
    rows: VecDeque<SlotRow>,
    ready: VecDeque<SlotRow>,
    inflight: Option<Flight>,
    empty_notified: bool,
}

impl FlightDelivery {
    fn new(rows: Vec<SlotRow>) -> Self {
        FlightDelivery {
            rows: rows.into(),
            ready: VecDeque::new(),
            inflight: None,
            empty_notified: false,
        }
    }

    /// A delivery whose empty-result notification is considered already
    /// sent (the NaiveStream inner buffers: the per-binding round trip
    /// was its own message).
    fn pre_notified(rows: Vec<SlotRow>) -> Self {
        FlightDelivery { empty_notified: true, ..FlightDelivery::new(rows) }
    }

    fn launch(
        &mut self,
        batch: Vec<SlotRow>,
        n: usize,
        route: &SourceRoute,
        ctx: &mut ExecCtx,
    ) {
        let (time, err) =
            match schedule_transfer_with_retry(route, n, ctx.clock.now(), ctx) {
                Ok(done) => (done, None),
                Err((t, e)) => (t, Some(e)),
            };
        self.inflight = Some(Flight { ev: ctx.sched.schedule(time), rows: batch, err });
    }

    /// Non-blocking pull mirroring [`Delivery::pull`]'s message protocol:
    /// same message boundaries, same empty-result notification, same
    /// retry accounting — only *when* the link time passes differs.
    fn poll(
        &mut self,
        route: &SourceRoute,
        rows_per_message: usize,
        ctx: &mut ExecCtx,
    ) -> Result<Poll<SlotRow>, FedError> {
        loop {
            if let Some(row) = self.ready.pop_front() {
                self.empty_notified = true;
                return Ok(Poll::Ready(row));
            }
            if let Some(f) = &self.inflight {
                if f.ev.time > ctx.clock.now() {
                    return Ok(Poll::Pending(f.ev));
                }
                let f = self.inflight.take().expect("checked above");
                ctx.sched.complete(f.ev);
                if let Some(e) = f.err {
                    return Err(e);
                }
                self.ready.extend(f.rows);
                continue;
            }
            if self.rows.is_empty() {
                if !self.empty_notified {
                    self.empty_notified = true;
                    self.launch(Vec::new(), 0, route, ctx);
                    continue;
                }
                return Ok(Poll::Done);
            }
            let n = self.rows.len().min(rows_per_message);
            let batch: Vec<SlotRow> = self.rows.drain(..n).collect();
            self.launch(batch, n, route, ctx);
        }
    }

    /// Batched poll mirroring [`FlightDelivery::poll`]: drains the ready
    /// queue (capped at `max`) as one [`RowBatch`]. The next message
    /// launches only when a poll observes the ready queue empty — the
    /// identical condition to the row poll — so launch times, link
    /// occupancy and event ordering are unchanged.
    fn poll_batch(
        &mut self,
        route: &SourceRoute,
        rows_per_message: usize,
        max: usize,
        ctx: &mut ExecCtx,
    ) -> Result<Poll<RowBatch>, FedError> {
        loop {
            if !self.ready.is_empty() {
                self.empty_notified = true;
                let take = self.ready.len().min(max.max(1));
                let mut batch = RowBatch::with_capacity(ctx.schema.len(), take);
                for _ in 0..take {
                    let row = self.ready.pop_front().expect("checked non-empty");
                    batch.push_row(&row);
                }
                return Ok(Poll::Ready(batch));
            }
            if let Some(f) = &self.inflight {
                if f.ev.time > ctx.clock.now() {
                    return Ok(Poll::Pending(f.ev));
                }
                let f = self.inflight.take().expect("checked above");
                ctx.sched.complete(f.ev);
                if let Some(e) = f.err {
                    return Err(e);
                }
                self.ready.extend(f.rows);
                continue;
            }
            if self.rows.is_empty() {
                if !self.empty_notified {
                    self.empty_notified = true;
                    self.launch(Vec::new(), 0, route, ctx);
                    continue;
                }
                return Ok(Poll::Done);
            }
            let n = self.rows.len().min(rows_per_message);
            let batch: Vec<SlotRow> = self.rows.drain(..n).collect();
            self.launch(batch, n, route, ctx);
        }
    }
}

/// The overlapped state of a one-shot service stream (SQL or SPARQL):
/// first the request round trip plus the source-side evaluation complete
/// as one scheduled event, then the result streams through a
/// [`FlightDelivery`].
enum SourceFlight {
    Computing { ev: EventTime, rows: Vec<SlotRow>, err: Option<FedError> },
    Delivering(FlightDelivery),
}

impl SourceFlight {
    fn poll(
        this: &mut Option<SourceFlight>,
        route: &SourceRoute,
        rows_per_message: usize,
        ctx: &mut ExecCtx,
    ) -> Result<Poll<SlotRow>, FedError> {
        loop {
            match this.as_mut().expect("launched before polling") {
                SourceFlight::Computing { ev, rows, err } => {
                    if ev.time > ctx.clock.now() {
                        return Ok(Poll::Pending(*ev));
                    }
                    ctx.sched.complete(*ev);
                    if let Some(e) = err.take() {
                        return Err(e);
                    }
                    let rows = std::mem::take(rows);
                    *this = Some(SourceFlight::Delivering(FlightDelivery::new(rows)));
                }
                SourceFlight::Delivering(d) => {
                    return d.poll(route, rows_per_message, ctx);
                }
            }
        }
    }

    /// Batched counterpart of [`SourceFlight::poll`]: identical state
    /// machine, batched delivery once the source's computation lands.
    fn poll_batch(
        this: &mut Option<SourceFlight>,
        route: &SourceRoute,
        rows_per_message: usize,
        max: usize,
        ctx: &mut ExecCtx,
    ) -> Result<Poll<RowBatch>, FedError> {
        loop {
            match this.as_mut().expect("launched before polling") {
                SourceFlight::Computing { ev, rows, err } => {
                    if ev.time > ctx.clock.now() {
                        return Ok(Poll::Pending(*ev));
                    }
                    ctx.sched.complete(*ev);
                    if let Some(e) = err.take() {
                        return Err(e);
                    }
                    let rows = std::mem::take(rows);
                    *this = Some(SourceFlight::Delivering(FlightDelivery::new(rows)));
                }
                SourceFlight::Delivering(d) => {
                    return d.poll_batch(route, rows_per_message, max, ctx);
                }
            }
        }
    }
}

/// Streams a single SQL request's answers.
struct SqlStream<'a> {
    db: &'a Database,
    sql: String,
    outputs: Vec<OutputBinding>,
    route: SourceRoute,
    rows_per_message: usize,
    state: Option<Delivery>,
    flight: Option<SourceFlight>,
}

impl SqlStream<'_> {
    /// Schedules the request round trip and the source's evaluation on
    /// the link timeline — the overlapped mirror of the serialized
    /// initialization in [`FedOp::next`], charge for charge.
    fn launch(&self, ctx: &mut ExecCtx) -> Result<SourceFlight, FedError> {
        ctx.stats.sql_queries += 1;
        match schedule_transfer_with_retry(&self.route, 0, ctx.clock.now(), ctx) {
            Ok(done_req) => {
                let rs = self.db.query_cached(&self.sql)?;
                let done = self
                    .route
                    .active_link()
                    .schedule_busy(ctx.cost.rdb_time(&convert_cost(&rs.cost)), done_req);
                let rows =
                    lift_result(&rs, &self.outputs, &ctx.schema, &mut ctx.interner.lock());
                ctx.stats.service_rows += rows.len() as u64;
                if ctx.trace.is_enabled() {
                    ctx.trace.source_span(
                        SpanKind::Compute,
                        self.route.active_endpoint(),
                        "sql evaluation",
                        done_req,
                        done,
                        rows.len() as u64,
                    );
                }
                Ok(SourceFlight::Computing { ev: ctx.sched.schedule(done), rows, err: None })
            }
            Err((t, e)) => Ok(SourceFlight::Computing {
                ev: ctx.sched.schedule(t),
                rows: Vec::new(),
                err: Some(e),
            }),
        }
    }
}

impl SqlStream<'_> {
    /// Serialized first-call initialization: ship the query (one request
    /// message, retried on faults) and let the source compute; its work
    /// is priced by the cost model. Shared by the row and batch pulls,
    /// so both charge identically.
    fn ensure_state(&mut self, ctx: &mut ExecCtx) -> Result<(), FedError> {
        if self.state.is_none() {
            ctx.stats.sql_queries += 1;
            transfer_with_retry(&self.route, 0, ctx)?;
            // Column-major lift, cached across executions of the same
            // planned query. A hit skips the source's scan and the lift
            // but re-charges the stored cost counters, so the simulated
            // execution is identical either way; both the row and the
            // batch executor read from the same materialization.
            // Key signature: the SQL text already pins the selected columns,
            // the output var names pin their SPARQL-side binding order, and
            // the schema fingerprint pins the slot layout. No Debug
            // formatting.
            let mut sig =
                String::with_capacity(self.sql.len() + self.route.logical.len() + 32);
            sig.push_str("sql:");
            sig.push_str(&self.route.logical);
            sig.push(':');
            sig.push_str(&self.sql);
            for ob in &self.outputs {
                sig.push(':');
                sig.push_str(ob.var.name());
            }
            let key = (schema_fingerprint(&ctx.schema), sig);
            let lifted = match lift_cache_get(ctx, &key) {
                Some(hit) => hit,
                None => {
                    let rs = self.db.query_cached(&self.sql)?;
                    let mut fresh = lift_result_cols(
                        &rs,
                        &self.outputs,
                        &ctx.schema,
                        &mut ctx.interner.lock(),
                    );
                    fresh.sql_cost = Some(convert_cost(&rs.cost));
                    let fresh = Arc::new(fresh);
                    lift_cache_put(ctx, key, Arc::clone(&fresh));
                    fresh
                }
            };
            let cost = lifted.sql_cost.as_ref().expect("sql lift carries cost");
            let work = ctx.cost.rdb_time(cost);
            ctx.clock.advance(work);
            ctx.stats.service_rows += lifted.rows as u64;
            if ctx.trace.is_enabled() {
                let now = ctx.clock.now();
                ctx.trace.source_span(
                    SpanKind::Compute,
                    self.route.active_endpoint(),
                    "sql evaluation",
                    now - work,
                    now,
                    lifted.rows as u64,
                );
            }
            self.state = Some(Delivery::new_columnar(ColumnStore::new(lifted)));
        }
        Ok(())
    }
}

impl FedOp for SqlStream<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<SlotRow>, FedError> {
        self.ensure_state(ctx)?;
        let delivery = self.state.as_mut().expect("initialized above");
        delivery.pull(&self.route, self.rows_per_message, ctx)
    }

    fn next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        max: usize,
    ) -> Result<Option<RowBatch>, FedError> {
        self.ensure_state(ctx)?;
        let delivery = self.state.as_mut().expect("initialized above");
        delivery.pull_batch(&self.route, self.rows_per_message, max, ctx)
    }

    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<SlotRow>, FedError> {
        if self.flight.is_none() {
            self.flight = Some(self.launch(ctx)?);
        }
        SourceFlight::poll(&mut self.flight, &self.route, self.rows_per_message, ctx)
    }

    fn poll_next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        max: usize,
    ) -> Result<Poll<RowBatch>, FedError> {
        if self.flight.is_none() {
            self.flight = Some(self.launch(ctx)?);
        }
        SourceFlight::poll_batch(&mut self.flight, &self.route, self.rows_per_message, max, ctx)
    }
}

/// Streams a SPARQL star's answers from an RDF source.
struct SparqlStream<'a> {
    graph: &'a fedlake_rdf::Graph,
    star: crate::decompose::StarSubquery,
    filters: Vec<fedlake_sparql::expr::Expr>,
    route: SourceRoute,
    rows_per_message: usize,
    state: Option<Delivery>,
    flight: Option<SourceFlight>,
}

impl SparqlStream<'_> {
    fn launch(&self, ctx: &mut ExecCtx) -> SourceFlight {
        match schedule_transfer_with_retry(&self.route, 0, ctx.clock.now(), ctx) {
            Ok(done_req) => {
                let rows = eval_bgp(&self.star.triples, self.graph, vec![Row::new()]);
                let rows: Vec<Row> = rows
                    .into_iter()
                    .filter(|r| self.filters.iter().all(|f| f.test(r)))
                    .collect();
                let done = self.route.active_link().schedule_busy(
                    ctx.cost.sparql_time(self.star.triples.len(), rows.len() as u64),
                    done_req,
                );
                ctx.stats.service_rows += rows.len() as u64;
                if ctx.trace.is_enabled() {
                    ctx.trace.source_span(
                        SpanKind::Compute,
                        self.route.active_endpoint(),
                        "sparql evaluation",
                        done_req,
                        done,
                        rows.len() as u64,
                    );
                }
                let mut dict = ctx.interner.lock();
                let encoded: Vec<SlotRow> = rows
                    .iter()
                    .map(|r| encode_row(r, &ctx.schema, &mut dict))
                    .collect();
                drop(dict);
                SourceFlight::Computing { ev: ctx.sched.schedule(done), rows: encoded, err: None }
            }
            Err((t, e)) => SourceFlight::Computing {
                ev: ctx.sched.schedule(t),
                rows: Vec::new(),
                err: Some(e),
            },
        }
    }
}

impl SparqlStream<'_> {
    /// Serialized first-call initialization, shared by the row and batch
    /// pulls: request round trip, star evaluation at the source, filter
    /// pushdown, interning of the surviving rows.
    fn ensure_state(&mut self, ctx: &mut ExecCtx) -> Result<(), FedError> {
        if self.state.is_none() {
            transfer_with_retry(&self.route, 0, ctx)?;
            // Star evaluation and encoding cached across executions, like
            // the SQL side; the evaluation charge depends only on the star
            // shape and the answer count, both stored with the hit.
            // Key signature: triple patterns written positionally (vars by
            // name, ground terms by display form) plus any engine-side
            // filters; cheaper than Debug-formatting the whole subquery.
            let mut sig = String::with_capacity(64);
            sig.push_str("sparql:");
            sig.push_str(&self.route.logical);
            for t in &self.star.triples {
                for pos in [&t.s, &t.p, &t.o] {
                    sig.push(':');
                    match pos {
                        fedlake_sparql::ast::VarOrTerm::Var(v) => {
                            sig.push('?');
                            sig.push_str(v.name());
                        }
                        fedlake_sparql::ast::VarOrTerm::Term(t) => {
                            let _ = write!(sig, "{t}");
                        }
                    }
                }
            }
            for f in &self.filters {
                let _ = write!(sig, ":{f:?}");
            }
            let key = (schema_fingerprint(&ctx.schema), sig);
            let lifted = match lift_cache_get(ctx, &key) {
                Some(hit) => hit,
                None => {
                    let rows = eval_bgp(&self.star.triples, self.graph, vec![Row::new()]);
                    let rows: Vec<Row> = rows
                        .into_iter()
                        .filter(|r| self.filters.iter().all(|f| f.test(r)))
                        .collect();
                    let mut cols =
                        vec![vec![TermId::UNBOUND; rows.len()]; ctx.schema.len()];
                    let mut dict = ctx.interner.lock();
                    for (i, r) in rows.iter().enumerate() {
                        let encoded = encode_row(r, &ctx.schema, &mut dict);
                        for (slot, id) in encoded.slots().iter().enumerate() {
                            cols[slot][i] = *id;
                        }
                    }
                    drop(dict);
                    let fresh = Arc::new(LiftedSource {
                        cols,
                        rows: rows.len(),
                        sql_cost: None,
                    });
                    lift_cache_put(ctx, key, Arc::clone(&fresh));
                    fresh
                }
            };
            let work = ctx
                .cost
                .sparql_time(self.star.triples.len(), lifted.rows as u64);
            ctx.clock.advance(work);
            ctx.stats.service_rows += lifted.rows as u64;
            if ctx.trace.is_enabled() {
                let now = ctx.clock.now();
                ctx.trace.source_span(
                    SpanKind::Compute,
                    self.route.active_endpoint(),
                    "sparql evaluation",
                    now - work,
                    now,
                    lifted.rows as u64,
                );
            }
            self.state = Some(Delivery::new_columnar(ColumnStore::new(lifted)));
        }
        Ok(())
    }
}

impl FedOp for SparqlStream<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<SlotRow>, FedError> {
        self.ensure_state(ctx)?;
        let delivery = self.state.as_mut().expect("initialized above");
        delivery.pull(&self.route, self.rows_per_message, ctx)
    }

    fn next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        max: usize,
    ) -> Result<Option<RowBatch>, FedError> {
        self.ensure_state(ctx)?;
        let delivery = self.state.as_mut().expect("initialized above");
        delivery.pull_batch(&self.route, self.rows_per_message, max, ctx)
    }

    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<SlotRow>, FedError> {
        if self.flight.is_none() {
            self.flight = Some(self.launch(ctx));
        }
        SourceFlight::poll(&mut self.flight, &self.route, self.rows_per_message, ctx)
    }

    fn poll_next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        max: usize,
    ) -> Result<Poll<RowBatch>, FedError> {
        if self.flight.is_none() {
            self.flight = Some(self.launch(ctx));
        }
        SourceFlight::poll_batch(&mut self.flight, &self.route, self.rows_per_message, max, ctx)
    }
}

/// The N+1 dependent join emulating Ontario's unoptimized merged-SQL
/// translation: the outer star is evaluated once, then the wrapper issues
/// one parameterized inner query per outer binding.
struct NaiveStream<'a> {
    db: &'a Database,
    outer_sql: String,
    outer_outputs: Vec<OutputBinding>,
    inner: StarPart,
    join: NaiveJoin,
    route: SourceRoute,
    rows_per_message: usize,
    state: Option<NaiveState>,
    flight: Option<NaiveFlight>,
}

struct NaiveState {
    outer: VecDeque<SlotRow>,
    buffer: Delivery,
    produced_any: bool,
}

/// The overlapped state of the N+1 dependent join: outer bindings are
/// consumed one at a time, each spawning a scheduled outer-binding message
/// plus (when the key extracts) a scheduled inner round trip.
struct NaiveFlight {
    outer: VecDeque<SlotRow>,
    buffer: FlightDelivery,
    /// Whether any inner buffer was ever installed — the overlapped form
    /// of the serialized `!produced_any && !buffer.empty_notified` test:
    /// the final empty-result notification fires exactly when the outer
    /// query returned no bindings at all.
    installed_inner: bool,
    stage: NaiveStage,
}

enum NaiveStage {
    /// Waiting on a scheduled event; on completion `then` applies (unless
    /// `err` was carried, which surfaces instead).
    Waiting { ev: EventTime, then: NaiveNext, err: Option<FedError> },
    /// The buffer is deliverable or the next outer binding is due.
    Idle,
    /// Everything delivered (and any final notification observed).
    Finished,
}

enum NaiveNext {
    /// The outer request + query completed: install the outer bindings.
    Outer(Vec<SlotRow>),
    /// An outer binding's message + inner round trip completed: the
    /// merged rows become the next buffer.
    Inner(Vec<SlotRow>),
    /// The final empty-result notification arrived.
    Notified,
}

impl NaiveStream<'_> {
    fn inner_rows(
        &self,
        outer_row: &SlotRow,
        ctx: &mut ExecCtx,
    ) -> Result<Vec<SlotRow>, FedError> {
        let term = ctx
            .schema
            .slot(&self.join.outer_var)
            .and_then(|s| outer_row.get(s))
            .and_then(|id| ctx.interner.resolve(id));
        let Some(term) = term else {
            return Ok(Vec::new());
        };
        let key = match &self.join.extract {
            Some(tmpl) => {
                let Some(iri) = term.as_iri() else { return Ok(Vec::new()) };
                match tmpl.extract(iri) {
                    Some(k) => fedlake_relational::Value::Text(k),
                    None => return Ok(Vec::new()),
                }
            }
            None => term_to_value(&term),
        };
        let mut part = self.inner.clone();
        part.wheres
            .push(format!("{}.{} = {key}", part.alias, self.join.inner_col));
        let q = sql_single(&part);
        ctx.stats.sql_queries += 1;
        // The per-binding request round trip.
        transfer_with_retry(&self.route, 0, ctx)?;
        let rs = self.db.query_cached(&q.sql)?;
        let work = ctx.cost.rdb_time(&convert_cost(&rs.cost));
        ctx.clock.advance(work);
        let rows = lift_result(&rs, &q.outputs, &ctx.schema, &mut ctx.interner.lock());
        ctx.stats.service_rows += rows.len() as u64;
        if ctx.trace.is_enabled() {
            let now = ctx.clock.now();
            ctx.trace.source_span(
                SpanKind::Compute,
                self.route.active_endpoint(),
                "sql evaluation (inner)",
                now - work,
                now,
                rows.len() as u64,
            );
        }
        Ok(rows
            .into_iter()
            .filter_map(|r| outer_row.merge(&r))
            .collect())
    }
}

/// Schedules one outer binding's inner round trip (the overlapped mirror
/// of [`NaiveStream::inner_rows`]): an unextractable key costs no traffic,
/// otherwise the parameterized request plus the source's evaluation land
/// on the link timeline.
#[allow(clippy::too_many_arguments)]
fn schedule_naive_inner(
    db: &Database,
    inner: &StarPart,
    join: &NaiveJoin,
    route: &SourceRoute,
    outer_row: &SlotRow,
    start: Duration,
    ctx: &mut ExecCtx,
) -> Result<NaiveStage, FedError> {
    fn wait(
        ctx: &mut ExecCtx,
        t: Duration,
        rows: Vec<SlotRow>,
        err: Option<FedError>,
    ) -> NaiveStage {
        NaiveStage::Waiting { ev: ctx.sched.schedule(t), then: NaiveNext::Inner(rows), err }
    }
    let term = ctx
        .schema
        .slot(&join.outer_var)
        .and_then(|s| outer_row.get(s))
        .and_then(|id| ctx.interner.resolve(id));
    let Some(term) = term else {
        return Ok(wait(ctx, start, Vec::new(), None));
    };
    let key = match &join.extract {
        Some(tmpl) => match term.as_iri().and_then(|iri| tmpl.extract(iri)) {
            Some(k) => fedlake_relational::Value::Text(k),
            None => return Ok(wait(ctx, start, Vec::new(), None)),
        },
        None => term_to_value(&term),
    };
    let mut part = inner.clone();
    part.wheres.push(format!("{}.{} = {key}", part.alias, join.inner_col));
    let q = sql_single(&part);
    ctx.stats.sql_queries += 1;
    match schedule_transfer_with_retry(route, 0, start, ctx) {
        Ok(t_req) => {
            let rs = db.query_cached(&q.sql)?;
            let done = route
                .active_link()
                .schedule_busy(ctx.cost.rdb_time(&convert_cost(&rs.cost)), t_req);
            let rows = lift_result(&rs, &q.outputs, &ctx.schema, &mut ctx.interner.lock());
            ctx.stats.service_rows += rows.len() as u64;
            if ctx.trace.is_enabled() {
                ctx.trace.source_span(
                    SpanKind::Compute,
                    route.active_endpoint(),
                    "sql evaluation (inner)",
                    t_req,
                    done,
                    rows.len() as u64,
                );
            }
            let merged: Vec<SlotRow> =
                rows.into_iter().filter_map(|r| outer_row.merge(&r)).collect();
            Ok(wait(ctx, done, merged, None))
        }
        Err((t, e)) => Ok(wait(ctx, t, Vec::new(), Some(e))),
    }
}

impl FedOp for NaiveStream<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<SlotRow>, FedError> {
        if self.state.is_none() {
            ctx.stats.sql_queries += 1;
            transfer_with_retry(&self.route, 0, ctx)?;
            let rs = self.db.query_cached(&self.outer_sql)?;
            let work = ctx.cost.rdb_time(&convert_cost(&rs.cost));
            ctx.clock.advance(work);
            let outer =
                lift_result(&rs, &self.outer_outputs, &ctx.schema, &mut ctx.interner.lock());
            ctx.stats.service_rows += outer.len() as u64;
            if ctx.trace.is_enabled() {
                let now = ctx.clock.now();
                ctx.trace.source_span(
                    SpanKind::Compute,
                    self.route.active_endpoint(),
                    "sql evaluation (outer)",
                    now - work,
                    now,
                    outer.len() as u64,
                );
            }
            self.state = Some(NaiveState {
                outer: outer.into(),
                buffer: Delivery::new(Vec::new()),
                produced_any: false,
            });
        }
        loop {
            let state = self.state.as_mut().expect("initialized above");
            if state.buffer.remaining() != 0 {
                let row = state.buffer.pull(&self.route, self.rows_per_message, ctx)?;
                if row.is_some() {
                    state.produced_any = true;
                    return Ok(row);
                }
            }
            let Some(outer_row) = self.state.as_mut().expect("initialized").outer.pop_front()
            else {
                let state = self.state.as_mut().expect("initialized");
                if !state.produced_any && !state.buffer.empty_notified {
                    state.buffer.empty_notified = true;
                    transfer_with_retry(&self.route, 0, ctx)?;
                }
                return Ok(None);
            };
            // Retrieving the next outer binding is itself a message.
            transfer_with_retry(&self.route, 1, ctx)?;
            let merged = self.inner_rows(&outer_row, ctx)?;
            let state = self.state.as_mut().expect("initialized");
            state.buffer = Delivery::new(merged);
            state.buffer.empty_notified = true; // inner already messaged
        }
    }

    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<SlotRow>, FedError> {
        if self.flight.is_none() {
            ctx.stats.sql_queries += 1;
            let stage = match schedule_transfer_with_retry(&self.route, 0, ctx.clock.now(), ctx)
            {
                Ok(done_req) => {
                    let rs = self.db.query_cached(&self.outer_sql)?;
                    let done = self
                        .route
                        .active_link()
                        .schedule_busy(ctx.cost.rdb_time(&convert_cost(&rs.cost)), done_req);
                    let outer = lift_result(
                        &rs,
                        &self.outer_outputs,
                        &ctx.schema,
                        &mut ctx.interner.lock(),
                    );
                    ctx.stats.service_rows += outer.len() as u64;
                    if ctx.trace.is_enabled() {
                        ctx.trace.source_span(
                            SpanKind::Compute,
                            self.route.active_endpoint(),
                            "sql evaluation (outer)",
                            done_req,
                            done,
                            outer.len() as u64,
                        );
                    }
                    NaiveStage::Waiting {
                        ev: ctx.sched.schedule(done),
                        then: NaiveNext::Outer(outer),
                        err: None,
                    }
                }
                Err((t, e)) => NaiveStage::Waiting {
                    ev: ctx.sched.schedule(t),
                    then: NaiveNext::Outer(Vec::new()),
                    err: Some(e),
                },
            };
            self.flight = Some(NaiveFlight {
                outer: VecDeque::new(),
                buffer: FlightDelivery::pre_notified(Vec::new()),
                installed_inner: false,
                stage,
            });
        }
        loop {
            let flight = self.flight.as_mut().expect("initialized above");
            match &mut flight.stage {
                NaiveStage::Waiting { ev, then, err } => {
                    if ev.time > ctx.clock.now() {
                        return Ok(Poll::Pending(*ev));
                    }
                    ctx.sched.complete(*ev);
                    if let Some(e) = err.take() {
                        flight.stage = NaiveStage::Finished;
                        return Err(e);
                    }
                    match std::mem::replace(then, NaiveNext::Notified) {
                        NaiveNext::Outer(rows) => {
                            flight.outer = rows.into();
                            flight.stage = NaiveStage::Idle;
                        }
                        NaiveNext::Inner(rows) => {
                            flight.buffer = FlightDelivery::pre_notified(rows);
                            flight.stage = NaiveStage::Idle;
                        }
                        NaiveNext::Notified => flight.stage = NaiveStage::Finished,
                    }
                }
                NaiveStage::Finished => return Ok(Poll::Done),
                NaiveStage::Idle => {
                    match flight.buffer.poll(&self.route, self.rows_per_message, ctx)? {
                        Poll::Ready(row) => return Ok(Poll::Ready(row)),
                        Poll::Pending(ev) => return Ok(Poll::Pending(ev)),
                        Poll::Done => {}
                    }
                    match flight.outer.pop_front() {
                        Some(outer_row) => {
                            flight.installed_inner = true;
                            // Retrieving the next outer binding is itself
                            // a message; the inner round trip chains after.
                            flight.stage = match schedule_transfer_with_retry(
                                &self.route,
                                1,
                                ctx.clock.now(),
                                ctx,
                            ) {
                                Ok(t1) => schedule_naive_inner(
                                    self.db,
                                    &self.inner,
                                    &self.join,
                                    &self.route,
                                    &outer_row,
                                    t1,
                                    ctx,
                                )?,
                                Err((t, e)) => NaiveStage::Waiting {
                                    ev: ctx.sched.schedule(t),
                                    then: NaiveNext::Inner(Vec::new()),
                                    err: Some(e),
                                },
                            };
                        }
                        None => {
                            if flight.installed_inner {
                                flight.stage = NaiveStage::Finished;
                            } else {
                                // Empty outer result: the one empty-result
                                // notification, then done.
                                flight.installed_inner = true;
                                let (t, err) = match schedule_transfer_with_retry(
                                    &self.route,
                                    0,
                                    ctx.clock.now(),
                                    ctx,
                                ) {
                                    Ok(t) => (t, None),
                                    Err((t, e)) => (t, Some(e)),
                                };
                                flight.stage = NaiveStage::Waiting {
                                    ev: ctx.sched.schedule(t),
                                    then: NaiveNext::Notified,
                                    err,
                                };
                            }
                        }
                    }
                }
            }
        }
    }
}

/// The engine-level dependent (bind) join: batches of left bindings are
/// shipped to a relational source as SQL `IN` lists — ANAPSID's adjoin
/// lineage, and the classical alternative to fetching the right star in
/// full when the left side is selective.
pub struct BindJoinOp<'a> {
    left: crate::operators::BoxedOp<'a>,
    db: &'a Database,
    target: crate::fedplan::BindTarget,
    route: SourceRoute,
    rows_per_message: usize,
    batch_size: usize,
    left_done: bool,
    out: VecDeque<SlotRow>,
    stage: BindStage,
}

/// The overlapped state of the bind join: batches gather from the left
/// exactly as the serialized schedule would, then the shipped batch's
/// request, source evaluation and result transfer fly as one scheduled
/// chain; probing happens when the chain completes.
enum BindStage {
    Gather { batch: Vec<SlotRow> },
    Flying { ev: EventTime, batch: Vec<SlotRow>, rows: Vec<SlotRow>, err: Option<FedError> },
}

impl<'a> BindJoinOp<'a> {
    /// Creates the operator; the engine resolves `db` and the route from
    /// the target's source id and routing decision.
    pub fn new(
        left: crate::operators::BoxedOp<'a>,
        db: &'a Database,
        target: crate::fedplan::BindTarget,
        route: SourceRoute,
        rows_per_message: usize,
        batch_size: usize,
    ) -> Self {
        BindJoinOp {
            left,
            db,
            target,
            route,
            rows_per_message,
            batch_size: batch_size.max(1),
            left_done: false,
            out: VecDeque::new(),
            stage: BindStage::Gather { batch: Vec::new() },
        }
    }

    fn key_of(&self, id: TermId, ctx: &ExecCtx) -> Option<fedlake_relational::Value> {
        let term = ctx.interner.resolve(id)?;
        match &self.target.extract {
            Some(tmpl) => {
                let iri = term.as_iri()?;
                tmpl.extract(iri).map(fedlake_relational::Value::Text)
            }
            None => Some(term_to_value(&term)),
        }
    }

    /// The batch's parameterized SQL, or `None` when no row binds an
    /// extractable key (no traffic then — the batch can never match).
    fn batch_query(&self, batch: &[SlotRow], ctx: &ExecCtx) -> Option<crate::translate::TranslatedQuery> {
        let jslot = ctx.schema.slot(&self.target.join_var);
        // Distinct keys of the batch.
        let mut keys: Vec<fedlake_relational::Value> = Vec::new();
        for row in batch {
            let Some(id) = jslot.and_then(|s| row.get(s)) else { continue };
            if let Some(k) = self.key_of(id, ctx) {
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
        }
        if keys.is_empty() {
            return None;
        }
        let mut part = self.target.part.clone();
        let list: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
        part.wheres.push(format!(
            "{}.{} IN ({})",
            part.alias,
            self.target.column,
            list.join(", ")
        ));
        Some(sql_single(&part))
    }

    /// Probes the batch against the fetched right rows, charging the
    /// engine-side join work; merged rows land in the output queue. Same
    /// interner on both sides makes id equality term equality.
    fn probe_batch(&mut self, batch: &[SlotRow], rows: Vec<SlotRow>, ctx: &mut ExecCtx) {
        let jslot = ctx.schema.slot(&self.target.join_var);
        let mut by_key: std::collections::HashMap<TermId, Vec<SlotRow>> =
            std::collections::HashMap::new();
        for r in rows {
            if let Some(id) = jslot.and_then(|s| r.get(s)) {
                by_key.entry(id).or_default().push(r);
            }
        }
        for lrow in batch {
            ctx.stats.engine_join_probes += 1;
            ctx.clock.advance(ctx.cost.engine_join_time(1));
            let Some(id) = jslot.and_then(|s| lrow.get(s)) else { continue };
            if let Some(matches) = by_key.get(&id) {
                for m in matches {
                    if let Some(merged) = lrow.merge(m) {
                        ctx.clock.advance(ctx.cost.engine_row_time(1));
                        self.out.push_back(merged);
                    }
                }
            }
        }
    }

    fn ship_batch(&mut self, batch: Vec<SlotRow>, ctx: &mut ExecCtx) -> Result<(), FedError> {
        let Some(q) = self.batch_query(&batch, ctx) else {
            return Ok(());
        };
        ctx.stats.sql_queries += 1;
        let t0 = ctx.trace.is_enabled().then(|| ctx.clock.now());
        // The parameterized request.
        transfer_with_retry(&self.route, 0, ctx)?;
        let rs = self.db.query_cached(&q.sql)?;
        ctx.clock.advance(ctx.cost.rdb_time(&convert_cost(&rs.cost)));
        let rows = lift_result(&rs, &q.outputs, &ctx.schema, &mut ctx.interner.lock());
        ctx.stats.service_rows += rows.len() as u64;
        transfer_rows_with_retry(&self.route, rows.len(), self.rows_per_message, ctx)?;
        if let Some(t0) = t0 {
            ctx.trace.source_span(
                SpanKind::BindBatch,
                self.route.active_endpoint(),
                &format!("bind batch ({} left rows)", batch.len()),
                t0,
                ctx.clock.now(),
                rows.len() as u64,
            );
        }
        self.probe_batch(&batch, rows, ctx);
        Ok(())
    }

    /// Schedules a batch's request + evaluation + result transfer as one
    /// chain on the link timeline; the probe happens at completion.
    fn launch_batch(&mut self, batch: Vec<SlotRow>, ctx: &mut ExecCtx) -> Result<(), FedError> {
        let Some(q) = self.batch_query(&batch, ctx) else {
            self.stage = BindStage::Gather { batch: Vec::new() };
            return Ok(());
        };
        ctx.stats.sql_queries += 1;
        let t0 = ctx.clock.now();
        self.stage = match schedule_transfer_with_retry(&self.route, 0, t0, ctx) {
            Ok(t_req) => {
                let rs = self.db.query_cached(&q.sql)?;
                let t_q = self
                    .route
                    .active_link()
                    .schedule_busy(ctx.cost.rdb_time(&convert_cost(&rs.cost)), t_req);
                let rows = lift_result(&rs, &q.outputs, &ctx.schema, &mut ctx.interner.lock());
                ctx.stats.service_rows += rows.len() as u64;
                match schedule_rows_with_retry(
                    &self.route,
                    rows.len(),
                    self.rows_per_message,
                    t_q,
                    ctx,
                ) {
                    Ok(done) => {
                        if ctx.trace.is_enabled() {
                            ctx.trace.source_span(
                                SpanKind::BindBatch,
                                self.route.active_endpoint(),
                                &format!("bind batch ({} left rows)", batch.len()),
                                t0,
                                done,
                                rows.len() as u64,
                            );
                        }
                        BindStage::Flying {
                            ev: ctx.sched.schedule(done),
                            batch,
                            rows,
                            err: None,
                        }
                    }
                    Err((t, e)) => BindStage::Flying {
                        ev: ctx.sched.schedule(t),
                        batch,
                        rows: Vec::new(),
                        err: Some(e),
                    },
                }
            }
            Err((t, e)) => BindStage::Flying {
                ev: ctx.sched.schedule(t),
                batch,
                rows: Vec::new(),
                err: Some(e),
            },
        };
        Ok(())
    }
}

impl FedOp for BindJoinOp<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<SlotRow>, FedError> {
        loop {
            if let Some(row) = self.out.pop_front() {
                return Ok(Some(row));
            }
            if self.left_done {
                return Ok(None);
            }
            let mut batch = Vec::with_capacity(self.batch_size);
            while batch.len() < self.batch_size {
                match self.left.next(ctx)? {
                    Some(row) => batch.push(row),
                    None => {
                        self.left_done = true;
                        break;
                    }
                }
            }
            if batch.is_empty() {
                continue; // left_done; loop exits above
            }
            self.ship_batch(batch, ctx)?;
        }
    }

    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<SlotRow>, FedError> {
        loop {
            if let Some(row) = self.out.pop_front() {
                return Ok(Poll::Ready(row));
            }
            match &mut self.stage {
                BindStage::Flying { ev, batch, rows, err } => {
                    if ev.time > ctx.clock.now() {
                        return Ok(Poll::Pending(*ev));
                    }
                    let ev = *ev;
                    let batch = std::mem::take(batch);
                    let rows = std::mem::take(rows);
                    let err = err.take();
                    ctx.sched.complete(ev);
                    self.stage = BindStage::Gather { batch: Vec::new() };
                    if let Some(e) = err {
                        return Err(e);
                    }
                    self.probe_batch(&batch, rows, ctx);
                }
                BindStage::Gather { batch } => {
                    // Fill the batch from the left without shipping a
                    // partial batch on Pending: batch composition (and so
                    // link traffic) matches the serialized schedule.
                    while !self.left_done && batch.len() < self.batch_size {
                        match self.left.poll_next(ctx)? {
                            Poll::Ready(row) => batch.push(row),
                            Poll::Pending(ev) => return Ok(Poll::Pending(ev)),
                            Poll::Done => self.left_done = true,
                        }
                    }
                    if batch.is_empty() {
                        return Ok(Poll::Done);
                    }
                    let batch = std::mem::take(batch);
                    self.launch_batch(batch, ctx)?;
                }
            }
        }
    }
}

/// A convenience used by tests and the engine: drains an operator fully.
pub fn drain(op: &mut dyn FedOp, ctx: &mut ExecCtx) -> Result<Vec<SlotRow>, FedError> {
    let mut out = Vec::new();
    while let Some(row) = op.next(ctx)? {
        out.push(row);
    }
    Ok(out)
}

/// Creates one link per endpoint, each with its own deterministic RNG
/// stream derived from the base seed. An unreplicated source gets one
/// link under its plain id with the seed derivation unchanged from the
/// pre-replica engine (bit-identical traffic); a source with N replicas
/// gets N links under `id#r0..id#rN-1`, replica 0 on the source's base
/// seed and each further replica on an independent stream. Each link gets
/// the fault plan the [`fedlake_netsim::FaultPlans`] resolves for its
/// endpoint (endpoint override, then logical override, then the default,
/// then any matching outage group), so a chaos schedule can target one
/// replica, one logical source, or a correlated set of links.
///
/// An enabled trace sink and/or flight recorder attaches as the links'
/// network observer; with both, a fan-out forwards to the two (trace
/// first) — observation only, so link behaviour is byte-identical either
/// way.
#[allow(clippy::too_many_arguments)]
pub fn links_for(
    lake: &DataLake,
    profile: fedlake_netsim::NetworkProfile,
    clock: fedlake_netsim::SharedClock,
    cost: fedlake_netsim::CostModel,
    seed: u64,
    faults: &fedlake_netsim::FaultPlans,
    trace: &crate::obs::TraceSink,
    recorder: &crate::obs::FlightRecorder,
) -> std::collections::HashMap<String, Arc<Link>> {
    let observer: Option<Arc<dyn fedlake_netsim::NetObserver>> =
        match (trace.net_observer(), recorder.net_observer()) {
            (Some(t), Some(r)) => {
                Some(Arc::new(crate::obs::recorder::FanoutObserver(vec![t, r])))
            }
            (Some(t), None) => Some(t),
            (None, Some(r)) => Some(r),
            (None, None) => None,
        };
    let mut links = std::collections::HashMap::new();
    for (i, s) in lake.sources().iter().enumerate() {
        let base = seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for (k, endpoint) in lake.replica_endpoints(s.id()).into_iter().enumerate() {
            let link_seed = base.wrapping_add((k as u64).wrapping_mul(0xA24B_AED4_963E_E407));
            let mut link = Link::with_faults(
                profile,
                Arc::clone(&clock),
                cost,
                link_seed,
                faults.for_endpoint(&endpoint, s.id()),
            );
            if let Some(obs) = &observer {
                link = link.with_observer(&endpoint, Arc::clone(obs));
            }
            links.insert(endpoint, Arc::new(link));
        }
    }
    links
}

/// Per-source fault counts (drops + truncations + outage hits) across a
/// link map, attributed to *logical* source ids: replica links fold into
/// their source's single entry, so one flaky source is not split across
/// replica keys. Sources that never failed do not appear.
pub fn source_failures(
    links: &std::collections::HashMap<String, Arc<Link>>,
) -> std::collections::BTreeMap<String, u64> {
    let mut out = std::collections::BTreeMap::new();
    for (id, l) in links {
        let f = l.stats().faults();
        if f > 0 {
            *out.entry(logical_source_id(id).to_string()).or_insert(0) += f;
        }
    }
    out
}

/// Total link traffic across a link map (messages, rows, injected delay).
pub fn total_traffic(
    links: &std::collections::HashMap<String, Arc<Link>>,
) -> (u64, u64, Duration) {
    links.values().fold(
        (0, 0, Duration::ZERO),
        |(m, r, d), l| {
            let s = l.stats();
            (m + s.messages, r + s.rows, d + s.delay)
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use crate::fedplan::ServiceNode;
    use crate::translate::{star_part, TranslatedQuery};
    use fedlake_mapping::{DatasetMapping, IriTemplate, TableMapping};
    use fedlake_netsim::clock::shared_virtual;
    use fedlake_netsim::{CostModel, NetworkProfile};
    use fedlake_rdf::SharedInterner;
    use fedlake_sparql::binding::{decode_row, Var};
    use fedlake_sparql::parser::parse_query;

    fn lake() -> DataLake {
        let mut db = Database::new("d");
        db.execute("CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT, disease TEXT)")
            .unwrap();
        for i in 0..5 {
            db.execute(&format!(
                "INSERT INTO gene VALUES ('g{i}', 'gene {i}', 'd{}')",
                i % 2
            ))
            .unwrap();
        }
        db.execute("CREATE TABLE disease (id TEXT PRIMARY KEY, name TEXT)").unwrap();
        db.execute("INSERT INTO disease VALUES ('d0', 'asthma'), ('d1', 'cancer')")
            .unwrap();
        let mapping = DatasetMapping::new("d")
            .with_table(
                TableMapping::new(
                    "gene",
                    "http://v/Gene",
                    IriTemplate::new("http://d/gene/{}"),
                    "id",
                )
                .with_literal("label", "http://v/label")
                .with_reference(
                    "disease",
                    "http://v/disease",
                    IriTemplate::new("http://d/disease/{}"),
                ),
            )
            .with_table(
                TableMapping::new(
                    "disease",
                    "http://v/Disease",
                    IriTemplate::new("http://d/disease/{}"),
                    "id",
                )
                .with_literal("name", "http://v/name"),
            );
        let mut lake = DataLake::new();
        lake.add_source(DataSource::relational("d", db, mapping));
        lake
    }

    fn ctx(clock: fedlake_netsim::SharedClock, vars: &[&str]) -> ExecCtx {
        ExecCtx::new(
            clock,
            CostModel::default(),
            Arc::new(RowSchema::new(vars.iter().map(|v| Var::new(*v)))),
            SharedInterner::new(),
        )
    }

    fn decode(c: &ExecCtx, rows: &[SlotRow]) -> Vec<Row> {
        let dict = c.interner.lock();
        rows.iter().map(|r| decode_row(r, &c.schema, &dict)).collect()
    }

    #[test]
    fn sql_stream_lifts_rows() {
        let lake = lake();
        let star = decompose(
            &parse_query("SELECT * WHERE { ?g a <http://v/Gene> . ?g <http://v/label> ?l }")
                .unwrap(),
        )
        .unwrap()
        .stars
        .remove(0);
        let (tm, schema) = match lake.source("d").unwrap() {
            DataSource::Relational { db, mapping, .. } => (
                mapping.for_table("gene").unwrap().clone(),
                db.table("gene").unwrap().schema.clone(),
            ),
            _ => unreachable!("lake() builds a relational source"),
        };
        let q = sql_single(&star_part(&star, &tm, &schema, &[], "s0").unwrap());
        let node = ServiceNode {
            source_id: "d".into(),
            route: None,
            kind: ServiceKind::Sql {
                request: SqlRequest::Single(q),
                covers: vec!["?g".into()],
            },
            estimated_rows: 5.0,
        };
        let clock = shared_virtual();
        let link = Arc::new(Link::new(
            NetworkProfile::GAMMA2,
            Arc::clone(&clock),
            CostModel::default(),
            7,
        ));
        let route = SourceRoute::single("d", Arc::clone(&link));
        let mut op = open_service(&node, &lake, route, 1).unwrap();
        let mut c = ctx(clock, &["g", "l"]);
        let rows = drain(op.as_mut(), &mut c).unwrap();
        assert_eq!(rows.len(), 5);
        let decoded = decode(&c, &rows);
        assert!(decoded[0]
            .get(&Var::new("g"))
            .unwrap()
            .as_iri()
            .unwrap()
            .starts_with("http://d/gene/"));
        assert_eq!(c.stats.sql_queries, 1);
        // 1 request + 5 per-row messages.
        assert_eq!(link.stats().messages, 6);
        assert!(c.clock.now() > Duration::ZERO);
    }

    #[test]
    fn empty_result_still_messages() {
        let lake = lake();
        let node = ServiceNode {
            source_id: "d".into(),
            route: None,
            kind: ServiceKind::Sql {
                request: SqlRequest::Single(TranslatedQuery {
                    sql: "SELECT g.id AS i FROM gene g WHERE g.id = 'zzz'".into(),
                    outputs: Vec::new(),
                }),
                covers: Vec::new(),
            },
            estimated_rows: 0.0,
        };
        let clock = shared_virtual();
        let link = Arc::new(Link::new(
            NetworkProfile::NO_DELAY,
            Arc::clone(&clock),
            CostModel::default(),
            7,
        ));
        let route = SourceRoute::single("d", Arc::clone(&link));
        let mut op = open_service(&node, &lake, route, 1).unwrap();
        let mut c = ctx(clock, &["g"]);
        assert!(drain(op.as_mut(), &mut c).unwrap().is_empty());
        // Request + empty answer.
        assert_eq!(link.stats().messages, 2);
    }

    #[test]
    fn sparql_stream_evaluates_star() {
        let mut g = fedlake_rdf::Graph::new();
        g.insert_terms(
            fedlake_rdf::Term::iri("http://d/x"),
            fedlake_rdf::Term::iri("http://v/p"),
            fedlake_rdf::Term::integer(5),
        );
        g.insert_terms(
            fedlake_rdf::Term::iri("http://d/y"),
            fedlake_rdf::Term::iri("http://v/p"),
            fedlake_rdf::Term::integer(50),
        );
        let mut lake = DataLake::new();
        lake.add_source(DataSource::sparql("r", g));
        let d = decompose(
            &parse_query("SELECT * WHERE { ?s <http://v/p> ?o . FILTER(?o > 10) }").unwrap(),
        )
        .unwrap();
        let node = ServiceNode {
            source_id: "r".into(),
            route: None,
            kind: ServiceKind::Sparql {
                star: d.stars[0].clone(),
                filters: d.stars[0].filters.clone(),
            },
            estimated_rows: 1.0,
        };
        let clock = shared_virtual();
        let link = Arc::new(Link::new(
            NetworkProfile::NO_DELAY,
            Arc::clone(&clock),
            CostModel::default(),
            1,
        ));
        let mut op = open_service(&node, &lake, SourceRoute::single("r", link), 1).unwrap();
        let mut c = ctx(clock, &["s", "o"]);
        let rows = drain(op.as_mut(), &mut c).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn naive_stream_issues_n_plus_one_queries() {
        let lake = lake();
        let (gene_tm, disease_tm, gene_schema, disease_schema) =
            match lake.source("d").unwrap() {
                DataSource::Relational { db, mapping, .. } => (
                    mapping.for_table("gene").unwrap().clone(),
                    mapping.for_table("disease").unwrap().clone(),
                    db.table("gene").unwrap().schema.clone(),
                    db.table("disease").unwrap().schema.clone(),
                ),
                _ => unreachable!("lake() builds a relational source"),
            };
        let d = decompose(
            &parse_query(
                "SELECT * WHERE { ?g <http://v/label> ?l . ?g <http://v/disease> ?d . \
                 ?d <http://v/name> ?n }",
            )
            .unwrap(),
        )
        .unwrap();
        let outer =
            sql_single(&star_part(&d.stars[0], &gene_tm, &gene_schema, &[], "s0").unwrap());
        let inner = star_part(&d.stars[1], &disease_tm, &disease_schema, &[], "s1").unwrap();
        let node = ServiceNode {
            source_id: "d".into(),
            route: None,
            kind: ServiceKind::Sql {
                request: SqlRequest::MergedNaive {
                    outer,
                    inner,
                    join: NaiveJoin {
                        outer_var: Var::new("d"),
                        inner_col: "id".into(),
                        extract: Some(IriTemplate::new("http://d/disease/{}")),
                    },
                },
                covers: vec!["?g".into(), "?d".into()],
            },
            estimated_rows: 5.0,
        };
        let clock = shared_virtual();
        let link = Arc::new(Link::new(
            NetworkProfile::NO_DELAY,
            Arc::clone(&clock),
            CostModel::default(),
            3,
        ));
        let route = SourceRoute::single("d", Arc::clone(&link));
        let mut op = open_service(&node, &lake, route, 1).unwrap();
        let mut c = ctx(clock, &["g", "l", "d", "n"]);
        let rows = drain(op.as_mut(), &mut c).unwrap();
        // Every gene has a disease with a name.
        assert_eq!(rows.len(), 5);
        // 1 outer + 5 inner queries.
        assert_eq!(c.stats.sql_queries, 6);
        // Rows bind variables from both stars.
        let decoded = decode(&c, &rows);
        assert!(decoded[0].is_bound(&Var::new("n")));
        assert!(decoded[0].is_bound(&Var::new("l")));
    }

    #[test]
    fn retry_recovers_from_transient_faults() {
        let clock = shared_virtual();
        // Attempts 0 and 1 hit the outage; attempt 2 succeeds.
        let plan = fedlake_netsim::FaultPlan {
            outage_after: Some(0),
            outage_len: 2,
            ..fedlake_netsim::FaultPlan::NONE
        };
        let link = Arc::new(Link::with_faults(
            NetworkProfile::NO_DELAY,
            Arc::clone(&clock),
            CostModel::default(),
            1,
            plan,
        ));
        let route = SourceRoute::single("s", Arc::clone(&link));
        let mut c = ctx(Arc::clone(&clock), &["x"]);
        transfer_with_retry(&route, 1, &mut c).unwrap();
        assert_eq!(c.stats.retries, 2);
        let s = link.stats();
        assert_eq!((s.messages, s.outage_faults), (1, 2));
        // Two detection timeouts (10 ms each) plus backoff 2 ms + 4 ms.
        assert!(c.clock.now() >= Duration::from_millis(26));
    }

    #[test]
    fn exhausted_retry_budget_is_source_unavailable() {
        let clock = shared_virtual();
        let plan = fedlake_netsim::FaultPlan {
            outage_after: Some(0),
            outage_len: u64::MAX,
            ..fedlake_netsim::FaultPlan::NONE
        };
        let link = Arc::new(Link::with_faults(
            NetworkProfile::NO_DELAY,
            Arc::clone(&clock),
            CostModel::default(),
            1,
            plan,
        ));
        let route = SourceRoute::single("s", Arc::clone(&link));
        let mut c = ctx(clock, &["x"]);
        c.retry = crate::config::RetryPolicy { max_attempts: 3, ..Default::default() };
        let err = transfer_with_retry(&route, 1, &mut c).unwrap_err();
        assert_eq!(
            err,
            FedError::SourceUnavailable { source: "s".into(), attempts: 3 }
        );
        assert_eq!(c.stats.retries, 2);
        assert_eq!(link.stats().messages, 0);
    }

    fn dead_link(clock: &fedlake_netsim::SharedClock, seed: u64) -> Arc<Link> {
        Arc::new(Link::with_faults(
            NetworkProfile::NO_DELAY,
            Arc::clone(clock),
            CostModel::default(),
            seed,
            fedlake_netsim::FaultPlan {
                outage_after: Some(0),
                outage_len: u64::MAX,
                ..fedlake_netsim::FaultPlan::NONE
            },
        ))
    }

    fn live_link(clock: &fedlake_netsim::SharedClock, seed: u64) -> Arc<Link> {
        Arc::new(Link::new(
            NetworkProfile::NO_DELAY,
            Arc::clone(clock),
            CostModel::default(),
            seed,
        ))
    }

    #[test]
    fn failover_rescues_a_dead_primary() {
        let clock = shared_virtual();
        let dead = dead_link(&clock, 1);
        let live = live_link(&clock, 2);
        let route = SourceRoute::new(
            "s",
            vec![("s#r0".into(), Arc::clone(&dead)), ("s#r1".into(), Arc::clone(&live))],
        );
        let mut c = ctx(Arc::clone(&clock), &["x"]);
        c.retry = crate::config::RetryPolicy { max_attempts: 3, ..Default::default() };
        transfer_with_retry(&route, 1, &mut c).unwrap();
        // Full budget burnt on r0 (2 intra-replica retries + the failover
        // switch), then r1 delivers on its first attempt.
        assert_eq!(c.stats.retries, 3);
        assert_eq!(dead.stats().faults(), 3);
        assert_eq!(live.stats().messages, 1);
        assert_eq!(route.active_endpoint(), "s#r1");
        // The stream is sticky: follow-up messages go straight to r1.
        transfer_with_retry(&route, 1, &mut c).unwrap();
        assert_eq!(live.stats().messages, 2);
        assert_eq!(dead.stats().faults(), 3);
    }

    #[test]
    fn exhausting_every_replica_names_the_logical_source() {
        let clock = shared_virtual();
        let r0 = dead_link(&clock, 1);
        let r1 = dead_link(&clock, 2);
        let route = SourceRoute::new(
            "s",
            vec![("s#r0".into(), Arc::clone(&r0)), ("s#r1".into(), Arc::clone(&r1))],
        );
        let mut c = ctx(Arc::clone(&clock), &["x"]);
        c.retry = crate::config::RetryPolicy { max_attempts: 3, ..Default::default() };
        let err = transfer_with_retry(&route, 1, &mut c).unwrap_err();
        assert_eq!(
            err,
            FedError::SourceUnavailable { source: "s".into(), attempts: 6 }
        );
        // Every non-terminal failure counts: 2 + 2 intra-replica retries
        // plus the one failover switch.
        assert_eq!(c.stats.retries, 5);
        assert_eq!(r0.stats().faults(), 3);
        assert_eq!(r1.stats().faults(), 3);
    }

    #[test]
    fn scheduled_failover_matches_serialized_attempts() {
        // Serialized twin: identical links and policy, blocking transfer.
        let serialized_end = {
            let clock = shared_virtual();
            let dead = dead_link(&clock, 1);
            let live = live_link(&clock, 2);
            let route = SourceRoute::new(
                "s",
                vec![("s#r0".into(), dead), ("s#r1".into(), live)],
            );
            let mut c = ctx(Arc::clone(&clock), &["x"]);
            c.retry = crate::config::RetryPolicy { max_attempts: 3, ..Default::default() };
            transfer_with_retry(&route, 1, &mut c).unwrap();
            clock.now()
        };
        let clock = shared_virtual();
        let dead = dead_link(&clock, 1);
        let live = live_link(&clock, 2);
        let route = SourceRoute::new(
            "s",
            vec![("s#r0".into(), Arc::clone(&dead)), ("s#r1".into(), Arc::clone(&live))],
        );
        let mut c = ctx(Arc::clone(&clock), &["x"]);
        c.retry = crate::config::RetryPolicy { max_attempts: 3, ..Default::default() };
        let done = schedule_transfer_with_retry(&route, 1, Duration::ZERO, &mut c).unwrap();
        assert_eq!(c.stats.retries, 3);
        assert_eq!(dead.stats().faults(), 3);
        assert_eq!(live.stats().messages, 1);
        assert_eq!(route.active_endpoint(), "s#r1");
        // The scheduled completion lands exactly where the serialized
        // clock does: 3 detection timeouts (10 ms) + backoffs 2 ms + 4 ms
        // on r0, then r1's delivery.
        assert_eq!(done, serialized_end);
        assert!(done >= Duration::from_millis(36));
        assert!(done < Duration::from_millis(37));
    }

    #[test]
    fn backoff_is_clamped_at_the_deadline() {
        let clock = shared_virtual();
        // Attempt 0 fails, attempt 1 succeeds: exactly one backoff pause.
        let plan = fedlake_netsim::FaultPlan {
            outage_after: Some(0),
            outage_len: 1,
            ..fedlake_netsim::FaultPlan::NONE
        };
        let link = Arc::new(Link::with_faults(
            NetworkProfile::NO_DELAY,
            Arc::clone(&clock),
            CostModel::default(),
            1,
            plan,
        ));
        let route = SourceRoute::single("s", Arc::clone(&link));
        let mut c = ctx(Arc::clone(&clock), &["x"]);
        c.retry = crate::config::RetryPolicy {
            max_attempts: 2,
            timeout: Duration::from_millis(1),
            backoff: Duration::from_secs(10),
        };
        c.deadline = Some(Duration::from_millis(5));
        transfer_with_retry(&route, 1, &mut c).unwrap();
        // Timeout 1 ms, then the 10 s backoff clamps to the 4 ms left
        // before the deadline: the clock lands on the deadline plus the
        // final delivery's transfer cost — bounded by one more timeout —
        // not 10 s past it.
        assert!(c.clock.now() >= Duration::from_millis(5));
        assert!(c.clock.now() < Duration::from_millis(6));
    }

    #[test]
    fn links_are_deterministic_and_distinct() {
        let lake = lake();
        let clock = shared_virtual();
        let links = links_for(
            &lake,
            NetworkProfile::GAMMA1,
            clock,
            CostModel::default(),
            42,
            &fedlake_netsim::FaultPlans::default(),
            &crate::obs::TraceSink::disabled(),
            &crate::obs::FlightRecorder::disabled(),
        );
        assert_eq!(links.len(), 1);
        let (m, r, d) = total_traffic(&links);
        assert_eq!((m, r), (0, 0));
        assert_eq!(d, Duration::ZERO);
    }

    #[test]
    fn replicated_lake_gets_one_link_per_endpoint() {
        let mut lake = lake();
        lake.set_replicas("d", 3);
        let clock = shared_virtual();
        let links = links_for(
            &lake,
            NetworkProfile::GAMMA1,
            clock,
            CostModel::default(),
            42,
            &fedlake_netsim::FaultPlans::default(),
            &crate::obs::TraceSink::disabled(),
            &crate::obs::FlightRecorder::disabled(),
        );
        assert_eq!(links.len(), 3);
        for k in ["d#r0", "d#r1", "d#r2"] {
            assert!(links.contains_key(k), "missing link for {k}");
        }
        assert!(!links.contains_key("d"));
    }

    #[test]
    fn source_failures_fold_replicas_into_the_logical_id() {
        let clock = shared_virtual();
        let r0 = dead_link(&clock, 1);
        let r1 = dead_link(&clock, 2);
        let _ = r0.try_transfer_message(1);
        let _ = r0.try_transfer_message(1);
        let _ = r1.try_transfer_message(1);
        let links: std::collections::HashMap<String, Arc<Link>> =
            [("s#r0".to_string(), r0), ("s#r1".to_string(), r1)].into();
        let failures = source_failures(&links);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures["s"], 3);
    }
}
