//! Standard serializations of federated query results: the W3C *SPARQL 1.1
//! Query Results JSON Format* and the *SPARQL 1.1 Query Results CSV
//! Format*, so FedLake's answers drop into existing SPARQL tooling.

use fedlake_rdf::Term;
use fedlake_sparql::binding::{Row, Var};
use std::fmt::Write as _;

/// Serializes rows as SPARQL 1.1 Query Results JSON.
pub fn to_sparql_json(vars: &[Var], rows: &[Row]) -> String {
    let mut out = String::from("{\"head\":{\"vars\":[");
    for (i, v) in vars.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", json_escape(v.name()));
    }
    out.push_str("]},\"results\":{\"bindings\":[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        let mut first = true;
        for v in vars {
            let Some(term) = row.get(v) else { continue };
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\"{}\":", json_escape(v.name()));
            write_term_json(&mut out, term);
        }
        out.push('}');
    }
    out.push_str("]}}");
    out
}

fn write_term_json(out: &mut String, term: &Term) {
    match term {
        Term::Iri(iri) => {
            let _ = write!(out, "{{\"type\":\"uri\",\"value\":\"{}\"}}", json_escape(iri));
        }
        Term::Blank(label) => {
            let _ = write!(out, "{{\"type\":\"bnode\",\"value\":\"{}\"}}", json_escape(label));
        }
        Term::Literal(l) => {
            let _ = write!(out, "{{\"type\":\"literal\",\"value\":\"{}\"", json_escape(&l.lexical));
            if let Some(lang) = &l.lang {
                let _ = write!(out, ",\"xml:lang\":\"{}\"", json_escape(lang));
            } else if let Some(dt) = &l.datatype {
                let _ = write!(out, ",\"datatype\":\"{}\"", json_escape(dt));
            }
            out.push('}');
        }
    }
}

/// Escapes a string for a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serializes rows as SPARQL 1.1 Query Results CSV (RFC 4180 quoting,
/// IRIs bare, literals by lexical form, unbound cells empty).
pub fn to_sparql_csv(vars: &[Var], rows: &[Row]) -> String {
    let mut out = String::new();
    let header: Vec<String> = vars.iter().map(|v| csv_cell(v.name())).collect();
    out.push_str(&header.join(","));
    out.push_str("\r\n");
    for row in rows {
        let cells: Vec<String> = vars
            .iter()
            .map(|v| match row.get(v) {
                None => String::new(),
                Some(Term::Iri(iri)) => csv_cell(iri),
                Some(Term::Blank(label)) => csv_cell(&format!("_:{label}")),
                Some(Term::Literal(l)) => csv_cell(&l.lexical),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push_str("\r\n");
    }
    out
}

fn csv_cell(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

impl crate::engine::FedResult {
    /// This result as SPARQL 1.1 Query Results JSON.
    pub fn to_json(&self) -> String {
        to_sparql_json(&self.vars, &self.rows)
    }

    /// This result as SPARQL 1.1 Query Results CSV.
    pub fn to_csv(&self) -> String {
        to_sparql_csv(&self.vars, &self.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlake_rdf::Literal;

    fn vars() -> Vec<Var> {
        vec![Var::new("s"), Var::new("v")]
    }

    #[test]
    fn json_shape() {
        let rows = vec![Row::new()
            .with("s", Term::iri("http://x/a"))
            .with("v", Term::integer(5))];
        let json = to_sparql_json(&vars(), &rows);
        assert_eq!(
            json,
            "{\"head\":{\"vars\":[\"s\",\"v\"]},\"results\":{\"bindings\":[\
             {\"s\":{\"type\":\"uri\",\"value\":\"http://x/a\"},\
             \"v\":{\"type\":\"literal\",\"value\":\"5\",\
             \"datatype\":\"http://www.w3.org/2001/XMLSchema#integer\"}}]}}"
        );
    }

    #[test]
    fn json_lang_and_bnode() {
        let rows = vec![Row::new()
            .with("s", Term::blank("b0"))
            .with("v", Term::Literal(Literal::lang_tagged("chat", "en")))];
        let json = to_sparql_json(&vars(), &rows);
        assert!(json.contains("\"type\":\"bnode\",\"value\":\"b0\""));
        assert!(json.contains("\"xml:lang\":\"en\""));
    }

    #[test]
    fn json_escaping() {
        let rows = vec![Row::new().with("s", Term::literal("a\"b\\c\nd\u{1}"))];
        let json = to_sparql_json(&[Var::new("s")], &rows);
        assert!(json.contains("a\\\"b\\\\c\\nd\\u0001"));
    }

    #[test]
    fn json_unbound_variables_are_omitted() {
        let rows = vec![Row::new().with("s", Term::iri("http://x/a"))];
        let json = to_sparql_json(&vars(), &rows);
        assert!(!json.contains("\"v\":"));
    }

    #[test]
    fn csv_shape_and_quoting() {
        let rows = vec![
            Row::new()
                .with("s", Term::iri("http://x/a"))
                .with("v", Term::literal("plain")),
            Row::new()
                .with("s", Term::iri("http://x/b"))
                .with("v", Term::literal("has,comma \"q\"")),
            Row::new().with("s", Term::blank("n1")),
        ];
        let csv = to_sparql_csv(&vars(), &rows);
        let lines: Vec<&str> = csv.split("\r\n").collect();
        assert_eq!(lines[0], "s,v");
        assert_eq!(lines[1], "http://x/a,plain");
        assert_eq!(lines[2], "http://x/b,\"has,comma \"\"q\"\"\"");
        assert_eq!(lines[3], "_:n1,");
    }

    #[test]
    fn empty_results() {
        assert_eq!(
            to_sparql_json(&[Var::new("x")], &[]),
            "{\"head\":{\"vars\":[\"x\"]},\"results\":{\"bindings\":[]}}"
        );
        assert_eq!(to_sparql_csv(&[Var::new("x")], &[]), "x\r\n");
    }
}
