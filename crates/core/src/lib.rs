//! # fedlake-core
//!
//! The federated SPARQL query engine for Semantic Data Lakes — a
//! from-scratch Rust reproduction of Ontario extended with the
//! physical-design heuristics of Rohde & Vidal (EDBT 2020 workshops):
//!
//! * **Heuristic 1 — pushing down joins**: star-shaped sub-queries over the
//!   same relational endpoint are merged into one SQL query when the join
//!   attribute is indexed there ([`planner`]).
//! * **Heuristic 2 — pushing up instantiations**: filters on relational
//!   sub-queries run at the engine unless the filtered attribute is indexed
//!   *and* the network is slow ([`planner`]).
//!
//! The pipeline follows Ontario/MULDER/ANAPSID:
//!
//! ```text
//! SPARQL ─parse→ decompose into star-shaped sub-queries (SSQs)
//!        ─select sources via RDF Molecule Templates
//!        ─plan (PlanMode::Unaware | PlanMode::Aware{h1, h2})
//!        ─execute: streaming symmetric hash joins over wrappers
//!            SQL wrapper: SPARQL→SQL translation, per-message network delay
//!            SPARQL wrapper: local BGP evaluation
//!        → answers + answer trace + execution statistics
//! ```
//!
//! Execution runs over a simulated clock (`fedlake-netsim`), so answer
//! traces — the measurement behind the paper's Figure 2 — are
//! deterministic and fast to produce.
//!
//! ## Example
//!
//! ```
//! use fedlake_core::{DataLake, DataSource, FederatedEngine, PlanConfig};
//! use fedlake_rdf::{Graph, Term};
//!
//! let mut g = Graph::new();
//! g.insert_terms(
//!     Term::iri("http://ex/g1"),
//!     Term::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
//!     Term::iri("http://ex/Gene"),
//! );
//! g.insert_terms(
//!     Term::iri("http://ex/g1"),
//!     Term::iri("http://ex/label"),
//!     Term::literal("BRCA1"),
//! );
//! let mut lake = DataLake::new();
//! lake.add_source(DataSource::sparql("genes", g));
//! let engine = FederatedEngine::new(lake, PlanConfig::default());
//! let result = engine
//!     .execute_sparql("SELECT ?l WHERE { ?g a <http://ex/Gene> . ?g <http://ex/label> ?l }")
//!     .unwrap();
//! assert_eq!(result.rows.len(), 1);
//! ```

pub mod config;
pub mod decompose;
pub mod engine;
pub mod error;
pub mod explain;
pub mod fedplan;
pub mod health;
pub mod ir;
pub mod lake;
pub mod obs;
pub mod operators;
pub mod plancache;
pub mod planner;
pub mod reference;
pub mod results;
pub mod selection;
pub mod serve;
pub mod source;
pub mod stats;
pub mod trace;
pub mod translate;
pub mod wrapper;

pub use config::{
    EngineJoin, FilterPlacement, MergeTranslation, PlanConfig, PlanMode, RetryPolicy,
};
pub use decompose::DecompositionStrategy;
pub use engine::{FedResult, FedStats, FederatedEngine};
pub use fedlake_netsim::{FaultPlan, FaultPlans, LinkFault, OutageGroup};
pub use error::FedError;
pub use fedplan::ReplicaRoute;
pub use health::{EndpointHealth, HealthView, SourceHealth};
pub use lake::{logical_source_id, DataLake};
pub use obs::{
    chrome_trace, explain_analyze, serve_chrome_trace, serve_timeline_html, slow_log_json,
    slow_queries, watch, FlightRecorder, FlightRecording, MetricsRegistry, SlowLogConfig,
    SlowQueryRecord, TraceReport, TraceSink, WatchdogConfig, WatchdogReport,
};
pub use ir::LogicalPlan;
pub use plancache::{PlanCacheStats, PlanOrigin};
pub use serve::{QueryOutcome, ServeConfig, ServeJob, ServeOutcome, ServeQueryStats};
pub use source::DataSource;
pub use stats::{FederationCost, LakeStatistics, SourceStatistics};
pub use trace::AnswerTrace;
