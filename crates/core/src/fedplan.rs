//! Federated query execution plans.
//!
//! A [`FedPlan`] is the tree the paper's Figure 1 depicts: `Service` leaves
//! (one request to one source, possibly carrying a pushed-down join or
//! filter) combined by engine-level operators (symmetric hash joins,
//! filters, union). The difference between the physical-design-unaware and
//! -aware plans is entirely in how much work sits in the leaves versus the
//! engine operators.

use crate::decompose::StarSubquery;
use crate::translate::{StarPart, TranslatedQuery};
use fedlake_mapping::IriTemplate;
use fedlake_sparql::binding::Var;
use fedlake_sparql::expr::Expr;

/// How a merged-naive service resolves the inner star per outer binding.
#[derive(Debug, Clone, PartialEq)]
pub struct NaiveJoin {
    /// The outer variable supplying the join key.
    pub outer_var: Var,
    /// The inner table column equated with the key.
    pub inner_col: String,
    /// Template extracting the key from entity IRIs, when the join
    /// variable carries IRIs.
    pub extract: Option<IriTemplate>,
}

/// The request a SQL wrapper sends to a relational source.
// Plans are built once per query; the size skew of the naive-merge variant
// is irrelevant next to indirection on every match.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum SqlRequest {
    /// One star, one `SELECT`.
    Single(TranslatedQuery),
    /// Heuristic 1 with optimized translation: one flat join `SELECT`.
    MergedOptimized(TranslatedQuery),
    /// Heuristic 1 with Ontario's unoptimized translation, emulated as an
    /// N+1 dependent join at the wrapper: evaluate `outer`, then one inner
    /// query per outer binding.
    MergedNaive {
        /// The outer star's query.
        outer: TranslatedQuery,
        /// The inner star's reusable SQL fragments.
        inner: StarPart,
        /// How outer bindings parameterize the inner query.
        join: NaiveJoin,
    },
}

impl SqlRequest {
    /// The SQL text (outer query for the naive form).
    pub fn sql(&self) -> &str {
        match self {
            SqlRequest::Single(q) | SqlRequest::MergedOptimized(q) => &q.sql,
            SqlRequest::MergedNaive { outer, .. } => &outer.sql,
        }
    }

    /// True for either merged form (Heuristic 1 applied).
    pub fn is_merged(&self) -> bool {
        !matches!(self, SqlRequest::Single(_))
    }
}

/// A service leaf: one request to one source.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceKind {
    /// SPARQL endpoint: evaluate the star (with its filters) natively.
    Sparql {
        /// The star to evaluate.
        star: StarSubquery,
        /// Filters evaluated at the endpoint.
        filters: Vec<Expr>,
    },
    /// Relational endpoint: send translated SQL through the wrapper.
    Sql {
        /// The request.
        request: SqlRequest,
        /// Subjects covered (for explain output).
        covers: Vec<String>,
    },
}

/// The planner's routing decision for a replicated source: the replica
/// endpoints to use, preferred (healthiest) first, with the reason the
/// order was chosen. Decided once at plan time from the session's health
/// snapshot, so both executors — and any re-execution of the same plan —
/// contact replicas in exactly the same order. `None` on an unreplicated
/// source: the service talks to the plain source id as before.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaRoute {
    /// Replica endpoint ids, preferred first; later entries are the
    /// failover order when an earlier replica exhausts its retry budget.
    pub endpoints: Vec<String>,
    /// Human-readable routing rationale (shown by EXPLAIN).
    pub reason: String,
}

impl ReplicaRoute {
    /// The endpoint the service contacts first.
    pub fn primary(&self) -> &str {
        &self.endpoints[0]
    }
}

/// The right side of an engine-level bind join: a relational star whose
/// SQL is re-issued per batch of left bindings with an `IN` list on the
/// join column (ANAPSID's dependent-join lineage).
#[derive(Debug, Clone, PartialEq)]
pub struct BindTarget {
    /// Target source.
    pub source_id: String,
    /// Replica routing decision (`None` = unreplicated).
    pub route: Option<ReplicaRoute>,
    /// The star's reusable SQL fragments (without the IN restriction).
    pub part: crate::translate::StarPart,
    /// The shared variable whose left-side bindings are shipped.
    pub join_var: Var,
    /// The column the bindings restrict.
    pub column: String,
    /// Template extracting SQL keys from entity IRIs, when the join
    /// variable carries IRIs.
    pub extract: Option<IriTemplate>,
    /// For explain output.
    pub covers: String,
    /// Optimizer's cardinality estimate of the unrestricted star.
    pub estimated_rows: f64,
}

/// A leaf of the federated plan.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceNode {
    /// Target source.
    pub source_id: String,
    /// Replica routing decision (`None` = unreplicated).
    pub route: Option<ReplicaRoute>,
    /// The request.
    pub kind: ServiceKind,
    /// Optimizer's cardinality estimate (drives join ordering).
    pub estimated_rows: f64,
}

/// A federated execution plan.
// Same rationale as SqlRequest: a handful of nodes per query.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum FedPlan {
    /// A source request.
    Service(ServiceNode),
    /// Engine-level symmetric hash join (ANAPSID's adaptive join) on the
    /// shared variables.
    Join {
        /// Left input.
        left: Box<FedPlan>,
        /// Right input.
        right: Box<FedPlan>,
        /// Join variables (empty = cartesian).
        on: Vec<Var>,
    },
    /// Engine-level filter (instantiations kept at the engine by
    /// Heuristic 2, plus all cross-star filters).
    Filter {
        /// Input plan.
        input: Box<FedPlan>,
        /// Conjunctive expressions.
        exprs: Vec<Expr>,
    },
    /// Union of alternative services for the same star.
    Union(Vec<FedPlan>),
    /// Engine-level streaming left join (from `OPTIONAL`): left rows
    /// without a compatible right row pass through unextended.
    LeftJoin {
        /// Required input.
        left: Box<FedPlan>,
        /// Optional input.
        right: Box<FedPlan>,
        /// Join variables.
        on: Vec<Var>,
    },
    /// Engine-level dependent (bind) join: left bindings are shipped to
    /// the right source in batches as SQL `IN` lists instead of fetching
    /// the right star in full.
    BindJoin {
        /// Left input.
        left: Box<FedPlan>,
        /// The parameterized right star.
        right: BindTarget,
        /// Left rows per shipped batch.
        batch_size: usize,
    },
}

impl FedPlan {
    /// Number of service leaves (= requests sent to sources).
    pub fn service_count(&self) -> usize {
        match self {
            FedPlan::Service(_) => 1,
            FedPlan::Join { left, right, .. } | FedPlan::LeftJoin { left, right, .. } => {
                left.service_count() + right.service_count()
            }
            FedPlan::BindJoin { left, .. } => left.service_count() + 1,
            FedPlan::Filter { input, .. } => input.service_count(),
            FedPlan::Union(branches) => branches.iter().map(FedPlan::service_count).sum(),
        }
    }

    /// Number of *independent* service fetches — those an overlapped
    /// schedule can run concurrently. The right side of a bind join is
    /// excluded: its requests depend on the left input's rows, so the
    /// fetch is inherently sequential.
    pub fn independent_service_count(&self) -> usize {
        match self {
            FedPlan::Service(_) => 1,
            FedPlan::Join { left, right, .. } | FedPlan::LeftJoin { left, right, .. } => {
                left.independent_service_count() + right.independent_service_count()
            }
            FedPlan::BindJoin { left, .. } => left.independent_service_count(),
            FedPlan::Filter { input, .. } => input.independent_service_count(),
            FedPlan::Union(branches) => {
                branches.iter().map(FedPlan::independent_service_count).sum()
            }
        }
    }

    /// Number of engine-level operators (joins + filters + unions) — the
    /// quantity Figure 1 contrasts between the two plan types.
    pub fn engine_operator_count(&self) -> usize {
        match self {
            FedPlan::Service(_) => 0,
            FedPlan::Join { left, right, .. } | FedPlan::LeftJoin { left, right, .. } => {
                1 + left.engine_operator_count() + right.engine_operator_count()
            }
            FedPlan::BindJoin { left, .. } => 1 + left.engine_operator_count(),
            FedPlan::Filter { input, .. } => 1 + input.engine_operator_count(),
            FedPlan::Union(branches) => {
                1 + branches.iter().map(FedPlan::engine_operator_count).sum::<usize>()
            }
        }
    }

    /// Number of services whose request pushes a join down (Heuristic 1).
    pub fn merged_service_count(&self) -> usize {
        match self {
            FedPlan::Service(s) => match &s.kind {
                ServiceKind::Sql { request, .. } if request.is_merged() => 1,
                _ => 0,
            },
            FedPlan::Join { left, right, .. } | FedPlan::LeftJoin { left, right, .. } => {
                left.merged_service_count() + right.merged_service_count()
            }
            FedPlan::BindJoin { left, .. } => left.merged_service_count(),
            FedPlan::Filter { input, .. } => input.merged_service_count(),
            FedPlan::Union(branches) => {
                branches.iter().map(FedPlan::merged_service_count).sum()
            }
        }
    }

    /// Estimated output cardinality (used for join ordering).
    pub fn estimated_rows(&self) -> f64 {
        match self {
            FedPlan::Service(s) => s.estimated_rows,
            FedPlan::Join { left, right, .. } => {
                // Containment-style guess: the smaller side bounds the join.
                left.estimated_rows().min(right.estimated_rows()).max(1.0)
            }
            FedPlan::Filter { input, .. } => (input.estimated_rows() * 0.5).max(1.0),
            FedPlan::Union(branches) => branches.iter().map(FedPlan::estimated_rows).sum(),
            // A left join preserves at least every left row.
            FedPlan::LeftJoin { left, .. } => left.estimated_rows(),
            FedPlan::BindJoin { left, .. } => left.estimated_rows(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service(est: f64) -> FedPlan {
        FedPlan::Service(ServiceNode {
            source_id: "s".into(),
            route: None,
            kind: ServiceKind::Sql {
                request: SqlRequest::Single(TranslatedQuery {
                    sql: "SELECT 1".into(),
                    outputs: Vec::new(),
                }),
                covers: vec!["?x".into()],
            },
            estimated_rows: est,
        })
    }

    #[test]
    fn counting() {
        let plan = FedPlan::Filter {
            input: Box::new(FedPlan::Join {
                left: Box::new(service(10.0)),
                right: Box::new(service(5.0)),
                on: vec![Var::new("x")],
            }),
            exprs: Vec::new(),
        };
        assert_eq!(plan.service_count(), 2);
        assert_eq!(plan.engine_operator_count(), 2);
        assert_eq!(plan.merged_service_count(), 0);
        assert_eq!(plan.estimated_rows(), 2.5);
    }

    #[test]
    fn merged_detection() {
        let merged = FedPlan::Service(ServiceNode {
            source_id: "s".into(),
            route: None,
            kind: ServiceKind::Sql {
                request: SqlRequest::MergedOptimized(TranslatedQuery {
                    sql: "SELECT 1".into(),
                    outputs: Vec::new(),
                }),
                covers: vec!["?a".into(), "?b".into()],
            },
            estimated_rows: 1.0,
        });
        assert_eq!(merged.merged_service_count(), 1);
        assert_eq!(merged.engine_operator_count(), 0);
    }
}
