//! Reference executor over term-materialized rows.
//!
//! This module keeps the pre-interning row representation — solution
//! mappings as [`Row`] (a `BTreeMap<Var, Term>`) — runnable next to the
//! slot-based engine. It exists for two reasons:
//!
//! 1. **Equivalence testing**: [`FederatedEngine::execute_planned_reference`]
//!    executes the same [`PlannedQuery`] through `Row`-based engine
//!    operators while sharing the slot-based wrapper streams (rows are
//!    decoded at the service boundary and re-encoded under a bind join),
//!    so link traffic and SQL counts match the interned engine by
//!    construction, and the engine-level counters are mirrored
//!    operation-for-operation. Any divergence in answers or stats between
//!    the two executors is a bug in the interned representation.
//! 2. **Benchmarking**: the `bench_compare` binary measures the old
//!    representation's join-probe / distinct / projection cost against
//!    slot rows on identical inputs.
//!
//! The operators here are intentionally a faithful copy of the seed
//! engine's semantics, including where the clock advances and which
//! counters increment — do not "optimize" them.

use crate::engine::{FederatedEngine, FedResult, FedStats};
use crate::error::FedError;
use crate::fedplan::FedPlan;
use crate::lake::DataLake;
use crate::operators::{earlier, BoxedOp, ExecCtx, FedOp, Poll};
use crate::planner::PlannedQuery;
use crate::trace::AnswerTrace;
use crate::wrapper::{links_for, open_service, route_for};
use fedlake_netsim::clock::{shared_real, shared_virtual};
use fedlake_netsim::{EventTime, Link};
use fedlake_rdf::{SharedInterner, Term};
use fedlake_sparql::binding::{decode_row, encode_row, Row, SlotRow, Var};
use fedlake_sparql::eval::sort_rows;
use fedlake_sparql::expr::Expr;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// A pull-based operator over term-materialized rows.
pub trait RefOp {
    /// Produces the next solution, advancing the clock by the work done.
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<Row>, FedError>;

    /// Non-blocking pull, mirroring [`FedOp::poll_next`]. The default
    /// delegates to [`RefOp::next`]; operators above a wrapper stream
    /// override it so the overlapped schedule reaches the sources.
    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<Row>, FedError> {
        Ok(match self.next(ctx)? {
            Some(row) => Poll::Ready(row),
            None => Poll::Done,
        })
    }
}

/// A boxed reference operator.
pub type BoxedRefOp<'a> = Box<dyn RefOp + 'a>;

/// The reference-executor twin of [`crate::obs::span::SpanOp`]: counts a
/// plan node's emissions into the trace sink. Installed only when tracing
/// is enabled.
struct SpanRefOp<'a> {
    inner: BoxedRefOp<'a>,
    node: u32,
    sink: crate::obs::TraceSink,
}

impl RefOp for SpanRefOp<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<Row>, FedError> {
        let r = self.inner.next(ctx)?;
        match &r {
            Some(_) => self.sink.node_emit(self.node, ctx.clock.now()),
            None => self.sink.node_done(self.node, ctx.clock.now()),
        }
        Ok(r)
    }

    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<Row>, FedError> {
        let r = self.inner.poll_next(ctx)?;
        match &r {
            Poll::Ready(_) => self.sink.node_emit(self.node, ctx.clock.now()),
            Poll::Done => self.sink.node_done(self.node, ctx.clock.now()),
            Poll::Pending(_) => {}
        }
        Ok(r)
    }
}

/// Decodes a slot-based stream (a wrapper service or bind join) into
/// term rows at the source boundary.
pub struct DecodeOp<'a> {
    input: BoxedOp<'a>,
}

impl<'a> DecodeOp<'a> {
    /// Wraps a slot-based operator.
    pub fn new(input: BoxedOp<'a>) -> Self {
        DecodeOp { input }
    }
}

impl RefOp for DecodeOp<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<Row>, FedError> {
        Ok(self.input.next(ctx)?.map(|r| {
            let dict = ctx.interner.lock();
            decode_row(&r, &ctx.schema, &dict)
        }))
    }

    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<Row>, FedError> {
        Ok(match self.input.poll_next(ctx)? {
            Poll::Ready(r) => {
                let dict = ctx.interner.lock();
                Poll::Ready(decode_row(&r, &ctx.schema, &dict))
            }
            Poll::Pending(ev) => Poll::Pending(ev),
            Poll::Done => Poll::Done,
        })
    }
}

/// Encodes a term-row stream back into slot rows, so the shared
/// [`crate::wrapper::BindJoinOp`] can consume a reference-side left input.
pub struct EncodeOp<'a> {
    input: BoxedRefOp<'a>,
}

impl<'a> EncodeOp<'a> {
    /// Wraps a reference operator.
    pub fn new(input: BoxedRefOp<'a>) -> Self {
        EncodeOp { input }
    }
}

impl FedOp for EncodeOp<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<SlotRow>, FedError> {
        Ok(self.input.next(ctx)?.map(|r| {
            let schema = Arc::clone(&ctx.schema);
            encode_row(&r, &schema, &mut ctx.interner.lock())
        }))
    }

    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<SlotRow>, FedError> {
        Ok(match self.input.poll_next(ctx)? {
            Poll::Ready(r) => {
                let schema = Arc::clone(&ctx.schema);
                Poll::Ready(encode_row(&r, &schema, &mut ctx.interner.lock()))
            }
            Poll::Pending(ev) => Poll::Pending(ev),
            Poll::Done => Poll::Done,
        })
    }
}

fn key_of(row: &Row, on: &[Var]) -> Option<Vec<Term>> {
    on.iter().map(|v| row.get(v).cloned()).collect()
}

/// The seed symmetric hash join: keys are term vectors, rows are B-tree
/// maps, merging compares full terms.
pub struct SymHashJoinRef<'a> {
    left: BoxedRefOp<'a>,
    right: BoxedRefOp<'a>,
    on: Vec<Var>,
    left_table: HashMap<Vec<Term>, Vec<Row>>,
    right_table: HashMap<Vec<Term>, Vec<Row>>,
    left_done: bool,
    right_done: bool,
    pull_left: bool,
    left_wait: Option<EventTime>,
    right_wait: Option<EventTime>,
    out: VecDeque<Row>,
}

impl<'a> SymHashJoinRef<'a> {
    /// Creates a join of `left` and `right` on `on`.
    pub fn new(left: BoxedRefOp<'a>, right: BoxedRefOp<'a>, on: Vec<Var>) -> Self {
        SymHashJoinRef {
            left,
            right,
            on,
            left_table: HashMap::new(),
            right_table: HashMap::new(),
            left_done: false,
            right_done: false,
            pull_left: true,
            left_wait: None,
            right_wait: None,
            out: VecDeque::new(),
        }
    }

    fn insert_and_probe(&mut self, row: Row, from_left: bool, ctx: &mut ExecCtx) {
        ctx.stats.engine_join_probes += 1;
        ctx.clock.advance(ctx.cost.engine_join_time(1));
        let Some(key) = key_of(&row, &self.on) else {
            return;
        };
        let (own, other) = if from_left {
            (&mut self.left_table, &self.right_table)
        } else {
            (&mut self.right_table, &self.left_table)
        };
        if let Some(matches) = other.get(&key) {
            for m in matches {
                if let Some(merged) = row.merge(m) {
                    ctx.clock.advance(ctx.cost.engine_row_time(1));
                    self.out.push_back(merged);
                }
            }
        }
        own.entry(key).or_default().push(row);
    }
}

impl RefOp for SymHashJoinRef<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<Row>, FedError> {
        loop {
            if let Some(row) = self.out.pop_front() {
                return Ok(Some(row));
            }
            if self.left_done && self.right_done {
                return Ok(None);
            }
            let take_left = if self.left_done {
                false
            } else if self.right_done {
                true
            } else {
                self.pull_left
            };
            self.pull_left = !self.pull_left;
            if take_left {
                match self.left.next(ctx)? {
                    Some(row) => self.insert_and_probe(row, true, ctx),
                    None => self.left_done = true,
                }
            } else {
                match self.right.next(ctx)? {
                    Some(row) => self.insert_and_probe(row, false, ctx),
                    None => self.right_done = true,
                }
            }
        }
    }

    /// Mirror of the interned [`crate::operators::SymHashJoin::poll_next`]:
    /// consume from whichever input is ready, Pending only when both
    /// stall, re-poll order following the children's last-reported
    /// Pending events by `(time, seq)`.
    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<Row>, FedError> {
        loop {
            if let Some(row) = self.out.pop_front() {
                return Ok(Poll::Ready(row));
            }
            if self.left_done && self.right_done {
                return Ok(Poll::Done);
            }
            let left_first = match (self.left_wait, self.right_wait) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(l), Some(r)) => l <= r,
            };
            let mut progressed = false;
            let mut wait: Option<EventTime> = None;
            let order = if left_first { [true, false] } else { [false, true] };
            for is_left in order {
                let done = if is_left { self.left_done } else { self.right_done };
                if done {
                    continue;
                }
                let side = if is_left { &mut self.left } else { &mut self.right };
                match side.poll_next(ctx)? {
                    Poll::Ready(row) => {
                        if is_left {
                            self.left_wait = None;
                        } else {
                            self.right_wait = None;
                        }
                        self.insert_and_probe(row, is_left, ctx);
                        progressed = true;
                    }
                    Poll::Pending(ev) => {
                        if is_left {
                            self.left_wait = Some(ev);
                        } else {
                            self.right_wait = Some(ev);
                        }
                        wait = earlier(wait, ev);
                    }
                    Poll::Done => {
                        if is_left {
                            self.left_wait = None;
                            self.left_done = true;
                        } else {
                            self.right_wait = None;
                            self.right_done = true;
                        }
                        progressed = true;
                    }
                }
            }
            if !progressed {
                if let Some(ev) = wait {
                    // The second child's poll can advance the clock past an
                    // event the first child reported earlier in this round
                    // (e.g. a filter charging for discarded rows). A due
                    // event must be consumed by its owner, so go around
                    // again instead of surfacing a stale Pending.
                    if ev.time > ctx.clock.now() {
                        return Ok(Poll::Pending(ev));
                    }
                }
            }
        }
    }
}

/// The seed streaming left join.
pub struct LeftHashJoinRef<'a> {
    left: BoxedRefOp<'a>,
    right: BoxedRefOp<'a>,
    on: Vec<Var>,
    left_rows: Vec<(Row, bool)>,
    left_table: HashMap<Vec<Term>, Vec<usize>>,
    right_table: HashMap<Vec<Term>, Vec<Row>>,
    left_done: bool,
    right_done: bool,
    pull_left: bool,
    left_wait: Option<EventTime>,
    right_wait: Option<EventTime>,
    out: VecDeque<Row>,
    flushed: bool,
}

impl<'a> LeftHashJoinRef<'a> {
    /// Creates a left join of `left` (required) and `right` (optional).
    pub fn new(left: BoxedRefOp<'a>, right: BoxedRefOp<'a>, on: Vec<Var>) -> Self {
        LeftHashJoinRef {
            left,
            right,
            on,
            left_rows: Vec::new(),
            left_table: HashMap::new(),
            right_table: HashMap::new(),
            left_done: false,
            right_done: false,
            pull_left: true,
            left_wait: None,
            right_wait: None,
            out: VecDeque::new(),
            flushed: false,
        }
    }

    fn take_left(&mut self, row: Row, ctx: &mut ExecCtx) {
        ctx.stats.engine_join_probes += 1;
        ctx.clock.advance(ctx.cost.engine_join_time(1));
        let idx = self.left_rows.len();
        let key = key_of(&row, &self.on);
        let mut matched = false;
        if let Some(key) = &key {
            if let Some(matches) = self.right_table.get(key) {
                for m in matches {
                    if let Some(merged) = row.merge(m) {
                        matched = true;
                        ctx.clock.advance(ctx.cost.engine_row_time(1));
                        self.out.push_back(merged);
                    }
                }
            }
            self.left_table.entry(key.clone()).or_default().push(idx);
        }
        self.left_rows.push((row, matched));
    }

    fn take_right(&mut self, row: Row, ctx: &mut ExecCtx) {
        ctx.stats.engine_join_probes += 1;
        ctx.clock.advance(ctx.cost.engine_join_time(1));
        let Some(key) = key_of(&row, &self.on) else { return };
        if let Some(left_idxs) = self.left_table.get(&key) {
            for &i in left_idxs {
                let (lrow, matched) = &mut self.left_rows[i];
                if let Some(merged) = lrow.merge(&row) {
                    *matched = true;
                    ctx.clock.advance(ctx.cost.engine_row_time(1));
                    self.out.push_back(merged);
                }
            }
        }
        self.right_table.entry(key).or_default().push(row);
    }
}

impl RefOp for LeftHashJoinRef<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<Row>, FedError> {
        loop {
            if let Some(row) = self.out.pop_front() {
                return Ok(Some(row));
            }
            if self.left_done && self.right_done {
                if !self.flushed {
                    self.flushed = true;
                    for (row, matched) in &self.left_rows {
                        if !matched {
                            self.out.push_back(row.clone());
                        }
                    }
                    continue;
                }
                return Ok(None);
            }
            let take_left = if self.left_done {
                false
            } else if self.right_done {
                true
            } else {
                self.pull_left
            };
            self.pull_left = !self.pull_left;
            if take_left {
                match self.left.next(ctx)? {
                    Some(row) => self.take_left(row, ctx),
                    None => self.left_done = true,
                }
            } else {
                match self.right.next(ctx)? {
                    Some(row) => self.take_right(row, ctx),
                    None => self.right_done = true,
                }
            }
        }
    }

    /// Mirror of the interned [`crate::operators::LeftHashJoin::poll_next`].
    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<Row>, FedError> {
        loop {
            if let Some(row) = self.out.pop_front() {
                return Ok(Poll::Ready(row));
            }
            if self.left_done && self.right_done {
                if !self.flushed {
                    self.flushed = true;
                    for (row, matched) in &self.left_rows {
                        if !matched {
                            self.out.push_back(row.clone());
                        }
                    }
                    continue;
                }
                return Ok(Poll::Done);
            }
            // Same `(time, seq)` re-poll order as the interned twin: the
            // child whose last-reported Pending event is due first goes
            // first.
            let left_first = match (self.left_wait, self.right_wait) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(l), Some(r)) => l <= r,
            };
            let mut progressed = false;
            let mut wait: Option<EventTime> = None;
            let order = if left_first { [true, false] } else { [false, true] };
            for is_left in order {
                let done = if is_left { self.left_done } else { self.right_done };
                if done {
                    continue;
                }
                let side = if is_left { &mut self.left } else { &mut self.right };
                match side.poll_next(ctx)? {
                    Poll::Ready(row) => {
                        if is_left {
                            self.left_wait = None;
                            self.take_left(row, ctx);
                        } else {
                            self.right_wait = None;
                            self.take_right(row, ctx);
                        }
                        progressed = true;
                    }
                    Poll::Pending(ev) => {
                        if is_left {
                            self.left_wait = Some(ev);
                        } else {
                            self.right_wait = Some(ev);
                        }
                        wait = earlier(wait, ev);
                    }
                    Poll::Done => {
                        if is_left {
                            self.left_wait = None;
                            self.left_done = true;
                        } else {
                            self.right_wait = None;
                            self.right_done = true;
                        }
                        progressed = true;
                    }
                }
            }
            if !progressed {
                if let Some(ev) = wait {
                    // The second child's poll can advance the clock past an
                    // event the first child reported earlier in this round
                    // (e.g. a filter charging for discarded rows). A due
                    // event must be consumed by its owner, so go around
                    // again instead of surfacing a stale Pending.
                    if ev.time > ctx.clock.now() {
                        return Ok(Poll::Pending(ev));
                    }
                }
            }
        }
    }
}

/// The seed conjunctive filter over term rows.
pub struct FilterRefOp<'a> {
    input: BoxedRefOp<'a>,
    exprs: Vec<Expr>,
}

impl<'a> FilterRefOp<'a> {
    /// Creates a filter over `input`.
    pub fn new(input: BoxedRefOp<'a>, exprs: Vec<Expr>) -> Self {
        FilterRefOp { input, exprs }
    }
}

impl RefOp for FilterRefOp<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<Row>, FedError> {
        while let Some(row) = self.input.next(ctx)? {
            ctx.stats.engine_filter_evals += self.exprs.len() as u64;
            ctx.clock
                .advance(ctx.cost.engine_filter_time(self.exprs.len() as u64));
            if self.exprs.iter().all(|e| e.test(&row)) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<Row>, FedError> {
        loop {
            match self.input.poll_next(ctx)? {
                Poll::Ready(row) => {
                    ctx.stats.engine_filter_evals += self.exprs.len() as u64;
                    ctx.clock
                        .advance(ctx.cost.engine_filter_time(self.exprs.len() as u64));
                    if self.exprs.iter().all(|e| e.test(&row)) {
                        return Ok(Poll::Ready(row));
                    }
                }
                Poll::Pending(ev) => return Ok(Poll::Pending(ev)),
                Poll::Done => return Ok(Poll::Done),
            }
        }
    }
}

/// The seed union.
pub struct UnionRefOp<'a> {
    branches: VecDeque<BoxedRefOp<'a>>,
    waits: Vec<Option<EventTime>>,
}

impl<'a> UnionRefOp<'a> {
    /// Creates a union of `branches`.
    pub fn new(branches: Vec<BoxedRefOp<'a>>) -> Self {
        let waits = vec![None; branches.len()];
        UnionRefOp { branches: branches.into(), waits }
    }
}

impl RefOp for UnionRefOp<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<Row>, FedError> {
        while let Some(front) = self.branches.front_mut() {
            match front.next(ctx)? {
                Some(row) => return Ok(Some(row)),
                None => {
                    self.branches.pop_front();
                }
            }
        }
        Ok(None)
    }

    /// Mirror of the interned [`crate::operators::UnionOp::poll_next`]:
    /// emit from whichever branch is ready first, re-poll order following
    /// each branch's last-reported Pending event by `(time, seq)`.
    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<Row>, FedError> {
        loop {
            if self.branches.is_empty() {
                return Ok(Poll::Done);
            }
            let mut order: Vec<usize> = (0..self.branches.len()).collect();
            // `None < Some`, so unwaited branches lead; the stable sort
            // keeps structural order among them.
            order.sort_by_key(|&i| self.waits[i]);
            let mut wait: Option<EventTime> = None;
            let mut progressed = false;
            let mut finished: Vec<usize> = Vec::new();
            for &i in &order {
                match self.branches[i].poll_next(ctx)? {
                    Poll::Ready(row) => {
                        self.waits[i] = None;
                        return Ok(Poll::Ready(row));
                    }
                    Poll::Pending(ev) => {
                        self.waits[i] = Some(ev);
                        wait = earlier(wait, ev);
                    }
                    Poll::Done => {
                        finished.push(i);
                        progressed = true;
                    }
                }
            }
            finished.sort_unstable_by(|a, b| b.cmp(a));
            for i in finished {
                self.branches.remove(i);
                self.waits.remove(i);
            }
            if !progressed {
                if let Some(ev) = wait {
                    // The second child's poll can advance the clock past an
                    // event the first child reported earlier in this round
                    // (e.g. a filter charging for discarded rows). A due
                    // event must be consumed by its owner, so go around
                    // again instead of surfacing a stale Pending.
                    if ev.time > ctx.clock.now() {
                        return Ok(Poll::Pending(ev));
                    }
                }
            }
        }
    }
}

/// The seed projection: rebuilds a B-tree row with only the kept vars.
pub struct ProjectRefOp<'a> {
    input: BoxedRefOp<'a>,
    keep: Vec<Var>,
}

impl<'a> ProjectRefOp<'a> {
    /// Creates a projection to `keep`.
    pub fn new(input: BoxedRefOp<'a>, keep: Vec<Var>) -> Self {
        ProjectRefOp { input, keep }
    }
}

impl ProjectRefOp<'_> {
    fn remap(&self, row: Row, ctx: &mut ExecCtx) -> Row {
        ctx.clock.advance(ctx.cost.engine_row_time(1));
        let mut out = Row::new();
        for v in &self.keep {
            if let Some(t) = row.get(v) {
                out.bind(v.clone(), t.clone());
            }
        }
        out
    }
}

impl RefOp for ProjectRefOp<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<Row>, FedError> {
        Ok(self.input.next(ctx)?.map(|row| self.remap(row, ctx)))
    }

    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<Row>, FedError> {
        Ok(match self.input.poll_next(ctx)? {
            Poll::Ready(row) => Poll::Ready(self.remap(row, ctx)),
            Poll::Pending(ev) => Poll::Pending(ev),
            Poll::Done => Poll::Done,
        })
    }
}

/// The seed duplicate elimination: hashes whole term rows.
pub struct DistinctRefOp<'a> {
    input: BoxedRefOp<'a>,
    seen: HashSet<Row>,
}

impl<'a> DistinctRefOp<'a> {
    /// Creates a distinct operator.
    pub fn new(input: BoxedRefOp<'a>) -> Self {
        DistinctRefOp { input, seen: HashSet::new() }
    }
}

impl RefOp for DistinctRefOp<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<Row>, FedError> {
        while let Some(row) = self.input.next(ctx)? {
            ctx.clock.advance(ctx.cost.engine_row_time(1));
            if self.seen.insert(row.clone()) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<Row>, FedError> {
        loop {
            match self.input.poll_next(ctx)? {
                Poll::Ready(row) => {
                    ctx.clock.advance(ctx.cost.engine_row_time(1));
                    if self.seen.insert(row.clone()) {
                        return Ok(Poll::Ready(row));
                    }
                }
                Poll::Pending(ev) => return Ok(Poll::Pending(ev)),
                Poll::Done => return Ok(Poll::Done),
            }
        }
    }
}

/// A pre-materialized term-row input (tests and benches).
pub struct RowsRefOp {
    rows: VecDeque<Row>,
}

impl RowsRefOp {
    /// Wraps a row vector.
    pub fn new(rows: Vec<Row>) -> Self {
        RowsRefOp { rows: rows.into() }
    }
}

impl RefOp for RowsRefOp {
    fn next(&mut self, _ctx: &mut ExecCtx) -> Result<Option<Row>, FedError> {
        Ok(self.rows.pop_front())
    }
}

// Node ids are assigned pre-order, exactly as the interned engine's
// `build_operator` does, so both executors report into the same node table.
fn build_ref_operator<'a>(
    lake: &'a DataLake,
    config: &crate::config::PlanConfig,
    plan: &FedPlan,
    links: &HashMap<String, Arc<Link>>,
    sink: &crate::obs::TraceSink,
    next_node: &mut u32,
) -> Result<BoxedRefOp<'a>, FedError> {
    let node_id = *next_node;
    *next_node += 1;
    let op: BoxedRefOp<'a> = match plan {
        FedPlan::Service(node) => {
            let route = route_for(&node.source_id, &node.route, links)?;
            let op = open_service(node, lake, route, config.rows_per_message)?;
            Box::new(DecodeOp::new(op))
        }
        FedPlan::Join { left, right, on } => {
            let l = build_ref_operator(lake, config, left, links, sink, next_node)?;
            let r = build_ref_operator(lake, config, right, links, sink, next_node)?;
            Box::new(SymHashJoinRef::new(l, r, on.clone()))
        }
        FedPlan::LeftJoin { left, right, on } => {
            let l = build_ref_operator(lake, config, left, links, sink, next_node)?;
            let r = build_ref_operator(lake, config, right, links, sink, next_node)?;
            Box::new(LeftHashJoinRef::new(l, r, on.clone()))
        }
        FedPlan::BindJoin { left, right, batch_size } => {
            let l = build_ref_operator(lake, config, left, links, sink, next_node)?;
            let db = match lake.source(&right.source_id) {
                Some(crate::source::DataSource::Relational { db, .. }) => db,
                _ => {
                    return Err(FedError::Internal(format!(
                        "bind join target {} is not relational",
                        right.source_id
                    )))
                }
            };
            let route = route_for(&right.source_id, &right.route, links)?;
            let bind = crate::wrapper::BindJoinOp::new(
                Box::new(EncodeOp::new(l)),
                db,
                right.clone(),
                route,
                config.rows_per_message,
                *batch_size,
            );
            Box::new(DecodeOp::new(Box::new(bind)))
        }
        FedPlan::Filter { input, exprs } => {
            let i = build_ref_operator(lake, config, input, links, sink, next_node)?;
            Box::new(FilterRefOp::new(i, exprs.clone()))
        }
        FedPlan::Union(branches) => {
            let ops = branches
                .iter()
                .map(|b| build_ref_operator(lake, config, b, links, sink, next_node))
                .collect::<Result<Vec<_>, _>>()?;
            Box::new(UnionRefOp::new(ops))
        }
    };
    Ok(if sink.is_enabled() {
        Box::new(SpanRefOp { inner: op, node: node_id, sink: sink.clone() })
    } else {
        op
    })
}

impl FederatedEngine {
    /// Executes an already-planned query through the reference (term-row)
    /// engine operators. Produces a [`FedResult`] with the same stats
    /// layout as [`FederatedEngine::execute_planned`]; used by the
    /// representation-equivalence suite and `bench_compare`.
    pub fn execute_planned_reference(
        &self,
        planned: &PlannedQuery,
    ) -> Result<FedResult, FedError> {
        let config = self.config();
        let clock = if config.real_time { shared_real() } else { shared_virtual() };
        let sink = if config.tracing {
            crate::obs::TraceSink::recording()
        } else {
            crate::obs::TraceSink::disabled()
        };
        let links = links_for(
            self.lake(),
            config.network,
            Arc::clone(&clock),
            config.cost,
            config.seed,
            &self.fault_plans(),
            &sink,
            self.recorder(),
        );
        // Reference executions register with the flight recorder too (no
        // per-service slots: the term-row operators are not wrapped).
        let qrec = self.recorder().begin_query(
            0,
            "reference",
            planned.report.strategy.label(),
            config.deadline,
            Vec::new(),
        );
        qrec.submit(std::time::Duration::ZERO);
        qrec.admit(std::time::Duration::ZERO, std::time::Duration::ZERO);
        qrec.plan(std::time::Duration::ZERO, &planned.report, planned.report.estimated_rows, false);
        let mut ctx = ExecCtx::new(
            Arc::clone(&clock),
            config.cost,
            Arc::clone(&planned.schema),
            SharedInterner::new(),
        )
        .with_retry(config.retry)
        .with_deadline(config.deadline)
        .with_trace(sink.clone())
        .with_recorder(qrec.clone());
        sink.begin_query(&planned.plan, &config.mode.label());
        sink.record_plan_report(&planned.report);

        let mut next_node = 0u32;
        let mut op =
            build_ref_operator(self.lake(), config, &planned.plan, &links, &sink, &mut next_node)?;
        op = Box::new(ProjectRefOp::new(op, planned.projection.to_vec()));
        if planned.distinct {
            op = Box::new(DistinctRefOp::new(op));
        }

        let mut trace = AnswerTrace::new();
        let mut rows: Vec<Row> = Vec::new();
        // Sources skipped at plan time already make the answer partial.
        let mut degraded = !planned.skipped_sources.is_empty();
        let unordered_limit = planned.order_by.is_empty().then_some(()).and(planned.limit);
        let want = unordered_limit.map(|l| l + planned.offset);
        loop {
            // Mirror of the interned engine's cooperative deadline and
            // degradation handling (see `execute_planned`).
            if let Some(d) = config.deadline {
                if clock.now() >= d {
                    qrec.deadline_hit(clock.now());
                    if !config.degraded_ok {
                        let now = clock.now();
                        qrec.complete(
                            now,
                            crate::obs::CompletionKind::DeadlineMiss,
                            now,
                            planned.report.estimated_rows,
                            0,
                        );
                        return Err(FedError::Timeout(d));
                    }
                    degraded = true;
                    break;
                }
            }
            let step = if config.overlap {
                op.poll_next(&mut ctx)
            } else {
                op.next(&mut ctx).map(|o| o.map_or(Poll::Done, Poll::Ready))
            };
            match step {
                Ok(Poll::Ready(row)) => {
                    ctx.trace.record_answer(&mut trace, clock.now());
                    if qrec.is_enabled() && trace.count() == 1 {
                        qrec.first_row(clock.now());
                    }
                    rows.push(row);
                    if want.is_some_and(|w| rows.len() >= w) {
                        break;
                    }
                }
                Ok(Poll::Pending(ev)) => {
                    // Same stall guard as the interned executor: a due
                    // event surfacing here means time would stand still.
                    if clock.is_virtual() && ev.time <= clock.now() {
                        return Err(FedError::Internal(format!(
                            "scheduler stalled: pending event at {:?} is not in the future (now {:?})",
                            ev.time,
                            clock.now()
                        )));
                    }
                    clock.advance_to(ev.time);
                }
                Ok(Poll::Done) => break,
                Err(e @ (FedError::SourceUnavailable { .. } | FedError::Timeout(_))) => {
                    if !config.degraded_ok {
                        let now = clock.now();
                        qrec.complete(
                            now,
                            crate::obs::CompletionKind::Failed,
                            now,
                            planned.report.estimated_rows,
                            0,
                        );
                        return Err(e);
                    }
                    degraded = true;
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        trace.complete(clock.now());

        if !planned.order_by.is_empty() {
            sort_rows(&mut rows, &planned.order_by);
        }
        if planned.offset > 0 {
            rows.drain(..planned.offset.min(rows.len()));
        }
        if let Some(l) = planned.limit {
            rows.truncate(l);
        }

        // Mirror of the interned executor: this run's link counters feed
        // the session health registry too.
        self.health().record_links(&links);

        let stats = FedStats::assemble(
            config,
            planned,
            &links,
            &ctx.stats,
            &trace,
            rows.len() as u64,
            degraded,
        );
        qrec.complete(
            stats.execution_time,
            if degraded {
                crate::obs::CompletionKind::Degraded
            } else {
                crate::obs::CompletionKind::Ok
            },
            stats.execution_time,
            planned.report.estimated_rows,
            stats.answers,
        );
        let obs = sink.finish(&links, &stats);
        Ok(FedResult {
            vars: Arc::clone(&planned.projection),
            rows,
            trace,
            stats,
            explain: crate::explain::explain_plan(&planned.plan),
            obs,
        })
    }
}
