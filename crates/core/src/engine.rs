//! The federated engine: planning + streaming execution + measurement.

use crate::config::PlanConfig;
use crate::error::FedError;
use crate::fedplan::FedPlan;
use crate::health::{HealthView, SourceHealth};
use crate::lake::DataLake;
use crate::operators::{
    BoxedOp, DistinctOp, ExecCtx, FilterOp, LeftHashJoin, ProjectOp, SymHashJoin, UnionOp,
};
use crate::planner::{plan_query_with_health, PlannedQuery};
use crate::trace::AnswerTrace;
use crate::wrapper::{links_for, open_service, route_for, source_failures, total_traffic};
use fedlake_netsim::clock::{shared_real, shared_virtual};
use fedlake_netsim::Link;
use fedlake_rdf::SharedInterner;
use fedlake_sparql::ast::SelectQuery;
use fedlake_sparql::binding::{decode_batch_row, decode_row, Row, RowSchema, SlotRow, Var};
use fedlake_sparql::eval::sort_rows;
use fedlake_sparql::parser::parse_query;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// Measurements of one federated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct FedStats {
    /// Plan label (`unaware`, `aware`, `aware(h1)`, …).
    pub plan_label: String,
    /// Network setting name.
    pub network: &'static str,
    /// Total (simulated) execution time.
    pub execution_time: Duration,
    /// Time of the first answer, when any.
    pub first_answer: Option<Duration>,
    /// Answers produced.
    pub answers: u64,
    /// Messages that crossed the wrapper links.
    pub messages: u64,
    /// Rows transferred across links (the intermediate-result size).
    pub rows_transferred: u64,
    /// Total injected network delay.
    pub network_delay: Duration,
    /// SQL queries sent to sources.
    pub sql_queries: u64,
    /// Engine-level filter evaluations.
    pub engine_filter_evals: u64,
    /// Engine-level join probes.
    pub engine_join_probes: u64,
    /// Requests sent to sources (service leaves).
    pub services: usize,
    /// Engine-level operators in the plan.
    pub engine_operators: usize,
    /// Services carrying a pushed-down (merged) join.
    pub merged_services: usize,
    /// Link-message retries issued by the wrapper streams.
    pub retries: u64,
    /// Faulted link attempts per source (drops + truncations + outage
    /// hits); empty on a fault-free run.
    pub source_failures: BTreeMap<String, u64>,
    /// The query degraded: a source became unavailable (or the deadline
    /// fired) and, with [`crate::config::PlanConfig::degraded_ok`] set,
    /// the answers are the partial set produced up to that point.
    pub degraded: bool,
}

impl FedStats {
    /// Assembles the statistics of one execution — the single constructor
    /// both executors use, so they cannot silently diverge on a new field.
    /// When tracing is on, [`crate::obs::TraceSink::finish`] mirrors every
    /// field into the metrics registry, where the reconciliation tests
    /// compare them against the recorded spans.
    pub(crate) fn assemble(
        config: &PlanConfig,
        planned: &PlannedQuery,
        links: &HashMap<String, Arc<Link>>,
        engine_stats: &crate::operators::EngineStats,
        trace: &AnswerTrace,
        answers: u64,
        degraded: bool,
    ) -> FedStats {
        let (messages, rows_transferred, network_delay) = total_traffic(links);
        FedStats {
            plan_label: config.mode.label(),
            network: config.network.name,
            execution_time: trace.total_time(),
            first_answer: trace.first_answer(),
            answers,
            messages,
            rows_transferred,
            network_delay,
            sql_queries: engine_stats.sql_queries,
            engine_filter_evals: engine_stats.engine_filter_evals,
            engine_join_probes: engine_stats.engine_join_probes,
            services: planned.plan.service_count(),
            engine_operators: planned.plan.engine_operator_count(),
            merged_services: planned.plan.merged_service_count(),
            retries: engine_stats.retries,
            source_failures: source_failures(links),
            degraded,
        }
    }
}

/// The result of executing one federated query.
#[derive(Debug, Clone)]
pub struct FedResult {
    /// Projected variables, in projection order (shared with the plan —
    /// no per-execution allocation).
    pub vars: Arc<[Var]>,
    /// Answer rows.
    pub rows: Vec<Row>,
    /// The answer trace (Figure 2's measurement).
    pub trace: AnswerTrace,
    /// Execution statistics.
    pub stats: FedStats,
    /// Human-readable plan (Figure 1's comparison).
    pub explain: String,
    /// The trace report, when [`PlanConfig::tracing`] was set.
    pub obs: Option<crate::obs::TraceReport>,
}

impl FedResult {
    /// The analyzed plan tree, when the run was traced.
    pub fn explain_analyze(&self) -> Option<String> {
        self.obs.as_ref().map(crate::obs::explain_analyze)
    }

    /// The Chrome trace-event JSON, when the run was traced.
    pub fn chrome_trace(&self) -> Option<String> {
        self.obs.as_ref().map(crate::obs::chrome_trace)
    }
}

/// The federated SPARQL engine over a Semantic Data Lake.
#[derive(Debug)]
pub struct FederatedEngine {
    lake: DataLake,
    config: PlanConfig,
    /// Per-source fault overrides layered over `config.faults` (which
    /// stays the uniform default so [`PlanConfig`] remains `Copy`).
    fault_overrides: BTreeMap<String, fedlake_netsim::FaultPlan>,
    /// Correlated-outage groups layered over the per-source plans.
    outage_groups: Vec<fedlake_netsim::OutageGroup>,
    /// Session health registry: per-endpoint counters fed by every
    /// execution's link stats, consulted at plan time for replica routing
    /// and degraded-source demotion.
    health: SourceHealth,
    /// Failures at which an endpoint counts as degraded for planning.
    health_threshold: u64,
    /// Session-wide term interner: shared by every execution, so term ids
    /// are stable across executions and lifted source results can be
    /// cached. Append-only — ids never change meaning once assigned.
    interner: SharedInterner,
    /// Cross-execution cache of lifted source results (paired with
    /// `interner`). Valid for the engine's lifetime: the engine owns the
    /// lake, so source contents cannot change underneath it.
    lifts: crate::wrapper::SharedLiftCache,
    /// Session flight recorder: a bounded ring of query-lifecycle events
    /// across every execution and serve run of this engine. Disabled (a
    /// `None` handle, one branch per hook) unless
    /// [`PlanConfig::recorder`] is set.
    recorder: crate::obs::FlightRecorder,
    /// Normalized plan cache (see [`crate::plancache`]): whole planned
    /// queries memoized behind the canonical query/config fingerprint,
    /// revalidated per lookup against the lake epoch and the relevant
    /// health inputs. Probed only when [`PlanConfig::plan_cache`] is set;
    /// behind a mutex so `&self` planning paths can populate it.
    plan_cache: std::sync::Mutex<crate::plancache::PlanCache>,
}

/// Failures before the planner treats an endpoint as degraded — two full
/// default retry budgets, so one unlucky message cannot demote a source.
const DEFAULT_HEALTH_THRESHOLD: u64 = 8;

impl FederatedEngine {
    /// Creates an engine over `lake` with `config`.
    pub fn new(lake: DataLake, config: PlanConfig) -> Self {
        FederatedEngine {
            lake,
            config,
            fault_overrides: BTreeMap::new(),
            outage_groups: Vec::new(),
            health: SourceHealth::new(),
            health_threshold: DEFAULT_HEALTH_THRESHOLD,
            interner: SharedInterner::new(),
            lifts: Arc::new(std::sync::Mutex::new(fedlake_rdf::FastMap::default())),
            recorder: if config.recorder {
                crate::obs::FlightRecorder::recording()
            } else {
                crate::obs::FlightRecorder::disabled()
            },
            plan_cache: std::sync::Mutex::new(crate::plancache::PlanCache::new()),
        }
    }

    /// Overrides the fault plan for one source id; other sources keep the
    /// uniform plan from [`PlanConfig::faults`].
    pub fn set_source_faults(
        &mut self,
        source_id: impl Into<String>,
        plan: fedlake_netsim::FaultPlan,
    ) {
        self.fault_overrides.insert(source_id.into(), plan);
    }

    /// Adds a correlated-outage group: every member endpoint (or every
    /// replica of a member logical source) goes dark over the same seeded
    /// window, on top of its own fault plan.
    pub fn add_outage_group(&mut self, group: fedlake_netsim::OutageGroup) {
        self.outage_groups.push(group);
    }

    /// Sets the failure count at which the planner treats an endpoint as
    /// degraded (default 8).
    pub fn set_health_threshold(&mut self, threshold: u64) {
        self.health_threshold = threshold;
    }

    /// The session's health registry (fed after every execution).
    pub fn health(&self) -> &SourceHealth {
        &self.health
    }

    /// The planner's view of session health.
    fn health_view(&self) -> HealthView {
        HealthView {
            endpoints: self.health.snapshot(),
            threshold: self.health_threshold,
            generation: self.health.generation(),
        }
    }

    /// The full fault schedule: the uniform default plus any per-source
    /// overrides plus the correlated-outage groups.
    pub fn fault_plans(&self) -> fedlake_netsim::FaultPlans {
        fedlake_netsim::FaultPlans {
            default: self.config.faults,
            overrides: self.fault_overrides.clone(),
            groups: self.outage_groups.clone(),
        }
    }

    /// The lake this engine federates.
    pub fn lake(&self) -> &DataLake {
        &self.lake
    }

    /// Mutable access to the lake — administrative data loads and the
    /// chaos/observability suites (which mutate the statistics catalog
    /// post-collection to plant mis-estimates) go through here.
    pub fn lake_mut(&mut self) -> &mut DataLake {
        &mut self.lake
    }

    /// The active configuration.
    pub fn config(&self) -> &PlanConfig {
        &self.config
    }

    /// Replaces the configuration (e.g. to switch plan mode or network).
    /// Toggling [`PlanConfig::recorder`] starts a fresh recording (or
    /// drops the current one); an already-enabled recorder keeps
    /// recording across the switch.
    pub fn set_config(&mut self, config: PlanConfig) {
        if config.recorder != self.recorder.is_enabled() {
            self.recorder = if config.recorder {
                crate::obs::FlightRecorder::recording()
            } else {
                crate::obs::FlightRecorder::disabled()
            };
        }
        // The config fingerprint already keys cache entries, so old
        // entries could never wrongly hit — but they would sit as dead
        // weight. Drop them; counters survive (engine-lifetime).
        self.plan_cache.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.config = config;
    }

    /// The session's flight recorder (disabled unless
    /// [`PlanConfig::recorder`] is set).
    pub fn recorder(&self) -> &crate::obs::FlightRecorder {
        &self.recorder
    }

    /// Snapshot of the session's flight recording, when recording is on.
    pub fn flight_recording(&self) -> Option<crate::obs::FlightRecording> {
        self.recorder.snapshot()
    }

    /// Plans a query without executing it, consulting the session's
    /// health registry for replica routing and degraded-source demotion.
    /// Probes the normalized plan cache when [`PlanConfig::plan_cache`]
    /// is set.
    pub fn plan(&self, query: &SelectQuery) -> Result<PlannedQuery, FedError> {
        self.plan_cached(query).map(|(planned, _)| planned)
    }

    /// Like [`FederatedEngine::plan`], but also reports where the plan
    /// came from. A cache hit replays a byte-identical [`PlannedQuery`]:
    /// the origin is deliberately carried *next to* the plan, never
    /// inside it.
    pub fn plan_cached(
        &self,
        query: &SelectQuery,
    ) -> Result<(PlannedQuery, crate::plancache::PlanOrigin), FedError> {
        let view = self.health_view();
        if !self.config.plan_cache {
            let planned = plan_query_with_health(query, &self.lake, &self.config, &view)?;
            let fingerprint = planned.report.fingerprint;
            return Ok((planned, crate::plancache::PlanOrigin { cached: false, fingerprint }));
        }
        let key = (
            crate::ir::query_fingerprint(query),
            crate::ir::config_fingerprint(&self.config),
        );
        let epoch = self.lake.epoch();
        {
            let mut cache = self.plan_cache.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(planned) = cache.lookup(key, epoch, view.generation, |sources| {
                crate::plancache::health_digest(&self.lake, &view, sources)
            }) {
                let fingerprint = planned.report.fingerprint;
                return Ok((
                    planned,
                    crate::plancache::PlanOrigin { cached: true, fingerprint },
                ));
            }
        }
        // Plan outside the lock: a planning failure must not poison the
        // cache, and concurrent serve jobs keep planning in parallel.
        let planned = plan_query_with_health(query, &self.lake, &self.config, &view)?;
        let sources = crate::plancache::plan_sources(&planned);
        let digest = crate::plancache::health_digest(&self.lake, &view, &sources);
        let fingerprint = planned.report.fingerprint;
        self.plan_cache.lock().unwrap_or_else(|e| e.into_inner()).insert(
            key,
            epoch,
            view.generation,
            digest,
            sources,
            planned.clone(),
        );
        Ok((planned, crate::plancache::PlanOrigin { cached: false, fingerprint }))
    }

    /// Counter snapshot of the normalized plan cache (all zero when
    /// [`PlanConfig::plan_cache`] is off).
    pub fn plan_cache_stats(&self) -> crate::plancache::PlanCacheStats {
        self.plan_cache.lock().unwrap_or_else(|e| e.into_inner()).stats()
    }

    /// Parses, plans and executes a SPARQL query.
    pub fn execute_sparql(&self, sparql: &str) -> Result<FedResult, FedError> {
        let query = parse_query(sparql)?;
        self.execute(&query)
    }

    /// Plans and executes a parsed query.
    pub fn execute(&self, query: &SelectQuery) -> Result<FedResult, FedError> {
        let (planned, origin) = self.plan_cached(query)?;
        self.execute_planned_with_origin(&planned, origin)
    }

    /// Executes an already-planned query.
    pub fn execute_planned(&self, planned: &PlannedQuery) -> Result<FedResult, FedError> {
        let origin = crate::plancache::PlanOrigin {
            cached: false,
            fingerprint: planned.report.fingerprint,
        };
        self.execute_planned_with_origin(planned, origin)
    }

    /// Executes an already-planned query, annotating the recorder event
    /// and EXPLAIN with where the plan came from. The plan's execution is
    /// byte-identical either way.
    fn execute_planned_with_origin(
        &self,
        planned: &PlannedQuery,
        origin: crate::plancache::PlanOrigin,
    ) -> Result<FedResult, FedError> {
        let clock = if self.config.real_time {
            shared_real()
        } else {
            shared_virtual()
        };
        let sink = if self.config.tracing {
            crate::obs::TraceSink::recording()
        } else {
            crate::obs::TraceSink::disabled()
        };
        let links = links_for(
            &self.lake,
            self.config.network,
            Arc::clone(&clock),
            self.config.cost,
            self.config.seed,
            &self.fault_plans(),
            &sink,
            &self.recorder,
        );
        // Register the execution with the flight recorder: a solo query
        // is client 0, submitted and admitted at simulated time zero.
        let qrec = self.recorder.begin_query(
            0,
            "adhoc",
            planned.report.strategy.label(),
            self.config.deadline,
            crate::obs::service_estimates(&planned.plan),
        );
        qrec.submit(Duration::ZERO);
        qrec.admit(Duration::ZERO, Duration::ZERO);
        qrec.plan(Duration::ZERO, &planned.report, planned.report.estimated_rows, origin.cached);
        let mut ctx = ExecCtx::new(
            Arc::clone(&clock),
            self.config.cost,
            Arc::clone(&planned.schema),
            self.interner.clone(),
        )
        .with_lifts(Arc::clone(&self.lifts))
        .with_retry(self.config.retry)
        .with_deadline(self.config.deadline)
        .with_trace(sink.clone())
        .with_recorder(qrec.clone());
        sink.begin_query(&planned.plan, &self.config.mode.label());
        sink.record_plan_report(&planned.report);

        let mut next_node = 0u32;
        let mut op = self.build_operator(
            &planned.plan,
            &planned.schema,
            &links,
            &sink,
            &qrec,
            &mut next_node,
        )?;
        // Solution modifiers around the streaming pipeline. The projection
        // is a slot remap resolved once per execution, not per row.
        op = Box::new(ProjectOp::new(op, planned.schema.slots_of(&planned.projection)));
        if planned.distinct {
            op = Box::new(DistinctOp::new(op));
        }

        let mut trace = AnswerTrace::new();
        let mut slot_rows: Vec<SlotRow> = Vec::new();
        // Batch runs decode answers straight out of each batch's column
        // buffers (one dictionary lock per batch); row runs collect
        // `SlotRow`s and decode at the end. Same decode order either way.
        let mut decoded: Vec<Row> = Vec::new();
        // Sources skipped at plan time already make the answer partial.
        let mut degraded = !planned.skipped_sources.is_empty();
        let unordered_limit = planned.order_by.is_empty().then_some(()).and(planned.limit);
        let want = unordered_limit.map(|l| l + planned.offset);
        // Vectorized driver: pull morsel-sized batches through the tree.
        // Deadline runs and unordered-LIMIT early stops keep the row
        // driver — both need to observe the clock between *rows*, not
        // between batches, to stop at the same instant the reference
        // executor would.
        let batch_mode = self.config.batch && self.config.deadline.is_none() && want.is_none();
        ctx.batch = batch_mode;
        if batch_mode {
            loop {
                let step = if self.config.overlap {
                    op.poll_next_batch(&mut ctx, self.config.batch_size)
                } else {
                    op.next_batch(&mut ctx, self.config.batch_size).map(|o| {
                        o.map_or(crate::operators::Poll::Done, crate::operators::Poll::Ready)
                    })
                };
                match step {
                    Ok(crate::operators::Poll::Ready(batch)) => {
                        let now = clock.now();
                        if qrec.is_enabled() && trace.count() == 0 && batch.selected().next().is_some()
                        {
                            qrec.first_row(now);
                        }
                        let dict = ctx.interner.lock();
                        for i in batch.selected() {
                            ctx.trace.record_answer(&mut trace, now);
                            decoded.push(decode_batch_row(&batch, i, &planned.schema, &dict));
                        }
                    }
                    Ok(crate::operators::Poll::Pending(ev)) => {
                        if clock.is_virtual() && ev.time <= clock.now() {
                            return Err(FedError::Internal(format!(
                                "scheduler stalled: pending event at {:?} is not in the future (now {:?})",
                                ev.time,
                                clock.now()
                            )));
                        }
                        clock.advance_to(ev.time);
                    }
                    Ok(crate::operators::Poll::Done) => break,
                    Err(e @ (FedError::SourceUnavailable { .. } | FedError::Timeout(_))) => {
                        if !self.config.degraded_ok {
                            let now = clock.now();
                            qrec.complete(
                                now,
                                crate::obs::CompletionKind::Failed,
                                now,
                                planned.report.estimated_rows,
                                0,
                            );
                            return Err(e);
                        }
                        degraded = true;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
        } else {
            loop {
                // The deadline is cooperative: it is checked between
                // answers, so one pull can overshoot it before the query
                // fails (or degrades to the partial answer set).
                if let Some(d) = self.config.deadline {
                    if clock.now() >= d {
                        qrec.deadline_hit(clock.now());
                        if !self.config.degraded_ok {
                            let now = clock.now();
                            qrec.complete(
                                now,
                                crate::obs::CompletionKind::DeadlineMiss,
                                now,
                                planned.report.estimated_rows,
                                0,
                            );
                            return Err(FedError::Timeout(d));
                        }
                        degraded = true;
                        break;
                    }
                }
                // Overlapped runs poll the plan and advance the clock to
                // the next scheduled completion when every branch is
                // waiting on in-flight I/O; serialized runs map the
                // blocking pull onto the same three-way step.
                let step = if self.config.overlap {
                    op.poll_next(&mut ctx)
                } else {
                    op.next(&mut ctx).map(|o| {
                        o.map_or(crate::operators::Poll::Done, crate::operators::Poll::Ready)
                    })
                };
                match step {
                    Ok(crate::operators::Poll::Ready(row)) => {
                        ctx.trace.record_answer(&mut trace, clock.now());
                        if qrec.is_enabled() && trace.count() == 1 {
                            qrec.first_row(clock.now());
                        }
                        slot_rows.push(row);
                        // Without ORDER BY, LIMIT can stop pulling early —
                        // the streaming behaviour ANAPSID's operators
                        // enable.
                        if want.is_some_and(|w| slot_rows.len() >= w) {
                            break;
                        }
                    }
                    Ok(crate::operators::Poll::Pending(ev)) => {
                        // A due event must be consumed by the poll that saw
                        // it; surfacing one here means an operator forgot
                        // to complete it and time would stand still.
                        if clock.is_virtual() && ev.time <= clock.now() {
                            return Err(FedError::Internal(format!(
                                "scheduler stalled: pending event at {:?} is not in the future (now {:?})",
                                ev.time,
                                clock.now()
                            )));
                        }
                        clock.advance_to(ev.time);
                    }
                    Ok(crate::operators::Poll::Done) => break,
                    Err(e @ (FedError::SourceUnavailable { .. } | FedError::Timeout(_))) => {
                        if !self.config.degraded_ok {
                            let now = clock.now();
                            qrec.complete(
                                now,
                                crate::obs::CompletionKind::Failed,
                                now,
                                planned.report.estimated_rows,
                                0,
                            );
                            return Err(e);
                        }
                        degraded = true;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        trace.complete(clock.now());

        // Materialize terms only at the API boundary (batch runs already
        // decoded on the fly).
        let mut rows: Vec<Row> = if batch_mode {
            decoded
        } else {
            let dict = ctx.interner.lock();
            slot_rows
                .iter()
                .map(|r| decode_row(r, &planned.schema, &dict))
                .collect()
        };

        if !planned.order_by.is_empty() {
            sort_rows(&mut rows, &planned.order_by);
        }
        if planned.offset > 0 {
            rows.drain(..planned.offset.min(rows.len()));
        }
        if let Some(l) = planned.limit {
            rows.truncate(l);
        }

        // Feed this execution's link counters into the session health
        // registry: the next plan() call routes around what failed here.
        self.health.record_links(&links);

        let stats = FedStats::assemble(
            &self.config,
            planned,
            &links,
            &ctx.stats,
            &trace,
            rows.len() as u64,
            degraded,
        );
        qrec.complete(
            stats.execution_time,
            if degraded {
                crate::obs::CompletionKind::Degraded
            } else {
                crate::obs::CompletionKind::Ok
            },
            stats.execution_time,
            planned.report.estimated_rows,
            stats.answers,
        );
        let obs = sink.finish(&links, &stats);
        // EXPLAIN names the plan's origin only when the cache is in play,
        // so cache-off output stays byte-identical to previous releases.
        let mut explain = crate::explain::explain_plan(&planned.plan);
        if self.config.plan_cache {
            explain.push_str(&format!(
                "plan: {}[fp={:016x}]\n",
                if origin.cached { "cached" } else { "cold" },
                origin.fingerprint
            ));
        }
        Ok(FedResult {
            vars: Arc::clone(&planned.projection),
            rows,
            trace,
            stats,
            explain,
            obs,
        })
    }

    /// The session-wide term interner (shared with the serve loop).
    pub(crate) fn interner(&self) -> &SharedInterner {
        &self.interner
    }

    /// The cross-execution lift cache (shared with the serve loop).
    pub(crate) fn lifts(&self) -> &crate::wrapper::SharedLiftCache {
        &self.lifts
    }

    // Node ids are assigned pre-order (node before children, children
    // left to right) — the same order `crate::obs::plan_nodes` walks, so a
    // trace's node `i` is line `i` of the analyzed tree. Service leaves
    // are claimed in the same pre-order by the flight recorder's
    // `service_estimates` slots.
    pub(crate) fn build_operator<'a>(
        &'a self,
        plan: &FedPlan,
        schema: &RowSchema,
        links: &HashMap<String, Arc<Link>>,
        sink: &crate::obs::TraceSink,
        qrec: &crate::obs::QueryRecorder,
        next_node: &mut u32,
    ) -> Result<BoxedOp<'a>, FedError> {
        let node = *next_node;
        *next_node += 1;
        let op: BoxedOp<'a> = match plan {
            FedPlan::Service(node) => {
                let route = route_for(&node.source_id, &node.route, links)?;
                let svc = open_service(node, &self.lake, route, self.config.rows_per_message)?;
                if qrec.is_enabled() {
                    Box::new(crate::obs::recorder::RecordServiceOp::new(svc, qrec))
                } else {
                    svc
                }
            }
            FedPlan::Join { left, right, on } => {
                let l = self.build_operator(left, schema, links, sink, qrec, next_node)?;
                let r = self.build_operator(right, schema, links, sink, qrec, next_node)?;
                Box::new(SymHashJoin::new(l, r, schema.slots_of(on)))
            }
            FedPlan::LeftJoin { left, right, on } => {
                let l = self.build_operator(left, schema, links, sink, qrec, next_node)?;
                let r = self.build_operator(right, schema, links, sink, qrec, next_node)?;
                Box::new(LeftHashJoin::new(l, r, schema.slots_of(on)))
            }
            FedPlan::BindJoin { left, right, batch_size } => {
                let l = self.build_operator(left, schema, links, sink, qrec, next_node)?;
                let db = match self.lake.source(&right.source_id) {
                    Some(crate::source::DataSource::Relational { db, .. }) => db,
                    _ => {
                        return Err(FedError::Internal(format!(
                            "bind join target {} is not relational",
                            right.source_id
                        )))
                    }
                };
                let route = route_for(&right.source_id, &right.route, links)?;
                Box::new(crate::wrapper::BindJoinOp::new(
                    l,
                    db,
                    right.clone(),
                    route,
                    self.config.rows_per_message,
                    *batch_size,
                ))
            }
            FedPlan::Filter { input, exprs } => {
                let i = self.build_operator(input, schema, links, sink, qrec, next_node)?;
                Box::new(FilterOp::new(i, exprs.clone()))
            }
            FedPlan::Union(branches) => {
                let ops = branches
                    .iter()
                    .map(|b| self.build_operator(b, schema, links, sink, qrec, next_node))
                    .collect::<Result<Vec<_>, _>>()?;
                Box::new(UnionOp::new(ops))
            }
        };
        Ok(if sink.is_enabled() {
            Box::new(crate::obs::span::SpanOp::new(op, node, sink.clone()))
        } else {
            op
        })
    }
}
