//! Answer traces: the generation of answers over (simulated) time.
//!
//! The paper's Figure 2 plots *answer traces* — cumulative answers against
//! time — for each plan type and network setting. [`AnswerTrace`] records
//! exactly those points during execution.

use std::time::Duration;

/// A cumulative answer trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnswerTrace {
    points: Vec<(Duration, u64)>,
    completed_at: Option<Duration>,
}

impl AnswerTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the production of one answer at time `t`.
    pub fn record(&mut self, t: Duration) {
        let count = self.count() + 1;
        self.points.push((t, count));
    }

    /// Marks query completion at time `t` (the trace may end after the
    /// last answer: the engine only knows it is done once sources drain).
    pub fn complete(&mut self, t: Duration) {
        self.completed_at = Some(t);
    }

    /// Number of answers recorded.
    pub fn count(&self) -> u64 {
        self.points.last().map_or(0, |&(_, c)| c)
    }

    /// Time of the first answer.
    pub fn first_answer(&self) -> Option<Duration> {
        self.points.first().map(|&(t, _)| t)
    }

    /// Total execution time: completion if marked, else the last answer.
    pub fn total_time(&self) -> Duration {
        self.completed_at
            .or_else(|| self.points.last().map(|&(t, _)| t))
            .unwrap_or(Duration::ZERO)
    }

    /// The raw `(time, cumulative answers)` points.
    pub fn points(&self) -> &[(Duration, u64)] {
        &self.points
    }

    /// Cumulative answers at time `t` (for comparing traces pointwise).
    pub fn answers_at(&self, t: Duration) -> u64 {
        match self.points.binary_search_by(|&(pt, _)| pt.cmp(&t)) {
            Ok(mut i) => {
                // Several answers can share a timestamp; take the last.
                while i + 1 < self.points.len() && self.points[i + 1].0 == t {
                    i += 1;
                }
                self.points[i].1
            }
            Err(0) => 0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Serializes the trace as `seconds,answers` CSV lines.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,answers\n");
        for &(t, c) in &self.points {
            out.push_str(&format!("{:.6},{c}\n", t.as_secs_f64()));
        }
        out
    }

    /// Downsamples the trace to roughly `n` points for plotting (at most
    /// `n + 1`: the final point is always kept). `n == 0` disables
    /// downsampling and returns the full trace.
    pub fn downsample(&self, n: usize) -> Vec<(Duration, u64)> {
        if self.points.len() <= n || n == 0 {
            return self.points.clone();
        }
        let step = self.points.len() as f64 / n as f64;
        let mut out: Vec<(Duration, u64)> = (0..n)
            .map(|i| self.points[(i as f64 * step) as usize])
            .collect();
        let last = *self.points.last().expect("non-empty by length check");
        if out.last() != Some(&last) {
            out.push(last);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Duration {
        Duration::from_millis(v)
    }

    #[test]
    fn record_accumulates() {
        let mut t = AnswerTrace::new();
        t.record(ms(1));
        t.record(ms(5));
        t.record(ms(5));
        assert_eq!(t.count(), 3);
        assert_eq!(t.first_answer(), Some(ms(1)));
        assert_eq!(t.total_time(), ms(5));
    }

    #[test]
    fn completion_extends_total_time() {
        let mut t = AnswerTrace::new();
        t.record(ms(2));
        t.complete(ms(10));
        assert_eq!(t.total_time(), ms(10));
    }

    #[test]
    fn answers_at_interpolates_stepwise() {
        let mut t = AnswerTrace::new();
        t.record(ms(1));
        t.record(ms(5));
        t.record(ms(5));
        t.record(ms(9));
        assert_eq!(t.answers_at(ms(0)), 0);
        assert_eq!(t.answers_at(ms(1)), 1);
        assert_eq!(t.answers_at(ms(5)), 3);
        assert_eq!(t.answers_at(ms(7)), 3);
        assert_eq!(t.answers_at(ms(100)), 4);
    }

    #[test]
    fn csv_format() {
        let mut t = AnswerTrace::new();
        t.record(Duration::from_micros(1500));
        let csv = t.to_csv();
        assert!(csv.starts_with("time_s,answers\n"));
        assert!(csv.contains("0.001500,1"));
    }

    #[test]
    fn empty_trace() {
        let t = AnswerTrace::new();
        assert_eq!(t.count(), 0);
        assert_eq!(t.first_answer(), None);
        assert_eq!(t.total_time(), Duration::ZERO);
        assert_eq!(t.answers_at(ms(5)), 0);
    }

    #[test]
    fn answers_at_edge_cases() {
        // A timestamp shared by the very first answers: the probe must
        // see all of them, and anything earlier must see none.
        let mut t = AnswerTrace::new();
        t.record(ms(4));
        t.record(ms(4));
        t.record(ms(4));
        assert_eq!(t.answers_at(ms(3)), 0);
        assert_eq!(t.answers_at(Duration::ZERO), 0);
        assert_eq!(t.answers_at(ms(4)), 3);
        assert_eq!(t.answers_at(ms(4) + Duration::from_nanos(1)), 3);
        // A single-point trace behaves the same way.
        let mut one = AnswerTrace::new();
        one.record(ms(7));
        assert_eq!(one.answers_at(ms(6)), 0);
        assert_eq!(one.answers_at(ms(7)), 1);
        assert_eq!(one.answers_at(ms(8)), 1);
    }

    #[test]
    fn downsample_edge_cases() {
        // Empty traces downsample to nothing at any budget.
        let empty = AnswerTrace::new();
        assert!(empty.downsample(0).is_empty());
        assert!(empty.downsample(16).is_empty());
        let mut t = AnswerTrace::new();
        for i in 0..100 {
            t.record(ms(i));
        }
        // n == 0 disables downsampling.
        assert_eq!(t.downsample(0).len(), 100);
        // A budget at or above the trace length returns it untouched.
        assert_eq!(t.downsample(100).len(), 100);
        assert_eq!(t.downsample(1000), t.points().to_vec());
        // n == 1 keeps the first point plus the appended final point.
        assert_eq!(t.downsample(1), vec![(ms(0), 1), (ms(99), 100)]);
        // Downsampled points are a monotone subsequence of the trace.
        let d = t.downsample(7);
        assert!(d.len() <= 8);
        assert!(d.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        assert!(d.iter().all(|p| t.points().contains(p)));
    }

    #[test]
    fn csv_precision() {
        // Microsecond precision survives the fixed 6-decimal format, and
        // the full serialization is byte-stable (the trace invariants
        // suite relies on trace exports being reproducible bytes).
        let mut t = AnswerTrace::new();
        t.record(Duration::from_nanos(1)); // below the printed precision
        t.record(Duration::from_micros(1));
        t.record(Duration::from_millis(1) + Duration::from_micros(234));
        t.record(Duration::from_secs(3600));
        assert_eq!(
            t.to_csv(),
            "time_s,answers\n0.000000,1\n0.000001,2\n0.001234,3\n3600.000000,4\n"
        );
        assert_eq!(AnswerTrace::new().to_csv(), "time_s,answers\n");
    }

    #[test]
    fn downsample_preserves_envelope() {
        // Downsampling keeps the first and last points, so the plotted
        // curve starts and ends exactly where the real trace does — and
        // every kept point still reports the true cumulative count.
        let mut t = AnswerTrace::new();
        for i in 0..357 {
            t.record(ms(2 * i + 1));
        }
        for n in [1, 2, 3, 10, 356] {
            let d = t.downsample(n);
            assert!(d.len() <= n + 1, "budget {n} produced {} points", d.len());
            assert_eq!(d.first(), t.points().first(), "budget {n} moved the start");
            assert_eq!(d.last(), t.points().last(), "budget {n} lost the end");
            for &(time, count) in &d {
                assert_eq!(count, t.answers_at(time), "budget {n} broke a point");
            }
        }
    }

    #[test]
    fn downsample_keeps_last() {
        let mut t = AnswerTrace::new();
        for i in 0..1000 {
            t.record(ms(i));
        }
        let d = t.downsample(10);
        assert!(d.len() <= 11);
        assert_eq!(d.last(), Some(&(ms(999), 1000)));
        // Untouched when already small.
        let mut small = AnswerTrace::new();
        small.record(ms(1));
        assert_eq!(small.downsample(10).len(), 1);
    }
}
