//! Data sources: the heterogeneous members of the lake.

use fedlake_mapping::{mt, DatasetMapping, RdfMoleculeTemplate};
use fedlake_rdf::Graph;
use fedlake_relational::Database;

/// One data source in the Semantic Data Lake. Sources keep their native
/// data model — the defining property of a data lake (§2.1).
#[derive(Debug, Clone)]
pub enum DataSource {
    /// An RDF store queried with SPARQL.
    Sparql {
        /// Source identifier.
        id: String,
        /// The store.
        graph: Graph,
    },
    /// A relational database queried with SQL, semantified by a mapping.
    Relational {
        /// Source identifier.
        id: String,
        /// The embedded database (the MySQL container stand-in).
        db: Database,
        /// Its RML-style semantic mapping.
        mapping: DatasetMapping,
    },
}

impl DataSource {
    /// Creates a SPARQL source.
    pub fn sparql(id: impl Into<String>, graph: Graph) -> Self {
        DataSource::Sparql { id: id.into(), graph }
    }

    /// Creates a mapped relational source.
    pub fn relational(id: impl Into<String>, db: Database, mapping: DatasetMapping) -> Self {
        DataSource::Relational { id: id.into(), db, mapping }
    }

    /// The source identifier.
    pub fn id(&self) -> &str {
        match self {
            DataSource::Sparql { id, .. } | DataSource::Relational { id, .. } => id,
        }
    }

    /// True for relational sources — the ones the paper's heuristics
    /// reason about.
    pub fn is_relational(&self) -> bool {
        matches!(self, DataSource::Relational { .. })
    }

    /// Computes this source's RDF Molecule Templates: scanned for RDF
    /// sources, derived from the mapping for relational ones.
    pub fn molecule_templates(&self) -> Vec<RdfMoleculeTemplate> {
        match self {
            DataSource::Sparql { id, graph } => mt::extract_from_graph(graph, id),
            DataSource::Relational { db, mapping, .. } => {
                mt::derive_from_mapping(mapping, |t| {
                    db.table(&t.table).map_or(0, |tbl| tbl.len())
                })
            }
        }
    }

    /// For relational sources: true when `table.column` has an index with
    /// that column as leading key — the physical-design test used by both
    /// heuristics.
    pub fn has_index_on(&self, table: &str, column: &str) -> bool {
        match self {
            DataSource::Sparql { .. } => false,
            DataSource::Relational { db, .. } => db.has_index_on(table, column),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlake_mapping::{IriTemplate, TableMapping};
    use fedlake_rdf::Term;

    fn relational_source() -> DataSource {
        let mut db = Database::new("d");
        db.execute("CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT)").unwrap();
        db.execute("INSERT INTO gene VALUES ('g1', 'BRCA1')").unwrap();
        let mapping = DatasetMapping::new("d").with_table(
            TableMapping::new(
                "gene",
                "http://v/Gene",
                IriTemplate::new("http://d/gene/{}"),
                "id",
            )
            .with_literal("label", "http://v/label"),
        );
        DataSource::relational("d", db, mapping)
    }

    #[test]
    fn relational_mts_carry_cardinality() {
        let s = relational_source();
        let mts = s.molecule_templates();
        assert_eq!(mts.len(), 1);
        assert_eq!(mts[0].cardinality, 1);
        assert_eq!(mts[0].source_id, "d");
        assert!(s.is_relational());
    }

    #[test]
    fn sparql_source_mts_from_scan() {
        let mut g = Graph::new();
        g.insert_terms(
            Term::iri("http://d/x"),
            Term::iri(fedlake_rdf::vocab::rdf::TYPE),
            Term::iri("http://v/C"),
        );
        let s = DataSource::sparql("r", g);
        let mts = s.molecule_templates();
        assert_eq!(mts.len(), 1);
        assert_eq!(mts[0].class, "http://v/C");
        assert!(!s.is_relational());
        assert!(!s.has_index_on("any", "col"));
    }

    #[test]
    fn index_probe() {
        let s = relational_source();
        assert!(s.has_index_on("gene", "id"));
        assert!(!s.has_index_on("gene", "label"));
    }
}
