//! `EXPLAIN ANALYZE`: the static plan tree annotated with what actually
//! happened — per-operator row counts and simulated emit times, plus the
//! link traffic, retries and faults of every source the node talked to.
//!
//! The node order here is the contract between the recorder and both
//! executors: [`plan_nodes`] walks the plan in pre-order (node before
//! children, children left to right, a bind join recursing only into its
//! left input), and `build_operator` / `build_ref_operator` assign span
//! node ids by incrementing a counter in exactly the same order, so node
//! `i` in the report is line `i` of the analyzed tree.

use crate::explain::{indent, node_line};
use crate::fedplan::FedPlan;
use crate::obs::span::TraceReport;
use std::time::Duration;

/// One plan node in pre-order: its tree depth, its EXPLAIN line, and the
/// source it requests from (service and bind-join nodes).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// Depth in the plan tree (root = 0).
    pub depth: usize,
    /// The node's EXPLAIN line (shared with [`crate::explain`]).
    pub label: String,
    /// The source this node sends requests to, when it is a leaf request.
    pub source: Option<String>,
    /// The planner's estimated output rows of this subtree — compared
    /// against `rows_out` by EXPLAIN ANALYZE's estimation-error column.
    pub estimated: f64,
}

/// The plan's nodes in pre-order (the span node-id order).
pub fn plan_nodes(plan: &FedPlan) -> Vec<PlanNode> {
    let mut nodes = Vec::new();
    walk(plan, 0, &mut nodes);
    nodes
}

fn walk(plan: &FedPlan, depth: usize, nodes: &mut Vec<PlanNode>) {
    let source = match plan {
        FedPlan::Service(s) => Some(s.source_id.clone()),
        FedPlan::BindJoin { right, .. } => Some(right.source_id.clone()),
        _ => None,
    };
    nodes.push(PlanNode {
        depth,
        label: node_line(plan),
        source,
        estimated: plan.estimated_rows(),
    });
    match plan {
        FedPlan::Service(_) => {}
        FedPlan::Join { left, right, .. } | FedPlan::LeftJoin { left, right, .. } => {
            walk(left, depth + 1, nodes);
            walk(right, depth + 1, nodes);
        }
        FedPlan::BindJoin { left, .. } => walk(left, depth + 1, nodes),
        FedPlan::Filter { input, .. } => walk(input, depth + 1, nodes),
        FedPlan::Union(branches) => {
            for b in branches {
                walk(b, depth + 1, nodes);
            }
        }
    }
}

/// Milliseconds with fixed precision; deterministic for equal durations.
pub(crate) fn fmt_ms(d: Duration) -> String {
    format!("{:.3}ms", d.as_secs_f64() * 1e3)
}

fn fmt_opt(t: Option<Duration>) -> String {
    t.map_or_else(|| "-".to_string(), fmt_ms)
}

/// The q-error of an estimate against the actual row count: the factor
/// (≥ 1) by which the estimate was off, in either direction. Actuals are
/// floored at one row so an operator that emitted nothing still gets a
/// finite error.
pub fn q_error(estimated: f64, actual: u64) -> f64 {
    let est = estimated.max(1.0);
    let act = (actual as f64).max(1.0);
    (est / act).max(act / est)
}

/// Renders the analyzed plan tree of a traced execution.
pub fn explain_analyze(report: &TraceReport) -> String {
    let mut out = format!(
        "# EXPLAIN ANALYZE ({}, {}): answers={}, exec={}, messages={}, rows transferred={}, retries={}\n",
        report.plan_label,
        report.network,
        report.answers_total,
        fmt_ms(report.total_time),
        report.messages,
        report.rows_transferred,
        report.retries,
    );
    for node in &report.nodes {
        indent(&mut out, node.depth);
        out.push_str(&format!(
            "{}  [rows={} est={:.0} err=x{:.1} first={} done={}]\n",
            node.label,
            node.rows_out,
            node.estimated.max(1.0),
            q_error(node.estimated, node.rows_out),
            fmt_opt(node.first),
            fmt_opt(node.done),
        ));
        if let Some(source) = &node.source {
            if let Some(s) = report.sources.get(source) {
                indent(&mut out, node.depth + 1);
                out.push_str(&format!(
                    "link[{source}]: {} msgs, {} rows, delay={}, retries={}, faults={}\n",
                    s.link.messages,
                    s.link.rows,
                    fmt_ms(s.link.delay),
                    s.retries,
                    s.link.faults(),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fedplan::{ServiceKind, ServiceNode, SqlRequest};
    use crate::translate::TranslatedQuery;
    use fedlake_sparql::binding::Var;

    fn service(id: &str) -> FedPlan {
        FedPlan::Service(ServiceNode {
            source_id: id.into(),
            route: None,
            kind: ServiceKind::Sql {
                request: SqlRequest::Single(TranslatedQuery {
                    sql: format!("SELECT * FROM {id}"),
                    outputs: Vec::new(),
                }),
                covers: vec!["?x".into()],
            },
            estimated_rows: 1.0,
        })
    }

    #[test]
    fn plan_nodes_are_preorder_with_sources() {
        let plan = FedPlan::Join {
            left: Box::new(service("a")),
            right: Box::new(FedPlan::Filter {
                input: Box::new(service("b")),
                exprs: Vec::new(),
            }),
            on: vec![Var::new("x")],
        };
        let nodes = plan_nodes(&plan);
        assert_eq!(nodes.len(), 4);
        assert_eq!(nodes[0].depth, 0);
        assert!(nodes[0].label.starts_with("SymmetricHashJoin"));
        assert_eq!(nodes[1].source.as_deref(), Some("a"));
        assert_eq!(nodes[2].depth, 1, "filter sits under the join");
        assert_eq!(nodes[3].source.as_deref(), Some("b"));
        assert_eq!(nodes[3].depth, 2);
    }

    #[test]
    fn fmt_helpers_are_stable() {
        assert_eq!(fmt_ms(Duration::from_micros(1500)), "1.500ms");
        assert_eq!(fmt_opt(None), "-");
    }
}
