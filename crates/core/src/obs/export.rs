//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! One process (`fedlake`), one thread lane per span lane (`engine`, each
//! `src:<id>`, each `op:<n> <name>`), lanes numbered in first-appearance
//! order. Spans become `"ph":"X"` complete events; answers become
//! `"ph":"i"` instants. Timestamps are microseconds with nanosecond
//! fractions, formatted from the integer nanosecond count — no float
//! round-tripping — so equal simulated times always export as equal bytes.

use crate::obs::span::{Span, SpanKind, TraceReport};
use std::time::Duration;

/// Microseconds with three fractional digits, from integer nanos.
fn fmt_us(d: Duration) -> String {
    let ns = d.as_nanos();
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Minimal JSON string escape (quotes, backslashes, control characters).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn event(span: &Span, tid: usize, out: &mut String) {
    let common = format!(
        "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{tid},\"ts\":{}",
        esc(&span.label),
        span.kind.name(),
        fmt_us(span.start),
    );
    let args = format!(
        "\"args\":{{\"rows\":{},\"span\":{},\"parent\":{}}}",
        span.rows,
        span.id,
        span.parent.map_or_else(|| "null".to_string(), |p| p.to_string()),
    );
    if span.kind == SpanKind::Answer {
        out.push_str(&format!("{{{common},\"ph\":\"i\",\"s\":\"t\",{args}}}"));
    } else {
        out.push_str(&format!(
            "{{{common},\"dur\":{},\"ph\":\"X\",{args}}}",
            fmt_us(span.end.saturating_sub(span.start)),
        ));
    }
}

/// Serializes a traced execution as Chrome trace-event JSON.
pub fn chrome_trace(report: &TraceReport) -> String {
    // Lanes in first-appearance order; `tid` is 1-based.
    let mut lanes: Vec<&str> = Vec::new();
    for s in &report.spans {
        if !lanes.iter().any(|l| *l == s.lane) {
            lanes.push(&s.lane);
        }
    }
    let tid_of = |lane: &str| lanes.iter().position(|l| *l == lane).unwrap_or(0) + 1;

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"fedlake\"}}",
    );
    for (i, lane) in lanes.iter().enumerate() {
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            i + 1,
            esc(lane),
        ));
    }
    for span in &report.spans {
        out.push_str(",\n");
        event(span, tid_of(&span.lane), &mut out);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_format_from_integer_nanos() {
        assert_eq!(fmt_us(Duration::ZERO), "0.000");
        assert_eq!(fmt_us(Duration::from_nanos(1)), "0.001");
        assert_eq!(fmt_us(Duration::from_micros(1500)), "1500.000");
        assert_eq!(fmt_us(Duration::from_nanos(1_234_567)), "1234.567");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("x\ny"), "x\\ny");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn spans_become_complete_events_and_answers_instants() {
        let x = Span {
            id: 0,
            parent: None,
            kind: SpanKind::Transfer,
            lane: "src:a".into(),
            label: "message (3 rows)".into(),
            start: Duration::from_micros(10),
            end: Duration::from_micros(25),
            rows: 3,
        };
        let mut out = String::new();
        event(&x, 2, &mut out);
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"ts\":10.000"));
        assert!(out.contains("\"dur\":15.000"));
        assert!(out.contains("\"tid\":2"));
        let i = Span { kind: SpanKind::Answer, end: x.start, ..x };
        let mut out = String::new();
        event(&i, 1, &mut out);
        assert!(out.contains("\"ph\":\"i\""));
        assert!(!out.contains("\"dur\""));
    }
}
