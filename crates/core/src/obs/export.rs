//! Chrome trace-event JSON export (Perfetto / `chrome://tracing`).
//!
//! One process (`fedlake`), one thread lane per span lane (`engine`, each
//! `src:<id>`, each `op:<n> <name>`), lanes numbered in first-appearance
//! order. Spans become `"ph":"X"` complete events; answers become
//! `"ph":"i"` instants. Timestamps are microseconds with nanosecond
//! fractions, formatted from the integer nanosecond count — no float
//! round-tripping — so equal simulated times always export as equal bytes.
//!
//! Replica endpoints share their logical source's lane: spans recorded on
//! `src:chebi#r1` land in lane `src:chebi` with `[#r1]` appended to the
//! event name, so a failover reads as one lane changing replica rather
//! than three near-empty lanes per source.
//!
//! [`serve_chrome_trace`] and [`serve_timeline_html`] render a fleet
//! [`FlightRecording`]: one lane per client plus one per logical link.

use crate::lake::logical_source_id;
use crate::obs::recorder::{CompletionKind, FleetEventKind, FlightRecording, NO_JOB};
use crate::obs::span::{Span, SpanKind, TraceReport};
use std::time::Duration;

/// Splits a span lane into its display lane and replica sub-label:
/// `src:chebi#r1` → (`src:chebi`, `Some("#r1")`); everything else passes
/// through unchanged.
fn lane_parts(lane: &str) -> (String, Option<&str>) {
    if let Some(endpoint) = lane.strip_prefix("src:") {
        let logical = logical_source_id(endpoint);
        if logical.len() != endpoint.len() {
            return (format!("src:{logical}"), Some(&endpoint[logical.len()..]));
        }
    }
    (lane.to_string(), None)
}

/// Microseconds with three fractional digits, from integer nanos.
fn fmt_us(d: Duration) -> String {
    let ns = d.as_nanos();
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Minimal JSON string escape (quotes, backslashes, control characters).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn event(span: &Span, tid: usize, replica: Option<&str>, out: &mut String) {
    let name = match replica {
        Some(r) => format!("{} [{r}]", span.label),
        None => span.label.clone(),
    };
    let common = format!(
        "\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{tid},\"ts\":{}",
        esc(&name),
        span.kind.name(),
        fmt_us(span.start),
    );
    let args = format!(
        "\"args\":{{\"rows\":{},\"span\":{},\"parent\":{}}}",
        span.rows,
        span.id,
        span.parent.map_or_else(|| "null".to_string(), |p| p.to_string()),
    );
    if span.kind == SpanKind::Answer {
        out.push_str(&format!("{{{common},\"ph\":\"i\",\"s\":\"t\",{args}}}"));
    } else {
        out.push_str(&format!(
            "{{{common},\"dur\":{},\"ph\":\"X\",{args}}}",
            fmt_us(span.end.saturating_sub(span.start)),
        ));
    }
}

/// Serializes a traced execution as Chrome trace-event JSON.
pub fn chrome_trace(report: &TraceReport) -> String {
    // Display lanes (replicas folded into their logical source) in
    // first-appearance order; `tid` is 1-based.
    let mut lanes: Vec<String> = Vec::new();
    for s in &report.spans {
        let (lane, _) = lane_parts(&s.lane);
        if !lanes.contains(&lane) {
            lanes.push(lane);
        }
    }
    let tid_of = |lane: &str| lanes.iter().position(|l| l == lane).unwrap_or(0) + 1;

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"fedlake\"}}",
    );
    for (i, lane) in lanes.iter().enumerate() {
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            i + 1,
            esc(lane),
        ));
    }
    for span in &report.spans {
        let (lane, replica) = lane_parts(&span.lane);
        out.push_str(",\n");
        event(span, tid_of(&lane), replica, &mut out);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Per-job lifecycle milestones extracted from a recording, in job order.
struct JobSpan {
    submit: Duration,
    admit: Duration,
    complete: Option<(Duration, CompletionKind, u64)>,
}

fn job_spans(recording: &FlightRecording) -> Vec<JobSpan> {
    let mut spans: Vec<JobSpan> = recording
        .jobs
        .iter()
        .map(|_| JobSpan { submit: Duration::ZERO, admit: Duration::ZERO, complete: None })
        .collect();
    for ev in &recording.events {
        if ev.job == NO_JOB {
            continue;
        }
        let Some(j) = spans.get_mut(ev.job as usize) else { continue };
        match &ev.kind {
            FleetEventKind::Submit => j.submit = ev.time,
            FleetEventKind::Admit { .. } => j.admit = ev.time,
            FleetEventKind::Complete { outcome, rows, .. } => {
                j.complete = Some((ev.time, *outcome, *rows));
            }
            _ => {}
        }
    }
    spans
}

/// Serializes a fleet recording as Chrome trace-event JSON: one lane per
/// client (`client:N`, ascending) and one per logical link
/// (`link:<source>`, sorted). Queries render as a `queued` span
/// (submit → admit, when non-empty) plus a run span (admit → complete)
/// named by their label; first rows, deadline expiries, retries and
/// failovers are instants on the client lane; transfers are instants on
/// their link lane.
pub fn serve_chrome_trace(recording: &FlightRecording) -> String {
    let spans = job_spans(recording);
    let mut clients: Vec<usize> = recording.jobs.iter().map(|m| m.client).collect();
    clients.sort_unstable();
    clients.dedup();
    let mut links: Vec<String> = recording
        .events
        .iter()
        .filter_map(|ev| match &ev.kind {
            FleetEventKind::Transfer { link, .. } => {
                Some(format!("link:{}", logical_source_id(link)))
            }
            _ => None,
        })
        .collect();
    links.sort_unstable();
    links.dedup();
    let mut lanes: Vec<String> = clients.iter().map(|c| format!("client:{c}")).collect();
    lanes.extend(links);
    let tid_of = |lane: &str| lanes.iter().position(|l| l == lane).unwrap_or(0) + 1;
    let client_tid = |job: u32| {
        recording.meta(job).map_or(1, |m| tid_of(&format!("client:{}", m.client)))
    };

    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"fedlake-serve\"}}",
    );
    for (i, lane) in lanes.iter().enumerate() {
        out.push_str(&format!(
            ",\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
            i + 1,
            esc(lane),
        ));
    }
    let instant = |out: &mut String, name: &str, tid: usize, at: Duration, args: &str| {
        out.push_str(&format!(
            ",\n{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"args\":{{{args}}}}}",
            esc(name),
            fmt_us(at),
        ));
    };
    for ev in &recording.events {
        match &ev.kind {
            FleetEventKind::Admit { queued } => {
                let Some(j) = spans.get(ev.job as usize) else { continue };
                if !queued.is_zero() {
                    let label =
                        recording.meta(ev.job).map_or("", |m| m.label.as_str());
                    out.push_str(&format!(
                        ",\n{{\"name\":\"queued {}\",\"cat\":\"queue\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"job\":{}}}}}",
                        esc(label),
                        client_tid(ev.job),
                        fmt_us(j.submit),
                        fmt_us(j.admit.saturating_sub(j.submit)),
                        ev.job,
                    ));
                }
            }
            FleetEventKind::Complete { outcome, latency, rows, .. } => {
                let Some(j) = spans.get(ev.job as usize) else { continue };
                let meta = recording.meta(ev.job);
                out.push_str(&format!(
                    ",\n{{\"name\":\"{}\",\"cat\":\"query\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{\"job\":{},\"outcome\":\"{}\",\"rows\":{},\"strategy\":\"{}\",\"latency_us\":{}}}}}",
                    esc(meta.map_or("", |m| m.label.as_str())),
                    client_tid(ev.job),
                    fmt_us(j.admit),
                    fmt_us(ev.time.saturating_sub(j.admit)),
                    ev.job,
                    outcome.name(),
                    rows,
                    meta.map_or("", |m| m.strategy),
                    latency.as_micros(),
                ));
            }
            FleetEventKind::FirstRow => {
                instant(&mut out, "first-row", client_tid(ev.job), ev.time, &format!("\"job\":{}", ev.job));
            }
            FleetEventKind::Deadline => {
                instant(&mut out, "deadline", client_tid(ev.job), ev.time, &format!("\"job\":{}", ev.job));
            }
            FleetEventKind::Retry { endpoint, attempt } => {
                instant(
                    &mut out,
                    &format!("retry {endpoint}"),
                    client_tid(ev.job),
                    ev.time,
                    &format!("\"job\":{},\"attempt\":{attempt}", ev.job),
                );
            }
            FleetEventKind::Failover { logical, from, to } => {
                instant(
                    &mut out,
                    &format!("failover {from}->{to}"),
                    client_tid(ev.job),
                    ev.time,
                    &format!("\"job\":{},\"source\":\"{}\"", ev.job, esc(logical)),
                );
            }
            FleetEventKind::Transfer { link, rows, faulted } => {
                instant(
                    &mut out,
                    if *faulted { "fault" } else { "xfer" },
                    tid_of(&format!("link:{}", logical_source_id(link))),
                    ev.time,
                    &format!("\"endpoint\":\"{}\",\"rows\":{rows}", esc(link)),
                );
            }
            _ => {}
        }
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders a fleet recording as one static HTML page with an inline SVG
/// timeline: one row per client (query bars colored by outcome, queueing
/// hatched grey) and one per logical link (fault ticks in red). Pure
/// string building from the recording — byte-identical across reruns.
pub fn serve_timeline_html(recording: &FlightRecording) -> String {
    const WIDTH: u64 = 1000;
    const ROW_H: u64 = 22;
    let spans = job_spans(recording);
    let makespan_us = recording
        .events
        .iter()
        .map(|e| e.time.as_micros() as u64)
        .max()
        .unwrap_or(0)
        .max(1);
    let x = |t: Duration| (t.as_micros() as u64 * WIDTH) / makespan_us;

    let mut clients: Vec<usize> = recording.jobs.iter().map(|m| m.client).collect();
    clients.sort_unstable();
    clients.dedup();
    let mut links: Vec<String> = recording
        .events
        .iter()
        .filter_map(|ev| match &ev.kind {
            FleetEventKind::Transfer { link, .. } => Some(logical_source_id(link).to_string()),
            _ => None,
        })
        .collect();
    links.sort_unstable();
    links.dedup();
    let rows = clients.len() + links.len();
    let height = (rows as u64 + 1) * ROW_H + 20;

    let mut svg = String::new();
    let row_y = |i: usize| 10 + i as u64 * ROW_H;
    for (i, c) in clients.iter().enumerate() {
        svg.push_str(&format!(
            "<text x=\"0\" y=\"{}\" class=\"lbl\">client:{c}</text>\n",
            row_y(i) + 14
        ));
    }
    for (i, l) in links.iter().enumerate() {
        svg.push_str(&format!(
            "<text x=\"0\" y=\"{}\" class=\"lbl\">link:{}</text>\n",
            row_y(clients.len() + i) + 14,
            esc(l)
        ));
    }
    const LANE_X: u64 = 90;
    for (job, j) in spans.iter().enumerate() {
        let Some((end, outcome, rows_out)) = j.complete else { continue };
        let Some(meta) = recording.meta(job as u32) else { continue };
        let row = clients.iter().position(|c| *c == meta.client).unwrap_or(0);
        let y = row_y(row);
        if j.admit > j.submit {
            svg.push_str(&format!(
                "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" class=\"queued\"/>\n",
                LANE_X + x(j.submit),
                y + 4,
                (x(j.admit) - x(j.submit)).max(1),
                ROW_H - 8,
            ));
        }
        let class = match outcome {
            CompletionKind::Ok => "ok",
            CompletionKind::Degraded => "degraded",
            CompletionKind::DeadlineMiss => "miss",
            CompletionKind::Failed => "failed",
        };
        svg.push_str(&format!(
            "<rect x=\"{}\" y=\"{}\" width=\"{}\" height=\"{}\" class=\"{class}\"><title>{} job {job}: {} ({} rows)</title></rect>\n",
            LANE_X + x(j.admit),
            y + 2,
            (x(end) - x(j.admit)).max(1),
            ROW_H - 4,
            esc(&meta.label),
            class,
            rows_out,
        ));
    }
    for ev in &recording.events {
        if let FleetEventKind::Transfer { link, faulted, .. } = &ev.kind {
            let logical = logical_source_id(link);
            let Some(i) = links.iter().position(|l| l == logical) else { continue };
            let y = row_y(clients.len() + i);
            svg.push_str(&format!(
                "<line x1=\"{0}\" y1=\"{1}\" x2=\"{0}\" y2=\"{2}\" class=\"{3}\"/>\n",
                LANE_X + x(ev.time),
                y + 4,
                y + ROW_H - 4,
                if *faulted { "fault" } else { "tick" },
            ));
        }
    }

    format!(
        concat!(
            "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>fedlake serve timeline</title>\n",
            "<style>\n",
            "body{{font:13px monospace;background:#fff;color:#222}}\n",
            ".lbl{{font:11px monospace;fill:#444}}\n",
            ".queued{{fill:#bbb;opacity:0.6}}\n",
            ".ok{{fill:#4c9f70}}.degraded{{fill:#e0a500}}.miss{{fill:#d9534f}}.failed{{fill:#8b1a1a}}\n",
            ".tick{{stroke:#7aa6c2;stroke-width:1}}.fault{{stroke:#d9534f;stroke-width:2}}\n",
            "</style></head><body>\n",
            "<h1>fedlake serve timeline</h1>\n",
            "<p>{jobs} jobs, {events} events, makespan {makespan} µs, {dropped} events dropped</p>\n",
            "<svg width=\"{w}\" height=\"{h}\" viewBox=\"0 0 {w} {h}\">\n{svg}</svg>\n",
            "</body></html>\n"
        ),
        jobs = recording.jobs.len(),
        events = recording.events.len(),
        makespan = makespan_us,
        dropped = recording.dropped,
        w = LANE_X + WIDTH + 10,
        h = height,
        svg = svg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_format_from_integer_nanos() {
        assert_eq!(fmt_us(Duration::ZERO), "0.000");
        assert_eq!(fmt_us(Duration::from_nanos(1)), "0.001");
        assert_eq!(fmt_us(Duration::from_micros(1500)), "1500.000");
        assert_eq!(fmt_us(Duration::from_nanos(1_234_567)), "1234.567");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(esc("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(esc("x\ny"), "x\\ny");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn spans_become_complete_events_and_answers_instants() {
        let x = Span {
            id: 0,
            parent: None,
            kind: SpanKind::Transfer,
            lane: "src:a".into(),
            label: "message (3 rows)".into(),
            start: Duration::from_micros(10),
            end: Duration::from_micros(25),
            rows: 3,
        };
        let mut out = String::new();
        event(&x, 2, None, &mut out);
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"ts\":10.000"));
        assert!(out.contains("\"dur\":15.000"));
        assert!(out.contains("\"tid\":2"));
        let i = Span { kind: SpanKind::Answer, end: x.start, ..x };
        let mut out = String::new();
        event(&i, 1, None, &mut out);
        assert!(out.contains("\"ph\":\"i\""));
        assert!(!out.contains("\"dur\""));
    }

    #[test]
    fn replica_lanes_fold_into_their_logical_source() {
        assert_eq!(lane_parts("engine"), ("engine".to_string(), None));
        assert_eq!(lane_parts("src:chebi"), ("src:chebi".to_string(), None));
        assert_eq!(lane_parts("src:chebi#r1"), ("src:chebi".to_string(), Some("#r1")));
        // `#r` without digits is part of the source id, not a replica.
        assert_eq!(lane_parts("src:we#rd"), ("src:we#rd".to_string(), None));

        // A replica span exports into the logical lane with the replica
        // as a name sub-label.
        let mk = |lane: &str| Span {
            id: 0,
            parent: None,
            kind: SpanKind::Transfer,
            lane: lane.into(),
            label: "message (3 rows)".into(),
            start: Duration::from_micros(10),
            end: Duration::from_micros(25),
            rows: 3,
        };
        let report = TraceReport {
            plan_label: "aware".into(),
            network: "wan",
            spans: vec![mk("src:chebi#r0"), mk("src:chebi#r1"), mk("src:drugbank")],
            nodes: Vec::new(),
            sources: Default::default(),
            metrics: Default::default(),
            answers: Vec::new(),
            total_time: Duration::from_micros(25),
            answers_total: 0,
            messages: 3,
            rows_transferred: 9,
            retries: 0,
        };
        let json = chrome_trace(&report);
        // Two logical lanes, not three replica lanes.
        assert!(json.contains("\"args\":{\"name\":\"src:chebi\"}"));
        assert!(json.contains("\"args\":{\"name\":\"src:drugbank\"}"));
        assert!(!json.contains("\"name\":\"src:chebi#r0\"}"));
        assert!(json.contains("\"name\":\"message (3 rows) [#r0]\""));
        assert!(json.contains("\"name\":\"message (3 rows) [#r1]\""));
    }

    #[test]
    fn serve_exports_render_clients_and_links() {
        use crate::obs::recorder::{CompletionKind, FlightRecorder};
        let rec = FlightRecorder::recording();
        let q = rec.begin_query(3, "Q1[a]", "dp", None, Vec::new());
        q.submit(Duration::ZERO);
        q.admit(Duration::from_millis(2), Duration::from_millis(2));
        q.first_row(Duration::from_millis(5));
        q.complete(
            Duration::from_millis(9),
            CompletionKind::Ok,
            Duration::from_millis(9),
            4.0,
            4,
        );
        let obs = rec.net_observer().unwrap();
        obs.on_transfer("chebi#r1", 4, Duration::from_millis(3), Duration::from_millis(4), None);
        let recording = rec.snapshot().unwrap();

        let json = serve_chrome_trace(&recording);
        assert!(json.contains("\"name\":\"client:3\""));
        assert!(json.contains("\"name\":\"link:chebi\""));
        assert!(json.contains("\"name\":\"queued Q1[a]\""));
        assert!(json.contains("\"outcome\":\"ok\""));
        assert!(json.contains("\"name\":\"first-row\""));
        assert!(json.contains("\"endpoint\":\"chebi#r1\""));
        assert_eq!(json, serve_chrome_trace(&recording));

        let html = serve_timeline_html(&recording);
        assert!(html.contains("client:3"));
        assert!(html.contains("link:chebi"));
        assert!(html.contains("class=\"ok\""));
        assert!(html.contains("class=\"queued\""));
        assert_eq!(html, serve_timeline_html(&recording));
    }
}
