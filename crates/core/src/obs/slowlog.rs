//! Slow-query log: stable JSON records for queries that breached a
//! latency or estimation-quality threshold.
//!
//! Records are built after the fact from a [`FlightRecording`] — one scan
//! per job over its lifecycle events — and optionally enriched with the
//! session's [`TraceReport`] for per-operator actuals and the per-link
//! wait breakdown. Building the log is read-only and deterministic: the
//! same recording (and traces) always serializes to the same bytes, which
//! is what lets `tier1.sh` pin a golden snapshot of one.

use super::analyze::q_error;
use super::recorder::{FleetEventKind, FlightRecording, NO_JOB};
use super::span::TraceReport;
use std::time::Duration;

/// Breach thresholds for the slow-query log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlowLogConfig {
    /// Latency (arrival → completion) at or past which a query is logged.
    /// `None` disables the latency criterion.
    pub latency: Option<Duration>,
    /// q-error ×100 at or past which a query is logged — the worst
    /// per-service q-error, or the whole-query estimate-vs-answers
    /// q-error, whichever is larger. 800 = off by 8×.
    pub qerror_x100: u64,
}

impl Default for SlowLogConfig {
    fn default() -> Self {
        SlowLogConfig { latency: None, qerror_x100: 800 }
    }
}

/// One service leaf's estimate against what it actually produced.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowSource {
    /// Logical source id of the service.
    pub source: String,
    /// Planner's row estimate.
    pub estimated_rows: f64,
    /// Rows the service emitted.
    pub actual_rows: u64,
    /// q-error ×100 between the two.
    pub qerror_x100: u64,
}

/// One operator's actuals, copied from the trace report.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowOperator {
    /// The operator's EXPLAIN line (indented by depth already).
    pub label: String,
    /// Planner's estimated output rows of the subtree.
    pub estimated_rows: f64,
    /// Rows the operator emitted.
    pub rows_out: u64,
    /// q-error ×100 between the two.
    pub qerror_x100: u64,
}

/// One link's share of the query's waiting, copied from the trace report.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowLink {
    /// Endpoint id (replicas keep their `#rK` suffix).
    pub endpoint: String,
    /// Messages delivered.
    pub messages: u64,
    /// Rows transferred.
    pub rows: u64,
    /// Simulated network delay injected on the link, microseconds.
    pub wait_us: u64,
    /// Failed transfer attempts.
    pub faults: u64,
    /// Wrapper retries against the source.
    pub retries: u64,
}

/// Everything the log captures about one breaching query.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SlowQueryRecord {
    /// Issuing client.
    pub client: usize,
    /// Job label (`Q3[cat-12]`).
    pub label: String,
    /// Query template (label with the instance suffix stripped).
    pub template: String,
    /// Plan strategy (`heuristic`, `dp`, `greedy-cost`).
    pub strategy: String,
    /// Completion outcome wire name (`ok`, `degraded`, `deadline-miss`,
    /// `failed`).
    pub outcome: String,
    /// Thresholds that fired (`latency`, `qerror`), in that order.
    pub breached: Vec<String>,
    /// Simulated submit time, microseconds.
    pub submitted_us: u64,
    /// Time spent queued before admission, microseconds.
    pub queued_us: u64,
    /// Arrival → completion latency, microseconds.
    pub latency_us: u64,
    /// First answer relative to submit, microseconds, when any.
    pub first_row_us: Option<u64>,
    /// Relative deadline, microseconds, when one applied.
    pub deadline_us: Option<u64>,
    /// Answers produced.
    pub answers: u64,
    /// Planner's whole-query row estimate.
    pub estimated_rows: f64,
    /// Whole-query q-error ×100 (estimate vs answers).
    pub qerror_x100: u64,
    /// Candidate plans the planner costed.
    pub plans_costed: u64,
    /// Bind joins in the chosen plan.
    pub bind_joins: u64,
    /// Wrapper retries, as `endpoint#attempt` strings in event order.
    pub retries: Vec<String>,
    /// Replica failovers, as `logical: from->to` strings in event order.
    pub route: Vec<String>,
    /// Per-service estimates vs actuals, in plan pre-order.
    pub sources: Vec<SlowSource>,
    /// Per-operator actuals (trace enrichment; empty when untraced).
    pub operators: Vec<SlowOperator>,
    /// Per-link wait breakdown (trace enrichment; empty when untraced).
    pub links: Vec<SlowLink>,
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `f64` as stable JSON: integral values print without a fraction
/// (`120`), everything else with Rust's shortest round-trip formatting.
fn num(v: f64) -> String {
    if v.is_finite() && v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

fn str_array(items: &[String]) -> String {
    let body: Vec<String> = items.iter().map(|s| format!("\"{}\"", esc(s))).collect();
    format!("[{}]", body.join(","))
}

impl SlowQueryRecord {
    /// Copies per-operator actuals and the per-link wait breakdown out of
    /// the session's trace report.
    pub fn attach_trace(&mut self, report: &TraceReport) {
        self.operators = report
            .nodes
            .iter()
            .map(|n| SlowOperator {
                label: n.label.clone(),
                estimated_rows: n.estimated,
                rows_out: n.rows_out,
                qerror_x100: (q_error(n.estimated, n.rows_out) * 100.0) as u64,
            })
            .collect();
        self.links = report
            .sources
            .iter()
            .map(|(endpoint, s)| SlowLink {
                endpoint: endpoint.clone(),
                messages: s.link.messages,
                rows: s.link.rows,
                wait_us: s.link.delay.as_micros() as u64,
                faults: s.link.faults(),
                retries: s.retries,
            })
            .collect();
    }

    /// Serializes the record as one stable JSON object (key order fixed,
    /// no whitespace beyond single spaces after colons... none at all, in
    /// fact — the bytes are the contract).
    pub fn to_json(&self) -> String {
        let sources: Vec<String> = self
            .sources
            .iter()
            .map(|s| {
                format!(
                    "{{\"source\":\"{}\",\"estimated_rows\":{},\"actual_rows\":{},\"qerror_x100\":{}}}",
                    esc(&s.source),
                    num(s.estimated_rows),
                    s.actual_rows,
                    s.qerror_x100,
                )
            })
            .collect();
        let operators: Vec<String> = self
            .operators
            .iter()
            .map(|o| {
                format!(
                    "{{\"label\":\"{}\",\"estimated_rows\":{},\"rows_out\":{},\"qerror_x100\":{}}}",
                    esc(&o.label),
                    num(o.estimated_rows),
                    o.rows_out,
                    o.qerror_x100,
                )
            })
            .collect();
        let links: Vec<String> = self
            .links
            .iter()
            .map(|l| {
                format!(
                    "{{\"endpoint\":\"{}\",\"messages\":{},\"rows\":{},\"wait_us\":{},\"faults\":{},\"retries\":{}}}",
                    esc(&l.endpoint),
                    l.messages,
                    l.rows,
                    l.wait_us,
                    l.faults,
                    l.retries,
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"client\":{},\"label\":\"{}\",\"template\":\"{}\",\"strategy\":\"{}\",",
                "\"outcome\":\"{}\",\"breached\":{},",
                "\"submitted_us\":{},\"queued_us\":{},\"latency_us\":{},\"first_row_us\":{},",
                "\"deadline_us\":{},\"answers\":{},\"estimated_rows\":{},\"qerror_x100\":{},",
                "\"plans_costed\":{},\"bind_joins\":{},\"retries\":{},\"route\":{},",
                "\"sources\":[{}],\"operators\":[{}],\"links\":[{}]}}"
            ),
            self.client,
            esc(&self.label),
            esc(&self.template),
            esc(&self.strategy),
            esc(&self.outcome),
            str_array(&self.breached),
            self.submitted_us,
            self.queued_us,
            self.latency_us,
            opt(self.first_row_us),
            opt(self.deadline_us),
            self.answers,
            num(self.estimated_rows),
            self.qerror_x100,
            self.plans_costed,
            self.bind_joins,
            str_array(&self.retries),
            str_array(&self.route),
            sources.join(","),
            operators.join(","),
            links.join(","),
        )
    }
}

/// Renders a slow-query log as a JSON array, one record per line.
pub fn slow_log_json(records: &[SlowQueryRecord]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&r.to_json());
    }
    out.push_str("\n]\n");
    out
}

/// Scans a recording and returns one record per query that breached a
/// threshold, in job order. Jobs without a `complete` event (still in
/// flight when the snapshot was taken, or evicted from the ring) are
/// skipped.
pub fn slow_queries(recording: &FlightRecording, cfg: &SlowLogConfig) -> Vec<SlowQueryRecord> {
    let mut out = Vec::new();
    for (job, meta) in recording.jobs.iter().enumerate() {
        let job = job as u32;
        if job == NO_JOB {
            break; // 4 billion jobs: the sentinel is no longer unambiguous.
        }
        let mut rec = SlowQueryRecord {
            client: meta.client,
            label: meta.label.clone(),
            template: meta.template.clone(),
            strategy: meta.strategy.to_string(),
            deadline_us: meta.deadline.map(|d| d.as_micros() as u64),
            ..SlowQueryRecord::default()
        };
        let mut submitted = Duration::ZERO;
        let mut completed = false;
        for ev in recording.events_for(job) {
            match &ev.kind {
                FleetEventKind::Submit => submitted = ev.time,
                FleetEventKind::Admit { queued } => rec.queued_us = queued.as_micros() as u64,
                FleetEventKind::Plan { plans_costed, bind_joins, .. } => {
                    rec.plans_costed = *plans_costed;
                    rec.bind_joins = *bind_joins;
                }
                FleetEventKind::FirstRow => {
                    rec.first_row_us =
                        Some(ev.time.saturating_sub(submitted).as_micros() as u64);
                }
                FleetEventKind::Retry { endpoint, attempt } => {
                    rec.retries.push(format!("{endpoint}#{attempt}"));
                }
                FleetEventKind::Failover { logical, from, to } => {
                    rec.route.push(format!("{logical}: {from}->{to}"));
                }
                FleetEventKind::Transfer { .. } | FleetEventKind::Deadline => {}
                FleetEventKind::SourceRows { source, estimated, rows } => {
                    rec.sources.push(SlowSource {
                        source: source.clone(),
                        estimated_rows: *estimated,
                        actual_rows: *rows,
                        qerror_x100: (q_error(*estimated, *rows) * 100.0) as u64,
                    });
                }
                FleetEventKind::Complete { outcome, latency, estimated_rows, rows } => {
                    completed = true;
                    rec.outcome = outcome.name().to_string();
                    rec.latency_us = latency.as_micros() as u64;
                    rec.answers = *rows;
                    rec.estimated_rows = *estimated_rows;
                    rec.qerror_x100 = (q_error(*estimated_rows, *rows) * 100.0) as u64;
                }
            }
        }
        if !completed {
            continue;
        }
        rec.submitted_us = submitted.as_micros() as u64;
        let worst_qerror = rec
            .sources
            .iter()
            .map(|s| s.qerror_x100)
            .chain([rec.qerror_x100])
            .max()
            .unwrap_or(0);
        if let Some(limit) = cfg.latency {
            if Duration::from_micros(rec.latency_us) >= limit {
                rec.breached.push("latency".to_string());
            }
        }
        if worst_qerror >= cfg.qerror_x100 {
            rec.breached.push("qerror".to_string());
        }
        if !rec.breached.is_empty() {
            out.push(rec);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::recorder::{CompletionKind, FlightRecorder};
    use super::*;

    fn seed_recording() -> FlightRecording {
        let rec = FlightRecorder::recording();
        // Job 0: fast and well-estimated — never logged.
        let q0 = rec.begin_query(0, "Q1[a]", "heuristic", None, vec![("chebi".into(), 10.0)]);
        q0.submit(Duration::ZERO);
        q0.admit(Duration::ZERO, Duration::ZERO);
        q0.debug_service_rows(0, 9);
        q0.complete(
            Duration::from_millis(5),
            CompletionKind::Ok,
            Duration::from_millis(5),
            10.0,
            9,
        );
        // Job 1: slow AND badly estimated.
        let q1 = rec.begin_query(
            2,
            "Q3[cat-12]",
            "dp",
            Some(Duration::from_millis(500)),
            vec![("chebi".into(), 1000.0)],
        );
        q1.submit(Duration::from_millis(10));
        q1.admit(Duration::from_millis(14), Duration::from_millis(4));
        q1.first_row(Duration::from_millis(60));
        q1.retry(Duration::from_millis(70), "chebi#r0", 1);
        q1.failover(Duration::from_millis(80), "chebi", "chebi#r0", "chebi#r1");
        q1.debug_service_rows(0, 40);
        q1.complete(
            Duration::from_millis(210),
            CompletionKind::Degraded,
            Duration::from_millis(200),
            1000.0,
            40,
        );
        rec.snapshot().unwrap()
    }

    #[test]
    fn only_breaching_completed_queries_are_logged() {
        let recording = seed_recording();
        let records = slow_queries(
            &recording,
            &SlowLogConfig { latency: Some(Duration::from_millis(100)), qerror_x100: 800 },
        );
        assert_eq!(records.len(), 1);
        let r = &records[0];
        assert_eq!(r.breached, vec!["latency".to_string(), "qerror".to_string()]);
        assert_eq!((r.client, r.label.as_str(), r.template.as_str()), (2, "Q3[cat-12]", "Q3"));
        assert_eq!((r.strategy.as_str(), r.outcome.as_str()), ("dp", "degraded"));
        assert_eq!((r.submitted_us, r.queued_us, r.latency_us), (10_000, 4_000, 200_000));
        assert_eq!(r.first_row_us, Some(50_000));
        assert_eq!(r.deadline_us, Some(500_000));
        assert_eq!(r.retries, vec!["chebi#r0#1".to_string()]);
        assert_eq!(r.route, vec!["chebi: chebi#r0->chebi#r1".to_string()]);
        assert_eq!(r.sources.len(), 1);
        assert_eq!(r.sources[0].qerror_x100, 2500); // 1000 est vs 40 actual.
    }

    #[test]
    fn qerror_alone_triggers_without_a_latency_limit() {
        let recording = seed_recording();
        let records = slow_queries(&recording, &SlowLogConfig::default());
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].breached, vec!["qerror".to_string()]);
    }

    #[test]
    fn json_is_stable_and_escapes() {
        let recording = seed_recording();
        let records = slow_queries(&recording, &SlowLogConfig::default());
        let a = slow_log_json(&records);
        let b = slow_log_json(&records);
        assert_eq!(a, b);
        assert!(a.starts_with("[\n{\"client\":2,\"label\":\"Q3[cat-12]\""));
        assert!(a.contains("\"breached\":[\"qerror\"]"));
        assert!(a.contains("\"estimated_rows\":1000"));
        assert!(a.contains("\"sources\":[{\"source\":\"chebi\""));
        assert!(a.ends_with("}\n]\n"));
        assert_eq!(esc("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(num(2.5), "2.5");
        assert_eq!(num(1000.0), "1000");
    }

    #[test]
    fn trace_enrichment_copies_operator_and_link_actuals() {
        use crate::obs::span::TraceReport;
        let recording = seed_recording();
        let mut records = slow_queries(&recording, &SlowLogConfig::default());
        let report = TraceReport {
            plan_label: "aware".into(),
            network: "wan",
            spans: Vec::new(),
            nodes: vec![crate::obs::NodeReport {
                depth: 0,
                label: "join".into(),
                source: None,
                estimated: 100.0,
                rows_out: 10,
                first: None,
                done: None,
            }],
            sources: std::iter::once((
                "chebi#r1".to_string(),
                crate::obs::SourceReport {
                    link: fedlake_netsim::link::LinkStats {
                        messages: 6,
                        rows: 40,
                        delay: Duration::from_millis(30),
                        ..Default::default()
                    },
                    retries: 1,
                },
            ))
            .collect(),
            metrics: Default::default(),
            answers: Vec::new(),
            total_time: Duration::from_millis(200),
            answers_total: 40,
            messages: 6,
            rows_transferred: 40,
            retries: 1,
        };
        records[0].attach_trace(&report);
        let r = &records[0];
        assert_eq!(r.operators.len(), 1);
        assert_eq!((r.operators[0].rows_out, r.operators[0].qerror_x100), (10, 1000));
        assert_eq!(r.links.len(), 1);
        assert_eq!((r.links[0].endpoint.as_str(), r.links[0].wait_us), ("chebi#r1", 30_000));
        assert!(r.to_json().contains("\"links\":[{\"endpoint\":\"chebi#r1\""));
    }
}
