//! Observability: deterministic spans, metrics, and renderers.
//!
//! Everything here is driven by the simulated clock and recorded through a
//! [`TraceSink`] threaded from the executors down into netsim, so one
//! traced run yields: the span tree ([`span`]), a metrics registry
//! ([`metrics`]), an annotated plan tree ([`analyze`]) and a
//! Perfetto-loadable Chrome trace ([`export`]). The sink is a no-op when
//! [`crate::PlanConfig::tracing`] is off, and recording is passive —
//! enabling it never changes answers, stats, or RNG streams.

pub mod analyze;
pub mod export;
pub mod metrics;
pub mod recorder;
pub mod slowlog;
pub mod span;
pub mod watchdog;

pub use analyze::{explain_analyze, plan_nodes, PlanNode};
pub use export::{chrome_trace, serve_chrome_trace, serve_timeline_html};
pub use metrics::{nearest_rank, Metric, MetricsRegistry};
pub use recorder::{
    service_estimates, CompletionKind, FleetEvent, FleetEventKind, FlightRecorder,
    FlightRecording, JobMeta, QueryRecorder, NO_JOB,
};
pub use slowlog::{slow_log_json, slow_queries, SlowLogConfig, SlowQueryRecord};
pub use span::{NodeReport, SourceReport, Span, SpanKind, TraceReport, TraceSink};
pub use watchdog::{watch, Anomaly, AnomalyKind, WatchdogConfig, WatchdogReport, WindowRollup};
