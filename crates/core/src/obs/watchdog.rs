//! Deterministic SLO/anomaly watchdog over a flight recording.
//!
//! The watchdog is a *pure fold*: it takes a [`FlightRecording`] (already
//! ordered by `(time, seq)`) plus a [`WatchdogConfig`] and produces
//! windowed rollups and typed [`Anomaly`] records. It never touches the
//! clock, the RNG, or the engine — running it zero or many times over the
//! same recording yields byte-identical reports, and *not* running it
//! changes nothing about an execution. All arithmetic is integer
//! (microsecond latencies, q-errors scaled ×100), so there is no
//! float-accumulation order to worry about.
//!
//! Three anomaly families are raised per window:
//!
//! * **Misestimate** — a `source-rows` event whose q-error (estimated vs
//!   actual service rows) reaches `misestimate_x100`. This is the signal
//!   the roadmap's adaptive re-optimization consumes: the plan was built
//!   on statistics the execution just falsified.
//! * **LinkDegraded** — a link whose faulted transfers in the window reach
//!   `link_fault_threshold`, or any failover away from it (a failover is
//!   always anomalous: the primary replica died mid-query).
//! * **AdmissionPressure** — the admission queue held at least
//!   `queue_breach_threshold` jobs past `queue_wait` in the window.

use super::metrics::nearest_rank;
use super::recorder::{CompletionKind, FleetEventKind, FlightRecording};
use std::collections::BTreeMap;
use std::time::Duration;

/// Thresholds and window width for one watchdog pass.
#[derive(Debug, Clone, PartialEq)]
pub struct WatchdogConfig {
    /// Rollup window width on the simulated clock.
    pub window: Duration,
    /// q-error ×100 at which a `source-rows` event becomes a
    /// [`AnomalyKind::Misestimate`] (800 = estimate off by 8×).
    pub misestimate_x100: u64,
    /// Faulted transfers on one link within a window at which the link is
    /// flagged [`AnomalyKind::LinkDegraded`].
    pub link_fault_threshold: u64,
    /// Admission wait a job may sit in the queue before it counts as a
    /// queue breach.
    pub queue_wait: Duration,
    /// Queue breaches within a window at which the fleet is flagged
    /// [`AnomalyKind::AdmissionPressure`].
    pub queue_breach_threshold: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            window: Duration::from_secs(1),
            misestimate_x100: 800,
            link_fault_threshold: 3,
            queue_wait: Duration::from_millis(50),
            queue_breach_threshold: 3,
        }
    }
}

/// Latency summary for one query template within one window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemplateLatency {
    /// Completions folded into the summary.
    pub count: u64,
    /// Median latency, microseconds (nearest rank).
    pub p50_us: u64,
    /// 95th-percentile latency, microseconds (nearest rank).
    pub p95_us: u64,
    /// 99th-percentile latency, microseconds (nearest rank).
    pub p99_us: u64,
}

/// q-error histogram for one source within one window. Buckets are
/// `≤2×, ≤4×, ≤8×, ≤16×, >16×` over the scaled q-error.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QErrorHistogram {
    /// Bucket counts: `[≤200, ≤400, ≤800, ≤1600, >1600]` (q-error ×100).
    pub buckets: [u64; 5],
    /// Worst q-error ×100 observed in the window.
    pub max_x100: u64,
}

impl QErrorHistogram {
    fn observe(&mut self, x100: u64) {
        let idx = match x100 {
            0..=200 => 0,
            201..=400 => 1,
            401..=800 => 2,
            801..=1600 => 3,
            _ => 4,
        };
        self.buckets[idx] += 1;
        self.max_x100 = self.max_x100.max(x100);
    }

    /// Total samples across all buckets.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

/// One window of folded fleet activity.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowRollup {
    /// Window ordinal (window 0 starts at the simulated epoch).
    pub index: u64,
    /// Inclusive window start on the simulated clock.
    pub start: Duration,
    /// Queries admitted in the window.
    pub admitted: u64,
    /// Queries completed (any outcome) in the window.
    pub completed: u64,
    /// Completions that missed their deadline.
    pub deadline_misses: u64,
    /// Completions that failed outright.
    pub failures: u64,
    /// Completions that degraded (partial answers accepted).
    pub degraded: u64,
    /// Deadline-expiry events (deadline risk: fired even when the query
    /// then degrades instead of failing).
    pub deadline_hits: u64,
    /// Per-template latency percentiles over completions in the window.
    pub latency: BTreeMap<String, TemplateLatency>,
    /// Per-source q-error histograms over `source-rows` events.
    pub qerror: BTreeMap<String, QErrorHistogram>,
    /// Per-link faulted-transfer counts.
    pub link_faults: BTreeMap<String, u64>,
    /// Per-logical-source failover counts.
    pub failovers: BTreeMap<String, u64>,
    /// Admissions whose queue wait exceeded the configured threshold.
    pub queue_breaches: u64,
    /// Longest admission wait seen in the window, microseconds.
    pub max_queued_us: u64,
}

/// What went wrong, with enough context to act on it.
#[derive(Debug, Clone, PartialEq)]
pub enum AnomalyKind {
    /// A service's cardinality estimate was falsified by execution.
    Misestimate {
        /// Logical source whose estimate missed.
        source: String,
        /// Template of the query that exposed the miss.
        template: String,
        /// Observed q-error ×100.
        qerror_x100: u64,
        /// Planner's row estimate for the service.
        estimated_rows: f64,
        /// Rows the service actually produced.
        actual_rows: u64,
    },
    /// A link accumulated faults past the threshold, or a failover fired.
    LinkDegraded {
        /// Logical source of the degraded link.
        source: String,
        /// Faulted transfers in the window.
        faulted: u64,
        /// Failovers away from the source's endpoints in the window.
        failovers: u64,
    },
    /// The admission queue held jobs past the wait threshold.
    AdmissionPressure {
        /// Queue breaches in the window.
        breaches: u64,
        /// Longest admission wait in the window, microseconds.
        max_queued_us: u64,
    },
}

impl AnomalyKind {
    /// Stable wire name of the anomaly family.
    pub fn name(&self) -> &'static str {
        match self {
            AnomalyKind::Misestimate { .. } => "misestimate",
            AnomalyKind::LinkDegraded { .. } => "link-degraded",
            AnomalyKind::AdmissionPressure { .. } => "admission-pressure",
        }
    }
}

/// One raised anomaly, pinned to the window that raised it.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// Window ordinal the anomaly belongs to.
    pub window: u64,
    /// Window start time (simulated clock).
    pub at: Duration,
    /// The typed finding.
    pub kind: AnomalyKind,
}

/// The watchdog's verdict over one recording.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WatchdogReport {
    /// Non-empty windows, ascending by index.
    pub windows: Vec<WindowRollup>,
    /// Raised anomalies, ordered by window then by raise order within the
    /// window (misestimates in event order, then links, then admission).
    pub anomalies: Vec<Anomaly>,
    /// Ring evictions in the source recording: when non-zero the oldest
    /// events were dropped and early windows undercount.
    pub dropped_events: u64,
}

impl WatchdogReport {
    /// Anomalies of one family, in raise order.
    pub fn of_kind<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Anomaly> + 'a {
        self.anomalies.iter().filter(move |a| a.kind.name() == name)
    }

    /// Renders the report as a compact text summary, one line per window
    /// and one per anomaly. Deterministic.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for w in &self.windows {
            out.push_str(&format!(
                "window {} @{}us: admitted={} completed={} deadline_misses={} failures={} degraded={}\n",
                w.index,
                w.start.as_micros(),
                w.admitted,
                w.completed,
                w.deadline_misses,
                w.failures,
                w.degraded,
            ));
            for (template, l) in &w.latency {
                out.push_str(&format!(
                    "  latency {template}: n={} p50={}us p95={}us p99={}us\n",
                    l.count, l.p50_us, l.p95_us, l.p99_us
                ));
            }
            for (source, h) in &w.qerror {
                out.push_str(&format!(
                    "  qerror {source}: n={} max={:.2}x buckets={:?}\n",
                    h.count(),
                    h.max_x100 as f64 / 100.0,
                    h.buckets
                ));
            }
        }
        for a in &self.anomalies {
            out.push_str(&format!("anomaly [{}] window {}: {:?}\n", a.kind.name(), a.window, a.kind));
        }
        out
    }
}

/// Per-window scratch accumulated while scanning events.
#[derive(Default)]
struct WindowScratch {
    rollup: WindowRollup,
    /// template → latency samples (µs), in completion order.
    latencies: BTreeMap<String, Vec<u64>>,
    /// Misestimate anomalies in event order.
    misestimates: Vec<AnomalyKind>,
}

/// Folds a recording into windowed rollups and typed anomalies.
///
/// Events are scanned once in ring order (which is `(time, seq)` order by
/// construction); everything downstream is `BTreeMap`s and integer math,
/// so the report is a pure deterministic function of its inputs.
pub fn watch(recording: &FlightRecording, cfg: &WatchdogConfig) -> WatchdogReport {
    let window_us = (cfg.window.as_micros() as u64).max(1);
    let mut windows: BTreeMap<u64, WindowScratch> = BTreeMap::new();

    for ev in &recording.events {
        let t_us = ev.time.as_micros() as u64;
        let idx = t_us / window_us;
        let scratch = windows.entry(idx).or_default();
        let w = &mut scratch.rollup;
        match &ev.kind {
            FleetEventKind::Submit => {}
            FleetEventKind::Admit { queued } => {
                w.admitted += 1;
                let q_us = queued.as_micros() as u64;
                w.max_queued_us = w.max_queued_us.max(q_us);
                if *queued > cfg.queue_wait {
                    w.queue_breaches += 1;
                }
            }
            FleetEventKind::Plan { .. } | FleetEventKind::FirstRow | FleetEventKind::Retry { .. } => {}
            FleetEventKind::Failover { logical, .. } => {
                *w.failovers.entry(logical.clone()).or_default() += 1;
            }
            FleetEventKind::Transfer { link, faulted, .. } => {
                if *faulted {
                    *w.link_faults.entry(link.clone()).or_default() += 1;
                }
            }
            FleetEventKind::Deadline => w.deadline_hits += 1,
            FleetEventKind::SourceRows { source, estimated, rows } => {
                let x100 = (super::analyze::q_error(*estimated, *rows) * 100.0) as u64;
                w.qerror.entry(source.clone()).or_default().observe(x100);
                if x100 >= cfg.misestimate_x100 {
                    let template = recording
                        .meta(ev.job)
                        .map_or_else(String::new, |m| m.template.clone());
                    scratch.misestimates.push(AnomalyKind::Misestimate {
                        source: source.clone(),
                        template,
                        qerror_x100: x100,
                        estimated_rows: *estimated,
                        actual_rows: *rows,
                    });
                }
            }
            FleetEventKind::Complete { outcome, latency, .. } => {
                w.completed += 1;
                match outcome {
                    CompletionKind::Ok => {}
                    CompletionKind::Degraded => w.degraded += 1,
                    CompletionKind::DeadlineMiss => w.deadline_misses += 1,
                    CompletionKind::Failed => w.failures += 1,
                }
                let template = recording
                    .meta(ev.job)
                    .map_or_else(String::new, |m| m.template.clone());
                scratch
                    .latencies
                    .entry(template)
                    .or_default()
                    .push(latency.as_micros() as u64);
            }
        }
    }

    let mut report = WatchdogReport { dropped_events: recording.dropped, ..Default::default() };
    for (idx, mut scratch) in windows {
        let start = Duration::from_micros(idx * window_us);
        scratch.rollup.index = idx;
        scratch.rollup.start = start;
        for (template, mut samples) in std::mem::take(&mut scratch.latencies) {
            samples.sort_unstable();
            scratch.rollup.latency.insert(
                template,
                TemplateLatency {
                    count: samples.len() as u64,
                    p50_us: nearest_rank(&samples, 0.50),
                    p95_us: nearest_rank(&samples, 0.95),
                    p99_us: nearest_rank(&samples, 0.99),
                },
            );
        }

        for kind in std::mem::take(&mut scratch.misestimates) {
            report.anomalies.push(Anomaly { window: idx, at: start, kind });
        }
        // Link anomalies: a fault count past the threshold, or any
        // failover (the set of flagged sources is the union, keyed and
        // iterated in BTreeMap order).
        let mut flagged: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for (link, faults) in &scratch.rollup.link_faults {
            if *faults >= cfg.link_fault_threshold {
                flagged.entry(link.as_str()).or_default().0 = *faults;
            }
        }
        for (logical, n) in &scratch.rollup.failovers {
            let e = flagged.entry(logical.as_str()).or_default();
            e.1 = *n;
            // Carry the fault count even when below threshold, for context.
            e.0 = e.0.max(scratch.rollup.link_faults.get(logical.as_str()).copied().unwrap_or(0));
        }
        for (source, (faulted, failovers)) in flagged {
            report.anomalies.push(Anomaly {
                window: idx,
                at: start,
                kind: AnomalyKind::LinkDegraded { source: source.to_string(), faulted, failovers },
            });
        }
        if scratch.rollup.queue_breaches >= cfg.queue_breach_threshold {
            report.anomalies.push(Anomaly {
                window: idx,
                at: start,
                kind: AnomalyKind::AdmissionPressure {
                    breaches: scratch.rollup.queue_breaches,
                    max_queued_us: scratch.rollup.max_queued_us,
                },
            });
        }
        report.windows.push(scratch.rollup);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::super::recorder::FlightRecorder;
    use super::*;

    fn cfg() -> WatchdogConfig {
        WatchdogConfig {
            window: Duration::from_millis(100),
            misestimate_x100: 800,
            link_fault_threshold: 2,
            queue_wait: Duration::from_millis(10),
            queue_breach_threshold: 2,
        }
    }

    #[test]
    fn empty_recording_yields_empty_report() {
        let rec = FlightRecorder::recording();
        let report = watch(&rec.snapshot().unwrap(), &cfg());
        assert!(report.windows.is_empty());
        assert!(report.anomalies.is_empty());
        assert_eq!(report.dropped_events, 0);
    }

    #[test]
    fn misestimate_and_latency_fold_into_windows() {
        let rec = FlightRecorder::recording();
        let q = rec.begin_query(
            0,
            "stars[7]",
            "dp",
            None,
            vec![("chebi".into(), 1000.0), ("drugbank".into(), 10.0)],
        );
        q.submit(Duration::ZERO);
        q.admit(Duration::from_millis(5), Duration::from_millis(5));
        // chebi estimate 1000 vs actual 50 → q-error 20× (2000 x100).
        q.debug_service_rows(0, 50);
        // drugbank estimate 10 vs actual 12 → 1.2×, below threshold.
        q.debug_service_rows(1, 12);
        q.complete(
            Duration::from_millis(40),
            CompletionKind::Ok,
            Duration::from_millis(40),
            1010.0,
            62,
        );
        let report = watch(&rec.snapshot().unwrap(), &cfg());

        assert_eq!(report.windows.len(), 1);
        let w = &report.windows[0];
        assert_eq!(w.index, 0);
        assert_eq!((w.admitted, w.completed), (1, 1));
        assert_eq!(w.latency["stars"].count, 1);
        assert_eq!(w.latency["stars"].p50_us, 40_000);
        assert_eq!(w.qerror["chebi"].max_x100, 2000);
        assert_eq!(w.qerror["chebi"].buckets, [0, 0, 0, 0, 1]);
        assert_eq!(w.qerror["drugbank"].buckets, [1, 0, 0, 0, 0]);

        let miss: Vec<_> = report.of_kind("misestimate").collect();
        assert_eq!(miss.len(), 1);
        match &miss[0].kind {
            AnomalyKind::Misestimate { source, template, qerror_x100, actual_rows, .. } => {
                assert_eq!(source, "chebi");
                assert_eq!(template, "stars");
                assert_eq!(*qerror_x100, 2000);
                assert_eq!(*actual_rows, 50);
            }
            other => panic!("wrong anomaly: {other:?}"),
        }
    }

    #[test]
    fn link_faults_and_failovers_flag_degraded() {
        let rec = FlightRecorder::recording();
        let obs = rec.net_observer().unwrap();
        // Two faulted transfers on chebi in window 0 → at threshold.
        obs.on_transfer("chebi", 5, Duration::ZERO, Duration::from_millis(10), Some(fedlake_netsim::LinkFault::Dropped));
        obs.on_transfer("chebi", 5, Duration::from_millis(20), Duration::from_millis(30), Some(fedlake_netsim::LinkFault::Dropped));
        // One fault on drugbank → below threshold, no anomaly.
        obs.on_transfer("drugbank", 5, Duration::ZERO, Duration::from_millis(10), Some(fedlake_netsim::LinkFault::Dropped));
        // A failover on kegg flags it even with zero recorded faults.
        let q = rec.begin_query(1, "fo", "heuristic", None, Vec::new());
        q.failover(Duration::from_millis(40), "kegg", "kegg#r0", "kegg#r1");
        let report = watch(&rec.snapshot().unwrap(), &cfg());

        let degraded: Vec<_> = report.of_kind("link-degraded").collect();
        assert_eq!(degraded.len(), 2);
        match &degraded[0].kind {
            AnomalyKind::LinkDegraded { source, faulted, failovers } => {
                assert_eq!((source.as_str(), *faulted, *failovers), ("chebi", 2, 0));
            }
            other => panic!("wrong anomaly: {other:?}"),
        }
        match &degraded[1].kind {
            AnomalyKind::LinkDegraded { source, faulted, failovers } => {
                assert_eq!((source.as_str(), *faulted, *failovers), ("kegg", 0, 1));
            }
            other => panic!("wrong anomaly: {other:?}"),
        }
    }

    #[test]
    fn admission_pressure_needs_repeated_breaches() {
        let rec = FlightRecorder::recording();
        for (i, wait_ms) in [(0usize, 20u64), (1, 30), (2, 2)].into_iter() {
            let q = rec.begin_query(i, "w", "heuristic", None, Vec::new());
            q.submit(Duration::ZERO);
            q.admit(Duration::from_millis(wait_ms), Duration::from_millis(wait_ms));
        }
        let report = watch(&rec.snapshot().unwrap(), &cfg());
        let w = &report.windows[0];
        assert_eq!(w.admitted, 3);
        assert_eq!(w.queue_breaches, 2);
        assert_eq!(w.max_queued_us, 30_000);
        let pressure: Vec<_> = report.of_kind("admission-pressure").collect();
        assert_eq!(pressure.len(), 1);
        match &pressure[0].kind {
            AnomalyKind::AdmissionPressure { breaches, max_queued_us } => {
                assert_eq!((*breaches, *max_queued_us), (2, 30_000));
            }
            other => panic!("wrong anomaly: {other:?}"),
        }
    }

    #[test]
    fn watch_is_deterministic_and_windows_split_by_time() {
        let rec = FlightRecorder::recording();
        let q = rec.begin_query(0, "a", "heuristic", None, Vec::new());
        q.submit(Duration::ZERO);
        q.admit(Duration::ZERO, Duration::ZERO);
        q.complete(Duration::from_millis(40), CompletionKind::Ok, Duration::from_millis(40), 1.0, 1);
        let q2 = rec.begin_query(1, "a", "heuristic", None, Vec::new());
        q2.submit(Duration::from_millis(150));
        q2.admit(Duration::from_millis(150), Duration::ZERO);
        q2.complete(
            Duration::from_millis(190),
            CompletionKind::Degraded,
            Duration::from_millis(40),
            1.0,
            1,
        );
        let recording = rec.snapshot().unwrap();
        let a = watch(&recording, &cfg());
        let b = watch(&recording, &cfg());
        assert_eq!(a, b);
        assert_eq!(a.windows.len(), 2);
        assert_eq!(a.windows[0].index, 0);
        assert_eq!(a.windows[1].index, 1);
        assert_eq!(a.windows[1].degraded, 1);
        assert_eq!(a.render(), b.render());
    }
}
