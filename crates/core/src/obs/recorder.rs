//! The fleet flight recorder: a bounded, deterministic ring of
//! structured query-lifecycle events.
//!
//! Where the span recorder ([`crate::obs::span`]) captures one execution
//! in depth, the flight recorder captures *every* query the engine runs —
//! solo executions, reference re-executions and whole serve runs — as a
//! flat sequence of [`FleetEvent`]s (submit / admit / plan / first-row /
//! retry / failover / deadline / complete), each stamped with the
//! simulated time and a recorder-assigned sequence number. The ring is
//! bounded: when it is full the oldest event is evicted and counted in
//! [`FlightRecording::dropped`], so memory stays constant under an
//! arbitrarily long serve run.
//!
//! The determinism contract is the span recorder's, verbatim: the
//! recorder never draws randomness, never advances any clock, and every
//! record call happens at a point the unrecorded execution reaches anyway
//! — so enabling it cannot perturb answers, stats, or RNG streams.
//! Disabled, both handles are a `None` and every hook is one branch.
//!
//! Consumers: the SLO/anomaly watchdog ([`crate::obs::watchdog`]) folds a
//! [`FlightRecording`] into windowed rollups, and the serve timeline
//! exporters ([`crate::obs::export`]) render it as a Chrome trace / HTML
//! with one lane per client and per link.

use crate::fedplan::FedPlan;
use crate::operators::{BoxedOp, ExecCtx, FedOp, Poll};
use crate::planner::PlanReport;
use fedlake_netsim::{LinkFault, NetObserver};
use fedlake_sparql::binding::{RowBatch, SlotRow};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Default event capacity of the ring (see [`FlightRecorder::bounded`]).
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// The job id carried by events not attributable to one query (link-level
/// transfers observed on a shared serve link map).
pub const NO_JOB: u32 = u32::MAX;

/// How a query finished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompletionKind {
    /// Full answer set produced.
    Ok,
    /// Partial answers under graceful degradation.
    Degraded,
    /// The deadline fired and the query failed with a timeout.
    DeadlineMiss,
    /// A hard failure (source unavailable past the retry budget, …).
    Failed,
}

impl CompletionKind {
    /// Stable lowercase name for exports and logs.
    pub fn name(self) -> &'static str {
        match self {
            CompletionKind::Ok => "ok",
            CompletionKind::Degraded => "degraded",
            CompletionKind::DeadlineMiss => "deadline-miss",
            CompletionKind::Failed => "failed",
        }
    }
}

/// What one lifecycle event records.
#[derive(Debug, Clone, PartialEq)]
pub enum FleetEventKind {
    /// The query arrived (event time = arrival time).
    Submit,
    /// The query was admitted after waiting `queued` in the FIFO.
    Admit {
        /// Admission wait (zero when a slot was free on arrival).
        queued: Duration,
    },
    /// What the planner did for this query.
    Plan {
        /// Candidate plans costed (cost-based mode).
        plans_costed: u64,
        /// Bind joins chosen.
        bind_joins: u64,
        /// The planner's estimated answer cardinality (plan root).
        estimated_rows: f64,
        /// The plan was replayed from the normalized plan cache.
        cached: bool,
        /// Stable logical-plan fingerprint (see [`crate::ir`]).
        fingerprint: u64,
    },
    /// The first answer row left the engine.
    FirstRow,
    /// A wrapper stream re-issued a message after a link fault.
    Retry {
        /// Endpoint the retry went to (replica id, e.g. `chebi#r1`).
        endpoint: String,
        /// 0-based failed-attempt index the retry follows.
        attempt: u32,
    },
    /// Mid-query failover to the next replica of a logical source.
    Failover {
        /// Logical source id.
        logical: String,
        /// Exhausted endpoint.
        from: String,
        /// Newly routed endpoint.
        to: String,
    },
    /// One link message (success or faulted attempt) — fleet-level, not
    /// attributed to a query ([`NO_JOB`]).
    Transfer {
        /// Endpoint the message crossed.
        link: String,
        /// Rows carried (zero on faulted attempts).
        rows: u64,
        /// True when the attempt faulted (drop / truncation / outage).
        faulted: bool,
    },
    /// The query's deadline fired.
    Deadline,
    /// Actual rows one service leaf produced vs. the planner's estimate
    /// (flushed at completion, in plan pre-order).
    SourceRows {
        /// Logical source the leaf requested from.
        source: String,
        /// Estimated output rows of the leaf.
        estimated: f64,
        /// Rows the leaf actually emitted.
        rows: u64,
    },
    /// The query finished.
    Complete {
        /// How it finished.
        outcome: CompletionKind,
        /// Arrival-to-finish latency.
        latency: Duration,
        /// The planner's estimated answer cardinality (plan root).
        estimated_rows: f64,
        /// Answer rows returned.
        rows: u64,
    },
}

impl FleetEventKind {
    /// Stable lowercase name for exports and logs.
    pub fn name(&self) -> &'static str {
        match self {
            FleetEventKind::Submit => "submit",
            FleetEventKind::Admit { .. } => "admit",
            FleetEventKind::Plan { .. } => "plan",
            FleetEventKind::FirstRow => "first-row",
            FleetEventKind::Retry { .. } => "retry",
            FleetEventKind::Failover { .. } => "failover",
            FleetEventKind::Transfer { .. } => "transfer",
            FleetEventKind::Deadline => "deadline",
            FleetEventKind::SourceRows { .. } => "source-rows",
            FleetEventKind::Complete { .. } => "complete",
        }
    }
}

/// One recorded lifecycle event.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetEvent {
    /// Recorder-assigned sequence number, strictly increasing across the
    /// recorder's lifetime (it keeps counting past ring evictions).
    pub seq: u64,
    /// Simulated time of the event.
    pub time: Duration,
    /// The query the event belongs to (an index into
    /// [`FlightRecording::jobs`]), or [`NO_JOB`] for link-level events.
    pub job: u32,
    /// What happened.
    pub kind: FleetEventKind,
}

/// Static metadata of one recorded query, registered at
/// [`FlightRecorder::begin_query`] and joined to events by job id.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMeta {
    /// Issuing client (0 for solo executions).
    pub client: usize,
    /// Display label, e.g. `Q3[cat-12]`.
    pub label: String,
    /// Query template the label instantiates, e.g. `Q3`.
    pub template: String,
    /// Plan strategy label (`heuristic`, `dp`, `greedy-cost`).
    pub strategy: &'static str,
    /// Deadline relative to arrival, when one applies.
    pub deadline: Option<Duration>,
}

#[derive(Debug, Clone)]
struct ServiceSlot {
    source: String,
    estimated: f64,
    rows: u64,
}

#[derive(Debug, Default)]
struct RecorderState {
    ring: VecDeque<FleetEvent>,
    capacity: usize,
    seq: u64,
    dropped: u64,
    jobs: Vec<JobMeta>,
}

impl RecorderState {
    fn push(&mut self, time: Duration, job: u32, kind: FleetEventKind) {
        if self.ring.len() >= self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        let seq = self.seq;
        self.seq += 1;
        self.ring.push_back(FleetEvent { seq, time, job, kind });
    }
}

/// The shared state behind an enabled recorder. Implements
/// [`NetObserver`] so shared serve links report their transfers into the
/// same event stream (as [`NO_JOB`] fleet events).
#[derive(Debug)]
pub struct RecorderShared {
    state: Mutex<RecorderState>,
}

impl RecorderShared {
    fn lock(&self) -> MutexGuard<'_, RecorderState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl NetObserver for RecorderShared {
    fn on_transfer(
        &self,
        link: &str,
        rows: usize,
        _start: Duration,
        end: Duration,
        fault: Option<LinkFault>,
    ) {
        let mut st = self.lock();
        st.push(
            end,
            NO_JOB,
            FleetEventKind::Transfer {
                link: link.to_string(),
                rows: rows as u64,
                faulted: fault.is_some(),
            },
        );
    }
    // `on_failover` keeps the trait's no-op default: failovers are
    // recorded with query attribution through the per-query handle, so a
    // link-level record here would double-count them.
}

/// Everything the recorder captured, snapshot by
/// [`FlightRecorder::recording`].
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecording {
    /// Retained events, oldest first, `seq` strictly increasing.
    pub events: Vec<FleetEvent>,
    /// Query metadata, indexed by [`FleetEvent::job`].
    pub jobs: Vec<JobMeta>,
    /// Events evicted from the full ring.
    pub dropped: u64,
    /// The ring's capacity.
    pub capacity: usize,
}

impl FlightRecording {
    /// The metadata of `job`, when it is a real query id.
    pub fn meta(&self, job: u32) -> Option<&JobMeta> {
        if job == NO_JOB {
            return None;
        }
        self.jobs.get(job as usize)
    }

    /// The retained events of one query, in order.
    pub fn events_for(&self, job: u32) -> impl Iterator<Item = &FleetEvent> {
        self.events.iter().filter(move |e| e.job == job)
    }
}

/// A cloneable handle to the flight recorder — `None` when recording is
/// disabled, making every hook a single branch on the hot path.
#[derive(Debug, Clone, Default)]
pub struct FlightRecorder(Option<Arc<RecorderShared>>);

impl FlightRecorder {
    /// The no-op recorder (the default).
    pub fn disabled() -> Self {
        FlightRecorder(None)
    }

    /// A recording ring holding at most `capacity` events (min 1).
    pub fn bounded(capacity: usize) -> Self {
        FlightRecorder(Some(Arc::new(RecorderShared {
            state: Mutex::new(RecorderState {
                capacity: capacity.max(1),
                ..RecorderState::default()
            }),
        })))
    }

    /// A recording ring with the default capacity.
    pub fn recording() -> Self {
        Self::bounded(DEFAULT_RING_CAPACITY)
    }

    /// True when this recorder records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The recorder as a netsim observer, for attaching to links.
    pub fn net_observer(&self) -> Option<Arc<dyn NetObserver>> {
        self.0.clone().map(|s| s as Arc<dyn NetObserver>)
    }

    /// Registers one query and returns its per-query handle. `services`
    /// is the plan's service-leaf table in pre-order (see
    /// [`service_estimates`]); pass an empty vec to skip per-source
    /// actuals (the reference executor does).
    pub fn begin_query(
        &self,
        client: usize,
        label: &str,
        strategy: &'static str,
        deadline: Option<Duration>,
        services: Vec<(String, f64)>,
    ) -> QueryRecorder {
        let Some(sh) = &self.0 else { return QueryRecorder(None) };
        let template = label.split('[').next().unwrap_or(label).to_string();
        let job = {
            let mut st = sh.lock();
            let job = st.jobs.len() as u32;
            st.jobs.push(JobMeta {
                client,
                label: label.to_string(),
                template,
                strategy,
                deadline,
            });
            job
        };
        QueryRecorder(Some(Arc::new(QueryShared {
            rec: Arc::clone(sh),
            job,
            services: Mutex::new(ServiceState {
                slots: services
                    .into_iter()
                    .map(|(source, estimated)| ServiceSlot { source, estimated, rows: 0 })
                    .collect(),
                cursor: 0,
            }),
        })))
    }

    /// Snapshot of everything recorded so far.
    pub fn snapshot(&self) -> Option<FlightRecording> {
        let sh = self.0.as_ref()?;
        let st = sh.lock();
        Some(FlightRecording {
            events: st.ring.iter().cloned().collect(),
            jobs: st.jobs.clone(),
            dropped: st.dropped,
            capacity: st.capacity,
        })
    }
}

#[derive(Debug)]
struct ServiceState {
    slots: Vec<ServiceSlot>,
    /// Next slot [`RecordServiceOp`] installation claims (pre-order).
    cursor: usize,
}

#[derive(Debug)]
struct QueryShared {
    rec: Arc<RecorderShared>,
    job: u32,
    services: Mutex<ServiceState>,
}

impl QueryShared {
    fn push(&self, time: Duration, kind: FleetEventKind) {
        self.rec.lock().push(time, self.job, kind);
    }
}

/// A cloneable per-query handle: lifecycle events recorded through it
/// carry the query's job id. `None` (the default) when recording is
/// disabled — every hook is one branch.
#[derive(Debug, Clone, Default)]
pub struct QueryRecorder(Option<Arc<QueryShared>>);

impl QueryRecorder {
    /// The no-op handle (the default).
    pub fn disabled() -> Self {
        QueryRecorder(None)
    }

    /// True when this handle records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The recorder-assigned job id, when recording.
    pub fn job(&self) -> Option<u32> {
        self.0.as_ref().map(|q| q.job)
    }

    /// Records the query's arrival at `at`.
    pub fn submit(&self, at: Duration) {
        let Some(q) = &self.0 else { return };
        q.push(at, FleetEventKind::Submit);
    }

    /// Records admission at `now` after `queued` in the FIFO.
    pub fn admit(&self, now: Duration, queued: Duration) {
        let Some(q) = &self.0 else { return };
        q.push(now, FleetEventKind::Admit { queued });
    }

    /// Records the planner's report and root cardinality estimate, plus
    /// whether the plan was a cache replay.
    pub fn plan(&self, now: Duration, report: &PlanReport, estimated_rows: f64, cached: bool) {
        let Some(q) = &self.0 else { return };
        q.push(
            now,
            FleetEventKind::Plan {
                plans_costed: report.plans_costed,
                bind_joins: report.bind_joins,
                estimated_rows,
                cached,
                fingerprint: report.fingerprint,
            },
        );
    }

    /// Records the first answer row at `now`.
    pub fn first_row(&self, now: Duration) {
        let Some(q) = &self.0 else { return };
        q.push(now, FleetEventKind::FirstRow);
    }

    /// Records a wrapper retry against `endpoint` after failed attempt
    /// `attempt` (0-based).
    pub fn retry(&self, now: Duration, endpoint: &str, attempt: u32) {
        let Some(q) = &self.0 else { return };
        q.push(
            now,
            FleetEventKind::Retry { endpoint: endpoint.to_string(), attempt },
        );
    }

    /// Records a mid-query replica failover.
    pub fn failover(&self, now: Duration, logical: &str, from: &str, to: &str) {
        let Some(q) = &self.0 else { return };
        q.push(
            now,
            FleetEventKind::Failover {
                logical: logical.to_string(),
                from: from.to_string(),
                to: to.to_string(),
            },
        );
    }

    /// Records that the query's deadline fired at `now`.
    pub fn deadline_hit(&self, now: Duration) {
        let Some(q) = &self.0 else { return };
        q.push(now, FleetEventKind::Deadline);
    }

    /// Claims the next service-leaf slot (plan pre-order) for a
    /// [`RecordServiceOp`] installation.
    fn next_service_slot(&self) -> usize {
        let Some(q) = &self.0 else { return 0 };
        let mut sv = q.services.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let slot = sv.cursor;
        sv.cursor += 1;
        slot
    }

    /// Adds `n` actually-emitted rows to service slot `slot`.
    fn service_rows(&self, slot: usize, n: u64) {
        let Some(q) = &self.0 else { return };
        let mut sv = q.services.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(s) = sv.slots.get_mut(slot) {
            s.rows += n;
        }
    }

    /// Test hook: credits rows to a service slot without running an
    /// operator tree.
    #[cfg(test)]
    pub(crate) fn debug_service_rows(&self, slot: usize, n: u64) {
        self.service_rows(slot, n);
    }

    /// Flushes per-service actuals and records completion. Call exactly
    /// once, when the query's outcome is final.
    pub fn complete(
        &self,
        now: Duration,
        outcome: CompletionKind,
        latency: Duration,
        estimated_rows: f64,
        rows: u64,
    ) {
        let Some(q) = &self.0 else { return };
        let slots: Vec<ServiceSlot> = {
            let sv = q.services.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            sv.slots.clone()
        };
        for s in slots {
            q.push(
                now,
                FleetEventKind::SourceRows {
                    source: s.source,
                    estimated: s.estimated,
                    rows: s.rows,
                },
            );
        }
        q.push(
            now,
            FleetEventKind::Complete { outcome, latency, estimated_rows, rows },
        );
    }
}

/// The plan's service-leaf table in the exact pre-order
/// [`crate::FederatedEngine`] builds (and the recorder wraps) service
/// operators: join/left-join recurse left then right, bind joins recurse
/// the left input only (the right side executes as bound requests, not a
/// leaf), unions recurse branches in order.
pub fn service_estimates(plan: &FedPlan) -> Vec<(String, f64)> {
    fn walk(plan: &FedPlan, out: &mut Vec<(String, f64)>) {
        match plan {
            FedPlan::Service(node) => {
                out.push((node.source_id.clone(), node.estimated_rows))
            }
            FedPlan::Join { left, right, .. } | FedPlan::LeftJoin { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
            FedPlan::BindJoin { left, .. } => walk(left, out),
            FedPlan::Filter { input, .. } => walk(input, out),
            FedPlan::Union(branches) => {
                for b in branches {
                    walk(b, out);
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(plan, &mut out);
    out
}

/// Wraps a service-leaf operator to count its emitted rows into the
/// query's service slot. Only installed when recording is enabled, so the
/// disabled path pays nothing — the exact [`crate::obs::span::SpanOp`]
/// contract.
pub(crate) struct RecordServiceOp<'a> {
    inner: BoxedOp<'a>,
    slot: usize,
    qrec: QueryRecorder,
}

impl<'a> RecordServiceOp<'a> {
    /// Wraps `inner`, claiming the next pre-order service slot.
    pub(crate) fn new(inner: BoxedOp<'a>, qrec: &QueryRecorder) -> Self {
        RecordServiceOp { inner, slot: qrec.next_service_slot(), qrec: qrec.clone() }
    }
}

impl FedOp for RecordServiceOp<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<SlotRow>, crate::error::FedError> {
        let r = self.inner.next(ctx)?;
        if r.is_some() {
            self.qrec.service_rows(self.slot, 1);
        }
        Ok(r)
    }

    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<SlotRow>, crate::error::FedError> {
        let r = self.inner.poll_next(ctx)?;
        if matches!(r, Poll::Ready(_)) {
            self.qrec.service_rows(self.slot, 1);
        }
        Ok(r)
    }

    fn next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        max: usize,
    ) -> Result<Option<RowBatch>, crate::error::FedError> {
        let r = self.inner.next_batch(ctx, max)?;
        if let Some(b) = &r {
            self.qrec.service_rows(self.slot, b.len() as u64);
        }
        Ok(r)
    }

    fn poll_next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        max: usize,
    ) -> Result<Poll<RowBatch>, crate::error::FedError> {
        let r = self.inner.poll_next_batch(ctx, max)?;
        if let Poll::Ready(b) = &r {
            self.qrec.service_rows(self.slot, b.len() as u64);
        }
        Ok(r)
    }
}

/// Forwards network observations to both the trace recorder and the
/// flight recorder when both are attached to one link. Deterministic:
/// observers are invoked in construction order and only mutate their own
/// state.
#[derive(Debug)]
pub(crate) struct FanoutObserver(pub(crate) Vec<Arc<dyn NetObserver>>);

impl NetObserver for FanoutObserver {
    fn on_transfer(
        &self,
        link: &str,
        rows: usize,
        start: Duration,
        end: Duration,
        fault: Option<LinkFault>,
    ) {
        for obs in &self.0 {
            obs.on_transfer(link, rows, start, end, fault);
        }
    }

    fn on_queue_depth(&self, depth: usize) {
        for obs in &self.0 {
            obs.on_queue_depth(depth);
        }
    }

    fn on_failover(&self, logical: &str, from: &str, to: &str) {
        for obs in &self.0 {
            obs.on_failover(logical, from, to);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let rec = FlightRecorder::disabled();
        assert!(!rec.is_enabled());
        assert!(rec.net_observer().is_none());
        assert!(rec.snapshot().is_none());
        let q = rec.begin_query(0, "Q1[x]", "heuristic", None, vec![]);
        assert!(!q.is_enabled());
        assert_eq!(q.job(), None);
        q.submit(Duration::ZERO);
        q.first_row(Duration::ZERO);
        q.complete(Duration::ZERO, CompletionKind::Ok, Duration::ZERO, 1.0, 1);
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let rec = FlightRecorder::bounded(4);
        let q = rec.begin_query(0, "Q1[x]", "heuristic", None, vec![]);
        for i in 0..10 {
            q.retry(Duration::from_nanos(i), "chebi", 0);
        }
        let snap = rec.snapshot().unwrap();
        assert_eq!(snap.events.len(), 4);
        assert_eq!(snap.dropped, 6);
        assert_eq!(snap.capacity, 4);
        // The retained tail keeps its sequence numbers.
        let seqs: Vec<u64> = snap.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn lifecycle_events_carry_job_metadata() {
        let rec = FlightRecorder::recording();
        let q = rec.begin_query(
            3,
            "Q2[cat-7]",
            "dp",
            Some(Duration::from_millis(5)),
            vec![("chebi".into(), 10.0)],
        );
        q.submit(Duration::from_nanos(1));
        q.admit(Duration::from_nanos(2), Duration::from_nanos(1));
        q.first_row(Duration::from_nanos(3));
        q.complete(
            Duration::from_nanos(9),
            CompletionKind::Ok,
            Duration::from_nanos(8),
            12.0,
            11,
        );
        let snap = rec.snapshot().unwrap();
        let job = q.job().unwrap();
        let meta = snap.meta(job).unwrap();
        assert_eq!(meta.template, "Q2");
        assert_eq!(meta.client, 3);
        assert_eq!(meta.strategy, "dp");
        let kinds: Vec<&'static str> =
            snap.events_for(job).map(|e| e.kind.name()).collect();
        assert_eq!(
            kinds,
            vec!["submit", "admit", "first-row", "source-rows", "complete"]
        );
        assert!(snap.meta(NO_JOB).is_none());
    }

    #[test]
    fn net_observer_records_fleet_transfers() {
        let rec = FlightRecorder::recording();
        let obs = rec.net_observer().unwrap();
        obs.on_transfer("chebi#r1", 5, Duration::ZERO, Duration::from_nanos(7), None);
        obs.on_transfer(
            "chebi#r1",
            0,
            Duration::from_nanos(7),
            Duration::from_nanos(8),
            Some(LinkFault::Dropped),
        );
        let snap = rec.snapshot().unwrap();
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].job, NO_JOB);
        assert_eq!(
            snap.events[0].kind,
            FleetEventKind::Transfer { link: "chebi#r1".into(), rows: 5, faulted: false }
        );
        assert_eq!(
            snap.events[1].kind,
            FleetEventKind::Transfer { link: "chebi#r1".into(), rows: 0, faulted: true }
        );
    }
}
