//! The deterministic span recorder.
//!
//! A [`TraceSink`] is threaded through [`ExecCtx`], the wrapper streams,
//! both executors, and (as a [`NetObserver`]) through netsim's links and
//! event queue. Every timestamp comes from the **simulated clock** — the
//! shared clock under the serialized schedule, the per-link private
//! timelines under the overlapped one — so the two schedules produce
//! structurally comparable traces and a given `(seed, config)` pair always
//! produces the same bytes.
//!
//! The determinism contract: the sink never draws randomness, never
//! advances any clock, and every record call happens at a point the
//! untraced execution reaches anyway — so enabling tracing cannot perturb
//! answers, stats, or RNG streams. Disabled, the sink is a `None` and
//! every hook is one branch.

use crate::engine::FedStats;
use crate::error::FedError;
use crate::fedplan::FedPlan;
use crate::obs::analyze::plan_nodes;
use crate::obs::metrics::MetricsRegistry;
use crate::trace::AnswerTrace;
use fedlake_netsim::link::LinkStats;
use fedlake_netsim::{Link, LinkFault, NetObserver};
use fedlake_sparql::binding::SlotRow;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// What a span measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// The whole query (the root span).
    Query,
    /// Query planning (zero-width: planning is unpriced by the cost model).
    Planning,
    /// Star decomposition (zero-width, same reason).
    Decomposition,
    /// Engine-side execution drive loop.
    Execute,
    /// One engine operator's lifetime (first emit to exhaustion).
    Operator,
    /// One source's lane (parent of everything on its link).
    Source,
    /// One successful message transfer on a link.
    Transfer,
    /// One faulted transfer attempt (drop / truncation / outage hit).
    Fault,
    /// The receiver timeout after a faulted attempt.
    Timeout,
    /// The retry backoff wait after a timeout.
    Backoff,
    /// Source-side query evaluation (RDB scan, SPARQL eval).
    Compute,
    /// One bind-join batch round trip.
    BindBatch,
    /// One answer leaving the engine (an instant).
    Answer,
}

impl SpanKind {
    /// Stable lowercase name (trace-export category).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Planning => "planning",
            SpanKind::Decomposition => "decomposition",
            SpanKind::Execute => "execute",
            SpanKind::Operator => "operator",
            SpanKind::Source => "source",
            SpanKind::Transfer => "transfer",
            SpanKind::Fault => "fault",
            SpanKind::Timeout => "timeout",
            SpanKind::Backoff => "backoff",
            SpanKind::Compute => "compute",
            SpanKind::BindBatch => "bind-batch",
            SpanKind::Answer => "answer",
        }
    }
}

/// One recorded span on the simulated timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Recorder-assigned id (index into the span list).
    pub id: u32,
    /// Enclosing span, if any (only the root has none).
    pub parent: Option<u32>,
    /// What the span measures.
    pub kind: SpanKind,
    /// Display lane (`engine`, `src:<id>`, `op:<n> <name>`).
    pub lane: String,
    /// Human-readable description.
    pub label: String,
    /// Simulated start time.
    pub start: Duration,
    /// Simulated end time (`== start` for instants and zero-width spans).
    pub end: Duration,
    /// Rows associated with the span (transferred, emitted, …).
    pub rows: u64,
}

/// Per-operator actuals, in plan pre-order.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeReport {
    /// Depth in the plan tree.
    pub depth: usize,
    /// The node's EXPLAIN line.
    pub label: String,
    /// Source the node requests from, when it is a leaf request.
    pub source: Option<String>,
    /// The planner's estimated output rows of this subtree.
    pub estimated: f64,
    /// Rows the operator emitted.
    pub rows_out: u64,
    /// Simulated time of the first emitted row.
    pub first: Option<Duration>,
    /// Simulated time the operator reported exhaustion (`None` when the
    /// drive loop stopped early, e.g. LIMIT).
    pub done: Option<Duration>,
}

/// Per-source link actuals.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceReport {
    /// The link's traffic and fault counters.
    pub link: LinkStats,
    /// Retries the wrapper issued against this source.
    pub retries: u64,
}

/// Everything one traced execution recorded; stored on
/// [`crate::FedResult::obs`] and consumed by the renderers.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// Plan label (`aware`, `unaware`, …).
    pub plan_label: String,
    /// Network setting name.
    pub network: &'static str,
    /// All spans, in recording order.
    pub spans: Vec<Span>,
    /// Per-operator actuals, in plan pre-order.
    pub nodes: Vec<NodeReport>,
    /// Per-source link actuals, keyed by source id.
    pub sources: BTreeMap<String, SourceReport>,
    /// The metrics registry.
    pub metrics: MetricsRegistry,
    /// `(time, cumulative answers)` — the answer trace's points, recorded
    /// through the sink so spans and Figure 2 share one timeline.
    pub answers: Vec<(Duration, u64)>,
    /// Total simulated execution time.
    pub total_time: Duration,
    /// Answers produced.
    pub answers_total: u64,
    /// Messages across all links.
    pub messages: u64,
    /// Rows across all links (the intermediate-result size).
    pub rows_transferred: u64,
    /// Wrapper retries across all sources.
    pub retries: u64,
}

#[derive(Debug, Clone, Default)]
struct NodeState {
    rows: u64,
    first: Option<Duration>,
    done: Option<Duration>,
}

#[derive(Debug, Default)]
struct TraceState {
    spans: Vec<Span>,
    /// Root / execute span ids (set by `begin_query`).
    root: u32,
    exec: u32,
    /// Lane root span per source, created on first activity.
    sources: BTreeMap<String, u32>,
    /// Static node info (pre-order) plus live counters.
    node_info: Vec<crate::obs::analyze::PlanNode>,
    node_state: Vec<NodeState>,
    metrics: MetricsRegistry,
    answers: Vec<(Duration, u64)>,
}

/// The shared recorder behind an enabled sink. Implements [`NetObserver`]
/// so links and the event queue report into the same span list.
#[derive(Debug, Default)]
pub struct TraceShared {
    state: Mutex<TraceState>,
}

impl TraceShared {
    fn lock(&self) -> MutexGuard<'_, TraceState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[allow(clippy::too_many_arguments)] // the parameters are the fields of `Span` minus `id`
fn push_span(
    st: &mut TraceState,
    parent: Option<u32>,
    kind: SpanKind,
    lane: String,
    label: String,
    start: Duration,
    end: Duration,
    rows: u64,
) -> u32 {
    let id = st.spans.len() as u32;
    st.spans.push(Span { id, parent, kind, lane, label, start, end, rows });
    id
}

/// The lane root span of `source`, created on first use.
fn source_root(st: &mut TraceState, source: &str) -> u32 {
    if let Some(&id) = st.sources.get(source) {
        return id;
    }
    let parent = (!st.spans.is_empty()).then_some(st.root);
    let id = push_span(
        st,
        parent,
        SpanKind::Source,
        format!("src:{source}"),
        source.to_string(),
        // Patched to the children's envelope at `finish`.
        Duration::MAX,
        Duration::ZERO,
        0,
    );
    st.sources.insert(source.to_string(), id);
    id
}

impl NetObserver for TraceShared {
    fn on_transfer(
        &self,
        link: &str,
        rows: usize,
        start: Duration,
        end: Duration,
        fault: Option<LinkFault>,
    ) {
        let mut st = self.lock();
        let parent = Some(source_root(&mut st, link));
        let (kind, label) = match fault {
            None => (SpanKind::Transfer, format!("message ({rows} rows)")),
            Some(f) => (SpanKind::Fault, f.to_string()),
        };
        push_span(&mut st, parent, kind, format!("src:{link}"), label, start, end, rows as u64);
        match fault {
            None => {
                st.metrics.counter_add(&format!("link.{link}.messages"), 1);
                st.metrics.counter_add(&format!("link.{link}.rows"), rows as u64);
            }
            Some(_) => st.metrics.counter_add(&format!("link.{link}.faults"), 1),
        }
    }

    fn on_queue_depth(&self, depth: usize) {
        let mut st = self.lock();
        st.metrics.observe("sched.queue_depth", depth as u64);
        st.metrics.gauge_set("sched.queue_depth_now", depth as u64);
    }
}

/// A cloneable handle to the recorder — `None` when tracing is disabled,
/// making every hook a single branch on the hot path.
#[derive(Debug, Clone, Default)]
pub struct TraceSink(Option<Arc<TraceShared>>);

impl TraceSink {
    /// The no-op sink (the default).
    pub fn disabled() -> Self {
        TraceSink(None)
    }

    /// A recording sink for one execution.
    pub fn recording() -> Self {
        TraceSink(Some(Arc::new(TraceShared::default())))
    }

    /// True when this sink records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// The recorder as a netsim observer, for attaching to links and the
    /// event queue.
    pub fn net_observer(&self) -> Option<Arc<dyn NetObserver>> {
        self.0.clone().map(|s| s as Arc<dyn NetObserver>)
    }

    /// Opens the root spans and registers the plan's node table. Planning
    /// and decomposition happened before the simulated clock started (the
    /// cost model does not price them), so their spans sit zero-width at
    /// time zero.
    pub fn begin_query(&self, plan: &FedPlan, plan_label: &str) {
        let Some(sh) = &self.0 else { return };
        let mut st = sh.lock();
        let root = push_span(
            &mut st,
            None,
            SpanKind::Query,
            "engine".to_string(),
            format!("query ({plan_label})"),
            Duration::ZERO,
            Duration::ZERO,
            0,
        );
        st.root = root;
        push_span(
            &mut st,
            Some(root),
            SpanKind::Planning,
            "engine".to_string(),
            format!("planning ({plan_label})"),
            Duration::ZERO,
            Duration::ZERO,
            0,
        );
        push_span(
            &mut st,
            Some(root),
            SpanKind::Decomposition,
            "engine".to_string(),
            format!("decomposition ({} services)", plan.service_count()),
            Duration::ZERO,
            Duration::ZERO,
            0,
        );
        st.exec = push_span(
            &mut st,
            Some(root),
            SpanKind::Execute,
            "engine".to_string(),
            "execute".to_string(),
            Duration::ZERO,
            Duration::ZERO,
            0,
        );
        st.node_info = plan_nodes(plan);
        st.node_state = vec![NodeState::default(); st.node_info.len()];
    }

    /// Records what the planner did into the metrics registry: strategy
    /// taken, candidate plans costed, bind joins chosen, and (cost mode)
    /// the estimated [`crate::FederationCost`] decomposition in µs.
    pub fn record_plan_report(&self, report: &crate::planner::PlanReport) {
        let Some(sh) = &self.0 else { return };
        let mut st = sh.lock();
        st.metrics.counter_add("planner.queries", 1);
        st.metrics
            .counter_add(&format!("planner.strategy.{}", report.strategy.label()), 1);
        st.metrics.counter_add("planner.plans_costed", report.plans_costed);
        st.metrics.counter_add("planner.bind_joins", report.bind_joins);
        if let Some(cost) = &report.estimated_cost {
            st.metrics.gauge_set("planner.est_cpu_us", cost.cpu_us as u64);
            st.metrics.gauge_set("planner.est_io_us", cost.io_us as u64);
            st.metrics.gauge_set("planner.est_network_us", cost.network_us as u64);
            st.metrics.gauge_set("planner.est_parallelism_us", cost.parallelism_us as u64);
            st.metrics.gauge_set("planner.est_total_us", cost.total_us() as u64);
        }
    }

    /// Records a source-lane span (timeouts, backoffs, source compute,
    /// bind-join batches). `start`/`end` are on whichever simulated
    /// timeline the caller's schedule uses.
    pub fn source_span(
        &self,
        kind: SpanKind,
        source: &str,
        label: &str,
        start: Duration,
        end: Duration,
        rows: u64,
    ) {
        let Some(sh) = &self.0 else { return };
        let mut st = sh.lock();
        let parent = Some(source_root(&mut st, source));
        push_span(
            &mut st,
            parent,
            kind,
            format!("src:{source}"),
            label.to_string(),
            start,
            end,
            rows,
        );
        if kind == SpanKind::Backoff {
            st.metrics.counter_add(&format!("link.{source}.retries"), 1);
        }
    }

    /// Notes that plan node `node` emitted a row at `now`.
    pub fn node_emit(&self, node: u32, now: Duration) {
        let Some(sh) = &self.0 else { return };
        let mut st = sh.lock();
        if let Some(ns) = st.node_state.get_mut(node as usize) {
            ns.rows += 1;
            ns.first.get_or_insert(now);
        }
    }

    /// Notes that plan node `node` emitted `n` rows at once at `now` —
    /// the batched form of [`TraceSink::node_emit`], so EXPLAIN ANALYZE
    /// row counts reconcile identically under vectorized execution.
    pub fn node_emit_many(&self, node: u32, now: Duration, n: u64) {
        let Some(sh) = &self.0 else { return };
        let mut st = sh.lock();
        if let Some(ns) = st.node_state.get_mut(node as usize) {
            ns.rows += n;
            if n > 0 {
                ns.first.get_or_insert(now);
            }
        }
    }

    /// Notes that plan node `node` reported exhaustion at `now`
    /// (idempotent: the first report wins).
    pub fn node_done(&self, node: u32, now: Duration) {
        let Some(sh) = &self.0 else { return };
        let mut st = sh.lock();
        if let Some(ns) = st.node_state.get_mut(node as usize) {
            ns.done.get_or_insert(now);
        }
    }

    /// Records one answer at `now` into both the Figure 2 answer trace and
    /// the span timeline, so the two measurements cannot drift apart.
    pub fn record_answer(&self, trace: &mut AnswerTrace, now: Duration) {
        trace.record(now);
        let Some(sh) = &self.0 else { return };
        let mut st = sh.lock();
        let n = trace.count();
        st.answers.push((now, n));
        let parent = Some(st.exec);
        push_span(
            &mut st,
            parent,
            SpanKind::Answer,
            "engine".to_string(),
            format!("answer {n}"),
            now,
            now,
            1,
        );
    }

    /// Closes every open span, folds the final counters into the metrics
    /// registry, and returns the report. `stats` must be the execution's
    /// assembled [`FedStats`]; `links` the wrapper links it ran over.
    pub fn finish(
        &self,
        links: &HashMap<String, Arc<Link>>,
        stats: &FedStats,
    ) -> Option<TraceReport> {
        let sh = self.0.as_ref()?;
        let mut st = sh.lock();
        let final_time = stats.execution_time;

        // Materialize one Operator span per plan node that did anything.
        for i in 0..st.node_info.len() {
            let ns = st.node_state[i].clone();
            if ns.rows == 0 && ns.done.is_none() {
                continue;
            }
            let end = ns.done.unwrap_or(final_time);
            let start = ns.first.unwrap_or(end);
            let info = &st.node_info[i];
            let name = info.label.split_whitespace().next().unwrap_or("op").to_string();
            let label = info.label.clone();
            let parent = Some(st.exec);
            push_span(
                &mut st,
                parent,
                SpanKind::Operator,
                format!("op:{i:02} {name}"),
                label,
                start,
                end,
                ns.rows,
            );
        }

        // Close each source lane over its children's envelope.
        let source_ids: Vec<(String, u32)> =
            st.sources.iter().map(|(s, &id)| (s.clone(), id)).collect();
        for (_, id) in &source_ids {
            let (mut lo, mut hi) = (Duration::MAX, Duration::ZERO);
            for s in &st.spans {
                if s.parent == Some(*id) {
                    lo = lo.min(s.start);
                    hi = hi.max(s.end);
                }
            }
            let span = &mut st.spans[*id as usize];
            span.start = if lo == Duration::MAX { Duration::ZERO } else { lo };
            span.end = hi;
        }
        for (source, id) in &source_ids {
            if let Some(link) = links.get(source) {
                st.spans[*id as usize].rows = link.stats().rows;
            }
        }

        // Close the engine lanes: execute covers the drive loop, the root
        // covers everything including link tails that outlive it.
        let exec = st.exec as usize;
        st.spans[exec].end = final_time;
        let mut root_end = final_time;
        for (_, id) in &source_ids {
            root_end = root_end.max(st.spans[*id as usize].end);
        }
        let root = st.root as usize;
        st.spans[root].end = root_end;
        st.spans[root].rows = stats.answers;

        // Fold the execution totals into the registry; the renderers and
        // the reconciliation tests read these, so a FedStats field and its
        // metric cannot silently diverge.
        st.metrics.counter_add("engine.answers", stats.answers);
        st.metrics.counter_add("engine.messages", stats.messages);
        st.metrics.counter_add("engine.rows_transferred", stats.rows_transferred);
        st.metrics.counter_add("engine.retries", stats.retries);
        st.metrics.counter_add("engine.sql_queries", stats.sql_queries);
        st.metrics.counter_add("engine.filter_evals", stats.engine_filter_evals);
        st.metrics.counter_add("engine.join_probes", stats.engine_join_probes);
        for i in 0..st.node_info.len() {
            let rows = st.node_state[i].rows;
            st.metrics.counter_add(&format!("op.{i:02}.rows_out"), rows);
        }
        // Estimation-error summary: the q-error of every operator that
        // ran, ×100 (a histogram value of 100 is a perfect estimate).
        for i in 0..st.node_info.len() {
            let ns = &st.node_state[i];
            if ns.rows == 0 && ns.done.is_none() {
                continue;
            }
            let q = crate::obs::analyze::q_error(st.node_info[i].estimated, ns.rows);
            st.metrics.observe("planner.qerror_x100", (q * 100.0) as u64);
        }

        let mut sources = BTreeMap::new();
        for (source, link) in links {
            let retries = st.metrics.counter(&format!("link.{source}.retries"));
            sources.insert(source.clone(), SourceReport { link: link.stats(), retries });
        }

        let nodes = st
            .node_info
            .iter()
            .zip(&st.node_state)
            .map(|(info, ns)| NodeReport {
                depth: info.depth,
                label: info.label.clone(),
                source: info.source.clone(),
                estimated: info.estimated,
                rows_out: ns.rows,
                first: ns.first,
                done: ns.done,
            })
            .collect();

        Some(TraceReport {
            plan_label: stats.plan_label.clone(),
            network: stats.network,
            spans: st.spans.clone(),
            nodes,
            sources,
            metrics: st.metrics.clone(),
            answers: st.answers.clone(),
            total_time: final_time,
            answers_total: stats.answers,
            messages: stats.messages,
            rows_transferred: stats.rows_transferred,
            retries: stats.retries,
        })
    }
}

/// Wraps an engine operator to count emissions for its plan node. Only
/// installed when tracing is enabled, so the disabled path pays nothing.
pub(crate) struct SpanOp<'a> {
    inner: crate::operators::BoxedOp<'a>,
    node: u32,
    sink: TraceSink,
}

impl<'a> SpanOp<'a> {
    pub(crate) fn new(inner: crate::operators::BoxedOp<'a>, node: u32, sink: TraceSink) -> Self {
        SpanOp { inner, node, sink }
    }
}

impl crate::operators::FedOp for SpanOp<'_> {
    fn next(
        &mut self,
        ctx: &mut crate::operators::ExecCtx,
    ) -> Result<Option<SlotRow>, FedError> {
        let r = self.inner.next(ctx)?;
        match &r {
            Some(_) => self.sink.node_emit(self.node, ctx.clock.now()),
            None => self.sink.node_done(self.node, ctx.clock.now()),
        }
        Ok(r)
    }

    fn poll_next(
        &mut self,
        ctx: &mut crate::operators::ExecCtx,
    ) -> Result<crate::operators::Poll<SlotRow>, FedError> {
        let r = self.inner.poll_next(ctx)?;
        match &r {
            crate::operators::Poll::Ready(_) => self.sink.node_emit(self.node, ctx.clock.now()),
            crate::operators::Poll::Done => self.sink.node_done(self.node, ctx.clock.now()),
            crate::operators::Poll::Pending(_) => {}
        }
        Ok(r)
    }

    fn next_batch(
        &mut self,
        ctx: &mut crate::operators::ExecCtx,
        max: usize,
    ) -> Result<Option<fedlake_sparql::binding::RowBatch>, FedError> {
        let r = self.inner.next_batch(ctx, max)?;
        match &r {
            Some(b) => self.sink.node_emit_many(self.node, ctx.clock.now(), b.len() as u64),
            None => self.sink.node_done(self.node, ctx.clock.now()),
        }
        Ok(r)
    }

    fn poll_next_batch(
        &mut self,
        ctx: &mut crate::operators::ExecCtx,
        max: usize,
    ) -> Result<crate::operators::Poll<fedlake_sparql::binding::RowBatch>, FedError> {
        let r = self.inner.poll_next_batch(ctx, max)?;
        match &r {
            crate::operators::Poll::Ready(b) => {
                self.sink.node_emit_many(self.node, ctx.clock.now(), b.len() as u64)
            }
            crate::operators::Poll::Done => self.sink.node_done(self.node, ctx.clock.now()),
            crate::operators::Poll::Pending(_) => {}
        }
        Ok(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TraceSink::disabled();
        assert!(!sink.is_enabled());
        assert!(sink.net_observer().is_none());
        let mut trace = AnswerTrace::new();
        sink.record_answer(&mut trace, Duration::from_millis(1));
        assert_eq!(trace.count(), 1, "the answer trace still records");
        sink.node_emit(0, Duration::ZERO);
        sink.node_done(0, Duration::ZERO);
        sink.source_span(
            SpanKind::Backoff,
            "s",
            "b",
            Duration::ZERO,
            Duration::ZERO,
            0,
        );
    }

    #[test]
    fn source_spans_build_a_lane_tree() {
        let sink = TraceSink::recording();
        let obs = sink.net_observer().unwrap();
        obs.on_transfer("chebi", 5, Duration::from_millis(1), Duration::from_millis(2), None);
        obs.on_transfer(
            "chebi",
            0,
            Duration::from_millis(2),
            Duration::from_millis(2),
            Some(LinkFault::Dropped),
        );
        sink.source_span(
            SpanKind::Backoff,
            "chebi",
            "backoff (attempt 1)",
            Duration::from_millis(2),
            Duration::from_millis(3),
            0,
        );
        let sh = sink.0.as_ref().unwrap();
        let st = sh.lock();
        assert_eq!(st.spans.len(), 4, "lane root + transfer + fault + backoff");
        let lane = &st.spans[st.sources["chebi"] as usize];
        assert_eq!(lane.kind, SpanKind::Source);
        for s in &st.spans {
            if s.id != lane.id {
                assert_eq!(s.parent, Some(lane.id));
            }
        }
        assert_eq!(st.metrics.counter("link.chebi.messages"), 1);
        assert_eq!(st.metrics.counter("link.chebi.faults"), 1);
        assert_eq!(st.metrics.counter("link.chebi.retries"), 1);
    }
}
