//! A registry of named metrics with deterministic iteration order.
//!
//! Counters, gauges and histograms accumulated during one traced
//! execution. Keys are dotted paths (`link.chebi.messages`,
//! `engine.join_probes`, `sched.queue_depth`); the registry is a
//! `BTreeMap`, so rendering and export order is independent of insertion
//! order — a requirement of the byte-identical-trace contract.

use std::collections::BTreeMap;

/// One metric value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Monotone event count.
    Counter(u64),
    /// Last-written value plus the maximum ever written.
    Gauge {
        /// Most recent value.
        last: u64,
        /// Largest value observed.
        max: u64,
    },
    /// Distribution summary of observed samples.
    Histogram {
        /// Samples observed.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Smallest sample.
        min: u64,
        /// Largest sample.
        max: u64,
    },
}

/// Named metrics for one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    entries: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the counter `name` (created at zero).
    pub fn counter_add(&mut self, name: &str, v: u64) {
        match self.entries.get_mut(name) {
            Some(Metric::Counter(c)) => *c += v,
            Some(other) => panic!("metric {name} is not a counter: {other:?}"),
            None => {
                self.entries.insert(name.to_string(), Metric::Counter(v));
            }
        }
    }

    /// Sets the gauge `name` to `v`, tracking its maximum.
    pub fn gauge_set(&mut self, name: &str, v: u64) {
        match self.entries.get_mut(name) {
            Some(Metric::Gauge { last, max }) => {
                *last = v;
                *max = (*max).max(v);
            }
            Some(other) => panic!("metric {name} is not a gauge: {other:?}"),
            None => {
                self.entries.insert(name.to_string(), Metric::Gauge { last: v, max: v });
            }
        }
    }

    /// Records one sample `v` in the histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        match self.entries.get_mut(name) {
            Some(Metric::Histogram { count, sum, min, max }) => {
                *count += 1;
                *sum += v;
                *min = (*min).min(v);
                *max = (*max).max(v);
            }
            Some(other) => panic!("metric {name} is not a histogram: {other:?}"),
            None => {
                self.entries
                    .insert(name.to_string(), Metric::Histogram { count: 1, sum: v, min: v, max: v });
            }
        }
    }

    /// The metric named `name`, if any.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.entries.get(name).copied()
    }

    /// The counter `name`, or zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// All metrics in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// One `name value` line per metric, in key order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, metric) in self.iter() {
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {c}\n")),
                Metric::Gauge { last, max } => {
                    out.push_str(&format!("{name} last={last} max={max}\n"))
                }
                Metric::Histogram { count, sum, min, max } => out.push_str(&format!(
                    "{name} count={count} sum={sum} min={min} max={max}\n"
                )),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.counter_add("a.b", 2);
        m.counter_add("a.b", 3);
        assert_eq!(m.get("a.b"), Some(Metric::Counter(5)));
        assert_eq!(m.counter("a.b"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_track_max() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("depth", 3);
        m.gauge_set("depth", 7);
        m.gauge_set("depth", 2);
        assert_eq!(m.get("depth"), Some(Metric::Gauge { last: 2, max: 7 }));
    }

    #[test]
    fn histograms_summarize() {
        let mut m = MetricsRegistry::new();
        for v in [4, 1, 9] {
            m.observe("h", v);
        }
        assert_eq!(m.get("h"), Some(Metric::Histogram { count: 3, sum: 14, min: 1, max: 9 }));
    }

    #[test]
    fn render_is_sorted_regardless_of_insertion() {
        let mut a = MetricsRegistry::new();
        a.counter_add("z", 1);
        a.counter_add("a", 1);
        let mut b = MetricsRegistry::new();
        b.counter_add("a", 1);
        b.counter_add("z", 1);
        assert_eq!(a.render(), b.render());
        assert!(a.render().starts_with("a 1\n"));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }
}
