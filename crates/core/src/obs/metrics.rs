//! A registry of named metrics with deterministic iteration order.
//!
//! Counters, gauges and histograms accumulated during one traced
//! execution. Keys are dotted paths (`link.chebi.messages`,
//! `engine.join_probes`, `sched.queue_depth`); the registry is a
//! `BTreeMap`, so rendering and export order is independent of insertion
//! order — a requirement of the byte-identical-trace contract.

use std::collections::BTreeMap;

/// Nearest-rank percentile over an ascending-sorted slice: the smallest
/// element whose rank `⌈q·n⌉` covers quantile `q` (`q` in `[0, 1]`).
/// Returns 0 on an empty slice.
///
/// This is the **one** quantile definition in the workspace —
/// `ServeReport`'s p50/p95/p99 and the watchdog's per-template windows
/// both call it, so the two can never disagree at small `n` (the old
/// failure mode when each carried its own copy).
pub fn nearest_rank(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// One metric value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Monotone event count.
    Counter(u64),
    /// Last-written value plus the maximum ever written.
    Gauge {
        /// Most recent value.
        last: u64,
        /// Largest value observed.
        max: u64,
    },
    /// Distribution summary of observed samples.
    Histogram {
        /// Samples observed.
        count: u64,
        /// Sum of samples.
        sum: u64,
        /// Smallest sample.
        min: u64,
        /// Largest sample.
        max: u64,
    },
}

/// Named metrics for one execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    entries: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `v` to the counter `name` (created at zero).
    pub fn counter_add(&mut self, name: &str, v: u64) {
        match self.entries.get_mut(name) {
            Some(Metric::Counter(c)) => *c += v,
            Some(other) => panic!("metric {name} is not a counter: {other:?}"),
            None => {
                self.entries.insert(name.to_string(), Metric::Counter(v));
            }
        }
    }

    /// Sets the gauge `name` to `v`, tracking its maximum.
    pub fn gauge_set(&mut self, name: &str, v: u64) {
        match self.entries.get_mut(name) {
            Some(Metric::Gauge { last, max }) => {
                *last = v;
                *max = (*max).max(v);
            }
            Some(other) => panic!("metric {name} is not a gauge: {other:?}"),
            None => {
                self.entries.insert(name.to_string(), Metric::Gauge { last: v, max: v });
            }
        }
    }

    /// Records one sample `v` in the histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        match self.entries.get_mut(name) {
            Some(Metric::Histogram { count, sum, min, max }) => {
                *count += 1;
                *sum += v;
                *min = (*min).min(v);
                *max = (*max).max(v);
            }
            Some(other) => panic!("metric {name} is not a histogram: {other:?}"),
            None => {
                self.entries
                    .insert(name.to_string(), Metric::Histogram { count: 1, sum: v, min: v, max: v });
            }
        }
    }

    /// The metric named `name`, if any.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.entries.get(name).copied()
    }

    /// The counter `name`, or zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(Metric::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// All metrics in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Folds every metric of `other` into this registry: counters add,
    /// gauges take the other's last value and the joint maximum,
    /// histograms combine their summaries. Deterministic (key order), and
    /// the merge of per-session registries equals the registry a single
    /// combined recording would have produced.
    ///
    /// Panics when the same key names different metric kinds in the two
    /// registries — the same contract as the typed accessors.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, metric) in other.iter() {
            match self.entries.get_mut(name) {
                None => {
                    self.entries.insert(name.to_string(), *metric);
                }
                Some(Metric::Counter(c)) => match metric {
                    Metric::Counter(o) => *c += o,
                    other => panic!("metric {name} is not a counter: {other:?}"),
                },
                Some(Metric::Gauge { last, max }) => match metric {
                    Metric::Gauge { last: ol, max: om } => {
                        *last = *ol;
                        *max = (*max).max(*om);
                    }
                    other => panic!("metric {name} is not a gauge: {other:?}"),
                },
                Some(Metric::Histogram { count, sum, min, max }) => match metric {
                    Metric::Histogram { count: oc, sum: os, min: omin, max: omax } => {
                        *count += oc;
                        *sum += os;
                        *min = (*min).min(*omin);
                        *max = (*max).max(*omax);
                    }
                    other => panic!("metric {name} is not a histogram: {other:?}"),
                },
            }
        }
    }

    /// Prometheus-style text exposition of the registry: dotted keys
    /// become `fedlake_`-prefixed snake-case metric names, counters and
    /// gauge values export directly, histograms export their summary as
    /// `_count`/`_sum`/`_min`/`_max` series. Output is deterministic (key
    /// order) — the byte-identity contract of the serve determinism
    /// suite.
    pub fn prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 8);
            out.push_str("fedlake_");
            for c in name.chars() {
                if c.is_ascii_alphanumeric() {
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
            out
        }
        let mut out = String::new();
        for (name, metric) in self.iter() {
            let prom = sanitize(name);
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {prom} counter\n{prom} {c}\n"));
                }
                Metric::Gauge { last, max } => {
                    out.push_str(&format!(
                        "# TYPE {prom} gauge\n{prom} {last}\n{prom}_max {max}\n"
                    ));
                }
                Metric::Histogram { count, sum, min, max } => {
                    out.push_str(&format!(
                        "# TYPE {prom} summary\n{prom}_count {count}\n{prom}_sum {sum}\n{prom}_min {min}\n{prom}_max {max}\n"
                    ));
                }
            }
        }
        out
    }

    /// One `name value` line per metric, in key order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, metric) in self.iter() {
            match metric {
                Metric::Counter(c) => out.push_str(&format!("{name} {c}\n")),
                Metric::Gauge { last, max } => {
                    out.push_str(&format!("{name} last={last} max={max}\n"))
                }
                Metric::Histogram { count, sum, min, max } => out.push_str(&format!(
                    "{name} count={count} sum={sum} min={min} max={max}\n"
                )),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.counter_add("a.b", 2);
        m.counter_add("a.b", 3);
        assert_eq!(m.get("a.b"), Some(Metric::Counter(5)));
        assert_eq!(m.counter("a.b"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_track_max() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("depth", 3);
        m.gauge_set("depth", 7);
        m.gauge_set("depth", 2);
        assert_eq!(m.get("depth"), Some(Metric::Gauge { last: 2, max: 7 }));
    }

    #[test]
    fn histograms_summarize() {
        let mut m = MetricsRegistry::new();
        for v in [4, 1, 9] {
            m.observe("h", v);
        }
        assert_eq!(m.get("h"), Some(Metric::Histogram { count: 3, sum: 14, min: 1, max: 9 }));
    }

    #[test]
    fn nearest_rank_is_exact() {
        assert_eq!(nearest_rank(&[], 0.5), 0);
        assert_eq!(nearest_rank(&[7], 0.5), 7);
        assert_eq!(nearest_rank(&[7], 0.99), 7);
        // n = 4: p50 → rank ⌈2⌉ = 2nd element, p95 → rank ⌈3.8⌉ = 4th.
        assert_eq!(nearest_rank(&[10, 20, 30, 40], 0.50), 20);
        assert_eq!(nearest_rank(&[10, 20, 30, 40], 0.95), 40);
        assert_eq!(nearest_rank(&[10, 20, 30, 40], 0.99), 40);
        // n = 100: p95 is exactly the 95th element.
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(nearest_rank(&v, 0.50), 50);
        assert_eq!(nearest_rank(&v, 0.95), 95);
        assert_eq!(nearest_rank(&v, 0.99), 99);
        assert_eq!(nearest_rank(&v, 1.0), 100);
        // q = 0 clamps to the first element rather than underflowing.
        assert_eq!(nearest_rank(&v, 0.0), 1);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 2);
        a.gauge_set("g", 5);
        a.observe("h", 10);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 3);
        b.counter_add("only_b", 1);
        b.gauge_set("g", 3);
        b.observe("h", 2);
        b.observe("h", 20);

        let mut merged = a.clone();
        merged.merge(&b);

        let mut combined = MetricsRegistry::new();
        combined.counter_add("c", 2);
        combined.gauge_set("g", 5);
        combined.observe("h", 10);
        combined.counter_add("c", 3);
        combined.counter_add("only_b", 1);
        combined.gauge_set("g", 3);
        combined.observe("h", 2);
        combined.observe("h", 20);
        assert_eq!(merged, combined);
        assert_eq!(merged.counter("c"), 5);
        assert_eq!(merged.get("g"), Some(Metric::Gauge { last: 3, max: 5 }));
        assert_eq!(merged.get("h"), Some(Metric::Histogram { count: 3, sum: 32, min: 2, max: 20 }));
    }

    #[test]
    fn prometheus_exposition_is_stable() {
        let mut m = MetricsRegistry::new();
        m.counter_add("link.chebi#r1.messages", 4);
        m.gauge_set("sched.queue_depth", 2);
        m.observe("serve.latency_us", 120);
        let text = m.prometheus();
        assert!(text.contains("# TYPE fedlake_link_chebi_r1_messages counter\n"));
        assert!(text.contains("fedlake_link_chebi_r1_messages 4\n"));
        assert!(text.contains("fedlake_sched_queue_depth 2\n"));
        assert!(text.contains("fedlake_sched_queue_depth_max 2\n"));
        assert!(text.contains("fedlake_serve_latency_us_count 1\n"));
        assert!(text.contains("fedlake_serve_latency_us_sum 120\n"));
        // Rendering twice is byte-identical.
        assert_eq!(text, m.prometheus());
    }

    #[test]
    fn render_is_sorted_regardless_of_insertion() {
        let mut a = MetricsRegistry::new();
        a.counter_add("z", 1);
        a.counter_add("a", 1);
        let mut b = MetricsRegistry::new();
        b.counter_add("a", 1);
        b.counter_add("z", 1);
        assert_eq!(a.render(), b.render());
        assert!(a.render().starts_with("a 1\n"));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
    }
}
