//! Planner configuration: plan modes, heuristics, network setting, and
//! the executor's fault/retry/deadline behaviour.

use crate::decompose::DecompositionStrategy;
use fedlake_netsim::{CostModel, FaultPlan, NetworkProfile};
use std::time::Duration;

/// Retry behaviour of the wrapper streams when a link message attempt
/// fails (see [`fedlake_netsim::FaultPlan`]).
///
/// Every failed attempt charges the receiver's detection `timeout` to the
/// simulated clock; every retry additionally charges an exponentially
/// growing backoff (`backoff`, `2*backoff`, `4*backoff`, …), so retries
/// are visible in answer traces exactly like the network delays they
/// react to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per message, the first try included (min 1).
    pub max_attempts: u32,
    /// Simulated time the receiver waits before declaring an attempt
    /// failed; charged once per failed attempt.
    pub timeout: Duration,
    /// Base backoff before re-issuing; doubles with every further retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            timeout: Duration::from_millis(10),
            backoff: Duration::from_millis(2),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, immediate failure).
    pub fn no_retries() -> Self {
        RetryPolicy { max_attempts: 1, ..Default::default() }
    }

    /// The attempt budget, never below one.
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// The backoff charged after the failed attempt `attempt` (0-based):
    /// `backoff * 2^attempt`, saturating.
    pub fn backoff_after(&self, attempt: u32) -> Duration {
        self.backoff.saturating_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
    }
}

/// How merged (Heuristic 1) sub-queries are translated to SQL.
///
/// The paper reports that Ontario's translation *"is not optimized for
/// combining star-shaped sub-queries. This leads to an increase in the
/// query execution time if the join is pushed down. Forcing Ontario to
/// send the optimized SQL query for Q2 approx. halves the execution time"*
/// (§3). Both behaviours are modeled:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MergeTranslation {
    /// One flat SQL query joining the stars' tables (`… JOIN … ON …`) —
    /// the "forced optimized SQL" of §3.
    #[default]
    Optimized,
    /// Ontario's unoptimized translation, emulated faithfully: the wrapper
    /// evaluates the first star, then issues one parameterized SQL query
    /// per retrieved binding for the second star (an N+1 dependent join at
    /// the wrapper). The join is still "pushed down" — it happens at the
    /// source side of the network link — but pays per-query overhead.
    Naive,
}

/// How the engine joins sub-query results across sources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineJoin {
    /// ANAPSID's adaptive symmetric hash join (the default): both inputs
    /// are fetched in full and matched as they arrive.
    #[default]
    SymmetricHash,
    /// Dependent (bind) join where possible: left bindings are shipped to
    /// the right relational source in batches of `batch_size` as SQL `IN`
    /// lists, trading extra queries for a smaller transferred result.
    Bind {
        /// Left rows per shipped batch.
        batch_size: usize,
    },
}

/// Where a star's instantiation filters are evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FilterPlacement {
    /// Always at the engine — the unaware behaviour, and the
    /// H2-without-index-or-fast-network case.
    Engine,
    /// Pushed into the source SQL whenever the filtered attribute is
    /// indexed — the paper's **experimental** physical-design-aware QEP
    /// ("using indexes whenever possible", Fig. 2b).
    #[default]
    PushIndexed,
    /// The full **Heuristic 2** as stated in §2.2: push only when the
    /// attribute is indexed *and* the network is slow; otherwise evaluate
    /// at the engine.
    Heuristic2,
    /// Push every translatable filter regardless of indexes — the
    /// classical push-selections-to-sources baseline, used in ablations.
    PushAll,
}

/// The two plan types compared in the experiment (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanMode {
    /// *Physical-Design-Unaware QEP*: ignores indexes; performs as many
    /// operations as possible at the query-engine level. Every SSQ becomes
    /// its own source request; all `FILTER`s and all inter-SSQ joins run at
    /// the engine.
    Unaware,
    /// *Physical-Design-Aware QEP*: exploits the sources' physical design.
    Aware {
        /// Heuristic 1: merge SSQs over the same RDB endpoint when the
        /// join attribute is indexed.
        h1_join_pushdown: bool,
        /// Filter-placement policy (see [`FilterPlacement`]).
        filters: FilterPlacement,
    },
}

impl PlanMode {
    /// The paper's experimental aware plan: H1 on, indexed filters pushed.
    pub const AWARE: PlanMode = PlanMode::Aware {
        h1_join_pushdown: true,
        filters: FilterPlacement::PushIndexed,
    };

    /// The aware plan following Heuristic 2's network condition.
    pub const AWARE_H2: PlanMode = PlanMode::Aware {
        h1_join_pushdown: true,
        filters: FilterPlacement::Heuristic2,
    };

    /// A short label for tables and traces.
    pub fn label(&self) -> String {
        match self {
            PlanMode::Unaware => "unaware".to_string(),
            PlanMode::Aware { h1_join_pushdown, filters } => {
                let f = match filters {
                    FilterPlacement::Engine => "engine-filters",
                    FilterPlacement::PushIndexed => "push-indexed",
                    FilterPlacement::Heuristic2 => "h2",
                    FilterPlacement::PushAll => "push-all",
                };
                if *h1_join_pushdown {
                    format!("aware({f})")
                } else {
                    format!("aware(no-h1,{f})")
                }
            }
        }
    }
}

/// Full planner/executor configuration for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanConfig {
    /// Plan type under evaluation.
    pub mode: PlanMode,
    /// Simulated network setting; also the input to Heuristic 2's
    /// slow-network test.
    pub network: NetworkProfile,
    /// Cost model converting work to simulated time.
    pub cost: CostModel,
    /// SQL translation quality for merged sub-queries.
    pub merge_translation: MergeTranslation,
    /// How the basic graph pattern is decomposed into sub-queries
    /// (star-shaped per the paper; triple-based per its §5 future work).
    pub decomposition: DecompositionStrategy,
    /// Engine-level join strategy (symmetric hash vs dependent bind join).
    pub engine_join: EngineJoin,
    /// Rows per message on the wrapper links (the paper delays each
    /// retrieval of "the next answer", i.e. one row per message).
    pub rows_per_message: usize,
    /// RNG seed for the per-link delay streams.
    pub seed: u64,
    /// Use a real (sleeping) clock instead of the virtual clock.
    pub real_time: bool,
    /// Fault schedule injected on every wrapper link ([`FaultPlan::NONE`]
    /// keeps the links reliable, as in the paper's experiment).
    pub faults: FaultPlan,
    /// Retry behaviour when a link attempt fails.
    pub retry: RetryPolicy,
    /// Per-query deadline on the simulated clock; `None` disables it.
    pub deadline: Option<Duration>,
    /// Overlapped source I/O: drive the plan with the event scheduler so
    /// independent sources transfer concurrently. `false` keeps the
    /// serialized schedule (one transfer at a time, as in the paper's
    /// single-threaded wrapper loop). Answers are identical either way;
    /// only the simulated timing differs.
    pub overlap: bool,
    /// Graceful degradation: when a source becomes unavailable (or the
    /// deadline fires) return the answers produced so far with
    /// `FedStats::degraded` set, instead of failing the whole query.
    pub degraded_ok: bool,
    /// Record a deterministic trace of the execution: spans, metrics, the
    /// analyzed plan and a Chrome trace, returned on
    /// [`crate::FedResult::obs`]. Recording is passive — answers, stats
    /// and RNG streams are byte-identical with it on or off.
    pub tracing: bool,
    /// Vectorized execution: drive the optimized executor with
    /// morsel-sized [`fedlake_sparql::binding::RowBatch`]es instead of
    /// row-at-a-time pulls. Answers, stats and link traffic are identical
    /// either way; only host-side overhead drops. Defaults to the
    /// `FEDLAKE_BATCH=1` environment switch. Deadline runs fall back to
    /// the row-at-a-time driver so cooperative cancellation keeps its
    /// per-row granularity.
    pub batch: bool,
    /// Row capacity of one batch (morsel size). Defaults to 1024, or the
    /// `FEDLAKE_BATCH_SIZE` environment override.
    pub batch_size: usize,
    /// Statistics-driven cost-based planning: order the joins between
    /// star-shaped sub-queries by minimizing a [`crate::FederationCost`]
    /// estimate (DP enumeration, greedy above
    /// [`crate::planner::DP_UNIT_LIMIT`] units) and pick bind-join vs
    /// hash-join per edge from estimated input cardinalities. `false`
    /// keeps the paper's heuristic ordering. Answers are identical either
    /// way; only the plan shape (and thus timing/traffic) differs.
    /// Defaults to the `FEDLAKE_COST=1` environment switch.
    pub cost_based: bool,
    /// Fleet flight recorder: keep a bounded, deterministic ring of
    /// structured lifecycle events (submit/admit/plan/first-row/retry/
    /// failover/deadline/complete) for every query the engine runs, read
    /// back through [`crate::FederatedEngine::flight_recording`]. Like
    /// tracing, recording is contractually passive — answers, stats and
    /// RNG streams are byte-identical with it on or off. Defaults to the
    /// `FEDLAKE_RECORDER=1` environment switch.
    pub recorder: bool,
    /// Normalized plan cache: memoize whole [`crate::planner::PlannedQuery`]s
    /// behind the query's canonical fingerprint (see [`crate::ir`]), so a
    /// repeat query skips decomposition, source selection and cost-based
    /// enumeration entirely and replays a byte-identical plan. Entries
    /// revalidate against the lake's catalog epoch and the health inputs
    /// of exactly the sources they touch, so catalog mutations and health
    /// flips invalidate precisely the affected plans. Defaults to the
    /// `FEDLAKE_PLAN_CACHE=1` environment switch.
    pub plan_cache: bool,
}

/// The process-wide default for [`PlanConfig::batch`]: `FEDLAKE_BATCH=1`.
fn batch_default() -> bool {
    std::env::var("FEDLAKE_BATCH").is_ok_and(|v| v == "1")
}

/// The process-wide default for [`PlanConfig::cost_based`]:
/// `FEDLAKE_COST=1`.
fn cost_default() -> bool {
    std::env::var("FEDLAKE_COST").is_ok_and(|v| v == "1")
}

/// The process-wide default for [`PlanConfig::recorder`]:
/// `FEDLAKE_RECORDER=1`.
fn recorder_default() -> bool {
    std::env::var("FEDLAKE_RECORDER").is_ok_and(|v| v == "1")
}

/// The process-wide default for [`PlanConfig::plan_cache`]:
/// `FEDLAKE_PLAN_CACHE=1`.
fn plan_cache_default() -> bool {
    std::env::var("FEDLAKE_PLAN_CACHE").is_ok_and(|v| v == "1")
}

/// The process-wide default for [`PlanConfig::batch_size`]:
/// `FEDLAKE_BATCH_SIZE=n`, else 1024.
fn batch_size_default() -> usize {
    std::env::var("FEDLAKE_BATCH_SIZE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1024)
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            mode: PlanMode::AWARE,
            network: NetworkProfile::NO_DELAY,
            cost: CostModel::default(),
            merge_translation: MergeTranslation::Optimized,
            decomposition: DecompositionStrategy::default(),
            engine_join: EngineJoin::default(),
            rows_per_message: 1,
            seed: 0xFED_1A4E,
            real_time: false,
            faults: FaultPlan::NONE,
            retry: RetryPolicy::default(),
            deadline: None,
            overlap: false,
            degraded_ok: false,
            tracing: false,
            batch: batch_default(),
            batch_size: batch_size_default(),
            cost_based: cost_default(),
            recorder: recorder_default(),
            plan_cache: plan_cache_default(),
        }
    }
}

impl PlanConfig {
    /// Convenience: a config with the given mode and network.
    pub fn new(mode: PlanMode, network: NetworkProfile) -> Self {
        PlanConfig { mode, network, ..Default::default() }
    }

    /// Convenience: the unaware baseline under `network`.
    pub fn unaware(network: NetworkProfile) -> Self {
        Self::new(PlanMode::Unaware, network)
    }

    /// Convenience: the paper's experimental aware plan under `network`.
    pub fn aware(network: NetworkProfile) -> Self {
        Self::new(PlanMode::AWARE, network)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels() {
        assert_eq!(PlanMode::Unaware.label(), "unaware");
        assert_eq!(PlanMode::AWARE.label(), "aware(push-indexed)");
        assert_eq!(PlanMode::AWARE_H2.label(), "aware(h2)");
        assert_eq!(
            PlanMode::Aware {
                h1_join_pushdown: false,
                filters: FilterPlacement::PushAll
            }
            .label(),
            "aware(no-h1,push-all)"
        );
    }

    #[test]
    fn default_config() {
        let c = PlanConfig::default();
        assert_eq!(c.mode, PlanMode::AWARE);
        assert_eq!(c.rows_per_message, 1);
        assert!(!c.real_time);
        assert_eq!(c.merge_translation, MergeTranslation::Optimized);
        assert_eq!(c.decomposition, DecompositionStrategy::StarShaped);
        assert!(!c.faults.is_active(), "default links are reliable");
        assert_eq!(c.deadline, None);
        assert!(!c.degraded_ok);
        assert!(!c.tracing, "tracing is opt-in");
        if std::env::var_os("FEDLAKE_BATCH_SIZE").is_none() {
            assert_eq!(c.batch_size, 1024);
        }
        if std::env::var_os("FEDLAKE_COST").is_none() {
            assert!(!c.cost_based, "cost-based planning is opt-in");
        }
        if std::env::var_os("FEDLAKE_RECORDER").is_none() {
            assert!(!c.recorder, "the flight recorder is opt-in");
        }
        if std::env::var_os("FEDLAKE_PLAN_CACHE").is_none() {
            assert!(!c.plan_cache, "the plan cache is opt-in");
        }
    }

    #[test]
    fn retry_policy_backoff_doubles() {
        let p = RetryPolicy {
            max_attempts: 5,
            timeout: Duration::from_millis(10),
            backoff: Duration::from_millis(2),
        };
        assert_eq!(p.backoff_after(0), Duration::from_millis(2));
        assert_eq!(p.backoff_after(1), Duration::from_millis(4));
        assert_eq!(p.backoff_after(3), Duration::from_millis(16));
        // Saturates instead of overflowing for absurd attempt counts.
        assert!(p.backoff_after(200) > Duration::from_secs(1));
        assert_eq!(RetryPolicy::no_retries().attempts(), 1);
        assert_eq!(RetryPolicy { max_attempts: 0, ..p }.attempts(), 1);
    }

    #[test]
    fn constructors() {
        let c = PlanConfig::unaware(NetworkProfile::GAMMA2);
        assert_eq!(c.mode, PlanMode::Unaware);
        assert_eq!(c.network.name, "Gamma2");
        let c = PlanConfig::aware(NetworkProfile::GAMMA1);
        assert_eq!(c.mode, PlanMode::AWARE);
    }
}
