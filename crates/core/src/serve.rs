//! Concurrent multi-query serving on the discrete-event scheduler.
//!
//! [`FederatedEngine::serve`] drives many planned queries against one
//! engine over a **single shared virtual clock** and a **single shared
//! link map**: every session's transfers queue on each link's private
//! occupancy timeline, so concurrent queries contend for the simulated
//! network exactly like concurrent clients contend for a real endpoint.
//! Admission control bounds the number of in-flight sessions; a seeded
//! arrival process staggers the offered load; each session can carry a
//! deadline relative to its arrival.
//!
//! The whole run is a pure function of its inputs: job order, arrival
//! times, admission order, poll order and every RNG draw are derived from
//! the configured seeds, so re-running the same spec reproduces the same
//! outcomes bit for bit. Answers are timing-independent (the operators
//! are symmetric and set-preserving), so each query's answer *set* equals
//! its solo execution even though shared-link queuing changes all
//! timings.
//!
//! The serve loop always drives sessions through the overlapped
//! (`poll_next`) protocol — a blocking pull would serialize the whole
//! server on one session's I/O — and always row-at-a-time, because
//! deadlines are checked between rows. Engine-side operator work advances
//! the shared clock directly: the model is a single-threaded engine core
//! multiplexing sessions, which keeps the schedule deterministic.

use crate::config::PlanConfig;
use crate::engine::FederatedEngine;
use crate::error::FedError;
use crate::obs::{
    service_estimates, CompletionKind, FlightRecording, MetricsRegistry, TraceReport, TraceSink,
};
use crate::operators::{BoxedOp, DistinctOp, EngineStats, ExecCtx, Poll, ProjectOp};
use crate::planner::PlannedQuery;
use crate::trace::AnswerTrace;
use crate::wrapper::{links_for, total_traffic};
use fedlake_netsim::clock::shared_virtual;
use fedlake_prng::Prng;
use fedlake_sparql::binding::{decode_row, Row, SlotRow, Var};
use fedlake_sparql::eval::sort_rows;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Server-level configuration for one serve run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Seed of the arrival process (independent of the link seed in
    /// [`PlanConfig::seed`], so the same network schedule can be offered
    /// different load patterns).
    pub seed: u64,
    /// Maximum concurrently admitted sessions; further arrivals queue in
    /// FIFO order. Zero means unbounded.
    pub max_in_flight: usize,
    /// Mean of the exponential inter-arrival distribution. `ZERO` makes
    /// every job arrive at simulated time zero (a closed batch).
    pub mean_interarrival: Duration,
    /// Default per-query deadline, relative to the query's arrival;
    /// individual jobs can override it. `None` disables deadlines.
    pub deadline: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            seed: 7,
            max_in_flight: 8,
            mean_interarrival: Duration::ZERO,
            deadline: None,
        }
    }
}

/// One query submitted to the server.
#[derive(Debug, Clone)]
pub struct ServeJob {
    /// Issuing client (used for fairness accounting; jobs of one client
    /// are independent).
    pub client: usize,
    /// Display label, e.g. `Q3[cat-12]`.
    pub label: String,
    /// The planned query to execute.
    pub planned: PlannedQuery,
    /// Per-job deadline override (relative to arrival); `None` falls back
    /// to [`ServeConfig::deadline`].
    pub deadline: Option<Duration>,
    /// The planned query was replayed from the normalized plan cache
    /// (`false` for cold plans and whenever the cache is off). Annotation
    /// only: execution is byte-identical either way.
    pub cached: bool,
}

/// Deterministic per-session measurements (all timing-independent
/// counters live in [`EngineStats`]; link traffic is shared across
/// sessions and reported only in the server rollup).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeQueryStats {
    /// Engine-side counters of this session only.
    pub engine: EngineStats,
    /// Answers returned (after solution modifiers).
    pub answers: u64,
}

/// The outcome of one served query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Issuing client.
    pub client: usize,
    /// Job label.
    pub label: String,
    /// Simulated arrival time.
    pub arrival: Duration,
    /// Simulated admission time (`>= arrival`; later when the in-flight
    /// bound queued the job).
    pub admitted: Duration,
    /// Simulated completion time.
    pub finish: Duration,
    /// `finish - arrival` (queueing included).
    pub latency: Duration,
    /// First answer, relative to arrival, when any.
    pub first_answer: Option<Duration>,
    /// Projected variables.
    pub vars: Arc<[Var]>,
    /// Answer rows (empty on a hard failure).
    pub rows: Vec<Row>,
    /// Per-session statistics.
    pub stats: ServeQueryStats,
    /// The per-query failure, when the session failed hard
    /// ([`FedError::Timeout`] past its deadline, [`FedError::SourceUnavailable`]
    /// past the retry budget). Other sessions are unaffected.
    pub error: Option<FedError>,
    /// The answers are partial: a fault or the deadline fired under
    /// [`PlanConfig::degraded_ok`].
    pub degraded: bool,
    /// Per-session trace report, when [`PlanConfig::tracing`] is set.
    pub obs: Option<TraceReport>,
}

impl QueryOutcome {
    /// True when the session produced its complete answer set.
    pub fn completed(&self) -> bool {
        self.error.is_none() && !self.degraded
    }
}

/// The result of one serve run.
#[derive(Debug, Clone)]
pub struct ServeOutcome {
    /// Per-job outcomes, in job order.
    pub outcomes: Vec<QueryOutcome>,
    /// Simulated time at which the last session finished.
    pub makespan: Duration,
    /// Server-level rollup: admission/completion/timeout/degraded
    /// counters, the in-flight gauge (its `max` proves the admission
    /// bound), a latency histogram, and the shared links' total traffic.
    pub metrics: MetricsRegistry,
    /// Snapshot of the engine's flight recording at the end of the run,
    /// when [`PlanConfig::recorder`] is set. The ring is session-wide, so
    /// it also retains events of earlier runs on the same engine.
    pub recording: Option<FlightRecording>,
}

/// A session being driven by the serve loop.
struct Session<'a> {
    job: usize,
    op: BoxedOp<'a>,
    ctx: ExecCtx,
    sink: TraceSink,
    trace: AnswerTrace,
    slot_rows: Vec<SlotRow>,
    admitted: Duration,
    /// Absolute deadline on the shared clock, when one applies.
    deadline: Option<Duration>,
    /// Relative deadline (for the `Timeout` error payload).
    deadline_rel: Option<Duration>,
    /// Unordered-LIMIT early-stop row target.
    want: Option<usize>,
    degraded: bool,
    /// The per-query failure, when the session failed hard.
    error: Option<FedError>,
}

/// What one poll sweep did to a session.
enum SweepStep {
    /// Produced at least one answer row; poll again before advancing time.
    Progress,
    /// Waiting on in-flight I/O.
    Pending(fedlake_netsim::EventTime),
    /// Finished (success, degradation or per-query failure).
    Finished,
}

impl FederatedEngine {
    /// Serves `jobs` concurrently under `serve_cfg`. See the module
    /// documentation for the execution model and determinism contract.
    ///
    /// Per-query failures (deadline, exhausted retries) are captured in
    /// the job's [`QueryOutcome`] and never abort the run; only internal
    /// errors (scheduler stalls — bugs by contract) propagate as `Err`.
    pub fn serve(
        &self,
        jobs: &[ServeJob],
        serve_cfg: &ServeConfig,
    ) -> Result<ServeOutcome, FedError> {
        let config: &PlanConfig = self.config();
        if config.real_time {
            return Err(FedError::Unsupported(
                "serve runs on the virtual clock only".into(),
            ));
        }
        let clock = shared_virtual();
        // The shared link map: one link per endpoint for the whole run,
        // so sessions queue behind each other's transfers. Links carry no
        // trace observer — per-link lanes are a solo-execution feature;
        // serve traces are per-session span trees.
        let links = links_for(
            self.lake(),
            config.network,
            Arc::clone(&clock),
            config.cost,
            config.seed,
            &self.fault_plans(),
            &TraceSink::disabled(),
            self.recorder(),
        );

        // Seeded arrival process: exponential inter-arrival gaps, rounded
        // to integer nanoseconds. Job order is arrival order.
        let mut rng = Prng::seed_from_u64(serve_cfg.seed);
        let mean_ns = serve_cfg.mean_interarrival.as_nanos() as f64;
        let mut at = 0u64;
        let arrivals: Vec<Duration> = jobs
            .iter()
            .map(|_| {
                if mean_ns > 0.0 {
                    let u = rng.next_f64();
                    at += (-(1.0 - u).ln() * mean_ns) as u64;
                }
                Duration::from_nanos(at)
            })
            .collect();

        let mut metrics = MetricsRegistry::new();
        let mut outcomes: Vec<Option<QueryOutcome>> = (0..jobs.len()).map(|_| None).collect();
        let mut next_job = 0usize; // FIFO admission cursor
        let mut active: Vec<Session<'_>> = Vec::new();
        let bound = if serve_cfg.max_in_flight == 0 {
            usize::MAX
        } else {
            serve_cfg.max_in_flight
        };

        while next_job < jobs.len() || !active.is_empty() {
            // Admission: FIFO, bounded, only once the arrival is due.
            while next_job < jobs.len()
                && active.len() < bound
                && arrivals[next_job] <= clock.now()
            {
                let job = &jobs[next_job];
                let sink = if config.tracing {
                    TraceSink::recording()
                } else {
                    TraceSink::disabled()
                };
                let deadline_rel = job.deadline.or(serve_cfg.deadline);
                let deadline = deadline_rel.map(|d| arrivals[next_job] + d);
                // Flight-recorder lifecycle: the submit event carries the
                // arrival time, admit the FIFO wait, plan the planner's
                // report — all stamped at points the unrecorded loop
                // reaches anyway.
                let qrec = self.recorder().begin_query(
                    job.client,
                    &job.label,
                    job.planned.report.strategy.label(),
                    deadline_rel,
                    service_estimates(&job.planned.plan),
                );
                qrec.submit(arrivals[next_job]);
                qrec.admit(clock.now(), clock.now().saturating_sub(arrivals[next_job]));
                qrec.plan(
                    clock.now(),
                    &job.planned.report,
                    job.planned.report.estimated_rows,
                    job.cached,
                );
                let ctx = ExecCtx::new(
                    Arc::clone(&clock),
                    config.cost,
                    Arc::clone(&job.planned.schema),
                    self.interner().clone(),
                )
                .with_lifts(Arc::clone(self.lifts()))
                .with_retry(config.retry)
                .with_deadline(deadline)
                .with_trace(sink.clone())
                .with_recorder(qrec.clone());
                sink.begin_query(&job.planned.plan, &config.mode.label());
                sink.record_plan_report(&job.planned.report);
                let mut next_node = 0u32;
                let mut op = self.build_operator(
                    &job.planned.plan,
                    &job.planned.schema,
                    &links,
                    &sink,
                    &qrec,
                    &mut next_node,
                )?;
                op = Box::new(ProjectOp::new(
                    op,
                    job.planned.schema.slots_of(&job.planned.projection),
                ));
                if job.planned.distinct {
                    op = Box::new(DistinctOp::new(op));
                }
                let unordered_limit =
                    job.planned.order_by.is_empty().then_some(()).and(job.planned.limit);
                active.push(Session {
                    job: next_job,
                    op,
                    ctx,
                    sink,
                    trace: AnswerTrace::new(),
                    slot_rows: Vec::new(),
                    admitted: clock.now(),
                    deadline,
                    deadline_rel,
                    want: unordered_limit.map(|l| l + job.planned.offset),
                    // Sources skipped at plan time already make the
                    // answer partial.
                    degraded: !job.planned.skipped_sources.is_empty(),
                    error: None,
                });
                metrics.counter_add("serve.admitted", 1);
                // Planner rollups: what the admitted plans' planner did.
                let report = &job.planned.report;
                metrics.counter_add(
                    &format!("serve.planner.strategy.{}", report.strategy.label()),
                    1,
                );
                metrics.counter_add("serve.planner.plans_costed", report.plans_costed);
                metrics.counter_add("serve.planner.bind_joins", report.bind_joins);
                if report.cost_based {
                    metrics.counter_add("serve.planner.cost_based", 1);
                }
                if self.config().plan_cache {
                    metrics.counter_add(
                        if job.cached {
                            "serve.plancache.job_hits"
                        } else {
                            "serve.plancache.job_misses"
                        },
                        1,
                    );
                }
                metrics.gauge_set("serve.in_flight", active.len() as u64);
                next_job += 1;
            }

            if active.is_empty() {
                // Nothing running: jump to the next arrival.
                clock.advance_to(arrivals[next_job]);
                continue;
            }

            // One sweep: poll every active session in admission order,
            // draining ready rows. Any answer may have advanced the shared
            // clock (engine work), so sweeps repeat until every session is
            // pending before time jumps forward.
            let mut progressed = false;
            let mut min_pending: Option<Duration> = None;
            let mut i = 0;
            while i < active.len() {
                match Self::sweep_session(&mut active[i], config, &clock)? {
                    SweepStep::Progress => {
                        progressed = true;
                        i += 1;
                    }
                    SweepStep::Pending(ev) => {
                        min_pending = Some(match min_pending {
                            Some(t) if t <= ev.time => t,
                            _ => ev.time,
                        });
                        i += 1;
                    }
                    SweepStep::Finished => {
                        let session = active.remove(i);
                        let outcome = self.finalize_session(
                            session,
                            jobs,
                            &arrivals,
                            &clock,
                            &mut metrics,
                        );
                        outcomes[outcome.0] = Some(outcome.1);
                        metrics.gauge_set("serve.in_flight", active.len() as u64);
                        progressed = true;
                    }
                }
            }
            if progressed {
                continue;
            }

            // Every session is pending on strictly-future I/O: advance to
            // the earliest completion — or to the next arrival, when a
            // free admission slot would fill first.
            let mut next_time = min_pending;
            if next_job < jobs.len() && active.len() < bound {
                let arr = arrivals[next_job];
                next_time = Some(match next_time {
                    Some(t) if t <= arr => t,
                    _ => arr,
                });
            }
            match next_time {
                Some(t) => clock.advance_to(t),
                None => {
                    return Err(FedError::Internal(
                        "serve stalled: every session pending with no scheduled event".into(),
                    ))
                }
            }
        }

        let makespan = clock.now();
        let (messages, rows_transferred, network_delay) = total_traffic(&links);
        metrics.counter_add("serve.link.messages", messages);
        metrics.counter_add("serve.link.rows_transferred", rows_transferred);
        metrics.counter_add("serve.link.delay_ns", network_delay.as_nanos() as u64);
        metrics.gauge_set("serve.makespan_ns", makespan.as_nanos() as u64);
        // Feed the shared links into the session health registry exactly
        // once: link stats are cumulative over the whole run, so a
        // per-session record would double-count every earlier session.
        self.health().record_links(&links);
        // Export the session health counters into the rollup, so the
        // exposition snapshot carries endpoint health next to the serve
        // counters. Recorder-independent and read-only — passivity holds.
        self.health().fold_into(&mut metrics);
        // Plan-cache rollup: the engine-lifetime counters at the end of
        // this run (gauges — a counter would double-add across runs on
        // the same engine). Exported only when the cache is in play so
        // cache-off metric renders stay byte-identical to prior releases.
        if self.config().plan_cache {
            let pc = self.plan_cache_stats();
            metrics.gauge_set("serve.plancache.lookups", pc.lookups);
            metrics.gauge_set("serve.plancache.hits", pc.hits);
            metrics.gauge_set("serve.plancache.misses", pc.misses);
            metrics.gauge_set("serve.plancache.evictions", pc.evictions);
            metrics.gauge_set("serve.plancache.invalidations", pc.invalidations);
        }

        Ok(ServeOutcome {
            outcomes: outcomes.into_iter().map(|o| o.expect("every job finalized")).collect(),
            makespan,
            metrics,
            recording: self.recorder().snapshot(),
        })
    }

    /// Polls one session until it is pending, finished, or failed,
    /// checking its deadline between rows (the engine's cooperative
    /// deadline semantics).
    fn sweep_session(
        s: &mut Session<'_>,
        config: &PlanConfig,
        clock: &fedlake_netsim::SharedClock,
    ) -> Result<SweepStep, FedError> {
        let mut produced = false;
        loop {
            if let Some(d) = s.deadline {
                if clock.now() >= d {
                    s.ctx.recorder.deadline_hit(clock.now());
                    if !config.degraded_ok {
                        s.slot_rows.clear();
                        s.error =
                            Some(FedError::Timeout(s.deadline_rel.unwrap_or_default()));
                    } else {
                        s.degraded = true;
                    }
                    return Ok(SweepStep::Finished);
                }
            }
            match s.op.poll_next(&mut s.ctx) {
                Ok(Poll::Ready(row)) => {
                    s.ctx.trace.record_answer(&mut s.trace, clock.now());
                    if s.ctx.recorder.is_enabled() && s.trace.count() == 1 {
                        s.ctx.recorder.first_row(clock.now());
                    }
                    s.slot_rows.push(row);
                    produced = true;
                    if s.want.is_some_and(|w| s.slot_rows.len() >= w) {
                        return Ok(SweepStep::Finished);
                    }
                }
                Ok(Poll::Pending(ev)) => {
                    if ev.time <= clock.now() {
                        return Err(FedError::Internal(format!(
                            "scheduler stalled: pending event at {:?} is not in the future (now {:?})",
                            ev.time,
                            clock.now()
                        )));
                    }
                    return Ok(if produced {
                        SweepStep::Progress
                    } else {
                        SweepStep::Pending(ev)
                    });
                }
                Ok(Poll::Done) => return Ok(SweepStep::Finished),
                Err(e @ (FedError::SourceUnavailable { .. } | FedError::Timeout(_))) => {
                    // A per-query fault is not a run error: stash it in
                    // the outcome and let the other sessions continue.
                    if !config.degraded_ok {
                        s.slot_rows.clear();
                        s.error = Some(e);
                    } else {
                        s.degraded = true;
                    }
                    return Ok(SweepStep::Finished);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Closes one session into its [`QueryOutcome`].
    fn finalize_session(
        &self,
        mut s: Session<'_>,
        jobs: &[ServeJob],
        arrivals: &[Duration],
        clock: &fedlake_netsim::SharedClock,
        metrics: &mut MetricsRegistry,
    ) -> (usize, QueryOutcome) {
        let now = clock.now();
        s.trace.complete(now);
        let job = &jobs[s.job];
        let arrival = arrivals[s.job];
        let config = self.config();

        let error = s.error.take();
        let mut rows: Vec<Row> = if error.is_some() {
            Vec::new()
        } else {
            let dict = s.ctx.interner.lock();
            s.slot_rows.iter().map(|r| decode_row(r, &job.planned.schema, &dict)).collect()
        };
        if !job.planned.order_by.is_empty() {
            sort_rows(&mut rows, &job.planned.order_by);
        }
        if job.planned.offset > 0 {
            rows.drain(..job.planned.offset.min(rows.len()));
        }
        if let Some(l) = job.planned.limit {
            rows.truncate(l);
        }

        let latency = now.saturating_sub(arrival);
        match &error {
            Some(FedError::Timeout(_)) => metrics.counter_add("serve.timeouts", 1),
            Some(_) => metrics.counter_add("serve.failed", 1),
            None if s.degraded => metrics.counter_add("serve.degraded", 1),
            None => metrics.counter_add("serve.completed", 1),
        }
        metrics.counter_add("serve.answers", rows.len() as u64);
        metrics.observe("serve.latency_ns", latency.as_nanos() as u64);
        // Flight-recorder completion: per-service actuals vs. estimates,
        // then the outcome with its latency and answer cardinality.
        let kind = match (&error, s.degraded) {
            (Some(FedError::Timeout(_)), _) => CompletionKind::DeadlineMiss,
            (Some(_), _) => CompletionKind::Failed,
            (None, true) => CompletionKind::Degraded,
            (None, false) => CompletionKind::Ok,
        };
        s.ctx.recorder.complete(
            now,
            kind,
            latency,
            job.planned.report.estimated_rows,
            rows.len() as u64,
        );

        let stats = ServeQueryStats { engine: s.ctx.stats, answers: rows.len() as u64 };
        // Per-session trace report: span tree + per-session stats. Link
        // traffic is shared across sessions, so the report carries none.
        let obs = s.sink.finish(
            &HashMap::new(),
            &crate::engine::FedStats {
                plan_label: config.mode.label(),
                network: config.network.name,
                execution_time: latency,
                first_answer: s.trace.first_answer().map(|t| t.saturating_sub(arrival)),
                answers: rows.len() as u64,
                messages: 0,
                rows_transferred: 0,
                network_delay: Duration::ZERO,
                sql_queries: stats.engine.sql_queries,
                engine_filter_evals: stats.engine.engine_filter_evals,
                engine_join_probes: stats.engine.engine_join_probes,
                services: job.planned.plan.service_count(),
                engine_operators: job.planned.plan.engine_operator_count(),
                merged_services: job.planned.plan.merged_service_count(),
                retries: stats.engine.retries,
                source_failures: Default::default(),
                degraded: s.degraded,
            },
        );

        let first_answer = s.trace.first_answer().map(|t| t.saturating_sub(arrival));
        (
            s.job,
            QueryOutcome {
                client: job.client,
                label: job.label.clone(),
                arrival,
                admitted: s.admitted,
                finish: now,
                latency,
                first_answer,
                vars: Arc::clone(&job.planned.projection),
                rows,
                stats,
                error,
                degraded: s.degraded,
                obs,
            },
        )
    }
}
