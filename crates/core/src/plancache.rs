//! The normalized plan cache.
//!
//! Repeat traffic from the serving layer is dominated by a handful of
//! templated query shapes, yet every job used to pay full decomposition +
//! source selection + (cost-based) DP enumeration. [`PlanCache`] memoizes
//! whole [`PlannedQuery`]s behind a conservative key so a hit replays the
//! *byte-identical* plan a cold run would have built:
//!
//! * **Key** — `(query fingerprint, config fingerprint)` from
//!   [`crate::ir`]: the canonical AST text and the full planner
//!   configuration. Conservative by construction: different text ⇒
//!   different key, so a hit can never cross queries or configs.
//! * **Validation** — each entry remembers the lake epoch it was planned
//!   under and an FNV digest of the health inputs (failure counts +
//!   threshold) over exactly the replica endpoints its plan touches. A
//!   lookup revalidates both, so `source_mut` / `refresh_templates` /
//!   `set_replicas` (epoch bump) or a health flip on a *relevant*
//!   endpoint invalidates exactly the affected entries, while unrelated
//!   churn leaves them live. The health-view generation is a fast path:
//!   if it has not moved since the entry was validated, the digest is
//!   known unchanged and is not recomputed.
//! * **Bounds** — at most [`PLAN_CACHE_CAPACITY`] entries; eviction is
//!   least-recently-used by a monotone lookup tick, which is unique per
//!   entry, so eviction order is deterministic even over an unordered
//!   map.
//!
//! The cache is engine-internal: [`crate::FederatedEngine::plan`] probes
//! it when [`crate::PlanConfig::plan_cache`] is set and
//! [`PlanCacheStats`] reconciles every probe (`lookups = hits + misses`,
//! invalidations ≤ misses).

use crate::fedplan::FedPlan;
use crate::health::HealthView;
use crate::lake::DataLake;
use crate::planner::PlannedQuery;

/// Maximum resident entries; far above any workload mix in the repo, so
/// evictions only occur under adversarial key churn.
pub const PLAN_CACHE_CAPACITY: usize = 256;

/// Monotone counters for every cache outcome. `lookups == hits + misses`
/// always holds; `invalidations` counts misses caused by epoch/health
/// revalidation failure; `evictions` counts capacity removals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Probes against the cache.
    pub lookups: u64,
    /// Probes that replayed a cached plan.
    pub hits: u64,
    /// Probes that fell through to cold planning.
    pub misses: u64,
    /// Entries dropped to stay within capacity.
    pub evictions: u64,
    /// Entries dropped because the lake epoch or the relevant health
    /// digest moved (a subset of `misses`).
    pub invalidations: u64,
}

/// Where a plan came from: the cache, or cold planning. Carried alongside
/// the plan (never inside it) so cached and cold [`PlannedQuery`]s stay
/// byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanOrigin {
    /// True when the plan was replayed from the cache.
    pub cached: bool,
    /// The plan's stable logical fingerprint (equals
    /// `report.fingerprint`).
    pub fingerprint: u64,
}

#[derive(Debug)]
struct Entry {
    lake_epoch: u64,
    health_generation: u64,
    health_digest: u64,
    sources: Vec<String>,
    planned: PlannedQuery,
    tick: u64,
}

/// The bounded, deterministic normalized-plan cache.
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: fedlake_rdf::FastMap<(u64, u64), Entry>,
    tick: u64,
    stats: PlanCacheStats,
}

impl PlanCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resident entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        self.stats
    }

    /// Drops every entry (configuration change); counters are
    /// engine-lifetime and survive.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Probes for `key`, revalidating against the current lake epoch and
    /// health inputs. `digest` recomputes the health digest over the
    /// entry's relevant sources; it is skipped when `health_generation`
    /// has not moved since the entry was last validated.
    pub fn lookup(
        &mut self,
        key: (u64, u64),
        lake_epoch: u64,
        health_generation: u64,
        digest: impl FnOnce(&[String]) -> u64,
    ) -> Option<PlannedQuery> {
        self.stats.lookups += 1;
        let Some(entry) = self.entries.get_mut(&key) else {
            self.stats.misses += 1;
            return None;
        };
        let mut valid = entry.lake_epoch == lake_epoch;
        if valid && entry.health_generation != health_generation {
            valid = digest(&entry.sources) == entry.health_digest;
            if valid {
                entry.health_generation = health_generation;
            }
        }
        if !valid {
            self.entries.remove(&key);
            self.stats.invalidations += 1;
            self.stats.misses += 1;
            return None;
        }
        self.tick += 1;
        entry.tick = self.tick;
        self.stats.hits += 1;
        Some(entry.planned.clone())
    }

    /// Inserts a cold-planned query, evicting the least-recently-used
    /// entry when full. Ticks are unique, so the victim is deterministic.
    pub fn insert(
        &mut self,
        key: (u64, u64),
        lake_epoch: u64,
        health_generation: u64,
        health_digest: u64,
        sources: Vec<String>,
        planned: PlannedQuery,
    ) {
        if self.entries.len() >= PLAN_CACHE_CAPACITY && !self.entries.contains_key(&key) {
            if let Some(victim) =
                self.entries.iter().min_by_key(|(_, e)| e.tick).map(|(k, _)| *k)
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.tick += 1;
        self.entries.insert(
            key,
            Entry {
                lake_epoch,
                health_generation,
                health_digest,
                sources,
                planned,
                tick: self.tick,
            },
        );
    }
}

/// The logical sources a plan contacts (service leaves + bind-join
/// targets) plus the sources it skipped as degraded — everything whose
/// health can change what planning would produce. Sorted and deduped so
/// digests are order-independent.
pub fn plan_sources(planned: &PlannedQuery) -> Vec<String> {
    fn walk(plan: &FedPlan, out: &mut Vec<String>) {
        match plan {
            FedPlan::Service(s) => out.push(s.source_id.clone()),
            FedPlan::Join { left, right, .. } | FedPlan::LeftJoin { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
            FedPlan::BindJoin { left, right, .. } => {
                walk(left, out);
                out.push(right.source_id.clone());
            }
            FedPlan::Filter { input, .. } => walk(input, out),
            FedPlan::Union(branches) => branches.iter().for_each(|b| walk(b, out)),
        }
    }
    let mut sources = Vec::new();
    walk(&planned.plan, &mut sources);
    sources.extend(planned.skipped_sources.iter().cloned());
    sources.sort_unstable();
    sources.dedup();
    sources
}

/// FNV digest of every health input that can steer planning for the given
/// logical sources: the view threshold plus, per replica endpoint in the
/// lake's deterministic order, its recorded failure count.
pub fn health_digest(lake: &DataLake, view: &HealthView, sources: &[String]) -> u64 {
    let mut h = crate::ir::Fnv64::new();
    h.push_u64(view.threshold);
    for source in sources {
        h.push_str(source);
        for endpoint in lake.replica_endpoints(source) {
            h.push_str(&endpoint);
            h.push_u64(view.failures_of(&endpoint));
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{PlanReport, PlannedQuery};
    use fedlake_sparql::binding::{RowSchema, Var};
    use std::sync::Arc;

    fn planned(tag: &str) -> PlannedQuery {
        PlannedQuery {
            plan: FedPlan::Union(Vec::new()),
            schema: Arc::new(RowSchema::new(Vec::<Var>::new())),
            projection: Arc::from(Vec::<Var>::new().into_boxed_slice()),
            distinct: false,
            order_by: Vec::new(),
            limit: None,
            offset: 0,
            skipped_sources: vec![tag.to_string()],
            report: PlanReport::default(),
        }
    }

    #[test]
    fn lookup_insert_and_counters_reconcile() {
        let mut cache = PlanCache::new();
        let key = (1, 2);
        assert!(cache.lookup(key, 0, 0, |_| 0).is_none());
        cache.insert(key, 0, 0, 7, vec!["a".into()], planned("a"));
        let hit = cache.lookup(key, 0, 0, |_| unreachable!("generation unchanged"));
        assert_eq!(hit.unwrap().skipped_sources, vec!["a".to_string()]);
        let s = cache.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (2, 1, 1));
        assert_eq!(s.lookups, s.hits + s.misses);
    }

    #[test]
    fn epoch_mismatch_invalidates() {
        let mut cache = PlanCache::new();
        cache.insert((1, 1), 3, 0, 7, Vec::new(), planned("x"));
        assert!(cache.lookup((1, 1), 4, 0, |_| 7).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        assert!(cache.is_empty(), "stale entry must be dropped");
    }

    #[test]
    fn health_digest_change_invalidates_and_match_revalidates() {
        let mut cache = PlanCache::new();
        cache.insert((1, 1), 0, 0, 7, vec!["a".into()], planned("x"));
        // Generation moved but the digest still matches: hit, entry kept.
        assert!(cache.lookup((1, 1), 0, 5, |_| 7).is_some());
        // Generation unchanged from the revalidation: digest not recomputed.
        assert!(cache.lookup((1, 1), 0, 5, |_| unreachable!()).is_some());
        // Digest moved: exact invalidation.
        assert!(cache.lookup((1, 1), 0, 9, |_| 8).is_none());
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn eviction_is_lru_and_bounded() {
        let mut cache = PlanCache::new();
        for i in 0..PLAN_CACHE_CAPACITY as u64 {
            cache.insert((i, 0), 0, 0, 0, Vec::new(), planned("x"));
        }
        // Touch entry 0 so entry 1 becomes the LRU victim.
        assert!(cache.lookup((0, 0), 0, 0, |_| 0).is_some());
        cache.insert((u64::MAX, 0), 0, 0, 0, Vec::new(), planned("y"));
        assert_eq!(cache.len(), PLAN_CACHE_CAPACITY);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup((0, 0), 0, 0, |_| 0).is_some(), "touched entry survives");
        assert!(cache.lookup((1, 0), 0, 0, |_| 0).is_none(), "LRU entry evicted");
    }
}
