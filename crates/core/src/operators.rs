//! Engine-level physical operators.
//!
//! Execution is pull-based and streaming: operators produce one solution
//! at a time while the shared simulation clock advances, so the answer
//! trace reflects *when* each answer became available — the measurement of
//! Figure 2. The join is ANAPSID's adaptive **symmetric hash join**
//! (agjoin): it consumes from both inputs in alternation and emits matches
//! as soon as probes succeed, producing answers incrementally instead of
//! blocking on a build phase.
//!
//! Solution mappings travel as [`SlotRow`]s: fixed-width arrays of
//! [`fedlake_rdf::TermId`]s laid out by the query's [`RowSchema`] and
//! interned in a query-scoped [`SharedInterner`]. Join keys, DISTINCT
//! hashing and projection therefore operate on `u32` ids; only FILTER
//! evaluation resolves ids back to terms, lazily, for value comparisons.

use crate::error::FedError;
use fedlake_netsim::{CostModel, EventQueue, EventTime, SharedClock};
use fedlake_rdf::{FastMap, FastSet, SharedInterner, TermId};
use fedlake_sparql::binding::{RowBatch, RowSchema, SlotRow};
use fedlake_sparql::expr::Expr;
use std::collections::VecDeque;
use std::sync::Arc;

/// Engine-side work counters for one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Filter evaluations performed at the engine level.
    pub engine_filter_evals: u64,
    /// Symmetric-hash-join inserts+probes at the engine level.
    pub engine_join_probes: u64,
    /// SQL queries sent to relational sources.
    pub sql_queries: u64,
    /// Rows retrieved from all services.
    pub service_rows: u64,
    /// Message attempts re-issued after a link fault.
    pub retries: u64,
}

/// Shared execution context: the clock, cost model, counters, and the
/// query's row representation (slot layout plus term interner).
#[derive(Debug)]
pub struct ExecCtx {
    /// The simulation clock shared with every wrapper link.
    pub clock: SharedClock,
    /// Cost model pricing engine-level work.
    pub cost: CostModel,
    /// Accumulated counters.
    pub stats: EngineStats,
    /// The query's slot layout, fixed at plan time.
    pub schema: Arc<RowSchema>,
    /// The query-scoped term interner shared with every wrapper stream.
    pub interner: SharedInterner,
    /// Retry behaviour of the wrapper streams when a link attempt fails.
    pub retry: crate::config::RetryPolicy,
    /// The query's deadline, when one is configured: retry backoffs are
    /// clamped so a failing attempt never charges a pause reaching past
    /// it.
    pub deadline: Option<std::time::Duration>,
    /// The discrete-event schedule of in-flight source work (overlapped
    /// execution only; stays empty under the serialized schedule).
    pub sched: EventQueue,
    /// The trace sink wrapper streams record spans into (disabled — a
    /// single branch per hook — unless the config asks for tracing).
    pub trace: crate::obs::TraceSink,
    /// The query's flight-recorder handle: wrapper streams record retry
    /// and failover lifecycle events through it (disabled — a single
    /// branch per hook — unless [`crate::PlanConfig::recorder`] is set).
    pub recorder: crate::obs::QueryRecorder,
    /// True when the engine drives this execution in batches: wrapper
    /// streams materialize results column-major so morsels slice out as
    /// contiguous id copies instead of row-by-row gathers.
    pub batch: bool,
    /// Engine-owned cache of lifted source results, shared across
    /// executions. Must always be paired with the interner the cached ids
    /// were interned into — the engine passes both from the same session;
    /// a fresh context gets an empty cache, which is trivially consistent.
    pub lifts: crate::wrapper::SharedLiftCache,
}

impl ExecCtx {
    /// Creates a context for one query execution with the default retry
    /// policy (use [`ExecCtx::with_retry`] to override).
    pub fn new(
        clock: SharedClock,
        cost: CostModel,
        schema: Arc<RowSchema>,
        interner: SharedInterner,
    ) -> Self {
        ExecCtx {
            clock,
            cost,
            stats: EngineStats::default(),
            schema,
            interner,
            retry: crate::config::RetryPolicy::default(),
            deadline: None,
            sched: EventQueue::new(),
            trace: crate::obs::TraceSink::disabled(),
            recorder: crate::obs::QueryRecorder::disabled(),
            batch: false,
            lifts: Arc::new(std::sync::Mutex::new(FastMap::default())),
        }
    }

    /// Marks this execution as batch-driven (see [`ExecCtx::batch`]).
    pub fn with_batch(mut self, batch: bool) -> Self {
        self.batch = batch;
        self
    }

    /// Installs the engine's cross-execution lift cache (see
    /// [`ExecCtx::lifts`] for the pairing invariant with the interner).
    pub fn with_lifts(mut self, lifts: crate::wrapper::SharedLiftCache) -> Self {
        self.lifts = lifts;
        self
    }

    /// Sets the retry policy wrapper streams consult.
    pub fn with_retry(mut self, retry: crate::config::RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the deadline retry backoffs are clamped against.
    pub fn with_deadline(mut self, deadline: Option<std::time::Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Installs a trace sink; an enabled sink also observes the event
    /// queue's depth.
    pub fn with_trace(mut self, trace: crate::obs::TraceSink) -> Self {
        if let Some(obs) = trace.net_observer() {
            self.sched.set_observer(obs);
        }
        self.trace = trace;
        self
    }

    /// Installs the query's flight-recorder handle.
    pub fn with_recorder(mut self, recorder: crate::obs::QueryRecorder) -> Self {
        self.recorder = recorder;
        self
    }
}

/// The outcome of one non-blocking pull (the overlapped schedule's
/// currency). Generic so the reference executor can reuse it for its
/// term-row currency.
#[derive(Debug, Clone, PartialEq)]
pub enum Poll<T> {
    /// A solution is available now.
    Ready(T),
    /// No solution yet: the earliest event that could unblock this
    /// operator completes at the carried [`EventTime`] (strictly in the
    /// future — a due event is consumed by the poll that observes it).
    Pending(EventTime),
    /// The stream is exhausted.
    Done,
}

/// Chain terminator for the vectorized join's arena-row links.
const NO_ROW: u32 = u32::MAX;

/// The smaller of two optional pending events.
pub(crate) fn earlier(a: Option<EventTime>, b: EventTime) -> Option<EventTime> {
    Some(match a {
        Some(a) => a.min(b),
        None => b,
    })
}

/// A pull-based operator.
pub trait FedOp {
    /// Produces the next solution, advancing the clock by the work done.
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<SlotRow>, FedError>;

    /// Non-blocking pull for the overlapped schedule: either yields a row,
    /// reports the earliest in-flight event it is waiting on, or is done.
    ///
    /// The default delegates to [`FedOp::next`], which is correct only for
    /// operators that never wait on source I/O (pre-materialized inputs);
    /// every operator above a wrapper stream overrides this.
    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<SlotRow>, FedError> {
        Ok(match self.next(ctx)? {
            Some(row) => Poll::Ready(row),
            None => Poll::Done,
        })
    }

    /// Produces the next morsel of up to `max` solutions under the
    /// serialized schedule. `Some(batch)` is never empty; `None` means the
    /// stream is exhausted.
    ///
    /// The default gathers consecutive [`FedOp::next`] pulls, which keeps
    /// the pull order — and therefore every per-link transfer sequence and
    /// clock charge — literally identical to row-at-a-time execution.
    /// Vectorized operators override this to move whole batches instead.
    fn next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        max: usize,
    ) -> Result<Option<RowBatch>, FedError> {
        let mut batch: Option<RowBatch> = None;
        for _ in 0..max.max(1) {
            match self.next(ctx)? {
                Some(row) => batch
                    .get_or_insert_with(|| {
                        RowBatch::with_capacity(row.slots().len(), max.max(1))
                    })
                    .push_row(&row),
                None => break,
            }
        }
        Ok(batch)
    }

    /// Non-blocking batched pull for the overlapped schedule. `Ready`
    /// batches are never empty.
    ///
    /// The default forwards a single [`FedOp::poll_next`], so an operator
    /// without an override degenerates to one-row batches. That is not a
    /// shortcut but the determinism contract: the adaptive operators
    /// (joins, UNION) interleave their children's clock charges with the
    /// per-link launch times row by row, so consuming a child's chunk
    /// mid-alternation would shift when the next message launches.
    /// Batches wider than one row flow only through linear chains —
    /// wrapper stream → FILTER/PROJECT/DISTINCT — where every charge of a
    /// chunk lands before the next poll either way.
    fn poll_next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        _max: usize,
    ) -> Result<Poll<RowBatch>, FedError> {
        Ok(match self.poll_next(ctx)? {
            Poll::Ready(row) => Poll::Ready(RowBatch::from_row(&row)),
            Poll::Pending(ev) => Poll::Pending(ev),
            Poll::Done => Poll::Done,
        })
    }
}

/// Drains up to `max` buffered rows into one batch (`width` slots).
pub(crate) fn drain_into_batch(
    out: &mut VecDeque<SlotRow>,
    width: usize,
    max: usize,
) -> RowBatch {
    let n = out.len().min(max.max(1));
    let mut batch = RowBatch::with_capacity(width, n);
    for _ in 0..n {
        let row = out.pop_front().expect("n <= out.len()");
        batch.push_row(&row);
    }
    batch
}

/// A boxed operator (streams borrow the lake, hence the lifetime).
pub type BoxedOp<'a> = Box<dyn FedOp + 'a>;

fn key_of(row: &SlotRow, on_slots: &[usize]) -> Option<Box<[TermId]>> {
    on_slots.iter().map(|&s| row.get(s)).collect()
}

/// The ANAPSID-style symmetric hash join.
///
/// Both inputs are consumed in alternation; every arriving row is inserted
/// into its side's hash table and immediately probed against the other
/// side, so results stream out as soon as both matching rows have arrived.
/// Keys are id arrays, so probing never compares strings.
pub struct SymHashJoin<'a> {
    left: BoxedOp<'a>,
    right: BoxedOp<'a>,
    on_slots: Vec<usize>,
    left_table: FastMap<Box<[TermId]>, Vec<SlotRow>>,
    right_table: FastMap<Box<[TermId]>, Vec<SlotRow>>,
    // Vectorized-path build storage: arrived rows live width-strided in a
    // flat arena per side, and the index maps join keys to arena row
    // numbers. Keeping this separate from the row-path tables lets the
    // batch path insert a row as one contiguous id copy instead of an
    // owned `SlotRow` allocation.
    left_arena: Vec<TermId>,
    right_arena: Vec<TermId>,
    // The index chains arena rows sharing a join key in arrival order:
    // the map holds the chain's (first, last) arena row and `links[row]`
    // is the next row with the same key (`NO_ROW` ends the chain). Probing
    // walks first→last, so match order is the row path's insertion order,
    // and inserting never allocates beyond the boxed key of a first-seen
    // join key.
    left_index: FastMap<Box<[TermId]>, (u32, u32)>,
    right_index: FastMap<Box<[TermId]>, (u32, u32)>,
    left_links: Vec<u32>,
    right_links: Vec<u32>,
    key_scratch: Vec<TermId>,
    left_done: bool,
    right_done: bool,
    pull_left: bool,
    left_wait: Option<EventTime>,
    right_wait: Option<EventTime>,
    out: VecDeque<SlotRow>,
}

impl<'a> SymHashJoin<'a> {
    /// Creates a join of `left` and `right` on the slots `on_slots`
    /// (empty degenerates to a cartesian product).
    pub fn new(left: BoxedOp<'a>, right: BoxedOp<'a>, on_slots: Vec<usize>) -> Self {
        SymHashJoin {
            left,
            right,
            on_slots,
            left_table: FastMap::default(),
            right_table: FastMap::default(),
            left_arena: Vec::new(),
            right_arena: Vec::new(),
            left_index: FastMap::default(),
            right_index: FastMap::default(),
            left_links: Vec::new(),
            right_links: Vec::new(),
            key_scratch: Vec::new(),
            left_done: false,
            right_done: false,
            pull_left: true,
            left_wait: None,
            right_wait: None,
            out: VecDeque::new(),
        }
    }

    fn insert_and_probe(&mut self, row: SlotRow, from_left: bool, ctx: &mut ExecCtx) {
        ctx.stats.engine_join_probes += 1;
        ctx.clock.advance(ctx.cost.engine_join_time(1));
        let Some(key) = key_of(&row, &self.on_slots) else {
            // A row not binding every join variable can never match.
            return;
        };
        let (own, other) = if from_left {
            (&mut self.left_table, &self.right_table)
        } else {
            (&mut self.right_table, &self.left_table)
        };
        if let Some(matches) = other.get(&key) {
            for m in matches {
                if let Some(merged) = row.merge(m) {
                    ctx.clock.advance(ctx.cost.engine_row_time(1));
                    self.out.push_back(merged);
                }
            }
        }
        own.entry(key).or_default().push(row);
    }

    /// Inserts and probes every selected row of `batch`, appending matches
    /// to `out` and charging exactly what the same rows would charge one
    /// at a time. Build rows are copied into the side's flat arena and
    /// matches are merged straight into `out`'s column buffers, so the
    /// only per-row allocation left is the boxed key of a first-seen join
    /// key.
    fn probe_batch(
        &mut self,
        batch: &RowBatch,
        from_left: bool,
        ctx: &mut ExecCtx,
        out: &mut RowBatch,
    ) {
        let width = batch.width();
        // Clock charges are coalesced: n probes (and later m merges) cost
        // exactly n × engine_join_time(1) + m × engine_row_time(1), and
        // Duration arithmetic is exact integer nanoseconds, so one bulk
        // advance equals the row executor's per-row advances to the nanosecond.
        // Nothing observes the clock between rows of one probed batch.
        let mut probes = 0u32;
        let mut merges = 0u32;
        for i in batch.selected() {
            ctx.stats.engine_join_probes += 1;
            probes += 1;
            self.key_scratch.clear();
            let mut bound = true;
            for &s in &self.on_slots {
                match batch.get(i, s) {
                    Some(id) => self.key_scratch.push(id),
                    None => {
                        // A row not binding every join variable can never
                        // match.
                        bound = false;
                        break;
                    }
                }
            }
            if !bound {
                continue;
            }
            let (own_arena, own_index, own_links, other_arena, other_index, other_links) =
                if from_left {
                    (
                        &mut self.left_arena,
                        &mut self.left_index,
                        &mut self.left_links,
                        &self.right_arena,
                        &self.right_index,
                        &self.right_links,
                    )
                } else {
                    (
                        &mut self.right_arena,
                        &mut self.right_index,
                        &mut self.right_links,
                        &self.left_arena,
                        &self.left_index,
                        &self.left_links,
                    )
                };
            if let Some(&(first, _)) = other_index.get(self.key_scratch.as_slice()) {
                let mut m = first;
                while m != NO_ROW {
                    let stored = &other_arena[m as usize * width..(m as usize + 1) * width];
                    if out.push_merge_from(batch, i, stored) {
                        merges += 1;
                    }
                    m = other_links[m as usize];
                }
            }
            let idx = (own_arena.len() / width.max(1)) as u32;
            for s in 0..width {
                own_arena.push(batch.col(s)[i]);
            }
            own_links.push(NO_ROW);
            match own_index.get_mut(self.key_scratch.as_slice()) {
                Some((_, last)) => {
                    own_links[*last as usize] = idx;
                    *last = idx;
                }
                None => {
                    own_index.insert(self.key_scratch.clone().into_boxed_slice(), (idx, idx));
                }
            }
        }
        if probes > 0 {
            ctx.clock.advance(ctx.cost.engine_join_time(1) * probes);
        }
        if merges > 0 {
            ctx.clock.advance(ctx.cost.engine_row_time(1) * merges);
        }
    }
}

impl FedOp for SymHashJoin<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<SlotRow>, FedError> {
        loop {
            if let Some(row) = self.out.pop_front() {
                return Ok(Some(row));
            }
            if self.left_done && self.right_done {
                return Ok(None);
            }
            // Alternate between inputs while both still produce — the
            // adaptive behaviour that makes answers stream out early.
            let take_left = if self.left_done {
                false
            } else if self.right_done {
                true
            } else {
                self.pull_left
            };
            self.pull_left = !self.pull_left;
            if take_left {
                match self.left.next(ctx)? {
                    Some(row) => self.insert_and_probe(row, true, ctx),
                    None => self.left_done = true,
                }
            } else {
                match self.right.next(ctx)? {
                    Some(row) => self.insert_and_probe(row, false, ctx),
                    None => self.right_done = true,
                }
            }
        }
    }

    /// ANAPSID's adaptivity proper: instead of strict alternation, consume
    /// from *whichever* input has a row ready at the current virtual time,
    /// and only report Pending when both inputs are stalled on in-flight
    /// transfers. Re-poll order follows the children's last-reported
    /// Pending events by `(time, seq)`: the child whose in-flight event is
    /// due first is re-polled first, and a child with nothing in flight
    /// goes first in structural order — pinning the schedule even when two
    /// events share a completion time.
    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<SlotRow>, FedError> {
        loop {
            if let Some(row) = self.out.pop_front() {
                return Ok(Poll::Ready(row));
            }
            if self.left_done && self.right_done {
                return Ok(Poll::Done);
            }
            let left_first = match (self.left_wait, self.right_wait) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(l), Some(r)) => l <= r,
            };
            let mut progressed = false;
            let mut wait: Option<EventTime> = None;
            let order = if left_first { [true, false] } else { [false, true] };
            for is_left in order {
                let done = if is_left { self.left_done } else { self.right_done };
                if done {
                    continue;
                }
                let side = if is_left { &mut self.left } else { &mut self.right };
                match side.poll_next(ctx)? {
                    Poll::Ready(row) => {
                        if is_left {
                            self.left_wait = None;
                        } else {
                            self.right_wait = None;
                        }
                        self.insert_and_probe(row, is_left, ctx);
                        progressed = true;
                    }
                    Poll::Pending(ev) => {
                        if is_left {
                            self.left_wait = Some(ev);
                        } else {
                            self.right_wait = Some(ev);
                        }
                        wait = earlier(wait, ev);
                    }
                    Poll::Done => {
                        if is_left {
                            self.left_wait = None;
                            self.left_done = true;
                        } else {
                            self.right_wait = None;
                            self.right_done = true;
                        }
                        progressed = true;
                    }
                }
            }
            if !progressed {
                if let Some(ev) = wait {
                    // The second child's poll can advance the clock past an
                    // event the first child reported earlier in this round
                    // (e.g. a filter charging for discarded rows). A due
                    // event must be consumed by its owner, so go around
                    // again instead of surfacing a stale Pending.
                    if ev.time > ctx.clock.now() {
                        return Ok(Poll::Pending(ev));
                    }
                }
            }
        }
    }

    /// Serialized vectorized pull: the same chunk-granular alternation as
    /// [`FedOp::next`], but whole child batches are inserted and probed
    /// per call. Chunk alternation preserves each link's transfer order
    /// (a stream's batch never spans a message chunk), and every clock
    /// charge commutes, so the final clock and all counters match the
    /// row-at-a-time executor exactly.
    fn next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        max: usize,
    ) -> Result<Option<RowBatch>, FedError> {
        loop {
            if !self.out.is_empty() {
                return Ok(Some(drain_into_batch(&mut self.out, ctx.schema.len(), max)));
            }
            if self.left_done && self.right_done {
                return Ok(None);
            }
            let take_left = if self.left_done {
                false
            } else if self.right_done {
                true
            } else {
                self.pull_left
            };
            self.pull_left = !self.pull_left;
            // One child batch can expand to more than `max` matches; the
            // whole probe result goes out as one batch — `max` bounds the
            // pull granularity, not the join multiplicity. Columns start
            // at capacity zero: most probe rounds emit nothing.
            let mut produced = RowBatch::with_capacity(ctx.schema.len(), 0);
            if take_left {
                match self.left.next_batch(ctx, max)? {
                    Some(batch) => self.probe_batch(&batch, true, ctx, &mut produced),
                    None => self.left_done = true,
                }
            } else {
                match self.right.next_batch(ctx, max)? {
                    Some(batch) => self.probe_batch(&batch, false, ctx, &mut produced),
                    None => self.right_done = true,
                }
            }
            if !produced.is_empty() {
                return Ok(Some(produced));
            }
        }
    }
}

/// Streaming left join (for `OPTIONAL`): matched pairs stream out as soon
/// as both sides arrive; left rows that never matched are emitted
/// unextended once both inputs drain.
pub struct LeftHashJoin<'a> {
    left: BoxedOp<'a>,
    right: BoxedOp<'a>,
    on_slots: Vec<usize>,
    left_rows: Vec<(SlotRow, bool)>, // (row, matched)
    left_table: FastMap<Box<[TermId]>, Vec<usize>>,
    right_table: FastMap<Box<[TermId]>, Vec<SlotRow>>,
    left_done: bool,
    right_done: bool,
    pull_left: bool,
    left_wait: Option<EventTime>,
    right_wait: Option<EventTime>,
    out: VecDeque<SlotRow>,
    flushed: bool,
}

impl<'a> LeftHashJoin<'a> {
    /// Creates a left join of `left` (required) and `right` (optional) on
    /// the slots `on_slots`.
    pub fn new(left: BoxedOp<'a>, right: BoxedOp<'a>, on_slots: Vec<usize>) -> Self {
        LeftHashJoin {
            left,
            right,
            on_slots,
            left_rows: Vec::new(),
            left_table: FastMap::default(),
            right_table: FastMap::default(),
            left_done: false,
            right_done: false,
            pull_left: true,
            left_wait: None,
            right_wait: None,
            out: VecDeque::new(),
            flushed: false,
        }
    }

    fn take_left(&mut self, row: SlotRow, ctx: &mut ExecCtx) {
        ctx.stats.engine_join_probes += 1;
        ctx.clock.advance(ctx.cost.engine_join_time(1));
        let idx = self.left_rows.len();
        let key = key_of(&row, &self.on_slots);
        let mut matched = false;
        if let Some(key) = &key {
            if let Some(matches) = self.right_table.get(key) {
                for m in matches {
                    if let Some(merged) = row.merge(m) {
                        matched = true;
                        ctx.clock.advance(ctx.cost.engine_row_time(1));
                        self.out.push_back(merged);
                    }
                }
            }
            self.left_table.entry(key.clone()).or_default().push(idx);
        }
        // A left row not binding every join variable can never match a
        // (fully-bound) right row; it will flush unextended.
        self.left_rows.push((row, matched));
    }

    fn take_right(&mut self, row: SlotRow, ctx: &mut ExecCtx) {
        ctx.stats.engine_join_probes += 1;
        ctx.clock.advance(ctx.cost.engine_join_time(1));
        let Some(key) = key_of(&row, &self.on_slots) else { return };
        if let Some(left_idxs) = self.left_table.get(&key) {
            for &i in left_idxs {
                let (lrow, matched) = &mut self.left_rows[i];
                if let Some(merged) = lrow.merge(&row) {
                    *matched = true;
                    ctx.clock.advance(ctx.cost.engine_row_time(1));
                    self.out.push_back(merged);
                }
            }
        }
        self.right_table.entry(key).or_default().push(row);
    }

    /// Batched [`LeftHashJoin::take_left`]/[`LeftHashJoin::take_right`]
    /// with identical per-row charges.
    fn take_batch(&mut self, batch: &RowBatch, from_left: bool, ctx: &mut ExecCtx) {
        for i in batch.selected() {
            let row = batch.to_slot_row(i);
            if from_left {
                self.take_left(row, ctx);
            } else {
                self.take_right(row, ctx);
            }
        }
    }
}

impl FedOp for LeftHashJoin<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<SlotRow>, FedError> {
        loop {
            if let Some(row) = self.out.pop_front() {
                return Ok(Some(row));
            }
            if self.left_done && self.right_done {
                if !self.flushed {
                    self.flushed = true;
                    for (row, matched) in &self.left_rows {
                        if !matched {
                            self.out.push_back(row.clone());
                        }
                    }
                    continue;
                }
                return Ok(None);
            }
            let take_left = if self.left_done {
                false
            } else if self.right_done {
                true
            } else {
                self.pull_left
            };
            self.pull_left = !self.pull_left;
            if take_left {
                match self.left.next(ctx)? {
                    Some(row) => self.take_left(row, ctx),
                    None => self.left_done = true,
                }
            } else {
                match self.right.next(ctx)? {
                    Some(row) => self.take_right(row, ctx),
                    None => self.right_done = true,
                }
            }
        }
    }

    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<SlotRow>, FedError> {
        loop {
            if let Some(row) = self.out.pop_front() {
                return Ok(Poll::Ready(row));
            }
            if self.left_done && self.right_done {
                if !self.flushed {
                    self.flushed = true;
                    for (row, matched) in &self.left_rows {
                        if !matched {
                            self.out.push_back(row.clone());
                        }
                    }
                    continue;
                }
                return Ok(Poll::Done);
            }
            // Same `(time, seq)` re-poll order as SymHashJoin: the child
            // whose last-reported Pending event is due first goes first.
            let left_first = match (self.left_wait, self.right_wait) {
                (None, _) => true,
                (Some(_), None) => false,
                (Some(l), Some(r)) => l <= r,
            };
            let mut progressed = false;
            let mut wait: Option<EventTime> = None;
            let order = if left_first { [true, false] } else { [false, true] };
            for is_left in order {
                let done = if is_left { self.left_done } else { self.right_done };
                if done {
                    continue;
                }
                let side = if is_left { &mut self.left } else { &mut self.right };
                match side.poll_next(ctx)? {
                    Poll::Ready(row) => {
                        if is_left {
                            self.left_wait = None;
                            self.take_left(row, ctx);
                        } else {
                            self.right_wait = None;
                            self.take_right(row, ctx);
                        }
                        progressed = true;
                    }
                    Poll::Pending(ev) => {
                        if is_left {
                            self.left_wait = Some(ev);
                        } else {
                            self.right_wait = Some(ev);
                        }
                        wait = earlier(wait, ev);
                    }
                    Poll::Done => {
                        if is_left {
                            self.left_wait = None;
                            self.left_done = true;
                        } else {
                            self.right_wait = None;
                            self.right_done = true;
                        }
                        progressed = true;
                    }
                }
            }
            if !progressed {
                if let Some(ev) = wait {
                    // The second child's poll can advance the clock past an
                    // event the first child reported earlier in this round
                    // (e.g. a filter charging for discarded rows). A due
                    // event must be consumed by its owner, so go around
                    // again instead of surfacing a stale Pending.
                    if ev.time > ctx.clock.now() {
                        return Ok(Poll::Pending(ev));
                    }
                }
            }
        }
    }

    /// Serialized vectorized pull; see [`SymHashJoin::next_batch`] for the
    /// equivalence argument (the unmatched-left flush adds no charges, so
    /// it commutes trivially).
    fn next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        max: usize,
    ) -> Result<Option<RowBatch>, FedError> {
        loop {
            if !self.out.is_empty() {
                return Ok(Some(drain_into_batch(&mut self.out, ctx.schema.len(), max)));
            }
            if self.left_done && self.right_done {
                if !self.flushed {
                    self.flushed = true;
                    for (row, matched) in &self.left_rows {
                        if !matched {
                            self.out.push_back(row.clone());
                        }
                    }
                    continue;
                }
                return Ok(None);
            }
            let take_left = if self.left_done {
                false
            } else if self.right_done {
                true
            } else {
                self.pull_left
            };
            self.pull_left = !self.pull_left;
            if take_left {
                match self.left.next_batch(ctx, max)? {
                    Some(batch) => self.take_batch(&batch, true, ctx),
                    None => self.left_done = true,
                }
            } else {
                match self.right.next_batch(ctx, max)? {
                    Some(batch) => self.take_batch(&batch, false, ctx),
                    None => self.right_done = true,
                }
            }
        }
    }
}

/// Engine-level conjunctive filter. Evaluation resolves ids to terms
/// lazily through the query interner only where a value comparison needs
/// them.
pub struct FilterOp<'a> {
    input: BoxedOp<'a>,
    exprs: Vec<Expr>,
}

impl<'a> FilterOp<'a> {
    /// Creates a filter over `input`.
    pub fn new(input: BoxedOp<'a>, exprs: Vec<Expr>) -> Self {
        FilterOp { input, exprs }
    }

    /// Evaluates the conjunction over every selected row, narrowing the
    /// batch's selection vector in place. Charges and counts exactly what
    /// per-row evaluation would (every row is evaluated either way), but
    /// takes the interner lock once per batch instead of once per row.
    /// Returns `false` when no row survived.
    fn filter_batch(&self, batch: &mut RowBatch, ctx: &mut ExecCtx) -> bool {
        let n = batch.len();
        ctx.stats.engine_filter_evals += self.exprs.len() as u64 * n as u64;
        ctx.clock
            .advance(ctx.cost.engine_filter_time(self.exprs.len() as u64) * n as u32);
        let schema = Arc::clone(&ctx.schema);
        let dict = ctx.interner.lock();
        let mut scratch = SlotRow::unbound(batch.width());
        let mut sel: Vec<u32> = Vec::with_capacity(n);
        for i in batch.selected() {
            batch.read_row(i, &mut scratch);
            if self.exprs.iter().all(|e| e.test_slots(&scratch, &schema, &dict)) {
                sel.push(i as u32);
            }
        }
        drop(dict);
        let keep = !sel.is_empty();
        batch.set_sel(sel);
        keep
    }
}

impl FedOp for FilterOp<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<SlotRow>, FedError> {
        while let Some(row) = self.input.next(ctx)? {
            ctx.stats.engine_filter_evals += self.exprs.len() as u64;
            ctx.clock
                .advance(ctx.cost.engine_filter_time(self.exprs.len() as u64));
            let schema = Arc::clone(&ctx.schema);
            let dict = ctx.interner.lock();
            if self.exprs.iter().all(|e| e.test_slots(&row, &schema, &dict)) {
                drop(dict);
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<SlotRow>, FedError> {
        loop {
            match self.input.poll_next(ctx)? {
                Poll::Ready(row) => {
                    ctx.stats.engine_filter_evals += self.exprs.len() as u64;
                    ctx.clock
                        .advance(ctx.cost.engine_filter_time(self.exprs.len() as u64));
                    let schema = Arc::clone(&ctx.schema);
                    let dict = ctx.interner.lock();
                    if self.exprs.iter().all(|e| e.test_slots(&row, &schema, &dict)) {
                        drop(dict);
                        return Ok(Poll::Ready(row));
                    }
                }
                Poll::Pending(ev) => return Ok(Poll::Pending(ev)),
                Poll::Done => return Ok(Poll::Done),
            }
        }
    }

    fn next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        max: usize,
    ) -> Result<Option<RowBatch>, FedError> {
        while let Some(mut batch) = self.input.next_batch(ctx, max)? {
            if self.filter_batch(&mut batch, ctx) {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }

    fn poll_next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        max: usize,
    ) -> Result<Poll<RowBatch>, FedError> {
        loop {
            match self.input.poll_next_batch(ctx, max)? {
                Poll::Ready(mut batch) => {
                    if self.filter_batch(&mut batch, ctx) {
                        return Ok(Poll::Ready(batch));
                    }
                }
                Poll::Pending(ev) => return Ok(Poll::Pending(ev)),
                Poll::Done => return Ok(Poll::Done),
            }
        }
    }
}

/// Union: drains its branches in order (sources answer independently).
pub struct UnionOp<'a> {
    branches: VecDeque<BoxedOp<'a>>,
    waits: Vec<Option<EventTime>>,
}

impl<'a> UnionOp<'a> {
    /// Creates a union of `branches`.
    pub fn new(branches: Vec<BoxedOp<'a>>) -> Self {
        let waits = vec![None; branches.len()];
        UnionOp { branches: branches.into(), waits }
    }
}

impl FedOp for UnionOp<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<SlotRow>, FedError> {
        while let Some(front) = self.branches.front_mut() {
            match front.next(ctx)? {
                Some(row) => return Ok(Some(row)),
                None => {
                    self.branches.pop_front();
                }
            }
        }
        Ok(None)
    }

    /// Overlapped: emit from whichever branch is ready first instead of
    /// draining branches in order. Re-poll order follows each branch's
    /// last-reported Pending event by `(time, seq)` — branches with
    /// nothing in flight go first in structural order — pinning the
    /// schedule even when two events share a completion time.
    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<SlotRow>, FedError> {
        loop {
            if self.branches.is_empty() {
                return Ok(Poll::Done);
            }
            let mut order: Vec<usize> = (0..self.branches.len()).collect();
            // `None < Some`, so unwaited branches lead; the stable sort
            // keeps structural order among them.
            order.sort_by_key(|&i| self.waits[i]);
            let mut wait: Option<EventTime> = None;
            let mut progressed = false;
            let mut finished: Vec<usize> = Vec::new();
            for &i in &order {
                match self.branches[i].poll_next(ctx)? {
                    Poll::Ready(row) => {
                        self.waits[i] = None;
                        return Ok(Poll::Ready(row));
                    }
                    Poll::Pending(ev) => {
                        self.waits[i] = Some(ev);
                        wait = earlier(wait, ev);
                    }
                    Poll::Done => {
                        finished.push(i);
                        progressed = true;
                    }
                }
            }
            finished.sort_unstable_by(|a, b| b.cmp(a));
            for i in finished {
                self.branches.remove(i);
                self.waits.remove(i);
            }
            if !progressed {
                if let Some(ev) = wait {
                    // The second child's poll can advance the clock past an
                    // event the first child reported earlier in this round
                    // (e.g. a filter charging for discarded rows). A due
                    // event must be consumed by its owner, so go around
                    // again instead of surfacing a stale Pending.
                    if ev.time > ctx.clock.now() {
                        return Ok(Poll::Pending(ev));
                    }
                }
            }
        }
    }

    /// Serialized vectorized pull: batches stream out of the front branch,
    /// preserving the branch order (and so every pull) of [`FedOp::next`].
    fn next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        max: usize,
    ) -> Result<Option<RowBatch>, FedError> {
        while let Some(front) = self.branches.front_mut() {
            match front.next_batch(ctx, max)? {
                Some(batch) => return Ok(Some(batch)),
                None => {
                    self.branches.pop_front();
                }
            }
        }
        Ok(None)
    }
}

/// Projection to the query's selected variables: a slot remap that copies
/// the kept ids into a fresh all-unbound row of the same width.
pub struct ProjectOp<'a> {
    input: BoxedOp<'a>,
    keep_slots: Vec<usize>,
}

impl<'a> ProjectOp<'a> {
    /// Creates a projection keeping only `keep_slots`.
    pub fn new(input: BoxedOp<'a>, keep_slots: Vec<usize>) -> Self {
        ProjectOp { input, keep_slots }
    }
}

impl ProjectOp<'_> {
    fn remap(&self, row: SlotRow, ctx: &mut ExecCtx) -> SlotRow {
        ctx.clock.advance(ctx.cost.engine_row_time(1));
        let mut out = SlotRow::unbound(ctx.schema.len());
        for &s in &self.keep_slots {
            if let Some(id) = row.get(s) {
                out.set(s, id);
            }
        }
        out
    }

    /// Columnar remap: compacts the kept columns through the selection in
    /// place, blanks the dropped ones, and charges exactly one row's work
    /// per selected row — the same total as [`ProjectOp::remap`] row by
    /// row, with no allocation.
    fn remap_batch(&self, batch: RowBatch, ctx: &mut ExecCtx) -> RowBatch {
        let n = batch.len();
        ctx.clock.advance(ctx.cost.engine_row_time(1) * n as u32);
        batch.remap_owned(&self.keep_slots)
    }
}

impl FedOp for ProjectOp<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<SlotRow>, FedError> {
        match self.input.next(ctx)? {
            Some(row) => Ok(Some(self.remap(row, ctx))),
            None => Ok(None),
        }
    }

    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<SlotRow>, FedError> {
        Ok(match self.input.poll_next(ctx)? {
            Poll::Ready(row) => Poll::Ready(self.remap(row, ctx)),
            Poll::Pending(ev) => Poll::Pending(ev),
            Poll::Done => Poll::Done,
        })
    }

    fn next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        max: usize,
    ) -> Result<Option<RowBatch>, FedError> {
        Ok(self
            .input
            .next_batch(ctx, max)?
            .map(|batch| self.remap_batch(batch, ctx)))
    }

    fn poll_next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        max: usize,
    ) -> Result<Poll<RowBatch>, FedError> {
        Ok(match self.input.poll_next_batch(ctx, max)? {
            Poll::Ready(batch) => Poll::Ready(self.remap_batch(batch, ctx)),
            Poll::Pending(ev) => Poll::Pending(ev),
            Poll::Done => Poll::Done,
        })
    }
}

/// Streaming duplicate elimination over fixed-width id arrays.
pub struct DistinctOp<'a> {
    input: BoxedOp<'a>,
    seen: FastSet<SlotRow>,
}

impl<'a> DistinctOp<'a> {
    /// Creates a distinct operator.
    pub fn new(input: BoxedOp<'a>) -> Self {
        DistinctOp { input, seen: FastSet::default() }
    }

    /// Dedups a whole batch against (and into) the seen-set, narrowing
    /// its selection vector to the first occurrences. Lookups hash the
    /// gathered slot array directly; only genuinely new rows allocate —
    /// the same allocations the row-at-a-time path makes. Returns `false`
    /// when every row was a duplicate.
    fn dedup_batch(&mut self, batch: &mut RowBatch, ctx: &mut ExecCtx) -> bool {
        let n = batch.len();
        ctx.clock.advance(ctx.cost.engine_row_time(1) * n as u32);
        let mut scratch = SlotRow::unbound(batch.width());
        let mut sel: Vec<u32> = Vec::with_capacity(n);
        for i in batch.selected() {
            batch.read_row(i, &mut scratch);
            let ids: &[TermId] = scratch.slots();
            if !self.seen.contains(ids) {
                self.seen.insert(scratch.clone());
                sel.push(i as u32);
            }
        }
        let keep = !sel.is_empty();
        batch.set_sel(sel);
        keep
    }
}

impl FedOp for DistinctOp<'_> {
    fn next(&mut self, ctx: &mut ExecCtx) -> Result<Option<SlotRow>, FedError> {
        while let Some(row) = self.input.next(ctx)? {
            ctx.clock.advance(ctx.cost.engine_row_time(1));
            if self.seen.insert(row.clone()) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn poll_next(&mut self, ctx: &mut ExecCtx) -> Result<Poll<SlotRow>, FedError> {
        loop {
            match self.input.poll_next(ctx)? {
                Poll::Ready(row) => {
                    ctx.clock.advance(ctx.cost.engine_row_time(1));
                    if self.seen.insert(row.clone()) {
                        return Ok(Poll::Ready(row));
                    }
                }
                Poll::Pending(ev) => return Ok(Poll::Pending(ev)),
                Poll::Done => return Ok(Poll::Done),
            }
        }
    }

    fn next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        max: usize,
    ) -> Result<Option<RowBatch>, FedError> {
        while let Some(mut batch) = self.input.next_batch(ctx, max)? {
            if self.dedup_batch(&mut batch, ctx) {
                return Ok(Some(batch));
            }
        }
        Ok(None)
    }

    fn poll_next_batch(
        &mut self,
        ctx: &mut ExecCtx,
        max: usize,
    ) -> Result<Poll<RowBatch>, FedError> {
        loop {
            match self.input.poll_next_batch(ctx, max)? {
                Poll::Ready(mut batch) => {
                    if self.dedup_batch(&mut batch, ctx) {
                        return Ok(Poll::Ready(batch));
                    }
                }
                Poll::Pending(ev) => return Ok(Poll::Pending(ev)),
                Poll::Done => return Ok(Poll::Done),
            }
        }
    }
}

/// A pre-materialized input (used in tests and by the sort path).
pub struct RowsOp {
    rows: VecDeque<SlotRow>,
}

impl RowsOp {
    /// Wraps a row vector.
    pub fn new(rows: Vec<SlotRow>) -> Self {
        RowsOp { rows: rows.into() }
    }
}

impl FedOp for RowsOp {
    fn next(&mut self, _ctx: &mut ExecCtx) -> Result<Option<SlotRow>, FedError> {
        Ok(self.rows.pop_front())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlake_netsim::clock::shared_virtual;
    use fedlake_rdf::Term;
    use fedlake_sparql::binding::{encode_row, Row, Var};
    use fedlake_sparql::expr::CmpOp;

    const VARS: [&str; 5] = ["a", "b", "j", "n", "x"];

    fn ctx() -> ExecCtx {
        ExecCtx::new(
            shared_virtual(),
            CostModel::default(),
            Arc::new(RowSchema::new(VARS.map(Var::new))),
            SharedInterner::new(),
        )
    }

    fn enc(ctx: &ExecCtx, row: &Row) -> SlotRow {
        encode_row(row, &ctx.schema, &mut ctx.interner.lock())
    }

    fn row(ctx: &ExecCtx, pairs: &[(&str, &str)]) -> SlotRow {
        let mut r = Row::new();
        for (v, t) in pairs {
            r.bind(Var::new(*v), Term::iri(format!("http://x/{t}")));
        }
        enc(ctx, &r)
    }

    fn slot(name: &str) -> usize {
        VARS.iter().position(|v| *v == name).unwrap()
    }

    fn drain(op: &mut dyn FedOp, ctx: &mut ExecCtx) -> Vec<SlotRow> {
        let mut out = Vec::new();
        while let Some(r) = op.next(ctx).unwrap() {
            out.push(r);
        }
        out
    }

    #[test]
    fn sym_hash_join_matches() {
        let mut c = ctx();
        let left = RowsOp::new(vec![
            row(&c, &[("a", "1"), ("j", "x")]),
            row(&c, &[("a", "2"), ("j", "y")]),
        ]);
        let right = RowsOp::new(vec![
            row(&c, &[("b", "3"), ("j", "x")]),
            row(&c, &[("b", "4"), ("j", "z")]),
        ]);
        let mut j = SymHashJoin::new(Box::new(left), Box::new(right), vec![slot("j")]);
        let out = drain(&mut j, &mut c);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bound_count(), 3);
        assert!(c.stats.engine_join_probes >= 4);
        assert!(c.clock.now() > std::time::Duration::ZERO);
    }

    #[test]
    fn sym_hash_join_duplicates() {
        let mut c = ctx();
        let left = RowsOp::new(vec![row(&c, &[("a", "1"), ("j", "x")]); 2]);
        let right = RowsOp::new(vec![row(&c, &[("b", "2"), ("j", "x")]); 3]);
        let mut j = SymHashJoin::new(Box::new(left), Box::new(right), vec![slot("j")]);
        assert_eq!(drain(&mut j, &mut c).len(), 6);
    }

    #[test]
    fn empty_on_is_cartesian() {
        let mut c = ctx();
        let left = RowsOp::new(vec![row(&c, &[("a", "1")]), row(&c, &[("a", "2")])]);
        let right = RowsOp::new(vec![row(&c, &[("b", "3")]), row(&c, &[("b", "4")])]);
        let mut j = SymHashJoin::new(Box::new(left), Box::new(right), Vec::new());
        assert_eq!(drain(&mut j, &mut c).len(), 4);
    }

    #[test]
    fn join_emits_before_inputs_drain() {
        // With matching first rows on both sides, the first answer must be
        // available after two pulls — not after both inputs are exhausted.
        let mut c = ctx();
        let left = RowsOp::new(vec![row(&c, &[("j", "x"), ("a", "1")]); 50]);
        let right = RowsOp::new(vec![row(&c, &[("j", "x"), ("b", "1")]); 50]);
        let mut j = SymHashJoin::new(Box::new(left), Box::new(right), vec![slot("j")]);
        let first = j.next(&mut c).unwrap();
        assert!(first.is_some());
        // Only two probes were needed for the first answer.
        assert_eq!(c.stats.engine_join_probes, 2);
    }

    #[test]
    fn left_join_keeps_unmatched_left_rows() {
        let mut c = ctx();
        let left = RowsOp::new(vec![
            row(&c, &[("a", "1"), ("j", "x")]),
            row(&c, &[("a", "2"), ("j", "z")]), // no right match
        ]);
        let right = RowsOp::new(vec![row(&c, &[("b", "3"), ("j", "x")])]);
        let mut j = LeftHashJoin::new(Box::new(left), Box::new(right), vec![slot("j")]);
        let out = drain(&mut j, &mut c);
        assert_eq!(out.len(), 2);
        let matched: Vec<&SlotRow> = out.iter().filter(|r| r.bound_count() == 3).collect();
        let unmatched: Vec<&SlotRow> = out.iter().filter(|r| r.bound_count() == 2).collect();
        assert_eq!(matched.len(), 1);
        assert_eq!(unmatched.len(), 1);
        assert!(!unmatched[0].is_bound(slot("b")));
    }

    #[test]
    fn left_join_multiple_matches_expand() {
        let mut c = ctx();
        let left = RowsOp::new(vec![row(&c, &[("a", "1"), ("j", "x")])]);
        let right = RowsOp::new(vec![
            row(&c, &[("b", "2"), ("j", "x")]),
            row(&c, &[("b", "3"), ("j", "x")]),
        ]);
        let mut j = LeftHashJoin::new(Box::new(left), Box::new(right), vec![slot("j")]);
        let out = drain(&mut j, &mut c);
        // The matched left row expands to both matches; no bare copy.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.bound_count() == 3));
    }

    #[test]
    fn left_join_with_empty_right_passes_everything() {
        let mut c = ctx();
        let left = RowsOp::new(vec![row(&c, &[("a", "1"), ("j", "x")]); 3]);
        let right = RowsOp::new(Vec::new());
        let mut j = LeftHashJoin::new(Box::new(left), Box::new(right), vec![slot("j")]);
        let out = drain(&mut j, &mut c);
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|r| r.bound_count() == 2));
    }

    #[test]
    fn filter_op_counts_evals() {
        let mut c = ctx();
        let input = RowsOp::new(vec![
            enc(&c, &Row::new().with("n", Term::integer(1))),
            enc(&c, &Row::new().with("n", Term::integer(5))),
        ]);
        let expr = Expr::Cmp(
            Box::new(Expr::Var(Var::new("n"))),
            CmpOp::Gt,
            Box::new(Expr::Const(Term::integer(3))),
        );
        let mut f = FilterOp::new(Box::new(input), vec![expr]);
        let out = drain(&mut f, &mut c);
        assert_eq!(out.len(), 1);
        assert_eq!(c.stats.engine_filter_evals, 2);
    }

    #[test]
    fn union_concatenates() {
        let mut c = ctx();
        let a = RowsOp::new(vec![row(&c, &[("x", "1")])]);
        let b = RowsOp::new(vec![row(&c, &[("x", "2")]), row(&c, &[("x", "3")])]);
        let mut u = UnionOp::new(vec![Box::new(a), Box::new(b)]);
        assert_eq!(drain(&mut u, &mut c).len(), 3);
    }

    #[test]
    fn project_and_distinct() {
        let mut c = ctx();
        let input = RowsOp::new(vec![
            row(&c, &[("a", "1"), ("b", "7")]),
            row(&c, &[("a", "1"), ("b", "8")]),
        ]);
        let p = ProjectOp::new(Box::new(input), vec![slot("a")]);
        let mut d = DistinctOp::new(Box::new(p));
        let out = drain(&mut d, &mut c);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].bound_count(), 1);
    }

    #[test]
    fn join_skips_rows_missing_join_var() {
        let mut c = ctx();
        let left = RowsOp::new(vec![row(&c, &[("a", "1")])]); // no ?j
        let right = RowsOp::new(vec![row(&c, &[("j", "x")])]);
        let mut j = SymHashJoin::new(Box::new(left), Box::new(right), vec![slot("j")]);
        assert!(drain(&mut j, &mut c).is_empty());
    }

    fn drain_batches(op: &mut dyn FedOp, ctx: &mut ExecCtx, max: usize) -> Vec<SlotRow> {
        let mut out = Vec::new();
        while let Some(batch) = op.next_batch(ctx, max).unwrap() {
            assert!(!batch.is_empty(), "returned batches are never empty");
            for i in batch.selected() {
                out.push(batch.to_slot_row(i));
            }
        }
        out
    }

    /// One operator tree per call so the row and batch drains see
    /// identical interning orders.
    fn pipeline<'a>(c: &ExecCtx) -> BoxedOp<'a> {
        let left = RowsOp::new(vec![
            row(c, &[("a", "1"), ("j", "x"), ("n", "3")]),
            row(c, &[("a", "2"), ("j", "y"), ("n", "3")]),
            row(c, &[("a", "3"), ("j", "x"), ("n", "3")]),
        ]);
        let right = RowsOp::new(vec![
            row(c, &[("b", "4"), ("j", "x")]),
            row(c, &[("b", "5"), ("j", "y")]),
            row(c, &[("b", "6"), ("j", "x")]),
        ]);
        let join = SymHashJoin::new(Box::new(left), Box::new(right), vec![slot("j")]);
        let expr = Expr::Cmp(
            Box::new(Expr::Var(Var::new("j"))),
            CmpOp::Ne,
            Box::new(Expr::Const(Term::iri("http://x/y"))),
        );
        let filter = FilterOp::new(Box::new(join), vec![expr]);
        let project = ProjectOp::new(Box::new(filter), vec![slot("a"), slot("j")]);
        Box::new(DistinctOp::new(Box::new(project)))
    }

    /// The vectorized pipeline must reproduce the row-at-a-time pipeline
    /// bit for bit: same rows in the same order, same counters, same
    /// final clock — for every batch size, including ones smaller than
    /// the inputs.
    #[test]
    fn batch_pipeline_matches_row_pipeline() {
        let mut row_ctx = ctx();
        let mut op = pipeline(&row_ctx);
        let rows = drain(op.as_mut(), &mut row_ctx);
        assert!(!rows.is_empty());
        for max in [1, 2, 3, 1024] {
            let mut batch_ctx = ctx();
            let mut op = pipeline(&batch_ctx);
            let batched = drain_batches(op.as_mut(), &mut batch_ctx, max);
            assert_eq!(batched, rows, "batch size {max}: rows diverge");
            assert_eq!(batch_ctx.stats, row_ctx.stats, "batch size {max}: stats diverge");
            assert_eq!(
                batch_ctx.clock.now(),
                row_ctx.clock.now(),
                "batch size {max}: clock diverges"
            );
        }
    }

    #[test]
    fn left_join_batches_match_rows() {
        let build = |c: &ExecCtx| {
            let left = RowsOp::new(vec![
                row(c, &[("a", "1"), ("j", "x")]),
                row(c, &[("a", "2"), ("j", "z")]),
            ]);
            let right = RowsOp::new(vec![row(c, &[("b", "3"), ("j", "x")])]);
            LeftHashJoin::new(Box::new(left), Box::new(right), vec![slot("j")])
        };
        let mut row_ctx = ctx();
        let rows = drain(&mut build(&row_ctx), &mut row_ctx);
        let mut batch_ctx = ctx();
        let batched = drain_batches(&mut build(&batch_ctx), &mut batch_ctx, 8);
        assert_eq!(batched, rows);
        assert_eq!(batch_ctx.clock.now(), row_ctx.clock.now());
    }

    #[test]
    fn union_batches_preserve_branch_order() {
        let mut c = ctx();
        let a = RowsOp::new(vec![row(&c, &[("x", "1")]), row(&c, &[("x", "2")])]);
        let b = RowsOp::new(vec![row(&c, &[("x", "3")])]);
        let mut u = UnionOp::new(vec![Box::new(a), Box::new(b)]);
        let out = drain_batches(&mut u, &mut c, 16);
        assert_eq!(out.len(), 3);
        let mut c2 = ctx();
        let a = RowsOp::new(vec![row(&c2, &[("x", "1")]), row(&c2, &[("x", "2")])]);
        let b = RowsOp::new(vec![row(&c2, &[("x", "3")])]);
        let mut u = UnionOp::new(vec![Box::new(a), Box::new(b)]);
        assert_eq!(drain(&mut u, &mut c2), out);
    }

    /// The default overlapped batch poll degenerates to one-row batches —
    /// the adaptive operators must keep their per-row alternation.
    #[test]
    fn default_poll_next_batch_is_single_row() {
        let mut c = ctx();
        let left = RowsOp::new(vec![row(&c, &[("a", "1"), ("j", "x")]); 2]);
        let right = RowsOp::new(vec![row(&c, &[("b", "2"), ("j", "x")]); 2]);
        let mut j = SymHashJoin::new(Box::new(left), Box::new(right), vec![slot("j")]);
        let mut total = 0;
        loop {
            match j.poll_next_batch(&mut c, 1024).unwrap() {
                Poll::Ready(batch) => {
                    assert_eq!(batch.len(), 1, "joins poll one row per batch");
                    total += batch.len();
                }
                Poll::Pending(_) => panic!("pre-materialized inputs never pend"),
                Poll::Done => break,
            }
        }
        assert_eq!(total, 4);
    }
}
