//! Star-shaped query decomposition.
//!
//! Following ANAPSID/MULDER (§2.1), a conjunctive SPARQL query is
//! partitioned into *star-shaped sub-queries* (SSQs): maximal groups of
//! triple patterns sharing the same subject. Filters whose variables are
//! covered by a single SSQ are attached to it (they are candidates for
//! Heuristic 2); the rest stay at the engine level.

use crate::error::FedError;
use fedlake_sparql::ast::{GroupGraphPattern, PatternElement, SelectQuery, TriplePattern, VarOrTerm};
use fedlake_sparql::binding::Var;
use fedlake_sparql::expr::Expr;
use fedlake_rdf::Term;
use std::fmt;

/// The subject shared by an SSQ's triple patterns.
#[derive(Debug, Clone, PartialEq)]
pub enum StarSubject {
    /// A subject variable (the common case).
    Var(Var),
    /// A ground subject term.
    Term(Term),
}

impl fmt::Display for StarSubject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StarSubject::Var(v) => write!(f, "{v}"),
            StarSubject::Term(t) => write!(f, "{t}"),
        }
    }
}

/// A star-shaped sub-query.
#[derive(Debug, Clone, PartialEq)]
pub struct StarSubquery {
    /// The shared subject.
    pub subject: StarSubject,
    /// The star's triple patterns (all with this subject).
    pub triples: Vec<TriplePattern>,
    /// Filters whose variables are all bound by this star. Their placement
    /// (source vs. engine) is what Heuristic 2 decides.
    pub filters: Vec<Expr>,
    /// The star's class, when an `rdf:type` pattern with a ground class is
    /// present.
    pub class: Option<String>,
}

impl StarSubquery {
    /// All variables bound by this star (subject first, then objects).
    pub fn vars(&self) -> Vec<Var> {
        let mut out = Vec::new();
        if let StarSubject::Var(v) = &self.subject {
            out.push(v.clone());
        }
        for t in &self.triples {
            for v in t.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// The star's predicate IRIs (ground predicates only).
    pub fn predicates(&self) -> Vec<&str> {
        self.triples
            .iter()
            .filter_map(|t| t.p.as_term().and_then(Term::as_iri))
            .collect()
    }

    /// True when any predicate position is a variable (precludes
    /// translation to SQL).
    pub fn has_variable_predicate(&self) -> bool {
        self.triples.iter().any(|t| t.p.is_var())
    }

    /// The object variable of the (unique) pattern with predicate `p`.
    pub fn object_var_of(&self, p: &str) -> Option<&Var> {
        self.triples
            .iter()
            .find(|t| t.p.as_term().and_then(Term::as_iri) == Some(p))
            .and_then(|t| t.o.as_var())
    }
}

/// The result of decomposing a query: a required conjunctive part plus
/// zero or more `OPTIONAL` groups (each itself conjunctive).
#[derive(Debug, Clone, PartialEq)]
pub struct Decomposition {
    /// The star-shaped sub-queries, in subject order of first appearance.
    pub stars: Vec<StarSubquery>,
    /// Filters spanning multiple stars — always engine-level.
    pub cross_filters: Vec<Expr>,
    /// `OPTIONAL { … }` groups, decomposed recursively; the engine joins
    /// each with a streaming left join on the shared variables.
    pub optionals: Vec<Decomposition>,
    /// `{ … } UNION { … }` blocks, each a list of branches decomposed
    /// recursively; the engine concatenates branch answers and joins the
    /// block with the rest of the pattern.
    pub unions: Vec<Vec<Decomposition>>,
}

impl Decomposition {
    /// Join variables shared between stars `i` and `j`.
    pub fn shared_vars(&self, i: usize, j: usize) -> Vec<Var> {
        let a = self.stars[i].vars();
        let b = self.stars[j].vars();
        a.into_iter().filter(|v| b.contains(v)).collect()
    }

    /// Variables bound on every answer of the required part: star
    /// variables plus the variables bound by **all** branches of each
    /// union block (optionals bind only conditionally).
    pub fn vars(&self) -> Vec<Var> {
        let mut out: Vec<Var> = Vec::new();
        for s in &self.stars {
            for v in s.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        for block in &self.unions {
            for v in union_block_vars(block) {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }
}

/// The variables every branch of a union block binds.
pub fn union_block_vars(block: &[Decomposition]) -> Vec<Var> {
    let mut iter = block.iter().map(Decomposition::vars);
    let Some(first) = iter.next() else { return Vec::new() };
    iter.fold(first, |acc, branch| {
        acc.into_iter().filter(|v| branch.contains(v)).collect()
    })
}

/// How a query's basic graph pattern is partitioned into sub-queries.
///
/// The paper's engine uses star-shaped decomposition (ANAPSID/MULDER);
/// §5 names *"studying different kinds of query decomposition (e.g.,
/// triple-based instead of star-shaped sub-queries)"* as future work —
/// both are implemented so the ablation benches can compare them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DecompositionStrategy {
    /// Maximal groups of triple patterns sharing a subject (the default).
    #[default]
    StarShaped,
    /// One sub-query per triple pattern (FedX-style exclusive groups
    /// degenerate to this without its grouping optimization).
    TripleBased,
}

/// Decomposes a parsed query. Only conjunctive queries (BGP + FILTER) are
/// federated; `OPTIONAL`/`UNION` inside the pattern are rejected — the
/// paper's workload (and LSLOD's) is conjunctive.
pub fn decompose(query: &SelectQuery) -> Result<Decomposition, FedError> {
    decompose_pattern(&query.pattern)
}

/// Decomposes a parsed query with an explicit strategy.
pub fn decompose_as(
    query: &SelectQuery,
    strategy: DecompositionStrategy,
) -> Result<Decomposition, FedError> {
    decompose_pattern_as(&query.pattern, strategy)
}

/// Decomposes a group graph pattern (star-shaped).
pub fn decompose_pattern(pattern: &GroupGraphPattern) -> Result<Decomposition, FedError> {
    decompose_pattern_as(pattern, DecompositionStrategy::StarShaped)
}

/// Decomposes a group graph pattern with an explicit strategy.
pub fn decompose_pattern_as(
    pattern: &GroupGraphPattern,
    strategy: DecompositionStrategy,
) -> Result<Decomposition, FedError> {
    let mut triples: Vec<TriplePattern> = Vec::new();
    let mut filters: Vec<Expr> = Vec::new();
    let mut optional_groups: Vec<GroupGraphPattern> = Vec::new();
    let mut union_groups: Vec<Vec<GroupGraphPattern>> = Vec::new();
    collect(pattern, &mut triples, &mut filters, &mut optional_groups, &mut union_groups)?;
    let optionals = optional_groups
        .iter()
        .map(|g| decompose_pattern_as(g, strategy))
        .collect::<Result<Vec<_>, _>>()?;
    let unions = union_groups
        .iter()
        .map(|branches| {
            branches
                .iter()
                .map(|g| decompose_pattern_as(g, strategy))
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;

    // Class hints by subject are useful under both strategies: with
    // triple-based decomposition, a lone `?g <label> ?l` sub-query still
    // benefits from knowing `?g a Gene` appeared elsewhere in the BGP.
    let mut classes: Vec<(StarSubject, String)> = Vec::new();
    for t in &triples {
        if let (VarOrTerm::Term(Term::Iri(p)), VarOrTerm::Term(Term::Iri(c))) = (&t.p, &t.o) {
            if p == fedlake_rdf::vocab::rdf::TYPE {
                let subject = match &t.s {
                    VarOrTerm::Var(v) => StarSubject::Var(v.clone()),
                    VarOrTerm::Term(term) => StarSubject::Term(term.clone()),
                };
                classes.push((subject, c.clone()));
            }
        }
    }
    let class_of = |subject: &StarSubject| -> Option<String> {
        classes
            .iter()
            .find(|(s, _)| s == subject)
            .map(|(_, c)| c.clone())
    };

    let mut stars: Vec<StarSubquery> = Vec::new();
    for t in triples {
        let subject = match &t.s {
            VarOrTerm::Var(v) => StarSubject::Var(v.clone()),
            VarOrTerm::Term(term) => StarSubject::Term(term.clone()),
        };
        let class = class_of(&subject);
        let group = match strategy {
            DecompositionStrategy::StarShaped => {
                stars.iter_mut().find(|s| s.subject == subject)
            }
            DecompositionStrategy::TripleBased => None,
        };
        match group {
            Some(star) => {
                if star.class.is_none() {
                    star.class = class;
                }
                star.triples.push(t);
            }
            None => stars.push(StarSubquery {
                subject,
                triples: vec![t],
                filters: Vec::new(),
                class,
            }),
        }
    }

    // Attach each filter to the unique star covering its variables.
    let mut cross_filters = Vec::new();
    for f in filters {
        let fvars = f.vars();
        let covering: Vec<usize> = stars
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                let sv = s.vars();
                fvars.iter().all(|v| sv.contains(v))
            })
            .map(|(i, _)| i)
            .collect();
        match covering.first() {
            Some(&i) if !covering.is_empty() && !fvars.is_empty() => {
                stars[i].filters.push(f);
            }
            _ => cross_filters.push(f),
        }
    }

    Ok(Decomposition { stars, cross_filters, optionals, unions })
}

fn collect(
    pattern: &GroupGraphPattern,
    triples: &mut Vec<TriplePattern>,
    filters: &mut Vec<Expr>,
    optionals: &mut Vec<GroupGraphPattern>,
    unions: &mut Vec<Vec<GroupGraphPattern>>,
) -> Result<(), FedError> {
    for el in &pattern.elements {
        match el {
            PatternElement::Triple(t) => triples.push(t.clone()),
            PatternElement::Filter(f) => filters.push(f.clone()),
            PatternElement::Group(g) => collect(g, triples, filters, optionals, unions)?,
            PatternElement::Optional(g) => optionals.push(g.clone()),
            PatternElement::Union(branches) => unions.push(branches.clone()),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlake_sparql::parser::parse_query;

    fn dec(q: &str) -> Decomposition {
        decompose(&parse_query(q).unwrap()).unwrap()
    }

    #[test]
    fn motivating_example_shape() {
        // Figure 1a: a gene star (Affymetrix) and a gene-disease star
        // (Diseasome) joined on the gene.
        let d = dec(r#"
            SELECT ?gl ?dn WHERE {
                ?g a <http://v/Gene> .
                ?g <http://v/label> ?gl .
                ?g <http://v/species> ?sp .
                ?gd <http://v/gene> ?g .
                ?gd <http://v/diseaseName> ?dn .
                FILTER(CONTAINS(?sp, "sapiens"))
            }
        "#);
        assert_eq!(d.stars.len(), 2);
        assert_eq!(d.stars[0].triples.len(), 3);
        assert_eq!(d.stars[0].class.as_deref(), Some("http://v/Gene"));
        assert_eq!(d.stars[1].triples.len(), 2);
        assert!(d.stars[1].class.is_none());
        // The species filter belongs to the gene star.
        assert_eq!(d.stars[0].filters.len(), 1);
        assert!(d.cross_filters.is_empty());
        // The stars share ?g.
        assert_eq!(d.shared_vars(0, 1), vec![Var::new("g")]);
    }

    #[test]
    fn ground_subject_star() {
        let d = dec("SELECT ?p WHERE { <http://d/g1> ?p ?o }");
        assert_eq!(d.stars.len(), 1);
        assert!(matches!(d.stars[0].subject, StarSubject::Term(_)));
        assert!(d.stars[0].has_variable_predicate());
    }

    #[test]
    fn cross_star_filter_stays_at_engine() {
        let d = dec(
            "SELECT * WHERE { ?a <http://p> ?x . ?b <http://q> ?y . FILTER(?x < ?y) }",
        );
        assert_eq!(d.stars.len(), 2);
        assert_eq!(d.cross_filters.len(), 1);
        assert!(d.stars.iter().all(|s| s.filters.is_empty()));
    }

    #[test]
    fn star_vars_and_predicates() {
        let d = dec("SELECT * WHERE { ?g <http://v/label> ?l . ?g <http://v/species> ?s }");
        let star = &d.stars[0];
        assert_eq!(star.vars().len(), 3);
        assert_eq!(star.predicates(), vec!["http://v/label", "http://v/species"]);
        assert_eq!(star.object_var_of("http://v/label"), Some(&Var::new("l")));
        assert!(star.object_var_of("http://nope").is_none());
    }

    #[test]
    fn optional_becomes_nested_decomposition() {
        let q = parse_query("SELECT * WHERE { ?s <http://p> ?o . OPTIONAL { ?s <http://q> ?x } }")
            .unwrap();
        let d = decompose(&q).unwrap();
        assert_eq!(d.stars.len(), 1);
        assert_eq!(d.optionals.len(), 1);
        assert_eq!(d.optionals[0].stars.len(), 1);
        assert_eq!(
            d.optionals[0].stars[0].predicates(),
            vec!["http://q"]
        );
        assert_eq!(d.vars(), vec![Var::new("s"), Var::new("o")]);
    }

    #[test]
    fn union_becomes_branch_decompositions() {
        let q = parse_query(
            "SELECT * WHERE { { ?s a <http://A> } UNION { ?s a <http://B> } }",
        )
        .unwrap();
        let d = decompose(&q).unwrap();
        assert!(d.stars.is_empty());
        assert_eq!(d.unions.len(), 1);
        assert_eq!(d.unions[0].len(), 2);
        assert_eq!(d.unions[0][0].stars[0].class.as_deref(), Some("http://A"));
        // ?s is bound by every branch, so the block binds it.
        assert_eq!(union_block_vars(&d.unions[0]), vec![Var::new("s")]);
        assert_eq!(d.vars(), vec![Var::new("s")]);
    }

    #[test]
    fn variable_free_filter_is_cross() {
        let d = dec("SELECT * WHERE { ?s <http://p> ?o . FILTER(1 < 2) }");
        assert_eq!(d.cross_filters.len(), 1);
    }

    #[test]
    fn triple_based_strategy_splits_stars() {
        let q = parse_query(
            "SELECT * WHERE { ?g a <http://v/Gene> . ?g <http://v/label> ?l . \
             ?g <http://v/species> ?sp . FILTER(CONTAINS(?sp, \"x\")) }",
        )
        .unwrap();
        let star = decompose_as(&q, DecompositionStrategy::StarShaped).unwrap();
        assert_eq!(star.stars.len(), 1);
        let triple = decompose_as(&q, DecompositionStrategy::TripleBased).unwrap();
        assert_eq!(triple.stars.len(), 3);
        // Every triple-based sub-query inherits the class hint from the
        // type pattern elsewhere in the BGP.
        assert!(triple
            .stars
            .iter()
            .all(|s| s.class.as_deref() == Some("http://v/Gene")));
        // The species filter attaches to the sub-query binding ?sp.
        let with_filter: Vec<_> = triple
            .stars
            .iter()
            .filter(|s| !s.filters.is_empty())
            .collect();
        assert_eq!(with_filter.len(), 1);
        assert_eq!(
            with_filter[0].predicates(),
            vec!["http://v/species"]
        );
    }

    #[test]
    fn same_ground_subject_merges() {
        let d = dec(
            "SELECT * WHERE { <http://d/g1> <http://p> ?a . <http://d/g1> <http://q> ?b }",
        );
        assert_eq!(d.stars.len(), 1);
        assert_eq!(d.stars[0].triples.len(), 2);
    }
}
