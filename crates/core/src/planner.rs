//! The federated plan generator: where the paper's heuristics live.
//!
//! Two plan types are produced (§3):
//!
//! * **Physical-Design-Unaware** ([`PlanMode::Unaware`]): each star-shaped
//!   sub-query becomes its own source request; every `FILTER` and every
//!   inter-star join is evaluated by engine-level operators. The physical
//!   design (indexes) of the sources is ignored.
//! * **Physical-Design-Aware** ([`PlanMode::Aware`]): the plan exploits the
//!   sources' physical design through the two heuristics:
//!   * *Heuristic 1 (pushing down joins)* — two stars resolved to the same
//!     relational endpoint are combined into one SQL query **iff** the
//!     join attribute (the FK column) is indexed there.
//!   * *Heuristic 2 (pushing up instantiations)* — a star's filter runs at
//!     the engine **unless** the filtered attribute is indexed at the
//!     source **and** the network is slow; only then is it pushed into the
//!     SQL `WHERE` clause to shrink the transferred intermediate result.
//!
//! For the ablation benches, disabling H2 inside `Aware` yields the
//! classical always-push-selections plan, and disabling H1 keeps all joins
//! at the engine while H2 still governs filters.

use crate::config::{EngineJoin, MergeTranslation, PlanConfig, PlanMode};
use crate::decompose::{decompose_as, StarSubject, StarSubquery};
use crate::error::FedError;
use crate::fedplan::{FedPlan, NaiveJoin, ReplicaRoute, ServiceKind, ServiceNode, SqlRequest};
use crate::health::HealthView;
use crate::lake::DataLake;
use crate::selection::{select_sources_with_health, Candidate};
use crate::source::DataSource;
use crate::stats::{join_estimate, FederationCost, LakeStatistics};
use crate::translate::{
    column_of_var, filter_column, sql_merged, sql_single, star_part, StarPart,
};
use fedlake_mapping::TableMapping;
use fedlake_netsim::CostModel;
use fedlake_relational::TableSchema;
use fedlake_sparql::ast::{OrderKey, SelectQuery};
use fedlake_sparql::binding::{RowSchema, Var};
use fedlake_sparql::expr::Expr;
use fedlake_rdf::{vocab, Term};
use std::sync::Arc;

/// Unit count above which the cost-based planner switches from exhaustive
/// left-deep DP enumeration to greedy cost-based ordering.
pub const DP_UNIT_LIMIT: usize = 10;

/// Bind-join batch size the cost-based planner assumes (and emits) when
/// the config does not already force [`EngineJoin::Bind`].
pub const DEFAULT_BIND_BATCH: usize = 16;

/// How the planner ordered the joins of the conjunctive groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlanStrategy {
    /// The paper's heuristic ordering (smallest estimate first, connected
    /// units preferred).
    #[default]
    Heuristic,
    /// Exhaustive left-deep dynamic programming over the cost model.
    Dp,
    /// Greedy cost-based ordering (unit count above [`DP_UNIT_LIMIT`]).
    GreedyCost,
}

impl PlanStrategy {
    /// Stable lowercase name (metrics key suffix, explain output).
    pub fn label(&self) -> &'static str {
        match self {
            PlanStrategy::Heuristic => "heuristic",
            PlanStrategy::Dp => "dp",
            PlanStrategy::GreedyCost => "greedy-cost",
        }
    }
}

/// What the planner did for one query: consumed by EXPLAIN ANALYZE, the
/// metrics registry and the serve rollup.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlanReport {
    /// Whether cost-based planning was on.
    pub cost_based: bool,
    /// Join-ordering strategy taken (the last conjunctive group wins when
    /// a query has several; they almost never do).
    pub strategy: PlanStrategy,
    /// Candidate (partial) plans the cost model priced.
    pub plans_costed: u64,
    /// Bind joins the cost model chose over hash joins.
    pub bind_joins: u64,
    /// The chosen plan's estimated [`FederationCost`] (cost mode only).
    pub estimated_cost: Option<FederationCost>,
    /// Estimated output rows of the final plan.
    pub estimated_rows: f64,
    /// Stable 64-bit fingerprint of the plan's normalized logical IR
    /// (see [`crate::ir`]): identical for a cached replay and its cold
    /// original, interner-independent.
    pub fingerprint: u64,
}

/// A fully planned query: the federated plan plus the solution modifiers
/// the engine applies on top.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedQuery {
    /// The federated execution plan.
    pub plan: FedPlan,
    /// The slot layout every operator of this query shares: one slot per
    /// variable the pattern or the projection mentions.
    pub schema: Arc<RowSchema>,
    /// Projected variables.
    pub projection: Arc<[Var]>,
    /// `DISTINCT`.
    pub distinct: bool,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`.
    pub limit: Option<usize>,
    /// `OFFSET`.
    pub offset: usize,
    /// Sources the health-aware selector skipped because every replica
    /// endpoint was past the failure threshold (only under `degraded_ok`;
    /// the engine marks such answers degraded).
    pub skipped_sources: Vec<String>,
    /// What the planner did (strategy taken, plans costed, estimates).
    pub report: PlanReport,
}

/// One star bound to one relational source, with everything translation
/// needs.
struct RelStar {
    star_idx: usize,
    source_id: String,
    tm: TableMapping,
    schema: TableSchema,
    pushed: Vec<Expr>,
    engine_filters: Vec<Expr>,
    cardinality: usize,
}

/// Plans a parsed query under `config` with no health history (every
/// endpoint presumed healthy — the behaviour of a fresh session).
pub fn plan_query(
    query: &SelectQuery,
    lake: &DataLake,
    config: &PlanConfig,
) -> Result<PlannedQuery, FedError> {
    plan_query_with_health(query, lake, config, &HealthView::empty())
}

/// Plans a parsed query under `config`, consulting the session's health
/// snapshot: replica endpoints are routed healthiest-first, and (with
/// `degraded_ok`) sources whose endpoints are all past the failure
/// threshold are skipped when a healthier alternative covers the star.
pub fn plan_query_with_health(
    query: &SelectQuery,
    lake: &DataLake,
    config: &PlanConfig,
    health: &HealthView,
) -> Result<PlannedQuery, FedError> {
    if config.cost_based && !lake.statistics_fresh() {
        // A bare `source_mut` left the statistics catalog describing data
        // that may no longer exist; pricing plans against it would be
        // silent garbage-in. Heuristic planning never reads the catalog
        // and proceeds.
        return Err(FedError::StaleStatistics {
            epoch: lake.epoch(),
            stats_epoch: lake.statistics_epoch(),
        });
    }
    let dec = decompose_as(query, config.decomposition)?;
    let mut skipped = Vec::new();
    let mut report = PlanReport { cost_based: config.cost_based, ..PlanReport::default() };
    let mut plan = plan_tree(&dec, lake, config, health, &mut skipped, &mut report)?;
    report.estimated_rows = plan.estimated_rows();
    // The logical identity is fixed before physical lowering: replica
    // routes are assigned below and deliberately do not shift it.
    report.fingerprint = crate::ir::LogicalPlan::of(&plan).normalized().fingerprint();
    assign_routes(&mut plan, lake, health);
    let projection = query.effective_projection();
    // The schema covers every variable an operator may bind or project.
    let schema = Arc::new(RowSchema::new(
        query.pattern.vars().into_iter().chain(projection.iter().cloned()),
    ));
    Ok(PlannedQuery {
        plan,
        schema,
        projection: projection.into(),
        distinct: query.distinct,
        order_by: query.order_by.clone(),
        limit: query.limit,
        offset: query.offset.unwrap_or(0),
        skipped_sources: skipped,
        report,
    })
}

/// Walks a plan and decides, per service leaf, the replica endpoints to
/// contact and in which order: failures ascending (healthiest first),
/// replica index breaking ties. Unreplicated sources keep `route: None`
/// and behave exactly as before replicas existed.
pub fn assign_routes(plan: &mut FedPlan, lake: &DataLake, health: &HealthView) {
    match plan {
        FedPlan::Service(node) => {
            node.route = route_for_source(&node.source_id, lake, health);
        }
        FedPlan::Join { left, right, .. } | FedPlan::LeftJoin { left, right, .. } => {
            assign_routes(left, lake, health);
            assign_routes(right, lake, health);
        }
        FedPlan::BindJoin { left, right, .. } => {
            assign_routes(left, lake, health);
            right.route = route_for_source(&right.source_id, lake, health);
        }
        FedPlan::Filter { input, .. } => assign_routes(input, lake, health),
        FedPlan::Union(branches) => {
            for b in branches {
                assign_routes(b, lake, health);
            }
        }
    }
}

fn route_for_source(
    source_id: &str,
    lake: &DataLake,
    health: &HealthView,
) -> Option<ReplicaRoute> {
    if lake.replica_count(source_id) <= 1 {
        return None;
    }
    let endpoints = lake.replica_endpoints(source_id);
    let mut order: Vec<(u64, usize)> = endpoints
        .iter()
        .enumerate()
        .map(|(i, e)| (health.failures_of(e), i))
        .collect();
    order.sort_unstable();
    let reason = if order.iter().all(|&(f, _)| f == order[0].0) {
        format!("replica index order ({} failures each)", order[0].0)
    } else {
        let parts: Vec<String> = order
            .iter()
            .map(|&(f, i)| format!("{}={}", endpoints[i], f))
            .collect();
        format!("healthiest first (failures: {})", parts.join(", "))
    };
    let ordered: Vec<String> =
        order.into_iter().map(|(_, i)| endpoints[i].clone()).collect();
    Some(ReplicaRoute { endpoints: ordered, reason })
}

/// Plans a decomposition: the required conjunctive part and the `UNION`
/// blocks joined together, then the cross-star filters, then one
/// streaming left join per `OPTIONAL` group.
fn plan_tree(
    dec: &crate::decompose::Decomposition,
    lake: &DataLake,
    config: &PlanConfig,
    health: &HealthView,
    skipped: &mut Vec<String>,
    report: &mut PlanReport,
) -> Result<FedPlan, FedError> {
    // 1. Required units: the star-based part plus one unit per union
    //    block (each block binds the variables common to all branches).
    let mut units: Vec<(FedPlan, Vec<Var>)> = Vec::new();
    if !dec.stars.is_empty() {
        let star_vars = {
            let mut out: Vec<Var> = Vec::new();
            for st in &dec.stars {
                for v in st.vars() {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            out
        };
        units.push((plan_conjunctive(dec, lake, config, health, skipped, report)?, star_vars));
    }
    for block in &dec.unions {
        let branches = block
            .iter()
            .map(|b| plan_tree(b, lake, config, health, skipped, report))
            .collect::<Result<Vec<_>, _>>()?;
        let plan = if branches.len() == 1 {
            branches.into_iter().next().expect("length checked")
        } else {
            FedPlan::Union(branches)
        };
        units.push((plan, crate::decompose::union_block_vars(block)));
    }
    if units.is_empty() {
        return Err(FedError::Unsupported("empty basic graph pattern".into()));
    }

    // 2. Join the units on their shared (always-bound) variables.
    let (mut plan, mut bound_vars) = units.remove(0);
    for (right, rvars) in units {
        let on: Vec<Var> = rvars
            .iter()
            .filter(|v| bound_vars.contains(v))
            .cloned()
            .collect();
        for v in rvars {
            if !bound_vars.contains(&v) {
                bound_vars.push(v);
            }
        }
        plan = FedPlan::Join { left: Box::new(plan), right: Box::new(right), on };
    }

    // 3. Cross-star filters. Filters fully covered by the always-bound
    //    variables apply here; the rest (e.g. BOUND over optional
    //    variables) apply after the OPTIONALs.
    let (pre, post): (Vec<Expr>, Vec<Expr>) = dec
        .cross_filters
        .iter()
        .cloned()
        .partition(|f| f.vars().iter().all(|v| bound_vars.contains(v)));
    if !pre.is_empty() {
        plan = FedPlan::Filter { input: Box::new(plan), exprs: pre };
    }

    // 4. OPTIONAL groups as streaming left joins.
    let mut seen_optional_vars: Vec<Var> = Vec::new();
    for opt in &dec.optionals {
        let opt_vars = opt.vars();
        // Correlation between two OPTIONAL groups through variables that
        // the required part does not bind needs full compatibility
        // semantics — out of scope.
        if opt_vars
            .iter()
            .any(|v| !bound_vars.contains(v) && seen_optional_vars.contains(v))
        {
            return Err(FedError::Unsupported(
                "OPTIONAL groups correlated through optional-only variables".into(),
            ));
        }
        // Filters inside the OPTIONAL must be self-contained.
        for f in &opt.cross_filters {
            if !f.vars().iter().all(|v| opt_vars.contains(v)) {
                return Err(FedError::Unsupported(
                    "FILTER in OPTIONAL referencing outer variables".into(),
                ));
            }
        }
        let right = plan_tree(opt, lake, config, health, skipped, report)?;
        let on: Vec<Var> = opt_vars
            .iter()
            .filter(|v| bound_vars.contains(v))
            .cloned()
            .collect();
        for v in opt_vars {
            if !bound_vars.contains(&v) && !seen_optional_vars.contains(&v) {
                seen_optional_vars.push(v);
            }
        }
        plan = FedPlan::LeftJoin { left: Box::new(plan), right: Box::new(right), on };
    }

    // 5. Filters that need conditionally-bound variables.
    if !post.is_empty() {
        plan = FedPlan::Filter { input: Box::new(plan), exprs: post };
    }
    Ok(plan)
}

/// Plans the conjunctive (required) part of a decomposition.
fn plan_conjunctive(
    dec: &crate::decompose::Decomposition,
    lake: &DataLake,
    config: &PlanConfig,
    health: &HealthView,
    skipped: &mut Vec<String>,
    report: &mut PlanReport,
) -> Result<FedPlan, FedError> {
    if dec.stars.is_empty() {
        return Err(FedError::Unsupported("empty basic graph pattern".into()));
    }
    // Cost mode estimates service cardinalities from the statistics
    // catalog; heuristic mode keeps the fixed per-constraint guesses.
    let stats: Option<&LakeStatistics> = config.cost_based.then(|| lake.statistics());
    let (candidates, newly_skipped) =
        select_sources_with_health(&dec.stars, lake, health, config.degraded_ok)?;
    for s in newly_skipped {
        if !skipped.contains(&s) {
            skipped.push(s);
        }
    }

    // Classify stars: single relational candidate vs. everything else.
    let mut rel_stars: Vec<RelStar> = Vec::new();
    let mut other_units: Vec<(usize, FedPlan)> = Vec::new();
    for (i, (star, cands)) in dec.stars.iter().zip(&candidates).enumerate() {
        let single_relational = cands.len() == 1
            && lake
                .source(&cands[0].source_id)
                .is_some_and(DataSource::is_relational)
            && !star.has_variable_predicate();
        if single_relational {
            let cand = &cands[0];
            let (tm, schema) = relational_parts(lake, cand)?;
            let (pushed, engine_filters) =
                split_filters(star, &tm, lake.source(&cand.source_id).expect("selected"), config);
            rel_stars.push(RelStar {
                star_idx: i,
                source_id: cand.source_id.clone(),
                tm,
                schema,
                pushed,
                engine_filters,
                cardinality: cand.cardinality,
            });
        } else {
            other_units.push((i, plan_other_star(star, cands, lake, config, stats)?));
        }
    }

    // Heuristic 1: pairwise merging of relational stars on one endpoint.
    let h1 = matches!(
        config.mode,
        PlanMode::Aware { h1_join_pushdown: true, .. }
    );
    let mut merged_away: Vec<Option<usize>> = vec![None; rel_stars.len()]; // partner index
    if h1 {
        for i in 0..rel_stars.len() {
            if merged_away[i].is_some() {
                continue;
            }
            for j in (i + 1)..rel_stars.len() {
                if merged_away[j].is_some() || merged_away[i].is_some() {
                    continue;
                }
                if rel_stars[i].source_id != rel_stars[j].source_id {
                    continue;
                }
                let source = lake.source(&rel_stars[i].source_id).expect("selected");
                if find_merge_join(&dec.stars, &rel_stars[i], &rel_stars[j], source).is_some()
                {
                    merged_away[i] = Some(j);
                    merged_away[j] = Some(i);
                }
            }
        }
    }

    // Build service units. Single relational stars remember their
    // RelStar index so the join loop can convert them into bind joins.
    let mut units: Vec<(Vec<usize>, FedPlan, Option<usize>)> = Vec::new();
    let mut consumed = vec![false; rel_stars.len()];
    for i in 0..rel_stars.len() {
        if consumed[i] {
            continue;
        }
        consumed[i] = true;
        match merged_away[i] {
            Some(j) if !consumed[j] => {
                consumed[j] = true;
                let source = lake.source(&rel_stars[i].source_id).expect("selected");
                let unit = build_merged_service(
                    &dec.stars,
                    &rel_stars[i],
                    &rel_stars[j],
                    source,
                    config,
                    stats,
                )?;
                units.push((vec![rel_stars[i].star_idx, rel_stars[j].star_idx], unit, None));
            }
            _ => {
                let unit = build_single_service(&dec.stars, &rel_stars[i], config, stats)?;
                units.push((vec![rel_stars[i].star_idx], unit, Some(i)));
            }
        }
    }
    for (i, plan) in other_units {
        units.push((vec![i], plan, None));
    }

    // Join ordering over units: cost-based (DP / greedy over the
    // FederationCost model) or the paper's heuristic greedy.
    let star_vars: Vec<Vec<Var>> = dec.stars.iter().map(StarSubquery::vars).collect();
    let unit_vars = |star_idxs: &[usize]| -> Vec<Var> {
        let mut out = Vec::new();
        for &i in star_idxs {
            for v in &star_vars[i] {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    };
    if let Some(stats) = stats {
        let unit_var_list: Vec<Vec<Var>> = units.iter().map(|(idxs, _, _)| unit_vars(idxs)).collect();
        return order_units_by_cost(
            dec,
            lake,
            config,
            stats,
            &candidates,
            &rel_stars,
            units,
            unit_var_list,
            report,
        );
    }
    units.sort_by(|a, b| a.1.estimated_rows().total_cmp(&b.1.estimated_rows()));
    let (first_idxs, mut plan, _) = units.remove(0);
    let mut bound_vars = unit_vars(&first_idxs);
    while !units.is_empty() {
        // Prefer the smallest connected unit.
        let pick = units
            .iter()
            .position(|(idxs, _, _)| {
                unit_vars(idxs).iter().any(|v| bound_vars.contains(v))
            })
            .unwrap_or(0);
        let (idxs, right, bindable) = units.remove(pick);
        let right_vars = unit_vars(&idxs);
        let on: Vec<Var> = right_vars
            .iter()
            .filter(|v| bound_vars.contains(v))
            .cloned()
            .collect();
        for v in right_vars {
            if !bound_vars.contains(&v) {
                bound_vars.push(v);
            }
        }
        plan = match (config.engine_join, bindable) {
            (crate::config::EngineJoin::Bind { batch_size }, Some(ri)) if on.len() == 1 => {
                match build_bind_join(plan, &dec.stars, &rel_stars[ri], &on[0], batch_size, None)? {
                    Ok(bound_plan) => bound_plan,
                    // The variable does not map to a column: fall back.
                    Err(left) => FedPlan::Join {
                        left: Box::new(left),
                        right: Box::new(right),
                        on,
                    },
                }
            }
            _ => FedPlan::Join { left: Box::new(plan), right: Box::new(right), on },
        };
    }

    // Cross-star filters are applied by `plan_tree`, which knows the
    // union- and optional-bound variables.
    Ok(plan)
}

/// Heuristic 2's decision: split a relational star's filters into
/// (pushed-to-source, kept-at-engine).
fn split_filters(
    star: &StarSubquery,
    tm: &TableMapping,
    source: &DataSource,
    config: &PlanConfig,
) -> (Vec<Expr>, Vec<Expr>) {
    let mut pushed = Vec::new();
    let mut engine = Vec::new();
    for f in &star.filters {
        let decision = match config.mode {
            // The unaware plan performs every operation it can at the
            // engine.
            PlanMode::Unaware => false,
            PlanMode::Aware { filters, .. } => {
                // The SQL shape must be representable in any pushed case.
                let translatable = filter_column(f, star, tm).is_some()
                    && crate::translate::filter_to_sql(f, star, tm, "x").is_some();
                let indexed = filter_column(f, star, tm)
                    .is_some_and(|col| source.has_index_on(&tm.table, &col));
                match filters {
                    crate::config::FilterPlacement::Engine => false,
                    crate::config::FilterPlacement::PushIndexed => translatable && indexed,
                    crate::config::FilterPlacement::Heuristic2 => {
                        translatable && indexed && config.network.is_slow()
                    }
                    crate::config::FilterPlacement::PushAll => translatable,
                }
            }
        };
        if decision {
            pushed.push(f.clone());
        } else {
            engine.push(f.clone());
        }
    }
    (pushed, engine)
}

/// The join columns Heuristic 1 would merge two stars on, when the paper's
/// indexing condition holds. Returns `(left_col_on_a, right_col_on_b)`.
fn find_merge_join(
    stars: &[StarSubquery],
    a: &RelStar,
    b: &RelStar,
    source: &DataSource,
) -> Option<(String, String)> {
    let sa = &stars[a.star_idx];
    let sb = &stars[b.star_idx];
    // Stars over the SAME table (a denormalized design) merge without a
    // join at all — no index condition applies, since there is nothing to
    // join; the shared variable only has to be column-mapped on both
    // sides.
    let same_table = a.tm.table == b.tm.table;
    // Case 1: an object variable of `a` is the subject of `b` (FK → PK).
    if let crate::decompose::StarSubject::Var(vb) = &sb.subject {
        for t in &sa.triples {
            if t.o.as_var() == Some(vb) {
                let pred = t.p.as_term().and_then(Term::as_iri)?;
                let col = a.tm.column_for_predicate(pred)?.column.clone();
                // The paper's condition: the join attribute is indexed.
                if same_table || source.has_index_on(&a.tm.table, &col) {
                    return Some((col, b.tm.subject_column.clone()));
                }
                return None;
            }
        }
    }
    // Case 1 reversed: an object variable of `b` is the subject of `a`.
    if let crate::decompose::StarSubject::Var(va) = &sa.subject {
        for t in &sb.triples {
            if t.o.as_var() == Some(va) {
                let pred = t.p.as_term().and_then(Term::as_iri)?;
                let col = b.tm.column_for_predicate(pred)?.column.clone();
                if same_table || source.has_index_on(&b.tm.table, &col) {
                    // Keep `a` as the left table: left col is a's subject.
                    return Some((a.tm.subject_column.clone(), col));
                }
                return None;
            }
        }
    }
    // Case 2: a shared object variable (column–column join); at least one
    // side must be indexed.
    let vars_a = sa.vars();
    let vars_b = sb.vars();
    for v in &vars_a {
        if !vars_b.contains(v) {
            continue;
        }
        let (Some(ca), Some(cb)) = (
            column_of_var(v, sa, &a.tm),
            column_of_var(v, sb, &b.tm),
        ) else {
            continue;
        };
        if same_table
            || source.has_index_on(&a.tm.table, &ca)
            || source.has_index_on(&b.tm.table, &cb)
        {
            return Some((ca, cb));
        }
    }
    None
}

fn relational_parts(
    lake: &DataLake,
    cand: &Candidate,
) -> Result<(TableMapping, TableSchema), FedError> {
    match lake.source(&cand.source_id) {
        Some(DataSource::Relational { db, mapping, .. }) => {
            let tm = mapping
                .for_class(&cand.class)
                .ok_or_else(|| {
                    FedError::Internal(format!("class {} not mapped", cand.class))
                })?
                .clone();
            let schema = db
                .table(&tm.table)
                .ok_or_else(|| FedError::Internal(format!("table {} missing", tm.table)))?
                .schema
                .clone();
            Ok((tm, schema))
        }
        _ => Err(FedError::Internal(format!(
            "candidate source {} is not relational",
            cand.source_id
        ))),
    }
}

fn estimate(cardinality: usize, part: &StarPart) -> f64 {
    let constraints = part
        .wheres
        .iter()
        .filter(|w| !w.ends_with("IS NOT NULL"))
        .count();
    ((cardinality as f64) * 0.4f64.powi(constraints as i32)).max(1.0)
}

/// The statistics-based cardinality estimate of `star` at `source_id`,
/// when cost mode is on and the catalog knows the source.
fn stats_estimate(
    stats: Option<&LakeStatistics>,
    source_id: &str,
    star: &StarSubquery,
    filters: &[Expr],
) -> Option<f64> {
    stats.and_then(|ls| ls.source(source_id)).map(|ss| ss.estimate_star(star, filters))
}

fn wrap_engine_filters(plan: FedPlan, filters: Vec<Expr>) -> FedPlan {
    if filters.is_empty() {
        plan
    } else {
        FedPlan::Filter { input: Box::new(plan), exprs: filters }
    }
}

/// Converts a single relational star into the right side of a dependent
/// bind join on `join_var`. Returns `Err(left)` (giving the left plan
/// back) when the variable does not map to a column of the star.
#[allow(clippy::result_large_err)]
fn build_bind_join(
    left: FedPlan,
    stars: &[StarSubquery],
    rs: &RelStar,
    join_var: &Var,
    batch_size: usize,
    stats: Option<&LakeStatistics>,
) -> Result<Result<FedPlan, FedPlan>, FedError> {
    let star = &stars[rs.star_idx];
    let Some(column) = column_of_var(join_var, star, &rs.tm) else {
        return Ok(Err(left));
    };
    let extract = match &star.subject {
        crate::decompose::StarSubject::Var(v) if v == join_var => {
            Some(rs.tm.subject_template.clone())
        }
        _ => crate::translate::column_ref_template(join_var, star, &rs.tm),
    };
    let part = star_part(star, &rs.tm, &rs.schema, &rs.pushed, "s0")?;
    let est = stats_estimate(stats, &rs.source_id, star, &rs.pushed)
        .unwrap_or_else(|| estimate(rs.cardinality, &part));
    let target = crate::fedplan::BindTarget {
        source_id: rs.source_id.clone(),
        route: None,
        part,
        join_var: join_var.clone(),
        column,
        extract,
        covers: star.subject.to_string(),
        estimated_rows: est,
    };
    let plan = FedPlan::BindJoin { left: Box::new(left), right: target, batch_size };
    Ok(Ok(wrap_engine_filters(plan, rs.engine_filters.clone())))
}

fn build_single_service(
    stars: &[StarSubquery],
    rs: &RelStar,
    _config: &PlanConfig,
    stats: Option<&LakeStatistics>,
) -> Result<FedPlan, FedError> {
    let star = &stars[rs.star_idx];
    let part = star_part(star, &rs.tm, &rs.schema, &rs.pushed, "s0")?;
    let est = stats_estimate(stats, &rs.source_id, star, &rs.pushed)
        .unwrap_or_else(|| estimate(rs.cardinality, &part));
    let q = sql_single(&part);
    let service = FedPlan::Service(ServiceNode {
        source_id: rs.source_id.clone(),
        route: None,
        kind: ServiceKind::Sql {
            request: SqlRequest::Single(q),
            covers: vec![star.subject.to_string()],
        },
        estimated_rows: est,
    });
    Ok(wrap_engine_filters(service, rs.engine_filters.clone()))
}

fn build_merged_service(
    stars: &[StarSubquery],
    a: &RelStar,
    b: &RelStar,
    source: &DataSource,
    config: &PlanConfig,
    stats: Option<&LakeStatistics>,
) -> Result<FedPlan, FedError> {
    let (left_col, right_col) = find_merge_join(stars, a, b, source)
        .ok_or_else(|| FedError::Internal("merge pair lost its join".into()))?;
    let sa = &stars[a.star_idx];
    let sb = &stars[b.star_idx];
    // Stats-based merged estimate: the classic equi-join formula over the
    // two star estimates (`None` outside cost mode).
    let merged_est = |pa: &StarPart, pb: &StarPart| -> f64 {
        match (
            stats_estimate(stats, &a.source_id, sa, &a.pushed),
            stats_estimate(stats, &b.source_id, sb, &b.pushed),
        ) {
            (Some(ea), Some(eb)) => join_estimate(ea, ea, eb, eb),
            _ => estimate(a.cardinality, pa).min(estimate(b.cardinality, pb)),
        }
    };

    // Denormalized case: both stars read one table — combine under a
    // single alias with no join (regardless of the translation quality
    // setting; there is no join to translate badly).
    if a.tm.table == b.tm.table {
        let pa = star_part(sa, &a.tm, &a.schema, &a.pushed, "s0")?;
        let pb = star_part(sb, &b.tm, &b.schema, &b.pushed, "s0")?;
        let est = merged_est(&pa, &pb);
        let q = crate::translate::sql_merged_same_table(&pa, &pb, &left_col, &right_col);
        let service = FedPlan::Service(ServiceNode {
            source_id: a.source_id.clone(),
            route: None,
            kind: ServiceKind::Sql {
                request: SqlRequest::MergedOptimized(q),
                covers: vec![sa.subject.to_string(), sb.subject.to_string()],
            },
            estimated_rows: est,
        });
        let mut filters = a.engine_filters.clone();
        filters.extend(b.engine_filters.clone());
        return Ok(wrap_engine_filters(service, filters));
    }

    let pa = star_part(sa, &a.tm, &a.schema, &a.pushed, "s0")?;
    let pb = star_part(sb, &b.tm, &b.schema, &b.pushed, "s1")?;
    let est = merged_est(&pa, &pb);
    let covers = vec![sa.subject.to_string(), sb.subject.to_string()];
    let request = match config.merge_translation {
        MergeTranslation::Optimized => {
            SqlRequest::MergedOptimized(sql_merged(&pa, &pb, &left_col, &right_col))
        }
        MergeTranslation::Naive => {
            // The dependent join keys on the shared variable: the one
            // mapped to `left_col` on `a`'s side.
            let join_var = sa
                .vars()
                .into_iter()
                .find(|v| column_of_var(v, sa, &a.tm).as_deref() == Some(left_col.as_str()))
                .ok_or_else(|| {
                    FedError::Internal("naive merge: join variable not found".into())
                })?;
            // How inner keys lift: if the variable is b's subject, IRIs are
            // minted by b's subject template; otherwise, by the reference
            // template if any.
            let extract = match &sb.subject {
                crate::decompose::StarSubject::Var(v) if *v == join_var => {
                    Some(b.tm.subject_template.clone())
                }
                _ => crate::translate::column_ref_template(&join_var, sb, &b.tm),
            };
            SqlRequest::MergedNaive {
                outer: sql_single(&pa),
                inner: pb,
                join: NaiveJoin { outer_var: join_var, inner_col: right_col, extract },
            }
        }
    };
    let service = FedPlan::Service(ServiceNode {
        source_id: a.source_id.clone(),
        route: None,
        kind: ServiceKind::Sql { request, covers },
        estimated_rows: est,
    });
    let mut filters = a.engine_filters.clone();
    filters.extend(b.engine_filters.clone());
    Ok(wrap_engine_filters(service, filters))
}

/// Plans a star that is not a single-relational-candidate: SPARQL sources
/// evaluate natively, multiple candidates become a union.
fn plan_other_star(
    star: &StarSubquery,
    cands: &[Candidate],
    lake: &DataLake,
    config: &PlanConfig,
    stats: Option<&LakeStatistics>,
) -> Result<FedPlan, FedError> {
    let mut branches = Vec::new();
    for cand in cands {
        let source = lake
            .source(&cand.source_id)
            .ok_or_else(|| FedError::Internal("candidate source missing".into()))?;
        match source {
            DataSource::Sparql { .. } => {
                let est = stats_estimate(stats, &cand.source_id, star, &star.filters)
                    .unwrap_or_else(|| (cand.cardinality as f64).max(1.0));
                branches.push(FedPlan::Service(ServiceNode {
                    source_id: cand.source_id.clone(),
                    route: None,
                    kind: ServiceKind::Sparql {
                        star: star.clone(),
                        filters: star.filters.clone(),
                    },
                    estimated_rows: est,
                }));
            }
            DataSource::Relational { db, mapping, .. } => {
                let tm = mapping
                    .for_class(&cand.class)
                    .ok_or_else(|| {
                        FedError::Internal(format!("class {} not mapped", cand.class))
                    })?
                    .clone();
                let schema = db
                    .table(&tm.table)
                    .ok_or_else(|| {
                        FedError::Internal(format!("table {} missing", tm.table))
                    })?
                    .schema
                    .clone();
                let (pushed, engine) = split_filters(star, &tm, source, config);
                let part = star_part(star, &tm, &schema, &pushed, "s0")?;
                let est = stats_estimate(stats, &cand.source_id, star, &pushed)
                    .unwrap_or_else(|| estimate(cand.cardinality, &part));
                let service = FedPlan::Service(ServiceNode {
                    source_id: cand.source_id.clone(),
                    route: None,
                    kind: ServiceKind::Sql {
                        request: SqlRequest::Single(sql_single(&part)),
                        covers: vec![star.subject.to_string()],
                    },
                    estimated_rows: est,
                });
                branches.push(wrap_engine_filters(service, engine));
            }
        }
    }
    Ok(if branches.len() == 1 {
        branches.remove(0)
    } else {
        FedPlan::Union(branches)
    })
}

// ---------------------------------------------------------------------------
// Cost-based join ordering (`PlanConfig::cost_based`).
//
// Units (the service requests `plan_conjunctive` built — merged or single
// relational stars plus the "other" stars) are ordered by minimizing a
// `FederationCost` estimate: per-unit fetch costs priced from the
// statistics catalog and the netsim link parameters, per-edge bind-join
// vs hash-join chosen from the estimated input cardinalities. Up to
// `DP_UNIT_LIMIT` units the enumeration is exhaustive left-deep DP over
// subsets; above it, greedy by cheapest next extension.
// ---------------------------------------------------------------------------

/// Pricing environment: the cost model and the network profile's link
/// parameters (per SNIPPETS' `FederationCost`, the network term reads the
/// per-link transfer parameters).
struct CostEnv<'a> {
    cost: &'a CostModel,
    /// Mean per-message network delay, µs.
    delay_us: f64,
    /// Rows per link message.
    rows_per_message: f64,
    /// Overlapped schedule: independent fetches run concurrently, so the
    /// plan's network critical path is the max, not the sum.
    overlap: bool,
}

impl CostEnv<'_> {
    /// Network cost of transferring `rows` in `messages` messages.
    fn transfer_us(&self, messages: f64, rows: f64) -> f64 {
        messages * (self.delay_us + self.cost.message_overhead_us)
            + rows * self.cost.row_transfer_us
    }

    /// Messages a full fetch of `rows` takes (the request plus one message
    /// per `rows_per_message` result rows).
    fn fetch_messages(&self, rows: f64) -> f64 {
        (rows / self.rows_per_message).ceil().max(1.0) + 1.0
    }
}

/// One join-ordering unit with its pricing inputs.
struct CostUnit {
    plan: Option<FedPlan>,
    /// Index into `rel_stars` when the unit is one bind-convertible star.
    bindable: Option<usize>,
    vars: Vec<Var>,
    est_rows: f64,
    /// Engine-side cpu of fetching the unit in full, µs.
    fetch_cpu_us: f64,
    /// Source-side work of fetching the unit in full, µs.
    fetch_io_us: f64,
    /// Network cost of fetching the unit in full, µs.
    fetch_net_us: f64,
    /// Per-variable distinct-value estimates (join-key NDVs).
    var_distinct: Vec<(Var, f64)>,
}

/// Source-side + engine-side + network cost of fetching a unit plan in
/// full (services, their filters, unions of either).
fn unit_fetch_cost(plan: &FedPlan, env: &CostEnv<'_>) -> (f64, f64, f64) {
    match plan {
        FedPlan::Service(node) => {
            let rows = node.estimated_rows.max(1.0);
            let io = match &node.kind {
                ServiceKind::Sql { .. } => rows * env.cost.rdb_row_scan_us,
                ServiceKind::Sparql { star, .. } => {
                    star.triples.len() as f64 * env.cost.sparql_pattern_us
                        + rows * env.cost.sparql_row_us
                }
            };
            let net = env.transfer_us(env.fetch_messages(rows), rows);
            (rows * env.cost.engine_row_us, io, net)
        }
        FedPlan::Filter { input, exprs } => {
            let (cpu, io, net) = unit_fetch_cost(input, env);
            let evals = input.estimated_rows().max(1.0) * exprs.len().max(1) as f64;
            (cpu + evals * env.cost.engine_filter_eval_us, io, net)
        }
        FedPlan::Union(branches) => branches.iter().fold((0.0, 0.0, 0.0), |acc, b| {
            let (cpu, io, net) = unit_fetch_cost(b, env);
            (acc.0 + cpu, acc.1 + io, acc.2 + net)
        }),
        // Units never contain engine joins, but price them sanely anyway.
        FedPlan::Join { left, right, .. } | FedPlan::LeftJoin { left, right, .. } => {
            let (lc, li, ln) = unit_fetch_cost(left, env);
            let (rc, ri, rn) = unit_fetch_cost(right, env);
            let probes =
                (left.estimated_rows() + right.estimated_rows()) * env.cost.engine_join_probe_us;
            (lc + rc + probes, li + ri, ln + rn)
        }
        FedPlan::BindJoin { left, right, .. } => {
            let (lc, li, ln) = unit_fetch_cost(left, env);
            let rows = right.estimated_rows.max(1.0);
            (lc + rows * env.cost.engine_row_us, li + rows * env.cost.rdb_row_scan_us, ln)
        }
    }
}

/// Per-variable distinct-value estimates for the stars of one unit:
/// subject variables get the characteristic-set subject count, object
/// variables the predicate's distinct-object count, everything capped at
/// the unit's estimated rows.
fn unit_var_distincts(
    idxs: &[usize],
    dec: &crate::decompose::Decomposition,
    candidates: &[Vec<Candidate>],
    stats: &LakeStatistics,
    est_rows: f64,
) -> Vec<(Var, f64)> {
    let cap = est_rows.max(1.0);
    let mut out: Vec<(Var, f64)> = Vec::new();
    let mut push_min = |v: &Var, d: f64| match out.iter_mut().find(|(w, _)| w == v) {
        Some((_, old)) => *old = old.min(d),
        None => out.push((v.clone(), d)),
    };
    for &si in idxs {
        let star = &dec.stars[si];
        let ss = candidates[si].first().and_then(|c| stats.source(&c.source_id));
        if let StarSubject::Var(v) = &star.subject {
            let d = ss
                .map(|s| {
                    let preds: Vec<&str> = star
                        .predicates()
                        .into_iter()
                        .filter(|p| *p != vocab::rdf::TYPE)
                        .collect();
                    s.star_subjects(&preds).max(1.0)
                })
                .unwrap_or(cap);
            push_min(v, d.min(cap));
        }
        for t in &star.triples {
            let (Some(p), Some(v)) = (t.p.as_term().and_then(Term::as_iri), t.o.as_var()) else {
                continue;
            };
            if p == vocab::rdf::TYPE {
                continue;
            }
            let d = ss.and_then(|s| s.distinct_objects(p)).unwrap_or(cap);
            push_min(v, d.min(cap));
        }
    }
    out
}

/// How one unit joins onto the left-deep prefix. The derived order
/// (`Hash < Bind`) is part of the deterministic tie-break key for
/// equal-cost plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum StepKind {
    /// Fetch in full and hash-join at the engine.
    Hash,
    /// Ship the left join keys as SQL `IN` batches (dependent bind join).
    Bind,
}

/// A partial left-deep plan in the enumeration. Network is tracked in
/// three pools: `net_sum`/`net_max` over the independent full fetches
/// (the serialized schedule pays the sum, the overlapped one the max) and
/// `net_seq` for bind-join round trips, which serialize behind the left
/// input under either schedule.
#[derive(Clone)]
struct DpState {
    cpu_us: f64,
    io_us: f64,
    net_sum_us: f64,
    net_max_us: f64,
    net_seq_us: f64,
    est_rows: f64,
    var_distinct: Vec<(Var, f64)>,
    /// `(unit, kind)` per step; the first entry's kind is meaningless.
    steps: Vec<(usize, StepKind)>,
}

impl DpState {
    fn of_unit(i: usize, u: &CostUnit) -> DpState {
        DpState {
            cpu_us: u.fetch_cpu_us,
            io_us: u.fetch_io_us,
            net_sum_us: u.fetch_net_us,
            net_max_us: u.fetch_net_us,
            net_seq_us: 0.0,
            est_rows: u.est_rows,
            var_distinct: u.var_distinct.clone(),
            steps: vec![(i, StepKind::Hash)],
        }
    }

    fn total_us(&self, overlap: bool) -> f64 {
        let net = if overlap { self.net_max_us } else { self.net_sum_us };
        self.cpu_us + self.io_us + net + self.net_seq_us
    }

    /// The chosen plan's cost decomposition, for the report.
    fn federation_cost(&self, overlap: bool) -> FederationCost {
        FederationCost {
            cpu_us: self.cpu_us,
            io_us: self.io_us,
            network_us: self.net_sum_us + self.net_seq_us,
            parallelism_us: if overlap { self.net_sum_us - self.net_max_us } else { 0.0 },
        }
    }

    /// True when `self` replaces `incumbent` in the enumeration: strictly
    /// cheaper, or — at exactly equal cost — smaller on the deterministic
    /// tie-break key, the lexicographic `(unit index, step kind)` step
    /// sequence. Ties must never fall back to arrival order: it depends
    /// on the enumeration's iteration pattern, which is exactly the kind
    /// of incidental ordering a refactor silently changes.
    fn beats(&self, incumbent: &DpState, overlap: bool) -> bool {
        match self.total_us(overlap).total_cmp(&incumbent.total_us(overlap)) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Equal => self.steps < incumbent.steps,
            std::cmp::Ordering::Greater => false,
        }
    }

    /// Distinct join keys of `v` on this side, capped at the row estimate.
    fn distinct_of(&self, v: &Var) -> f64 {
        self.var_distinct
            .iter()
            .find(|(w, _)| w == v)
            .map_or(self.est_rows.max(1.0), |(_, d)| d.min(self.est_rows.max(1.0)))
    }
}

/// Prices joining unit `j` onto `state` with `kind`. Returns the new
/// state (without dedup against better states — the caller compares).
#[allow(clippy::too_many_arguments)]
fn apply_step(
    state: &DpState,
    j: usize,
    kind: StepKind,
    unit: &CostUnit,
    on: &[Var],
    env: &CostEnv<'_>,
    stars: &[StarSubquery],
    rel_stars: &[RelStar],
    lake: &DataLake,
    bind_batch: usize,
) -> DpState {
    let l_rows = state.est_rows.max(1.0);
    let r_rows = unit.est_rows.max(1.0);
    let out_rows = if on.is_empty() {
        // Cartesian product: legal, but priced at its full size.
        l_rows * r_rows
    } else {
        let dl = on.iter().map(|v| state.distinct_of(v)).fold(f64::MAX, f64::min);
        let dr = on
            .iter()
            .map(|v| {
                unit.var_distinct
                    .iter()
                    .find(|(w, _)| w == v)
                    .map_or(r_rows, |(_, d)| d.min(r_rows))
            })
            .fold(f64::MAX, f64::min);
        join_estimate(l_rows, dl, r_rows, dr)
    };
    let mut next = state.clone();
    match kind {
        StepKind::Hash => {
            next.cpu_us += unit.fetch_cpu_us
                + (l_rows + r_rows) * env.cost.engine_join_probe_us
                + out_rows * env.cost.engine_row_us;
            next.io_us += unit.fetch_io_us;
            next.net_sum_us += unit.fetch_net_us;
            next.net_max_us = next.net_max_us.max(unit.fetch_net_us);
        }
        StepKind::Bind => {
            let ri = unit.bindable.expect("bind step requires a bindable unit");
            let rs = &rel_stars[ri];
            let keys = state.distinct_of(&on[0]);
            let batches = (keys / bind_batch as f64).ceil().max(1.0);
            // One request message per batch, plus the matched rows coming
            // back — all after the left side finished, hence sequential.
            let messages = batches + (out_rows / env.rows_per_message).ceil();
            next.net_seq_us += env.transfer_us(messages, out_rows);
            let indexed = bindable_column(stars, rs, &on[0]).is_some_and(|col| {
                lake.source(&rs.source_id)
                    .is_some_and(|s| s.has_index_on(&rs.tm.table, &col))
            });
            next.io_us += if indexed {
                keys * env.cost.rdb_index_probe_us + out_rows * env.cost.rdb_index_row_us
            } else {
                // Every batch rescans the (filtered) table.
                batches * rs.cardinality as f64 * env.cost.rdb_row_scan_us
            };
            next.cpu_us +=
                l_rows * env.cost.engine_join_probe_us + out_rows * env.cost.engine_row_us;
        }
    }
    next.est_rows = out_rows.max(1.0);
    for (v, d) in &unit.var_distinct {
        match next.var_distinct.iter_mut().find(|(w, _)| w == v) {
            Some((_, old)) => *old = old.min(*d),
            None => next.var_distinct.push((v.clone(), *d)),
        }
    }
    for (_, d) in &mut next.var_distinct {
        *d = d.min(next.est_rows);
    }
    next.steps.push((j, kind));
    next
}

/// The column `join_var` maps to on the unit's star, when bind-joining is
/// feasible at all.
fn bindable_column(
    stars: &[StarSubquery],
    rs: &RelStar,
    join_var: &Var,
) -> Option<String> {
    column_of_var(join_var, &stars[rs.star_idx], &rs.tm)
}

/// Cost-based replacement for the greedy ordering in `plan_conjunctive`:
/// prices every left-deep order (DP up to [`DP_UNIT_LIMIT`] units, greedy
/// beyond) with per-edge bind-vs-hash choice, rebuilds the chosen plan
/// through the same construction paths the heuristic planner uses, and
/// records what it did in `report`.
#[allow(clippy::too_many_arguments)]
fn order_units_by_cost(
    dec: &crate::decompose::Decomposition,
    lake: &DataLake,
    config: &PlanConfig,
    stats: &LakeStatistics,
    candidates: &[Vec<Candidate>],
    rel_stars: &[RelStar],
    units: Vec<(Vec<usize>, FedPlan, Option<usize>)>,
    unit_var_list: Vec<Vec<Var>>,
    report: &mut PlanReport,
) -> Result<FedPlan, FedError> {
    let env = CostEnv {
        cost: &config.cost,
        delay_us: config.network.delay.mean_ms() * 1_000.0,
        rows_per_message: config.rows_per_message.max(1) as f64,
        overlap: config.overlap,
    };
    let bind_batch = match config.engine_join {
        EngineJoin::Bind { batch_size } => batch_size,
        EngineJoin::SymmetricHash => DEFAULT_BIND_BATCH,
    };
    let mut cost_units: Vec<CostUnit> = Vec::with_capacity(units.len());
    for ((idxs, plan, bindable), vars) in units.into_iter().zip(unit_var_list) {
        let est_rows = plan.estimated_rows();
        let (fetch_cpu_us, fetch_io_us, fetch_net_us) = unit_fetch_cost(&plan, &env);
        let mut var_distinct = unit_var_distincts(&idxs, dec, candidates, stats, est_rows);
        // Every unit variable gets an NDV entry (fallback: the row
        // estimate), so the DP's shared-variable sets match the `on` keys
        // the rebuilt joins will actually use.
        for v in &vars {
            if !var_distinct.iter().any(|(w, _)| w == v) {
                var_distinct.push((v.clone(), est_rows.max(1.0)));
            }
        }
        cost_units.push(CostUnit {
            plan: Some(plan),
            bindable,
            vars,
            est_rows,
            fetch_cpu_us,
            fetch_io_us,
            fetch_net_us,
            var_distinct,
        });
    }

    let n = cost_units.len();
    if n == 1 {
        report.strategy = PlanStrategy::Dp;
        let mut only = cost_units.into_iter().next().expect("one unit");
        let state = DpState::of_unit(0, &only);
        report.estimated_cost = Some(state.federation_cost(env.overlap));
        return Ok(only.plan.take().expect("unit plan present"));
    }

    // Feasible (hash, bind) options for extending a state by unit `j`.
    let options = |state: &DpState, j: usize| -> (Vec<Var>, Vec<StepKind>) {
        let on: Vec<Var> = cost_units[j]
            .vars
            .iter()
            .filter(|v| state.var_distinct.iter().any(|(w, _)| w == *v))
            .cloned()
            .collect();
        let mut kinds = vec![StepKind::Hash];
        if on.len() == 1 {
            if let Some(ri) = cost_units[j].bindable {
                if bindable_column(&dec.stars, &rel_stars[ri], &on[0]).is_some() {
                    kinds.push(StepKind::Bind);
                }
            }
        }
        (on, kinds)
    };

    let mut plans_costed = 0u64;
    let best: DpState = if n <= DP_UNIT_LIMIT {
        report.strategy = PlanStrategy::Dp;
        let mut dp: Vec<Option<DpState>> = vec![None; 1 << n];
        for (i, u) in cost_units.iter().enumerate() {
            dp[1 << i] = Some(DpState::of_unit(i, u));
        }
        for mask in 1usize..(1 << n) {
            let Some(state) = dp[mask].clone() else { continue };
            for j in 0..n {
                if mask & (1 << j) != 0 {
                    continue;
                }
                let (on, kinds) = options(&state, j);
                for kind in kinds {
                    plans_costed += 1;
                    let next = apply_step(
                        &state,
                        j,
                        kind,
                        &cost_units[j],
                        &on,
                        &env,
                        &dec.stars,
                        rel_stars,
                        lake,
                        bind_batch,
                    );
                    let slot = &mut dp[mask | (1 << j)];
                    let better = slot.as_ref().is_none_or(|s| next.beats(s, env.overlap));
                    if better {
                        *slot = Some(next);
                    }
                }
            }
        }
        dp[(1 << n) - 1].take().ok_or_else(|| {
            FedError::Internal("cost-based DP left the final state unreached".into())
        })?
    } else {
        report.strategy = PlanStrategy::GreedyCost;
        // Start from the cheapest single fetch, then repeatedly take the
        // cheapest extension. Equal-cost fetches resolve to the lowest
        // unit index (`min_by` keeps the *last* minimum, which would tie-
        // break on position — backwards and easy to destabilize).
        let first = (1..n).fold(0, |best, i| {
            let fi = DpState::of_unit(i, &cost_units[i]).total_us(env.overlap);
            let fb = DpState::of_unit(best, &cost_units[best]).total_us(env.overlap);
            if fi.total_cmp(&fb) == std::cmp::Ordering::Less {
                i
            } else {
                best
            }
        });
        let mut state = DpState::of_unit(first, &cost_units[first]);
        let mut used = vec![false; n];
        used[first] = true;
        for _ in 1..n {
            let mut pick: Option<DpState> = None;
            for j in 0..n {
                if used[j] {
                    continue;
                }
                let (on, kinds) = options(&state, j);
                for kind in kinds {
                    plans_costed += 1;
                    let next = apply_step(
                        &state,
                        j,
                        kind,
                        &cost_units[j],
                        &on,
                        &env,
                        &dec.stars,
                        rel_stars,
                        lake,
                        bind_batch,
                    );
                    let better = pick.as_ref().is_none_or(|p| next.beats(p, env.overlap));
                    if better {
                        pick = Some(next);
                    }
                }
            }
            state = pick.expect("some unit remains");
            used[state.steps.last().expect("step pushed").0] = true;
        }
        state
    };

    report.plans_costed += plans_costed;
    report.estimated_cost = Some(best.federation_cost(env.overlap));

    // Rebuild the chosen order through the same construction paths the
    // heuristic planner uses, so plan nodes stay byte-identical for a
    // given shape.
    let mut steps = best.steps.iter();
    let &(first, _) = steps.next().expect("at least one step");
    let mut plan = cost_units[first].plan.take().expect("unit plan present");
    let mut bound_vars = cost_units[first].vars.clone();
    for &(j, kind) in steps {
        let right_vars = cost_units[j].vars.clone();
        let on: Vec<Var> =
            right_vars.iter().filter(|v| bound_vars.contains(v)).cloned().collect();
        for v in right_vars {
            if !bound_vars.contains(&v) {
                bound_vars.push(v);
            }
        }
        let right = cost_units[j].plan.take().expect("unit plan present");
        plan = match kind {
            StepKind::Bind if on.len() == 1 => {
                let ri = cost_units[j].bindable.expect("bind step requires bindable");
                match build_bind_join(
                    plan,
                    &dec.stars,
                    &rel_stars[ri],
                    &on[0],
                    bind_batch,
                    Some(stats),
                )? {
                    Ok(bound_plan) => {
                        report.bind_joins += 1;
                        bound_plan
                    }
                    Err(left) => FedPlan::Join {
                        left: Box::new(left),
                        right: Box::new(right),
                        on,
                    },
                }
            }
            _ => {
                FedPlan::Join { left: Box::new(plan), right: Box::new(right), on }
            }
        };
    }
    Ok(plan)
}
