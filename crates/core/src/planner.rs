//! The federated plan generator: where the paper's heuristics live.
//!
//! Two plan types are produced (§3):
//!
//! * **Physical-Design-Unaware** ([`PlanMode::Unaware`]): each star-shaped
//!   sub-query becomes its own source request; every `FILTER` and every
//!   inter-star join is evaluated by engine-level operators. The physical
//!   design (indexes) of the sources is ignored.
//! * **Physical-Design-Aware** ([`PlanMode::Aware`]): the plan exploits the
//!   sources' physical design through the two heuristics:
//!   * *Heuristic 1 (pushing down joins)* — two stars resolved to the same
//!     relational endpoint are combined into one SQL query **iff** the
//!     join attribute (the FK column) is indexed there.
//!   * *Heuristic 2 (pushing up instantiations)* — a star's filter runs at
//!     the engine **unless** the filtered attribute is indexed at the
//!     source **and** the network is slow; only then is it pushed into the
//!     SQL `WHERE` clause to shrink the transferred intermediate result.
//!
//! For the ablation benches, disabling H2 inside `Aware` yields the
//! classical always-push-selections plan, and disabling H1 keeps all joins
//! at the engine while H2 still governs filters.

use crate::config::{MergeTranslation, PlanConfig, PlanMode};
use crate::decompose::{decompose_as, StarSubquery};
use crate::error::FedError;
use crate::fedplan::{FedPlan, NaiveJoin, ReplicaRoute, ServiceKind, ServiceNode, SqlRequest};
use crate::health::HealthView;
use crate::lake::DataLake;
use crate::selection::{select_sources_with_health, Candidate};
use crate::source::DataSource;
use crate::translate::{
    column_of_var, filter_column, sql_merged, sql_single, star_part, StarPart,
};
use fedlake_mapping::TableMapping;
use fedlake_relational::TableSchema;
use fedlake_sparql::ast::{OrderKey, SelectQuery};
use fedlake_sparql::binding::{RowSchema, Var};
use fedlake_sparql::expr::Expr;
use fedlake_rdf::Term;
use std::sync::Arc;

/// A fully planned query: the federated plan plus the solution modifiers
/// the engine applies on top.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedQuery {
    /// The federated execution plan.
    pub plan: FedPlan,
    /// The slot layout every operator of this query shares: one slot per
    /// variable the pattern or the projection mentions.
    pub schema: Arc<RowSchema>,
    /// Projected variables.
    pub projection: Arc<[Var]>,
    /// `DISTINCT`.
    pub distinct: bool,
    /// `ORDER BY` keys.
    pub order_by: Vec<OrderKey>,
    /// `LIMIT`.
    pub limit: Option<usize>,
    /// `OFFSET`.
    pub offset: usize,
    /// Sources the health-aware selector skipped because every replica
    /// endpoint was past the failure threshold (only under `degraded_ok`;
    /// the engine marks such answers degraded).
    pub skipped_sources: Vec<String>,
}

/// One star bound to one relational source, with everything translation
/// needs.
struct RelStar {
    star_idx: usize,
    source_id: String,
    tm: TableMapping,
    schema: TableSchema,
    pushed: Vec<Expr>,
    engine_filters: Vec<Expr>,
    cardinality: usize,
}

/// Plans a parsed query under `config` with no health history (every
/// endpoint presumed healthy — the behaviour of a fresh session).
pub fn plan_query(
    query: &SelectQuery,
    lake: &DataLake,
    config: &PlanConfig,
) -> Result<PlannedQuery, FedError> {
    plan_query_with_health(query, lake, config, &HealthView::empty())
}

/// Plans a parsed query under `config`, consulting the session's health
/// snapshot: replica endpoints are routed healthiest-first, and (with
/// `degraded_ok`) sources whose endpoints are all past the failure
/// threshold are skipped when a healthier alternative covers the star.
pub fn plan_query_with_health(
    query: &SelectQuery,
    lake: &DataLake,
    config: &PlanConfig,
    health: &HealthView,
) -> Result<PlannedQuery, FedError> {
    let dec = decompose_as(query, config.decomposition)?;
    let mut skipped = Vec::new();
    let mut plan = plan_tree(&dec, lake, config, health, &mut skipped)?;
    assign_routes(&mut plan, lake, health);
    let projection = query.effective_projection();
    // The schema covers every variable an operator may bind or project.
    let schema = Arc::new(RowSchema::new(
        query.pattern.vars().into_iter().chain(projection.iter().cloned()),
    ));
    Ok(PlannedQuery {
        plan,
        schema,
        projection: projection.into(),
        distinct: query.distinct,
        order_by: query.order_by.clone(),
        limit: query.limit,
        offset: query.offset.unwrap_or(0),
        skipped_sources: skipped,
    })
}

/// Walks a plan and decides, per service leaf, the replica endpoints to
/// contact and in which order: failures ascending (healthiest first),
/// replica index breaking ties. Unreplicated sources keep `route: None`
/// and behave exactly as before replicas existed.
pub fn assign_routes(plan: &mut FedPlan, lake: &DataLake, health: &HealthView) {
    match plan {
        FedPlan::Service(node) => {
            node.route = route_for_source(&node.source_id, lake, health);
        }
        FedPlan::Join { left, right, .. } | FedPlan::LeftJoin { left, right, .. } => {
            assign_routes(left, lake, health);
            assign_routes(right, lake, health);
        }
        FedPlan::BindJoin { left, right, .. } => {
            assign_routes(left, lake, health);
            right.route = route_for_source(&right.source_id, lake, health);
        }
        FedPlan::Filter { input, .. } => assign_routes(input, lake, health),
        FedPlan::Union(branches) => {
            for b in branches {
                assign_routes(b, lake, health);
            }
        }
    }
}

fn route_for_source(
    source_id: &str,
    lake: &DataLake,
    health: &HealthView,
) -> Option<ReplicaRoute> {
    if lake.replica_count(source_id) <= 1 {
        return None;
    }
    let endpoints = lake.replica_endpoints(source_id);
    let mut order: Vec<(u64, usize)> = endpoints
        .iter()
        .enumerate()
        .map(|(i, e)| (health.failures_of(e), i))
        .collect();
    order.sort_unstable();
    let reason = if order.iter().all(|&(f, _)| f == order[0].0) {
        format!("replica index order ({} failures each)", order[0].0)
    } else {
        let parts: Vec<String> = order
            .iter()
            .map(|&(f, i)| format!("{}={}", endpoints[i], f))
            .collect();
        format!("healthiest first (failures: {})", parts.join(", "))
    };
    let ordered: Vec<String> =
        order.into_iter().map(|(_, i)| endpoints[i].clone()).collect();
    Some(ReplicaRoute { endpoints: ordered, reason })
}

/// Plans a decomposition: the required conjunctive part and the `UNION`
/// blocks joined together, then the cross-star filters, then one
/// streaming left join per `OPTIONAL` group.
fn plan_tree(
    dec: &crate::decompose::Decomposition,
    lake: &DataLake,
    config: &PlanConfig,
    health: &HealthView,
    skipped: &mut Vec<String>,
) -> Result<FedPlan, FedError> {
    // 1. Required units: the star-based part plus one unit per union
    //    block (each block binds the variables common to all branches).
    let mut units: Vec<(FedPlan, Vec<Var>)> = Vec::new();
    if !dec.stars.is_empty() {
        let star_vars = {
            let mut out: Vec<Var> = Vec::new();
            for st in &dec.stars {
                for v in st.vars() {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            out
        };
        units.push((plan_conjunctive(dec, lake, config, health, skipped)?, star_vars));
    }
    for block in &dec.unions {
        let branches = block
            .iter()
            .map(|b| plan_tree(b, lake, config, health, skipped))
            .collect::<Result<Vec<_>, _>>()?;
        let plan = if branches.len() == 1 {
            branches.into_iter().next().expect("length checked")
        } else {
            FedPlan::Union(branches)
        };
        units.push((plan, crate::decompose::union_block_vars(block)));
    }
    if units.is_empty() {
        return Err(FedError::Unsupported("empty basic graph pattern".into()));
    }

    // 2. Join the units on their shared (always-bound) variables.
    let (mut plan, mut bound_vars) = units.remove(0);
    for (right, rvars) in units {
        let on: Vec<Var> = rvars
            .iter()
            .filter(|v| bound_vars.contains(v))
            .cloned()
            .collect();
        for v in rvars {
            if !bound_vars.contains(&v) {
                bound_vars.push(v);
            }
        }
        plan = FedPlan::Join { left: Box::new(plan), right: Box::new(right), on };
    }

    // 3. Cross-star filters. Filters fully covered by the always-bound
    //    variables apply here; the rest (e.g. BOUND over optional
    //    variables) apply after the OPTIONALs.
    let (pre, post): (Vec<Expr>, Vec<Expr>) = dec
        .cross_filters
        .iter()
        .cloned()
        .partition(|f| f.vars().iter().all(|v| bound_vars.contains(v)));
    if !pre.is_empty() {
        plan = FedPlan::Filter { input: Box::new(plan), exprs: pre };
    }

    // 4. OPTIONAL groups as streaming left joins.
    let mut seen_optional_vars: Vec<Var> = Vec::new();
    for opt in &dec.optionals {
        let opt_vars = opt.vars();
        // Correlation between two OPTIONAL groups through variables that
        // the required part does not bind needs full compatibility
        // semantics — out of scope.
        if opt_vars
            .iter()
            .any(|v| !bound_vars.contains(v) && seen_optional_vars.contains(v))
        {
            return Err(FedError::Unsupported(
                "OPTIONAL groups correlated through optional-only variables".into(),
            ));
        }
        // Filters inside the OPTIONAL must be self-contained.
        for f in &opt.cross_filters {
            if !f.vars().iter().all(|v| opt_vars.contains(v)) {
                return Err(FedError::Unsupported(
                    "FILTER in OPTIONAL referencing outer variables".into(),
                ));
            }
        }
        let right = plan_tree(opt, lake, config, health, skipped)?;
        let on: Vec<Var> = opt_vars
            .iter()
            .filter(|v| bound_vars.contains(v))
            .cloned()
            .collect();
        for v in opt_vars {
            if !bound_vars.contains(&v) && !seen_optional_vars.contains(&v) {
                seen_optional_vars.push(v);
            }
        }
        plan = FedPlan::LeftJoin { left: Box::new(plan), right: Box::new(right), on };
    }

    // 5. Filters that need conditionally-bound variables.
    if !post.is_empty() {
        plan = FedPlan::Filter { input: Box::new(plan), exprs: post };
    }
    Ok(plan)
}

/// Plans the conjunctive (required) part of a decomposition.
fn plan_conjunctive(
    dec: &crate::decompose::Decomposition,
    lake: &DataLake,
    config: &PlanConfig,
    health: &HealthView,
    skipped: &mut Vec<String>,
) -> Result<FedPlan, FedError> {
    if dec.stars.is_empty() {
        return Err(FedError::Unsupported("empty basic graph pattern".into()));
    }
    let (candidates, newly_skipped) =
        select_sources_with_health(&dec.stars, lake, health, config.degraded_ok)?;
    for s in newly_skipped {
        if !skipped.contains(&s) {
            skipped.push(s);
        }
    }

    // Classify stars: single relational candidate vs. everything else.
    let mut rel_stars: Vec<RelStar> = Vec::new();
    let mut other_units: Vec<(usize, FedPlan)> = Vec::new();
    for (i, (star, cands)) in dec.stars.iter().zip(&candidates).enumerate() {
        let single_relational = cands.len() == 1
            && lake
                .source(&cands[0].source_id)
                .is_some_and(DataSource::is_relational)
            && !star.has_variable_predicate();
        if single_relational {
            let cand = &cands[0];
            let (tm, schema) = relational_parts(lake, cand)?;
            let (pushed, engine_filters) =
                split_filters(star, &tm, lake.source(&cand.source_id).expect("selected"), config);
            rel_stars.push(RelStar {
                star_idx: i,
                source_id: cand.source_id.clone(),
                tm,
                schema,
                pushed,
                engine_filters,
                cardinality: cand.cardinality,
            });
        } else {
            other_units.push((i, plan_other_star(star, cands, lake, config)?));
        }
    }

    // Heuristic 1: pairwise merging of relational stars on one endpoint.
    let h1 = matches!(
        config.mode,
        PlanMode::Aware { h1_join_pushdown: true, .. }
    );
    let mut merged_away: Vec<Option<usize>> = vec![None; rel_stars.len()]; // partner index
    if h1 {
        for i in 0..rel_stars.len() {
            if merged_away[i].is_some() {
                continue;
            }
            for j in (i + 1)..rel_stars.len() {
                if merged_away[j].is_some() || merged_away[i].is_some() {
                    continue;
                }
                if rel_stars[i].source_id != rel_stars[j].source_id {
                    continue;
                }
                let source = lake.source(&rel_stars[i].source_id).expect("selected");
                if find_merge_join(&dec.stars, &rel_stars[i], &rel_stars[j], source).is_some()
                {
                    merged_away[i] = Some(j);
                    merged_away[j] = Some(i);
                }
            }
        }
    }

    // Build service units. Single relational stars remember their
    // RelStar index so the join loop can convert them into bind joins.
    let mut units: Vec<(Vec<usize>, FedPlan, Option<usize>)> = Vec::new();
    let mut consumed = vec![false; rel_stars.len()];
    for i in 0..rel_stars.len() {
        if consumed[i] {
            continue;
        }
        consumed[i] = true;
        match merged_away[i] {
            Some(j) if !consumed[j] => {
                consumed[j] = true;
                let source = lake.source(&rel_stars[i].source_id).expect("selected");
                let unit = build_merged_service(
                    &dec.stars,
                    &rel_stars[i],
                    &rel_stars[j],
                    source,
                    config,
                )?;
                units.push((vec![rel_stars[i].star_idx, rel_stars[j].star_idx], unit, None));
            }
            _ => {
                let unit = build_single_service(&dec.stars, &rel_stars[i], config)?;
                units.push((vec![rel_stars[i].star_idx], unit, Some(i)));
            }
        }
    }
    for (i, plan) in other_units {
        units.push((vec![i], plan, None));
    }

    // Greedy left-deep join ordering over units.
    let star_vars: Vec<Vec<Var>> = dec.stars.iter().map(StarSubquery::vars).collect();
    let unit_vars = |star_idxs: &[usize]| -> Vec<Var> {
        let mut out = Vec::new();
        for &i in star_idxs {
            for v in &star_vars[i] {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    };
    units.sort_by(|a, b| a.1.estimated_rows().total_cmp(&b.1.estimated_rows()));
    let (first_idxs, mut plan, _) = units.remove(0);
    let mut bound_vars = unit_vars(&first_idxs);
    while !units.is_empty() {
        // Prefer the smallest connected unit.
        let pick = units
            .iter()
            .position(|(idxs, _, _)| {
                unit_vars(idxs).iter().any(|v| bound_vars.contains(v))
            })
            .unwrap_or(0);
        let (idxs, right, bindable) = units.remove(pick);
        let right_vars = unit_vars(&idxs);
        let on: Vec<Var> = right_vars
            .iter()
            .filter(|v| bound_vars.contains(v))
            .cloned()
            .collect();
        for v in right_vars {
            if !bound_vars.contains(&v) {
                bound_vars.push(v);
            }
        }
        plan = match (config.engine_join, bindable) {
            (crate::config::EngineJoin::Bind { batch_size }, Some(ri)) if on.len() == 1 => {
                match build_bind_join(plan, &dec.stars, &rel_stars[ri], &on[0], batch_size)? {
                    Ok(bound_plan) => bound_plan,
                    // The variable does not map to a column: fall back.
                    Err(left) => FedPlan::Join {
                        left: Box::new(left),
                        right: Box::new(right),
                        on,
                    },
                }
            }
            _ => FedPlan::Join { left: Box::new(plan), right: Box::new(right), on },
        };
    }

    // Cross-star filters are applied by `plan_tree`, which knows the
    // union- and optional-bound variables.
    Ok(plan)
}

/// Heuristic 2's decision: split a relational star's filters into
/// (pushed-to-source, kept-at-engine).
fn split_filters(
    star: &StarSubquery,
    tm: &TableMapping,
    source: &DataSource,
    config: &PlanConfig,
) -> (Vec<Expr>, Vec<Expr>) {
    let mut pushed = Vec::new();
    let mut engine = Vec::new();
    for f in &star.filters {
        let decision = match config.mode {
            // The unaware plan performs every operation it can at the
            // engine.
            PlanMode::Unaware => false,
            PlanMode::Aware { filters, .. } => {
                // The SQL shape must be representable in any pushed case.
                let translatable = filter_column(f, star, tm).is_some()
                    && crate::translate::filter_to_sql(f, star, tm, "x").is_some();
                let indexed = filter_column(f, star, tm)
                    .is_some_and(|col| source.has_index_on(&tm.table, &col));
                match filters {
                    crate::config::FilterPlacement::Engine => false,
                    crate::config::FilterPlacement::PushIndexed => translatable && indexed,
                    crate::config::FilterPlacement::Heuristic2 => {
                        translatable && indexed && config.network.is_slow()
                    }
                    crate::config::FilterPlacement::PushAll => translatable,
                }
            }
        };
        if decision {
            pushed.push(f.clone());
        } else {
            engine.push(f.clone());
        }
    }
    (pushed, engine)
}

/// The join columns Heuristic 1 would merge two stars on, when the paper's
/// indexing condition holds. Returns `(left_col_on_a, right_col_on_b)`.
fn find_merge_join(
    stars: &[StarSubquery],
    a: &RelStar,
    b: &RelStar,
    source: &DataSource,
) -> Option<(String, String)> {
    let sa = &stars[a.star_idx];
    let sb = &stars[b.star_idx];
    // Stars over the SAME table (a denormalized design) merge without a
    // join at all — no index condition applies, since there is nothing to
    // join; the shared variable only has to be column-mapped on both
    // sides.
    let same_table = a.tm.table == b.tm.table;
    // Case 1: an object variable of `a` is the subject of `b` (FK → PK).
    if let crate::decompose::StarSubject::Var(vb) = &sb.subject {
        for t in &sa.triples {
            if t.o.as_var() == Some(vb) {
                let pred = t.p.as_term().and_then(Term::as_iri)?;
                let col = a.tm.column_for_predicate(pred)?.column.clone();
                // The paper's condition: the join attribute is indexed.
                if same_table || source.has_index_on(&a.tm.table, &col) {
                    return Some((col, b.tm.subject_column.clone()));
                }
                return None;
            }
        }
    }
    // Case 1 reversed: an object variable of `b` is the subject of `a`.
    if let crate::decompose::StarSubject::Var(va) = &sa.subject {
        for t in &sb.triples {
            if t.o.as_var() == Some(va) {
                let pred = t.p.as_term().and_then(Term::as_iri)?;
                let col = b.tm.column_for_predicate(pred)?.column.clone();
                if same_table || source.has_index_on(&b.tm.table, &col) {
                    // Keep `a` as the left table: left col is a's subject.
                    return Some((a.tm.subject_column.clone(), col));
                }
                return None;
            }
        }
    }
    // Case 2: a shared object variable (column–column join); at least one
    // side must be indexed.
    let vars_a = sa.vars();
    let vars_b = sb.vars();
    for v in &vars_a {
        if !vars_b.contains(v) {
            continue;
        }
        let (Some(ca), Some(cb)) = (
            column_of_var(v, sa, &a.tm),
            column_of_var(v, sb, &b.tm),
        ) else {
            continue;
        };
        if same_table
            || source.has_index_on(&a.tm.table, &ca)
            || source.has_index_on(&b.tm.table, &cb)
        {
            return Some((ca, cb));
        }
    }
    None
}

fn relational_parts(
    lake: &DataLake,
    cand: &Candidate,
) -> Result<(TableMapping, TableSchema), FedError> {
    match lake.source(&cand.source_id) {
        Some(DataSource::Relational { db, mapping, .. }) => {
            let tm = mapping
                .for_class(&cand.class)
                .ok_or_else(|| {
                    FedError::Internal(format!("class {} not mapped", cand.class))
                })?
                .clone();
            let schema = db
                .table(&tm.table)
                .ok_or_else(|| FedError::Internal(format!("table {} missing", tm.table)))?
                .schema
                .clone();
            Ok((tm, schema))
        }
        _ => Err(FedError::Internal(format!(
            "candidate source {} is not relational",
            cand.source_id
        ))),
    }
}

fn estimate(cardinality: usize, part: &StarPart) -> f64 {
    let constraints = part
        .wheres
        .iter()
        .filter(|w| !w.ends_with("IS NOT NULL"))
        .count();
    ((cardinality as f64) * 0.4f64.powi(constraints as i32)).max(1.0)
}

fn wrap_engine_filters(plan: FedPlan, filters: Vec<Expr>) -> FedPlan {
    if filters.is_empty() {
        plan
    } else {
        FedPlan::Filter { input: Box::new(plan), exprs: filters }
    }
}

/// Converts a single relational star into the right side of a dependent
/// bind join on `join_var`. Returns `Err(left)` (giving the left plan
/// back) when the variable does not map to a column of the star.
#[allow(clippy::result_large_err)]
fn build_bind_join(
    left: FedPlan,
    stars: &[StarSubquery],
    rs: &RelStar,
    join_var: &Var,
    batch_size: usize,
) -> Result<Result<FedPlan, FedPlan>, FedError> {
    let star = &stars[rs.star_idx];
    let Some(column) = column_of_var(join_var, star, &rs.tm) else {
        return Ok(Err(left));
    };
    let extract = match &star.subject {
        crate::decompose::StarSubject::Var(v) if v == join_var => {
            Some(rs.tm.subject_template.clone())
        }
        _ => crate::translate::column_ref_template(join_var, star, &rs.tm),
    };
    let part = star_part(star, &rs.tm, &rs.schema, &rs.pushed, "s0")?;
    let est = estimate(rs.cardinality, &part);
    let target = crate::fedplan::BindTarget {
        source_id: rs.source_id.clone(),
        route: None,
        part,
        join_var: join_var.clone(),
        column,
        extract,
        covers: star.subject.to_string(),
        estimated_rows: est,
    };
    let plan = FedPlan::BindJoin { left: Box::new(left), right: target, batch_size };
    Ok(Ok(wrap_engine_filters(plan, rs.engine_filters.clone())))
}

fn build_single_service(
    stars: &[StarSubquery],
    rs: &RelStar,
    _config: &PlanConfig,
) -> Result<FedPlan, FedError> {
    let star = &stars[rs.star_idx];
    let part = star_part(star, &rs.tm, &rs.schema, &rs.pushed, "s0")?;
    let est = estimate(rs.cardinality, &part);
    let q = sql_single(&part);
    let service = FedPlan::Service(ServiceNode {
        source_id: rs.source_id.clone(),
        route: None,
        kind: ServiceKind::Sql {
            request: SqlRequest::Single(q),
            covers: vec![star.subject.to_string()],
        },
        estimated_rows: est,
    });
    Ok(wrap_engine_filters(service, rs.engine_filters.clone()))
}

fn build_merged_service(
    stars: &[StarSubquery],
    a: &RelStar,
    b: &RelStar,
    source: &DataSource,
    config: &PlanConfig,
) -> Result<FedPlan, FedError> {
    let (left_col, right_col) = find_merge_join(stars, a, b, source)
        .ok_or_else(|| FedError::Internal("merge pair lost its join".into()))?;
    let sa = &stars[a.star_idx];
    let sb = &stars[b.star_idx];

    // Denormalized case: both stars read one table — combine under a
    // single alias with no join (regardless of the translation quality
    // setting; there is no join to translate badly).
    if a.tm.table == b.tm.table {
        let pa = star_part(sa, &a.tm, &a.schema, &a.pushed, "s0")?;
        let pb = star_part(sb, &b.tm, &b.schema, &b.pushed, "s0")?;
        let est = estimate(a.cardinality, &pa).min(estimate(b.cardinality, &pb));
        let q = crate::translate::sql_merged_same_table(&pa, &pb, &left_col, &right_col);
        let service = FedPlan::Service(ServiceNode {
            source_id: a.source_id.clone(),
            route: None,
            kind: ServiceKind::Sql {
                request: SqlRequest::MergedOptimized(q),
                covers: vec![sa.subject.to_string(), sb.subject.to_string()],
            },
            estimated_rows: est,
        });
        let mut filters = a.engine_filters.clone();
        filters.extend(b.engine_filters.clone());
        return Ok(wrap_engine_filters(service, filters));
    }

    let pa = star_part(sa, &a.tm, &a.schema, &a.pushed, "s0")?;
    let pb = star_part(sb, &b.tm, &b.schema, &b.pushed, "s1")?;
    let est = estimate(a.cardinality, &pa).min(estimate(b.cardinality, &pb));
    let covers = vec![sa.subject.to_string(), sb.subject.to_string()];
    let request = match config.merge_translation {
        MergeTranslation::Optimized => {
            SqlRequest::MergedOptimized(sql_merged(&pa, &pb, &left_col, &right_col))
        }
        MergeTranslation::Naive => {
            // The dependent join keys on the shared variable: the one
            // mapped to `left_col` on `a`'s side.
            let join_var = sa
                .vars()
                .into_iter()
                .find(|v| column_of_var(v, sa, &a.tm).as_deref() == Some(left_col.as_str()))
                .ok_or_else(|| {
                    FedError::Internal("naive merge: join variable not found".into())
                })?;
            // How inner keys lift: if the variable is b's subject, IRIs are
            // minted by b's subject template; otherwise, by the reference
            // template if any.
            let extract = match &sb.subject {
                crate::decompose::StarSubject::Var(v) if *v == join_var => {
                    Some(b.tm.subject_template.clone())
                }
                _ => crate::translate::column_ref_template(&join_var, sb, &b.tm),
            };
            SqlRequest::MergedNaive {
                outer: sql_single(&pa),
                inner: pb,
                join: NaiveJoin { outer_var: join_var, inner_col: right_col, extract },
            }
        }
    };
    let service = FedPlan::Service(ServiceNode {
        source_id: a.source_id.clone(),
        route: None,
        kind: ServiceKind::Sql { request, covers },
        estimated_rows: est,
    });
    let mut filters = a.engine_filters.clone();
    filters.extend(b.engine_filters.clone());
    Ok(wrap_engine_filters(service, filters))
}

/// Plans a star that is not a single-relational-candidate: SPARQL sources
/// evaluate natively, multiple candidates become a union.
fn plan_other_star(
    star: &StarSubquery,
    cands: &[Candidate],
    lake: &DataLake,
    config: &PlanConfig,
) -> Result<FedPlan, FedError> {
    let mut branches = Vec::new();
    for cand in cands {
        let source = lake
            .source(&cand.source_id)
            .ok_or_else(|| FedError::Internal("candidate source missing".into()))?;
        match source {
            DataSource::Sparql { .. } => {
                branches.push(FedPlan::Service(ServiceNode {
                    source_id: cand.source_id.clone(),
                    route: None,
                    kind: ServiceKind::Sparql {
                        star: star.clone(),
                        filters: star.filters.clone(),
                    },
                    estimated_rows: (cand.cardinality as f64).max(1.0),
                }));
            }
            DataSource::Relational { db, mapping, .. } => {
                let tm = mapping
                    .for_class(&cand.class)
                    .ok_or_else(|| {
                        FedError::Internal(format!("class {} not mapped", cand.class))
                    })?
                    .clone();
                let schema = db
                    .table(&tm.table)
                    .ok_or_else(|| {
                        FedError::Internal(format!("table {} missing", tm.table))
                    })?
                    .schema
                    .clone();
                let (pushed, engine) = split_filters(star, &tm, source, config);
                let part = star_part(star, &tm, &schema, &pushed, "s0")?;
                let est = estimate(cand.cardinality, &part);
                let service = FedPlan::Service(ServiceNode {
                    source_id: cand.source_id.clone(),
                    route: None,
                    kind: ServiceKind::Sql {
                        request: SqlRequest::Single(sql_single(&part)),
                        covers: vec![star.subject.to_string()],
                    },
                    estimated_rows: est,
                });
                branches.push(wrap_engine_filters(service, engine));
            }
        }
    }
    Ok(if branches.len() == 1 {
        branches.remove(0)
    } else {
        FedPlan::Union(branches)
    })
}
