//! Error types for the federated engine.

use std::fmt;
use std::time::Duration;

/// Errors raised while decomposing, planning or executing a federated
/// query.
#[derive(Debug, Clone, PartialEq)]
pub enum FedError {
    /// The SPARQL front-end failed.
    Sparql(fedlake_sparql::SparqlError),
    /// A wrapped relational source failed.
    Sql(fedlake_relational::SqlError),
    /// No source in the lake can answer a star-shaped sub-query.
    NoSourceFor(String),
    /// A plan references a source id the lake does not contain.
    NoSuchSource(String),
    /// A source stopped answering within the retry budget: every attempt
    /// of some message failed (drops, truncations or an outage).
    SourceUnavailable {
        /// The failing source's id.
        source: String,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The per-query deadline elapsed before the query completed.
    Timeout(Duration),
    /// Cost-based planning refused to price plans against a drifted
    /// statistics catalog: a source was mutated (`DataLake::source_mut`)
    /// without a following `DataLake::refresh_templates`.
    StaleStatistics {
        /// The lake's current catalog epoch.
        epoch: u64,
        /// The epoch the statistics were last collected at.
        stats_epoch: u64,
    },
    /// The query uses a feature the federated planner does not support.
    Unsupported(String),
    /// Planner/executor internal error.
    Internal(String),
}

impl fmt::Display for FedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FedError::Sparql(e) => write!(f, "{e}"),
            FedError::Sql(e) => write!(f, "{e}"),
            FedError::NoSourceFor(ssq) => {
                write!(f, "no source can answer sub-query over {ssq}")
            }
            FedError::NoSuchSource(id) => {
                write!(f, "no source with id {id} in the lake")
            }
            FedError::SourceUnavailable { source, attempts } => {
                write!(f, "source {source} unavailable after {attempts} attempts")
            }
            FedError::Timeout(d) => {
                write!(f, "query deadline of {:?} exceeded", d)
            }
            FedError::StaleStatistics { epoch, stats_epoch } => write!(
                f,
                "statistics catalog is stale (lake epoch {epoch}, statistics from epoch \
                 {stats_epoch}): run DataLake::refresh_templates before cost-based planning"
            ),
            FedError::Unsupported(m) => write!(f, "unsupported in federation: {m}"),
            FedError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for FedError {}

impl From<fedlake_sparql::SparqlError> for FedError {
    fn from(e: fedlake_sparql::SparqlError) -> Self {
        FedError::Sparql(e)
    }
}

impl From<fedlake_relational::SqlError> for FedError {
    fn from(e: fedlake_relational::SqlError) -> Self {
        FedError::Sql(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from() {
        let e: FedError = fedlake_sparql::SparqlError::Parse("x".into()).into();
        assert!(e.to_string().contains("parse"));
        let e: FedError = fedlake_relational::SqlError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains('t'));
        assert!(FedError::NoSourceFor("?s".into()).to_string().contains("?s"));
    }

    #[test]
    fn fault_variant_display() {
        let e = FedError::NoSuchSource("drugbank".into());
        assert!(e.to_string().contains("drugbank"));
        let e = FedError::SourceUnavailable { source: "sider".into(), attempts: 4 };
        assert!(e.to_string().contains("sider"));
        assert!(e.to_string().contains('4'));
        let e = FedError::Timeout(Duration::from_secs(30));
        assert!(e.to_string().contains("deadline"));
        let e = FedError::StaleStatistics { epoch: 5, stats_epoch: 3 };
        assert!(e.to_string().contains("stale"));
        assert!(e.to_string().contains("refresh_templates"));
    }
}
