//! The Semantic Data Lake: a catalog of heterogeneous sources with their
//! RDF Molecule Templates.

use crate::source::DataSource;
use crate::stats::{LakeStatistics, SourceStatistics};
use fedlake_mapping::RdfMoleculeTemplate;
use std::collections::BTreeMap;

/// The logical source id behind a replica endpoint id: `"chebi#r1"` maps
/// back to `"chebi"`, a plain source id maps to itself. Failure stats,
/// error messages and the health registry's planning view are all keyed
/// by the logical id so one flaky source is not split across replica keys.
pub fn logical_source_id(endpoint: &str) -> &str {
    match endpoint.rfind("#r") {
        Some(pos) if endpoint[pos + 2..].bytes().all(|b| b.is_ascii_digit())
            && pos + 2 < endpoint.len() =>
        {
            &endpoint[..pos]
        }
        _ => endpoint,
    }
}

/// The replica endpoint id for replica `k` of a logical source.
pub fn replica_endpoint_id(logical: &str, k: u32) -> String {
    format!("{logical}#r{k}")
}

/// A collection of data sources, each kept in its native data model and
/// described by RDF Molecule Templates (§2.1).
///
/// A logical source may be served by N replica endpoints — physically
/// identical copies behind independent network links (and thus independent
/// fault schedules). Replication is a catalog property: the planner routes
/// each service to a preferred replica, and the wrappers fail over to the
/// next endpoint when a replica exhausts its retry budget.
#[derive(Debug, Clone, Default)]
pub struct DataLake {
    sources: Vec<DataSource>,
    mts: Vec<RdfMoleculeTemplate>,
    /// Logical source id → replica count (absent = 1, unreplicated).
    replicas: BTreeMap<String, u32>,
    /// The statistics catalog, collected at registration time and
    /// recomputed by [`DataLake::refresh_templates`] (the invalidation
    /// point after source mutation).
    stats: LakeStatistics,
    /// Catalog epoch: bumped by every catalog-affecting mutation
    /// (`add_source`, `source_mut`, `refresh_templates`, `set_replicas`,
    /// `statistics_mut`). The plan cache's invalidation key.
    epoch: u64,
    /// The epoch the statistics catalog was last brought in line with at
    /// (`== epoch` unless a bare [`DataLake::source_mut`] left the
    /// catalog stale).
    stats_epoch: u64,
}

impl DataLake {
    /// Creates an empty lake.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a source, indexes its molecule templates, and collects
    /// its statistics.
    pub fn add_source(&mut self, source: DataSource) {
        self.mts.extend(source.molecule_templates());
        self.stats
            .sources
            .insert(source.id().to_string(), SourceStatistics::collect(&source));
        self.sources.push(source);
        self.epoch += 1;
        self.stats_epoch = self.epoch;
    }

    /// All sources.
    pub fn sources(&self) -> &[DataSource] {
        &self.sources
    }

    /// Looks up a source by id.
    pub fn source(&self, id: &str) -> Option<&DataSource> {
        self.sources.iter().find(|s| s.id() == id)
    }

    /// All molecule templates in the lake.
    pub fn molecule_templates(&self) -> &[RdfMoleculeTemplate] {
        &self.mts
    }

    /// Molecule templates offered by one source.
    pub fn templates_of(&self, source_id: &str) -> Vec<&RdfMoleculeTemplate> {
        self.mts.iter().filter(|m| m.source_id == source_id).collect()
    }

    /// Refreshes the molecule templates **and the statistics catalog**
    /// (after data/index changes): mutating a source invalidates its
    /// statistics here.
    pub fn refresh_templates(&mut self) {
        self.mts = self
            .sources
            .iter()
            .flat_map(DataSource::molecule_templates)
            .collect();
        self.stats = LakeStatistics::collect(&self.sources);
        self.epoch += 1;
        self.stats_epoch = self.epoch;
    }

    /// The lake-wide statistics catalog.
    pub fn statistics(&self) -> &LakeStatistics {
        &self.stats
    }

    /// Mutable access to the statistics catalog **without** re-collecting
    /// it from the sources. This deliberately lets the catalog drift from
    /// the data: chaos/observability tests mutate a source's statistics
    /// post-collection to plant a cardinality mis-estimate the watchdog
    /// must then catch. Production refreshes go through
    /// [`DataLake::refresh_templates`], which overwrites any drift.
    pub fn statistics_mut(&mut self) -> &mut LakeStatistics {
        // Planted drift *is* the catalog from here on: bump the epoch (so
        // cached plans priced on the old numbers are invalidated) and
        // mark the catalog current (cost-based planning prices the
        // drifted numbers, which is the point of the drift helpers).
        self.epoch += 1;
        self.stats_epoch = self.epoch;
        &mut self.stats
    }

    /// The statistics of one source.
    pub fn source_stats(&self, id: &str) -> Option<&SourceStatistics> {
        self.stats.source(id)
    }

    /// Mutable access to a source, for tests and administrative data
    /// loads. Call [`DataLake::refresh_templates`] afterwards — templates
    /// and statistics are only recomputed there. Until that happens the
    /// lake reports [`DataLake::statistics_fresh`]` == false` and
    /// cost-based planning refuses to price plans against the drifted
    /// catalog.
    pub fn source_mut(&mut self, id: &str) -> Option<&mut DataSource> {
        self.epoch += 1;
        self.sources.iter_mut().find(|s| s.id() == id)
    }

    /// The catalog epoch: moves on every catalog-affecting mutation, so
    /// equal epochs imply an identical planning catalog.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch the statistics catalog was collected at.
    pub fn statistics_epoch(&self) -> u64 {
        self.stats_epoch
    }

    /// False after a bare [`DataLake::source_mut`]: the statistics
    /// catalog may describe data that no longer exists. Restored by
    /// [`DataLake::refresh_templates`].
    pub fn statistics_fresh(&self) -> bool {
        self.stats_epoch == self.epoch
    }

    /// Materializes the whole lake as one RDF graph: relational sources
    /// are lifted through their mappings, RDF sources are copied. This is
    /// the ground-truth oracle used by the test suite — a federated query
    /// must return exactly the answers of a local SPARQL evaluation over
    /// this graph.
    pub fn oracle_graph(&self) -> fedlake_rdf::Graph {
        let mut out = fedlake_rdf::Graph::new();
        for source in &self.sources {
            let g = match source {
                DataSource::Sparql { graph, .. } => graph.clone(),
                DataSource::Relational { db, mapping, .. } => {
                    fedlake_mapping::lift_database(db, mapping)
                }
            };
            for t in g.iter() {
                out.insert_terms(
                    g.term(t.s).expect("interned").clone(),
                    g.term(t.p).expect("interned").clone(),
                    g.term(t.o).expect("interned").clone(),
                );
            }
        }
        out
    }

    /// Declares that the logical source `id` is served by `n` replica
    /// endpoints (`n <= 1` removes the entry: a single endpoint keeps the
    /// plain source id, bit-identical to an unreplicated lake).
    pub fn set_replicas(&mut self, id: impl Into<String>, n: u32) {
        let id = id.into();
        if n <= 1 {
            self.replicas.remove(&id);
        } else {
            self.replicas.insert(id, n);
        }
        // Replica topology steers routing: a new epoch for the cache.
        self.epoch += 1;
        self.stats_epoch = self.epoch;
    }

    /// Number of replica endpoints serving the logical source `id`.
    pub fn replica_count(&self, id: &str) -> u32 {
        self.replicas.get(id).copied().unwrap_or(1).max(1)
    }

    /// The endpoint ids serving the logical source `id`, in replica order:
    /// `["id"]` when unreplicated, `["id#r0", .., "id#rN-1"]` otherwise.
    pub fn replica_endpoints(&self, id: &str) -> Vec<String> {
        let n = self.replica_count(id);
        if n <= 1 {
            vec![id.to_string()]
        } else {
            (0..n).map(|k| replica_endpoint_id(id, k)).collect()
        }
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when the lake has no sources.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlake_rdf::{Graph, Term};

    fn typed_graph(class: &str) -> Graph {
        let mut g = Graph::new();
        g.insert_terms(
            Term::iri("http://d/x"),
            Term::iri(fedlake_rdf::vocab::rdf::TYPE),
            Term::iri(class),
        );
        g
    }

    #[test]
    fn add_and_lookup() {
        let mut lake = DataLake::new();
        lake.add_source(DataSource::sparql("a", typed_graph("http://v/A")));
        lake.add_source(DataSource::sparql("b", typed_graph("http://v/B")));
        assert_eq!(lake.len(), 2);
        assert!(lake.source("a").is_some());
        assert!(lake.source("zzz").is_none());
        assert_eq!(lake.molecule_templates().len(), 2);
        assert_eq!(lake.templates_of("a").len(), 1);
        assert_eq!(lake.templates_of("a")[0].class, "http://v/A");
    }

    #[test]
    fn refresh_recomputes() {
        let mut lake = DataLake::new();
        lake.add_source(DataSource::sparql("a", typed_graph("http://v/A")));
        lake.refresh_templates();
        assert_eq!(lake.molecule_templates().len(), 1);
    }

    #[test]
    fn empty_lake() {
        let lake = DataLake::new();
        assert!(lake.is_empty());
        assert!(lake.molecule_templates().is_empty());
    }

    #[test]
    fn replica_registry() {
        let mut lake = DataLake::new();
        lake.add_source(DataSource::sparql("a", typed_graph("http://v/A")));
        assert_eq!(lake.replica_count("a"), 1);
        assert_eq!(lake.replica_endpoints("a"), ["a"]);
        lake.set_replicas("a", 3);
        assert_eq!(lake.replica_count("a"), 3);
        assert_eq!(lake.replica_endpoints("a"), ["a#r0", "a#r1", "a#r2"]);
        // n <= 1 restores the unreplicated catalog entry.
        lake.set_replicas("a", 1);
        assert_eq!(lake.replica_endpoints("a"), ["a"]);
        lake.set_replicas("a", 0);
        assert_eq!(lake.replica_count("a"), 1);
    }

    #[test]
    fn epochs_track_catalog_mutations() {
        let mut lake = DataLake::new();
        assert_eq!(lake.epoch(), 0);
        assert!(lake.statistics_fresh());
        lake.add_source(DataSource::sparql("a", typed_graph("http://v/A")));
        assert_eq!(lake.epoch(), 1);
        assert!(lake.statistics_fresh());
        // A bare source_mut leaves the catalog stale…
        lake.source_mut("a");
        assert_eq!(lake.epoch(), 2);
        assert!(!lake.statistics_fresh());
        // …until refresh_templates recollects it.
        lake.refresh_templates();
        assert_eq!(lake.epoch(), 3);
        assert!(lake.statistics_fresh());
        // Planted drift becomes the current catalog.
        lake.statistics_mut();
        assert!(lake.statistics_fresh());
        // Replica topology changes are catalog changes.
        let before = lake.epoch();
        lake.set_replicas("a", 2);
        assert!(lake.epoch() > before);
        assert!(lake.statistics_fresh());
    }

    #[test]
    fn logical_ids_round_trip() {
        assert_eq!(logical_source_id("chebi"), "chebi");
        assert_eq!(logical_source_id("chebi#r0"), "chebi");
        assert_eq!(logical_source_id(&replica_endpoint_id("diseasome", 12)), "diseasome");
        // Only a well-formed replica suffix is stripped.
        assert_eq!(logical_source_id("odd#rx"), "odd#rx");
        assert_eq!(logical_source_id("odd#r"), "odd#r");
    }
}
