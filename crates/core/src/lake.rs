//! The Semantic Data Lake: a catalog of heterogeneous sources with their
//! RDF Molecule Templates.

use crate::source::DataSource;
use fedlake_mapping::RdfMoleculeTemplate;

/// A collection of data sources, each kept in its native data model and
/// described by RDF Molecule Templates (§2.1).
#[derive(Debug, Clone, Default)]
pub struct DataLake {
    sources: Vec<DataSource>,
    mts: Vec<RdfMoleculeTemplate>,
}

impl DataLake {
    /// Creates an empty lake.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a source and indexes its molecule templates.
    pub fn add_source(&mut self, source: DataSource) {
        self.mts.extend(source.molecule_templates());
        self.sources.push(source);
    }

    /// All sources.
    pub fn sources(&self) -> &[DataSource] {
        &self.sources
    }

    /// Looks up a source by id.
    pub fn source(&self, id: &str) -> Option<&DataSource> {
        self.sources.iter().find(|s| s.id() == id)
    }

    /// All molecule templates in the lake.
    pub fn molecule_templates(&self) -> &[RdfMoleculeTemplate] {
        &self.mts
    }

    /// Molecule templates offered by one source.
    pub fn templates_of(&self, source_id: &str) -> Vec<&RdfMoleculeTemplate> {
        self.mts.iter().filter(|m| m.source_id == source_id).collect()
    }

    /// Refreshes the molecule templates (after data/index changes).
    pub fn refresh_templates(&mut self) {
        self.mts = self
            .sources
            .iter()
            .flat_map(DataSource::molecule_templates)
            .collect();
    }

    /// Materializes the whole lake as one RDF graph: relational sources
    /// are lifted through their mappings, RDF sources are copied. This is
    /// the ground-truth oracle used by the test suite — a federated query
    /// must return exactly the answers of a local SPARQL evaluation over
    /// this graph.
    pub fn oracle_graph(&self) -> fedlake_rdf::Graph {
        let mut out = fedlake_rdf::Graph::new();
        for source in &self.sources {
            let g = match source {
                DataSource::Sparql { graph, .. } => graph.clone(),
                DataSource::Relational { db, mapping, .. } => {
                    fedlake_mapping::lift_database(db, mapping)
                }
            };
            for t in g.iter() {
                out.insert_terms(
                    g.term(t.s).expect("interned").clone(),
                    g.term(t.p).expect("interned").clone(),
                    g.term(t.o).expect("interned").clone(),
                );
            }
        }
        out
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True when the lake has no sources.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlake_rdf::{Graph, Term};

    fn typed_graph(class: &str) -> Graph {
        let mut g = Graph::new();
        g.insert_terms(
            Term::iri("http://d/x"),
            Term::iri(fedlake_rdf::vocab::rdf::TYPE),
            Term::iri(class),
        );
        g
    }

    #[test]
    fn add_and_lookup() {
        let mut lake = DataLake::new();
        lake.add_source(DataSource::sparql("a", typed_graph("http://v/A")));
        lake.add_source(DataSource::sparql("b", typed_graph("http://v/B")));
        assert_eq!(lake.len(), 2);
        assert!(lake.source("a").is_some());
        assert!(lake.source("zzz").is_none());
        assert_eq!(lake.molecule_templates().len(), 2);
        assert_eq!(lake.templates_of("a").len(), 1);
        assert_eq!(lake.templates_of("a")[0].class, "http://v/A");
    }

    #[test]
    fn refresh_recomputes() {
        let mut lake = DataLake::new();
        lake.add_source(DataSource::sparql("a", typed_graph("http://v/A")));
        lake.refresh_templates();
        assert_eq!(lake.molecule_templates().len(), 1);
    }

    #[test]
    fn empty_lake() {
        let lake = DataLake::new();
        assert!(lake.is_empty());
        assert!(lake.molecule_templates().is_empty());
    }
}
