//! SPARQL→SQL translation for star-shaped sub-queries over mapped
//! relational sources.
//!
//! A star over a mapped table becomes one `SELECT` on that table: the
//! subject variable binds to the subject (key) column, each
//! variable-object pattern selects its mapped column, ground objects and
//! pushed filters (Heuristic 2) become `WHERE` conjuncts, and Heuristic 1
//! merges two stars into one `SELECT … JOIN … ON …`. The generated SQL is
//! real text executed through the relational engine's parser — the same
//! interface Ontario's SQL wrapper has to MySQL.

use crate::decompose::{StarSubject, StarSubquery};
use crate::error::FedError;
use fedlake_mapping::{lift, IriTemplate, TableMapping};
use fedlake_rdf::Term;
use fedlake_relational::{DataType, TableSchema, Value};
use fedlake_sparql::binding::Var;
use fedlake_sparql::expr::{CmpOp, Expr};

/// How one SQL output column lifts back to an RDF term.
#[derive(Debug, Clone, PartialEq)]
pub enum Lift {
    /// Mint the star's subject IRI through its template.
    SubjectIri(IriTemplate),
    /// Mint a referenced entity's IRI through the FK's template.
    RefIri(IriTemplate),
    /// Lift a literal column by datatype.
    Literal(DataType),
}

/// One output column of a translated query.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputBinding {
    /// The SPARQL variable this column binds.
    pub var: Var,
    /// How to lift the column value.
    pub lift: Lift,
}

/// The per-star SQL fragments, composable into single or merged queries.
#[derive(Debug, Clone, PartialEq)]
pub struct StarPart {
    /// Source table.
    pub table: String,
    /// Table alias in the generated SQL.
    pub alias: String,
    /// `SELECT` items: (column, output name).
    pub select: Vec<(String, String)>,
    /// `WHERE` conjuncts (already alias-qualified SQL text).
    pub wheres: Vec<String>,
    /// Output bindings aligned with `select`.
    pub outputs: Vec<OutputBinding>,
    /// Emit `SELECT DISTINCT`: required when the star's subject column is
    /// not the table's primary key (denormalized designs duplicate the
    /// subject across rows, while RDF star bindings are distinct).
    pub distinct: bool,
}

/// A complete translated query.
#[derive(Debug, Clone, PartialEq)]
pub struct TranslatedQuery {
    /// The SQL text to send to the source.
    pub sql: String,
    /// How the result columns bind SPARQL variables, in column order.
    pub outputs: Vec<OutputBinding>,
}

/// Builds the SQL fragments for one star over its mapped table.
///
/// `pushed_filters` are the star filters Heuristic 2 decided to evaluate at
/// the source; they must all be [pushable](filter_column).
pub fn star_part(
    star: &StarSubquery,
    tm: &TableMapping,
    schema: &TableSchema,
    pushed_filters: &[Expr],
    alias: &str,
) -> Result<StarPart, FedError> {
    let mut part = StarPart {
        table: tm.table.clone(),
        alias: alias.to_string(),
        select: Vec::new(),
        wheres: Vec::new(),
        outputs: Vec::new(),
        distinct: !schema.is_primary_key(&tm.subject_column),
    };

    // Subject: select the key column (for a variable subject) or constrain
    // it (for a ground one).
    match &star.subject {
        StarSubject::Var(v) => {
            part.select.push((
                tm.subject_column.clone(),
                format!("{alias}_{}", tm.subject_column),
            ));
            part.outputs.push(OutputBinding {
                var: v.clone(),
                lift: Lift::SubjectIri(tm.subject_template.clone()),
            });
        }
        StarSubject::Term(t) => {
            let iri = t
                .as_iri()
                .ok_or_else(|| FedError::Unsupported("literal subject".into()))?;
            let key = tm.subject_template.extract(iri).ok_or_else(|| {
                FedError::Internal(format!("subject {iri} does not match template"))
            })?;
            part.wheres
                .push(format!("{alias}.{} = {}", tm.subject_column, sql_str(&key)));
        }
    }

    for triple in &star.triples {
        let pred = triple
            .p
            .as_term()
            .and_then(Term::as_iri)
            .ok_or_else(|| FedError::Unsupported("variable predicate over RDB".into()))?;
        if pred == fedlake_rdf::vocab::rdf::TYPE {
            // The type pattern selected the table; a variable class cannot
            // be answered relationally.
            if triple.o.is_var() {
                return Err(FedError::Unsupported("variable class over RDB".into()));
            }
            continue;
        }
        let pm = tm.column_for_predicate(pred).ok_or_else(|| {
            FedError::Internal(format!("predicate {pred} not mapped for {}", tm.table))
        })?;
        match (&triple.o, &pm.ref_template) {
            (fedlake_sparql::ast::VarOrTerm::Var(v), ref_tmpl) => {
                // Deduplicate: a variable may be selected once.
                if !part.outputs.iter().any(|o| &o.var == v) {
                    part.select
                        .push((pm.column.clone(), format!("{alias}_{}", pm.column)));
                    let lift = match ref_tmpl {
                        Some(t) => Lift::RefIri(t.clone()),
                        None => Lift::Literal(column_type(schema, &pm.column)?),
                    };
                    part.outputs.push(OutputBinding { var: v.clone(), lift });
                } else {
                    // Repeated variable: both columns must agree.
                    let first = part
                        .outputs
                        .iter()
                        .position(|o| &o.var == v)
                        .expect("checked above");
                    let (first_col, _) = &part.select[first];
                    part.wheres
                        .push(format!("{alias}.{} = {alias}.{first_col}", pm.column));
                }
                // Columns referenced by the query are implicitly non-NULL
                // in RDF (a NULL produces no triple).
                part.wheres.push(format!("{alias}.{} IS NOT NULL", pm.column));
            }
            (fedlake_sparql::ast::VarOrTerm::Term(t), Some(ref_tmpl)) => {
                let iri = t.as_iri().ok_or_else(|| {
                    FedError::Unsupported("literal object on reference column".into())
                })?;
                let key = ref_tmpl.extract(iri).ok_or_else(|| {
                    FedError::Internal(format!("object {iri} does not match ref template"))
                })?;
                part.wheres
                    .push(format!("{alias}.{} = {}", pm.column, sql_str(&key)));
            }
            (fedlake_sparql::ast::VarOrTerm::Term(t), None) => {
                let v = lift::term_to_value(t);
                part.wheres.push(format!("{alias}.{} = {v}", pm.column));
            }
        }
    }

    for f in pushed_filters {
        let sql = filter_to_sql(f, star, tm, alias).ok_or_else(|| {
            FedError::Internal(format!("filter {f} was pushed but is not translatable"))
        })?;
        part.wheres.push(sql);
    }

    // A star with a ground subject and only ground objects still needs a
    // column to detect existence.
    if part.select.is_empty() {
        part.select.push((
            tm.subject_column.clone(),
            format!("{alias}_{}", tm.subject_column),
        ));
        // No output binding: the column is a probe only.
    }
    Ok(part)
}

/// Renders a single-star `SELECT`.
pub fn sql_single(part: &StarPart) -> TranslatedQuery {
    let select: Vec<String> = part
        .select
        .iter()
        .map(|(c, n)| format!("{}.{c} AS {n}", part.alias))
        .collect();
    let mut sql = format!(
        "SELECT {}{} FROM {} {}",
        if part.distinct { "DISTINCT " } else { "" },
        select.join(", "),
        part.table,
        part.alias
    );
    if !part.wheres.is_empty() {
        sql.push_str(&format!(" WHERE {}", part.wheres.join(" AND ")));
    }
    TranslatedQuery { sql, outputs: part.outputs.clone() }
}

/// Renders the Heuristic-1 merged `SELECT` of two stars joined on
/// `a.left_col = b.right_col`.
pub fn sql_merged(
    a: &StarPart,
    b: &StarPart,
    left_col: &str,
    right_col: &str,
) -> TranslatedQuery {
    let mut select: Vec<String> = Vec::new();
    let mut outputs = Vec::new();
    let mut seen_vars: Vec<Var> = Vec::new();
    let push_part = |part: &StarPart, select: &mut Vec<String>, outputs: &mut Vec<OutputBinding>, seen: &mut Vec<Var>| {
        for ((c, n), o) in part.select.iter().zip(&part.outputs) {
            if seen.contains(&o.var) {
                continue;
            }
            seen.push(o.var.clone());
            select.push(format!("{}.{c} AS {n}", part.alias));
            outputs.push(o.clone());
        }
    };
    push_part(a, &mut select, &mut outputs, &mut seen_vars);
    push_part(b, &mut select, &mut outputs, &mut seen_vars);
    if select.is_empty() {
        select.push(format!("{}.{} AS probe", a.alias, left_col));
    }
    let mut sql = format!(
        "SELECT {}{} FROM {} {} JOIN {} {} ON {}.{} = {}.{}",
        if a.distinct || b.distinct { "DISTINCT " } else { "" },
        select.join(", "),
        a.table,
        a.alias,
        b.table,
        b.alias,
        a.alias,
        left_col,
        b.alias,
        right_col
    );
    let wheres: Vec<&String> = a.wheres.iter().chain(&b.wheres).collect();
    if !wheres.is_empty() {
        let ws: Vec<&str> = wheres.iter().map(|s| s.as_str()).collect();
        sql.push_str(&format!(" WHERE {}", ws.join(" AND ")));
    }
    TranslatedQuery { sql, outputs }
}

/// Renders the merged `SELECT` of two stars that map to the **same
/// table** (a denormalized physical design, §5's "not normalized tables"
/// study): both stars read from one row, so no join is needed at all —
/// the fragments combine under a single alias.
///
/// Both parts must have been built with the same alias.
pub fn sql_merged_same_table(
    a: &StarPart,
    b: &StarPart,
    left_col: &str,
    right_col: &str,
) -> TranslatedQuery {
    assert_eq!(a.alias, b.alias, "same-table merge requires one alias");
    assert_eq!(a.table, b.table, "same-table merge requires one table");
    let mut combined = a.clone();
    combined.distinct = a.distinct || b.distinct;
    let mut used_names: Vec<String> = a.select.iter().map(|(_, n)| n.clone()).collect();
    for ((col, name), out) in b.select.iter().zip(&b.outputs) {
        if combined.outputs.iter().any(|o| o.var == out.var) {
            continue;
        }
        let mut name = name.clone();
        while used_names.contains(&name) {
            name.push('_');
        }
        used_names.push(name.clone());
        combined.select.push((col.clone(), name));
        combined.outputs.push(out.clone());
    }
    for w in &b.wheres {
        if !combined.wheres.contains(w) {
            combined.wheres.push(w.clone());
        }
    }
    // Different columns joined within the row still need the equality;
    // the common case (FK column = the other star's subject column, same
    // column) needs nothing.
    if left_col != right_col {
        combined
            .wheres
            .push(format!("{0}.{left_col} = {0}.{right_col}", a.alias));
    }
    sql_single(&combined)
}

/// The table column a *simple instantiation* filter constrains, when the
/// filter can be pushed into this star's SQL. This is the question
/// Heuristic 2 asks: `Some(column)` means "pushable — now check the index
/// and the network"; `None` means the filter must stay at the engine.
pub fn filter_column(expr: &Expr, star: &StarSubquery, tm: &TableMapping) -> Option<String> {
    let var = single_var_of(expr)?;
    column_of_var(&var, star, tm)
}

/// Translates a pushable filter to a SQL conjunct. Returns `None` when the
/// expression shape or the needle is not representable (e.g. `LIKE`
/// wildcards inside the needle).
pub fn filter_to_sql(
    expr: &Expr,
    star: &StarSubquery,
    tm: &TableMapping,
    alias: &str,
) -> Option<String> {
    let var = single_var_of(expr)?;
    let col = column_of_var(&var, star, tm)?;
    match expr {
        Expr::Cmp(a, op, b) => {
            let (c, flipped) = match (&**a, &**b) {
                (_, Expr::Const(c)) => (c, false),
                (Expr::Const(c), _) => (c, true),
                _ => return None,
            };
            let op = if flipped { flip(*op) } else { *op };
            let sql_op = match op {
                CmpOp::Eq => "=",
                CmpOp::Ne => "<>",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            // The subject variable compares against entity IRIs; extract
            // the key through the template.
            let value = if is_subject_var(&var, star) {
                let iri = c.as_iri()?;
                Value::Text(tm.subject_template.extract(iri)?)
            } else if let Some(ref_tmpl) = ref_template_of(&var, star, tm) {
                let iri = c.as_iri()?;
                Value::Text(ref_tmpl.extract(iri)?)
            } else {
                lift::term_to_value(c)
            };
            Some(format!("{alias}.{col} {sql_op} {value}"))
        }
        Expr::Contains(_, b) => like(alias, &col, b, "%", "%"),
        Expr::StrStarts(_, b) => like(alias, &col, b, "", "%"),
        Expr::StrEnds(_, b) => like(alias, &col, b, "%", ""),
        Expr::Regex(_, pattern) => {
            let starts = pattern.starts_with('^');
            let ends = pattern.ends_with('$') && pattern.len() > 1;
            let body = &pattern[usize::from(starts)..pattern.len() - usize::from(ends)];
            if body.contains(['%', '_', '^', '$', '*', '+', '[', '(', '\\', '.']) {
                return None; // only anchor+literal regexes are pushable
            }
            let like = format!(
                "{}{}{}",
                if starts { "" } else { "%" },
                body,
                if ends { "" } else { "%" }
            );
            Some(format!("{alias}.{col} LIKE {}", sql_str(&like)))
        }
        _ => None,
    }
}

fn like(alias: &str, col: &str, needle: &Expr, pre: &str, post: &str) -> Option<String> {
    let Expr::Const(Term::Literal(l)) = needle else { return None };
    if l.lexical.contains(['%', '_']) {
        return None;
    }
    Some(format!(
        "{alias}.{col} LIKE {}",
        sql_str(&format!("{pre}{}{post}", l.lexical))
    ))
}

fn flip(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

/// The single variable a simple-instantiation filter mentions.
fn single_var_of(expr: &Expr) -> Option<Var> {
    if !expr.is_simple_instantiation() {
        return None;
    }
    let vars = expr.vars();
    match vars.as_slice() {
        [v] => Some(v.clone()),
        _ => None,
    }
}

fn is_subject_var(v: &Var, star: &StarSubquery) -> bool {
    matches!(&star.subject, StarSubject::Var(sv) if sv == v)
}

fn ref_template_of<'a>(
    v: &Var,
    star: &StarSubquery,
    tm: &'a TableMapping,
) -> Option<&'a IriTemplate> {
    for t in &star.triples {
        if t.o.as_var() == Some(v) {
            let pred = t.p.as_term().and_then(Term::as_iri)?;
            return tm.column_for_predicate(pred)?.ref_template.as_ref();
        }
    }
    None
}

/// The reference IRI template of the column a variable maps to, when that
/// column is a foreign key (public clone-returning form of
/// `ref_template_of`, used by the planner's naive-merge path).
pub fn column_ref_template(
    v: &Var,
    star: &StarSubquery,
    tm: &TableMapping,
) -> Option<IriTemplate> {
    ref_template_of(v, star, tm).cloned()
}

/// The column a star variable maps to: the key column for the subject, the
/// mapped column for an object variable.
pub fn column_of_var(v: &Var, star: &StarSubquery, tm: &TableMapping) -> Option<String> {
    if is_subject_var(v, star) {
        return Some(tm.subject_column.clone());
    }
    for t in &star.triples {
        if t.o.as_var() == Some(v) {
            let pred = t.p.as_term().and_then(Term::as_iri)?;
            return tm.column_for_predicate(pred).map(|pm| pm.column.clone());
        }
    }
    None
}

fn column_type(schema: &TableSchema, col: &str) -> Result<DataType, FedError> {
    schema
        .column(col)
        .map(|c| c.data_type)
        .ok_or_else(|| FedError::Internal(format!("column {col} missing from schema")))
}

fn sql_str(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::decompose;
    use fedlake_relational::{Column, Database};
    use fedlake_sparql::parser::parse_query;

    fn mapping() -> TableMapping {
        TableMapping::new(
            "gene",
            "http://v/Gene",
            IriTemplate::new("http://d/gene/{}"),
            "id",
        )
        .with_literal("label", "http://v/label")
        .with_literal("species", "http://v/species")
        .with_reference(
            "disease",
            "http://v/disease",
            IriTemplate::new("http://d/disease/{}"),
        )
    }

    fn schema() -> TableSchema {
        TableSchema::new(
            "gene",
            vec![
                Column::not_null("id", DataType::Text),
                Column::new("label", DataType::Text),
                Column::new("species", DataType::Text),
                Column::new("disease", DataType::Text),
            ],
        )
        .with_primary_key(&["id"])
    }

    fn star(q: &str) -> StarSubquery {
        decompose(&parse_query(q).unwrap()).unwrap().stars.remove(0)
    }

    #[test]
    fn translate_simple_star() {
        let s = star(
            "SELECT * WHERE { ?g a <http://v/Gene> . ?g <http://v/label> ?l }",
        );
        let part = star_part(&s, &mapping(), &schema(), &[], "s0").unwrap();
        let q = sql_single(&part);
        assert_eq!(
            q.sql,
            "SELECT s0.id AS s0_id, s0.label AS s0_label FROM gene s0 WHERE s0.label IS NOT NULL"
        );
        assert_eq!(q.outputs.len(), 2);
        assert!(matches!(q.outputs[0].lift, Lift::SubjectIri(_)));
        assert!(matches!(q.outputs[1].lift, Lift::Literal(DataType::Text)));
    }

    #[test]
    fn translated_sql_actually_runs() {
        let mut db = Database::new("d");
        db.execute(
            "CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT, species TEXT, disease TEXT)",
        )
        .unwrap();
        db.execute("INSERT INTO gene VALUES ('g1', 'BRCA1', 'Homo sapiens', 'd1')")
            .unwrap();
        db.execute("INSERT INTO gene VALUES ('g2', NULL, 'Mus musculus', 'd2')")
            .unwrap();
        let s = star("SELECT * WHERE { ?g <http://v/label> ?l }");
        let q = sql_single(&star_part(&s, &mapping(), &schema(), &[], "s0").unwrap());
        let rs = db.query(&q.sql).unwrap();
        // g2's NULL label is filtered by IS NOT NULL.
        assert_eq!(rs.rows.len(), 1);
    }

    #[test]
    fn ground_subject_constrains_key() {
        let s = star("SELECT * WHERE { <http://d/gene/g7> <http://v/label> ?l }");
        let q = sql_single(&star_part(&s, &mapping(), &schema(), &[], "s0").unwrap());
        assert!(q.sql.contains("s0.id = 'g7'"), "sql: {}", q.sql);
    }

    #[test]
    fn ground_reference_object_extracts_key() {
        let s = star("SELECT * WHERE { ?g <http://v/disease> <http://d/disease/d9> }");
        let q = sql_single(&star_part(&s, &mapping(), &schema(), &[], "s0").unwrap());
        assert!(q.sql.contains("s0.disease = 'd9'"), "sql: {}", q.sql);
    }

    #[test]
    fn ground_literal_object() {
        let s = star(r#"SELECT * WHERE { ?g <http://v/species> "Homo sapiens" }"#);
        let q = sql_single(&star_part(&s, &mapping(), &schema(), &[], "s0").unwrap());
        assert!(
            q.sql.contains("s0.species = 'Homo sapiens'"),
            "sql: {}",
            q.sql
        );
    }

    #[test]
    fn filter_column_detection() {
        let s = star(
            r#"SELECT * WHERE { ?g <http://v/species> ?sp . FILTER(CONTAINS(?sp, "sapiens")) }"#,
        );
        let f = s.filters[0].clone();
        assert_eq!(filter_column(&f, &s, &mapping()), Some("species".into()));
    }

    #[test]
    fn filter_to_sql_variants() {
        let tm = mapping();
        let cases = [
            (
                r#"SELECT * WHERE { ?g <http://v/species> ?sp . FILTER(CONTAINS(?sp, "sapiens")) }"#,
                "s0.species LIKE '%sapiens%'",
            ),
            (
                r#"SELECT * WHERE { ?g <http://v/species> ?sp . FILTER(STRSTARTS(?sp, "Homo")) }"#,
                "s0.species LIKE 'Homo%'",
            ),
            (
                r#"SELECT * WHERE { ?g <http://v/species> ?sp . FILTER(?sp = "Homo sapiens") }"#,
                "s0.species = 'Homo sapiens'",
            ),
            (
                r#"SELECT * WHERE { ?g <http://v/species> ?sp . FILTER(REGEX(?sp, "^Homo")) }"#,
                "s0.species LIKE 'Homo%'",
            ),
            (
                r#"SELECT * WHERE { ?g <http://v/species> ?sp . FILTER("Homo sapiens" = ?sp) }"#,
                "s0.species = 'Homo sapiens'",
            ),
        ];
        for (q, expected) in cases {
            let s = star(q);
            let f = s.filters[0].clone();
            assert_eq!(
                filter_to_sql(&f, &s, &tm, "s0").as_deref(),
                Some(expected),
                "query: {q}"
            );
        }
    }

    #[test]
    fn subject_filter_extracts_key() {
        let s = star(
            r#"SELECT * WHERE { ?g <http://v/label> ?l . FILTER(?g = <http://d/gene/g3>) }"#,
        );
        let f = s.filters[0].clone();
        assert_eq!(
            filter_to_sql(&f, &s, &mapping(), "s0").as_deref(),
            Some("s0.id = 'g3'")
        );
    }

    #[test]
    fn unpushable_filters() {
        // Cross-variable comparison.
        let s = star(
            "SELECT * WHERE { ?g <http://v/label> ?l . ?g <http://v/species> ?sp . FILTER(?l = ?sp) }",
        );
        let f = s.filters[0].clone();
        assert!(filter_to_sql(&f, &s, &mapping(), "s0").is_none());
        // Needle containing LIKE wildcards.
        let s = star(
            r#"SELECT * WHERE { ?g <http://v/species> ?sp . FILTER(CONTAINS(?sp, "100%")) }"#,
        );
        let f = s.filters[0].clone();
        assert!(filter_to_sql(&f, &s, &mapping(), "s0").is_none());
    }

    #[test]
    fn merged_sql() {
        let a = star(
            "SELECT * WHERE { ?gd <http://v/disease> ?d . ?gd <http://v/label> ?l }",
        );
        // Build the disease-side star from its own mapping.
        let disease_tm = TableMapping::new(
            "disease",
            "http://v/Disease",
            IriTemplate::new("http://d/disease/{}"),
            "id",
        )
        .with_literal("name", "http://v/name");
        let disease_schema = TableSchema::new(
            "disease",
            vec![
                Column::not_null("id", DataType::Text),
                Column::new("name", DataType::Text),
            ],
        )
        .with_primary_key(&["id"]);
        let b = star("SELECT * WHERE { ?d <http://v/name> ?n }");
        let pa = star_part(&a, &mapping(), &schema(), &[], "s0").unwrap();
        let pb = star_part(&b, &disease_tm, &disease_schema, &[], "s1").unwrap();
        let q = sql_merged(&pa, &pb, "disease", "id");
        assert!(
            q.sql.contains("FROM gene s0 JOIN disease s1 ON s0.disease = s1.id"),
            "sql: {}",
            q.sql
        );
        // ?d appears in both stars but is selected once.
        let d_count = q.outputs.iter().filter(|o| o.var == Var::new("d")).count();
        assert_eq!(d_count, 1);
    }

    #[test]
    fn pushed_filter_appears_in_where() {
        let s = star(
            r#"SELECT * WHERE { ?g <http://v/species> ?sp . FILTER(CONTAINS(?sp, "sapiens")) }"#,
        );
        let pushed = s.filters.clone();
        let q = sql_single(&star_part(&s, &mapping(), &schema(), &pushed, "s0").unwrap());
        assert!(q.sql.contains("LIKE '%sapiens%'"), "sql: {}", q.sql);
    }

    #[test]
    fn unmapped_predicate_is_error() {
        let s = star("SELECT * WHERE { ?g <http://v/unmapped> ?x }");
        assert!(star_part(&s, &mapping(), &schema(), &[], "s0").is_err());
    }
}
