//! Human-readable rendering of federated plans — the textual counterpart
//! of the paper's Figure 1 plan diagrams.

use crate::fedplan::{FedPlan, ServiceKind, SqlRequest};

/// Renders a federated plan as an indented tree, one operator per line,
/// with a summary header of the quantities Figure 1 contrasts.
pub fn explain_plan(plan: &FedPlan) -> String {
    let mut out = format!(
        "# services: {}, engine operators: {}, pushed-down joins: {}\n",
        plan.service_count(),
        plan.engine_operator_count(),
        plan.merged_service_count()
    );
    render(plan, 0, &mut out);
    out
}

pub(crate) fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// The one-line description of a plan node (no children, no trailing
/// newline) — shared by the static tree above and by
/// [`crate::obs::explain_analyze`], so the analyzed tree annotates exactly
/// the lines the plain EXPLAIN shows.
pub(crate) fn node_line(plan: &FedPlan) -> String {
    match plan {
        FedPlan::Service(s) => {
            let line = match &s.kind {
                ServiceKind::Sparql { star, filters } => format!(
                    "Service[{}] SPARQL star {} ({} patterns, {} filters)",
                    s.source_id,
                    star.subject,
                    star.triples.len(),
                    filters.len()
                ),
                ServiceKind::Sql { request, covers } => {
                    let kind = match request {
                        SqlRequest::Single(_) => "SQL",
                        SqlRequest::MergedOptimized(_) => "SQL merged(optimized)",
                        SqlRequest::MergedNaive { .. } => "SQL merged(naive N+1)",
                    };
                    format!("Service[{}] {kind} covering {}", s.source_id, covers.join(", "))
                }
            };
            match &s.route {
                Some(r) => format!("{line} via {} [{}]", r.primary(), r.reason),
                None => line,
            }
        }
        FedPlan::Join { on, .. } => {
            let vars: Vec<String> = on.iter().map(|v| v.to_string()).collect();
            if vars.is_empty() {
                "SymmetricHashJoin (cartesian)".to_string()
            } else {
                format!("SymmetricHashJoin on {}", vars.join(", "))
            }
        }
        FedPlan::Filter { exprs, .. } => {
            let fs: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
            format!("EngineFilter: {}", fs.join(" && "))
        }
        FedPlan::Union(_) => "Union".to_string(),
        FedPlan::BindJoin { right, batch_size, .. } => {
            let line = format!(
                "BindJoin on {} -> Service[{}] column {} (batches of {})",
                right.join_var, right.source_id, right.column, batch_size
            );
            match &right.route {
                Some(r) => format!("{line} via {} [{}]", r.primary(), r.reason),
                None => line,
            }
        }
        FedPlan::LeftJoin { on, .. } => {
            let vars: Vec<String> = on.iter().map(|v| v.to_string()).collect();
            format!("LeftJoin (OPTIONAL) on {}", vars.join(", "))
        }
    }
}

fn render(plan: &FedPlan, depth: usize, out: &mut String) {
    indent(out, depth);
    out.push_str(&node_line(plan));
    out.push('\n');
    match plan {
        FedPlan::Service(s) => {
            if let ServiceKind::Sql { request, .. } = &s.kind {
                indent(out, depth + 1);
                out.push_str(&format!("query: {}\n", request.sql()));
            }
        }
        FedPlan::Join { left, right, .. } | FedPlan::LeftJoin { left, right, .. } => {
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        FedPlan::Filter { input, .. } => render(input, depth + 1, out),
        FedPlan::Union(branches) => {
            for b in branches {
                render(b, depth + 1, out);
            }
        }
        FedPlan::BindJoin { left, .. } => render(left, depth + 1, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fedplan::ServiceNode;
    use crate::translate::TranslatedQuery;

    #[test]
    fn explain_contains_summary_and_sql() {
        let plan = FedPlan::Service(ServiceNode {
            source_id: "diseasome".into(),
            route: None,
            kind: ServiceKind::Sql {
                request: SqlRequest::Single(TranslatedQuery {
                    sql: "SELECT g.id AS g_id FROM gene g".into(),
                    outputs: Vec::new(),
                }),
                covers: vec!["?g".into()],
            },
            estimated_rows: 10.0,
        });
        let text = explain_plan(&plan);
        assert!(text.contains("# services: 1, engine operators: 0"));
        assert!(text.contains("Service[diseasome] SQL covering ?g"));
        assert!(text.contains("SELECT g.id AS g_id FROM gene g"));
    }

    #[test]
    fn explain_shows_the_routed_replica_and_reason() {
        let plan = FedPlan::Service(ServiceNode {
            source_id: "diseasome".into(),
            route: Some(crate::fedplan::ReplicaRoute {
                endpoints: vec!["diseasome#r1".into(), "diseasome#r0".into()],
                reason: "healthiest first (failures: diseasome#r1=0, diseasome#r0=6)".into(),
            }),
            kind: ServiceKind::Sql {
                request: SqlRequest::Single(TranslatedQuery {
                    sql: "SELECT g.id AS g_id FROM gene g".into(),
                    outputs: Vec::new(),
                }),
                covers: vec!["?g".into()],
            },
            estimated_rows: 10.0,
        });
        let text = explain_plan(&plan);
        assert!(text.contains(
            "Service[diseasome] SQL covering ?g via diseasome#r1 \
             [healthiest first (failures: diseasome#r1=0, diseasome#r0=6)]"
        ));
    }
}
