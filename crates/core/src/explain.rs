//! Human-readable rendering of federated plans — the textual counterpart
//! of the paper's Figure 1 plan diagrams.

use crate::fedplan::{FedPlan, ServiceKind, SqlRequest};

/// Renders a federated plan as an indented tree, one operator per line,
/// with a summary header of the quantities Figure 1 contrasts.
pub fn explain_plan(plan: &FedPlan) -> String {
    let mut out = format!(
        "# services: {}, engine operators: {}, pushed-down joins: {}\n",
        plan.service_count(),
        plan.engine_operator_count(),
        plan.merged_service_count()
    );
    render(plan, 0, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render(plan: &FedPlan, depth: usize, out: &mut String) {
    indent(out, depth);
    match plan {
        FedPlan::Service(s) => match &s.kind {
            ServiceKind::Sparql { star, filters } => {
                out.push_str(&format!(
                    "Service[{}] SPARQL star {} ({} patterns, {} filters)\n",
                    s.source_id,
                    star.subject,
                    star.triples.len(),
                    filters.len()
                ));
            }
            ServiceKind::Sql { request, covers } => {
                let kind = match request {
                    SqlRequest::Single(_) => "SQL",
                    SqlRequest::MergedOptimized(_) => "SQL merged(optimized)",
                    SqlRequest::MergedNaive { .. } => "SQL merged(naive N+1)",
                };
                out.push_str(&format!(
                    "Service[{}] {kind} covering {}\n",
                    s.source_id,
                    covers.join(", ")
                ));
                indent(out, depth + 1);
                out.push_str(&format!("query: {}\n", request.sql()));
            }
        },
        FedPlan::Join { left, right, on } => {
            let vars: Vec<String> = on.iter().map(|v| v.to_string()).collect();
            if vars.is_empty() {
                out.push_str("SymmetricHashJoin (cartesian)\n");
            } else {
                out.push_str(&format!("SymmetricHashJoin on {}\n", vars.join(", ")));
            }
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        FedPlan::Filter { input, exprs } => {
            let fs: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
            out.push_str(&format!("EngineFilter: {}\n", fs.join(" && ")));
            render(input, depth + 1, out);
        }
        FedPlan::Union(branches) => {
            out.push_str("Union\n");
            for b in branches {
                render(b, depth + 1, out);
            }
        }
        FedPlan::BindJoin { left, right, batch_size } => {
            out.push_str(&format!(
                "BindJoin on {} -> Service[{}] column {} (batches of {})\n",
                right.join_var, right.source_id, right.column, batch_size
            ));
            render(left, depth + 1, out);
        }
        FedPlan::LeftJoin { left, right, on } => {
            let vars: Vec<String> = on.iter().map(|v| v.to_string()).collect();
            out.push_str(&format!("LeftJoin (OPTIONAL) on {}\n", vars.join(", ")));
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fedplan::ServiceNode;
    use crate::translate::TranslatedQuery;

    #[test]
    fn explain_contains_summary_and_sql() {
        let plan = FedPlan::Service(ServiceNode {
            source_id: "diseasome".into(),
            kind: ServiceKind::Sql {
                request: SqlRequest::Single(TranslatedQuery {
                    sql: "SELECT g.id AS g_id FROM gene g".into(),
                    outputs: Vec::new(),
                }),
                covers: vec!["?g".into()],
            },
            estimated_rows: 10.0,
        });
        let text = explain_plan(&plan);
        assert!(text.contains("# services: 1, engine operators: 0"));
        assert!(text.contains("Service[diseasome] SQL covering ?g"));
        assert!(text.contains("SELECT g.id AS g_id FROM gene g"));
    }
}
