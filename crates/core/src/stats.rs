//! The statistics catalog and the federation cost model.
//!
//! Per-source statistics are collected **deterministically at source
//! registration time** (see [`crate::DataLake::add_source`]): triple
//! counts, per-predicate cardinalities with distinct subject/object
//! counts, and characteristic-set-style star statistics (the set of
//! predicates each subject carries, with how many subjects carry exactly
//! that set). Together they let the planner estimate the cardinality of a
//! star-shaped sub-query and of the joins between stars — the Odyssey-style
//! statistics-based planning the ROADMAP calls for — instead of relying on
//! the fixed selectivity guesses of the heuristic planner.
//!
//! [`FederationCost`] is the cpu/io/network/parallelism decomposition of a
//! plan's estimated execution cost; the network term reads the simulated
//! link parameters (mean delay, per-message overhead, per-row transfer
//! cost), so the same plan costs differently under different
//! [`fedlake_netsim::NetworkProfile`]s — exactly the physical property the
//! paper's Heuristic 2 reacts to, now priced instead of special-cased.

use crate::decompose::StarSubquery;
use crate::source::DataSource;
use fedlake_rdf::{vocab, Term};
use fedlake_sparql::expr::{CmpOp, Expr};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Selectivity assumed for a filter the estimator cannot price from the
/// statistics (REGEX, CONTAINS, arithmetic…). Matches the heuristic
/// planner's long-standing per-constraint guess.
pub const UNKNOWN_FILTER_SELECTIVITY: f64 = 0.4;

/// Selectivity assumed for a range comparison (`<`, `<=`, `>`, `>=`).
pub const RANGE_FILTER_SELECTIVITY: f64 = 0.33;

/// Selectivity assumed for an inequality (`!=`).
pub const NE_FILTER_SELECTIVITY: f64 = 0.9;

/// Statistics for one predicate at one source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PredicateStats {
    /// Triples with this predicate.
    pub count: u64,
    /// Distinct subjects among them.
    pub distinct_subjects: u64,
    /// Distinct objects among them.
    pub distinct_objects: u64,
}

/// Statistics for one source, collected at registration time.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SourceStatistics {
    /// Total triples the source offers (relational sources count their
    /// lifted triples, including one `rdf:type` per row).
    pub triples: u64,
    /// Distinct subjects across the source.
    pub subjects: u64,
    /// Per-predicate cardinalities, keyed by predicate IRI.
    pub predicates: BTreeMap<String, PredicateStats>,
    /// Characteristic sets: the sorted set of (non-`rdf:type`) predicates
    /// a subject carries, mapped to how many subjects carry exactly that
    /// set. Star cardinality estimation sums the sets that cover a star's
    /// predicates.
    pub characteristic_sets: BTreeMap<Vec<String>, u64>,
}

impl SourceStatistics {
    /// Collects the statistics of one source. Deterministic: every count
    /// is order-independent and the maps are ordered.
    pub fn collect(source: &DataSource) -> Self {
        match source {
            DataSource::Sparql { graph, .. } => collect_sparql(graph),
            DataSource::Relational { db, mapping, .. } => collect_relational(db, mapping),
        }
    }

    /// Multiplies every cardinality by `factor` (triples, subjects,
    /// per-predicate counts, characteristic-set counts), saturating at
    /// `u64::MAX`. This fabricates a catalog that disagrees with the data
    /// by exactly `factor` — the seeded mis-estimate the observability
    /// suite plants to prove the watchdog catches falsified statistics.
    pub fn scale(&mut self, factor: u64) {
        let mul = |v: u64| v.saturating_mul(factor);
        self.triples = mul(self.triples);
        self.subjects = mul(self.subjects);
        for ps in self.predicates.values_mut() {
            ps.count = mul(ps.count);
            ps.distinct_subjects = mul(ps.distinct_subjects);
            ps.distinct_objects = mul(ps.distinct_objects);
        }
        for n in self.characteristic_sets.values_mut() {
            *n = mul(*n);
        }
    }

    /// Subjects whose characteristic set covers all of `preds` (the
    /// predicates of a star). Unknown predicates yield 0; an empty list
    /// matches every subject.
    pub fn star_subjects(&self, preds: &[&str]) -> f64 {
        if preds.is_empty() {
            return self.subjects as f64;
        }
        let covered: u64 = self
            .characteristic_sets
            .iter()
            .filter(|(set, _)| preds.iter().all(|p| set.iter().any(|s| s == p)))
            .map(|(_, n)| n)
            .sum();
        covered as f64
    }

    /// Average triples per subject for `pred` (≥ 1 when the predicate
    /// exists; 1.0 otherwise).
    pub fn multiplicity(&self, pred: &str) -> f64 {
        match self.predicates.get(pred) {
            Some(ps) if ps.distinct_subjects > 0 => {
                (ps.count as f64 / ps.distinct_subjects as f64).max(1.0)
            }
            _ => 1.0,
        }
    }

    /// Distinct objects of `pred`, when known.
    pub fn distinct_objects(&self, pred: &str) -> Option<f64> {
        self.predicates.get(pred).map(|ps| (ps.distinct_objects as f64).max(1.0))
    }

    /// Distinct subjects of `pred`, when known.
    pub fn distinct_subjects(&self, pred: &str) -> Option<f64> {
        self.predicates.get(pred).map(|ps| (ps.distinct_subjects as f64).max(1.0))
    }

    /// Selectivity of an equality constraint on the object of `pred`:
    /// `1 / NDV` under the uniformity assumption.
    pub fn eq_selectivity(&self, pred: &str) -> f64 {
        self.distinct_objects(pred)
            .map_or(UNKNOWN_FILTER_SELECTIVITY, |d| (1.0 / d).min(1.0))
    }

    /// Estimated result cardinality of `star` at this source when only
    /// `filters` (a subset of the star's filters — e.g. just the pushed
    /// ones) constrain the fetched rows.
    ///
    /// The estimate is the characteristic-set subject count, multiplied by
    /// the per-predicate multiplicities (one row per combination of
    /// multi-valued objects), then reduced by the selectivity of ground
    /// objects and of the given filters. Floored at one row.
    pub fn estimate_star(&self, star: &StarSubquery, filters: &[Expr]) -> f64 {
        let preds: Vec<&str> = star
            .predicates()
            .into_iter()
            .filter(|p| *p != vocab::rdf::TYPE)
            .collect();
        let mut est = self.star_subjects(&preds);
        for t in &star.triples {
            let Some(p) = t.p.as_term().and_then(Term::as_iri) else { continue };
            if p == vocab::rdf::TYPE {
                continue;
            }
            if t.o.as_var().is_some() {
                est *= self.multiplicity(p);
            } else {
                // A ground object behaves like an equality constraint.
                est *= self.eq_selectivity(p);
            }
        }
        for f in filters {
            est *= self.filter_selectivity(f, star);
        }
        est.max(1.0)
    }

    /// Selectivity of one filter over `star`, priced from the statistics
    /// where possible (equality on a predicate's object → `1/NDV`).
    pub fn filter_selectivity(&self, f: &Expr, star: &StarSubquery) -> f64 {
        match f {
            Expr::Cmp(l, op, r) => {
                let var = match (l.as_ref(), r.as_ref()) {
                    (Expr::Var(v), Expr::Const(_)) | (Expr::Const(_), Expr::Var(v)) => Some(v),
                    _ => None,
                };
                match op {
                    CmpOp::Eq => var
                        .and_then(|v| predicate_of_var(star, v))
                        .map_or(UNKNOWN_FILTER_SELECTIVITY, |p| self.eq_selectivity(p)),
                    CmpOp::Ne => NE_FILTER_SELECTIVITY,
                    _ => RANGE_FILTER_SELECTIVITY,
                }
            }
            Expr::And(a, b) => {
                self.filter_selectivity(a, star) * self.filter_selectivity(b, star)
            }
            Expr::Or(a, b) => {
                (self.filter_selectivity(a, star) + self.filter_selectivity(b, star)).min(1.0)
            }
            Expr::Not(inner) => (1.0 - self.filter_selectivity(inner, star)).max(0.1),
            _ => UNKNOWN_FILTER_SELECTIVITY,
        }
    }
}

/// The predicate whose object position binds `v` in `star`.
pub fn predicate_of_var<'a>(star: &'a StarSubquery, v: &fedlake_sparql::binding::Var) -> Option<&'a str> {
    star.triples
        .iter()
        .find(|t| t.o.as_var() == Some(v))
        .and_then(|t| t.p.as_term().and_then(Term::as_iri))
}

fn collect_sparql(graph: &fedlake_rdf::Graph) -> SourceStatistics {
    struct PredAcc {
        count: u64,
        subjects: HashSet<fedlake_rdf::TermId>,
        objects: HashSet<fedlake_rdf::TermId>,
    }
    let mut preds: HashMap<String, PredAcc> = HashMap::new();
    let mut subj_sets: HashMap<fedlake_rdf::TermId, Vec<String>> = HashMap::new();
    let mut triples = 0u64;
    for t in graph.iter() {
        triples += 1;
        let Some(p) = graph.term(t.p).and_then(Term::as_iri) else { continue };
        let acc = preds.entry(p.to_string()).or_insert_with(|| PredAcc {
            count: 0,
            subjects: HashSet::new(),
            objects: HashSet::new(),
        });
        acc.count += 1;
        acc.subjects.insert(t.s);
        acc.objects.insert(t.o);
        let set = subj_sets.entry(t.s).or_default();
        if p != vocab::rdf::TYPE && !set.iter().any(|s| s == p) {
            set.push(p.to_string());
        }
    }
    let mut characteristic_sets: BTreeMap<Vec<String>, u64> = BTreeMap::new();
    for (_, mut set) in subj_sets.iter().map(|(s, v)| (s, v.clone())) {
        set.sort();
        *characteristic_sets.entry(set).or_insert(0) += 1;
    }
    let subjects = subj_sets.len() as u64;
    let predicates = preds
        .into_iter()
        .map(|(p, a)| {
            (
                p,
                PredicateStats {
                    count: a.count,
                    distinct_subjects: a.subjects.len() as u64,
                    distinct_objects: a.objects.len() as u64,
                },
            )
        })
        .collect();
    SourceStatistics { triples, subjects, predicates, characteristic_sets }
}

fn collect_relational(
    db: &fedlake_relational::Database,
    mapping: &fedlake_mapping::DatasetMapping,
) -> SourceStatistics {
    let mut out = SourceStatistics::default();
    for tm in &mapping.tables {
        let Some(table) = db.table(&tm.table) else { continue };
        let Some(subj_pos) = table.schema.column_index(&tm.subject_column) else { continue };
        let col_pos: Vec<(usize, &str)> = tm
            .predicates
            .iter()
            .filter_map(|pm| {
                table.schema.column_index(&pm.column).map(|pos| (pos, pm.predicate.as_str()))
            })
            .collect();

        struct PredAcc<'v> {
            count: u64,
            subjects: HashSet<&'v fedlake_relational::Value>,
            objects: HashSet<&'v fedlake_relational::Value>,
        }
        let mut accs: Vec<PredAcc<'_>> = col_pos
            .iter()
            .map(|_| PredAcc { count: 0, subjects: HashSet::new(), objects: HashSet::new() })
            .collect();
        let mut subj_sets: HashMap<&fedlake_relational::Value, Vec<&str>> = HashMap::new();
        for (_, row) in table.iter() {
            let subj = &row[subj_pos];
            if subj.is_null() {
                continue;
            }
            let set = subj_sets.entry(subj).or_default();
            for (k, (pos, pred)) in col_pos.iter().enumerate() {
                let v = &row[*pos];
                if v.is_null() {
                    continue;
                }
                let acc = &mut accs[k];
                acc.count += 1;
                acc.subjects.insert(subj);
                acc.objects.insert(v);
                if !set.iter().any(|p| p == pred) {
                    set.push(pred);
                }
            }
        }
        let table_subjects = subj_sets.len() as u64;
        // The lifted graph carries one `rdf:type <class>` triple per
        // subject.
        let type_stats = out.predicates.entry(vocab::rdf::TYPE.to_string()).or_default();
        type_stats.count += table_subjects;
        type_stats.distinct_subjects += table_subjects;
        type_stats.distinct_objects += 1;
        out.triples += table_subjects;
        out.subjects += table_subjects;
        for (k, (_, pred)) in col_pos.iter().enumerate() {
            let acc = &accs[k];
            let ps = out.predicates.entry((*pred).to_string()).or_default();
            ps.count += acc.count;
            ps.distinct_subjects += acc.subjects.len() as u64;
            ps.distinct_objects += acc.objects.len() as u64;
            out.triples += acc.count;
        }
        for (_, mut set) in subj_sets.into_iter() {
            set.sort_unstable();
            let key: Vec<String> = set.into_iter().map(str::to_string).collect();
            *out.characteristic_sets.entry(key).or_insert(0) += 1;
        }
    }
    out
}

/// The lake-wide statistics catalog: one [`SourceStatistics`] per
/// registered source, keyed by source id.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LakeStatistics {
    /// Per-source statistics.
    pub sources: BTreeMap<String, SourceStatistics>,
}

impl LakeStatistics {
    /// Collects statistics for every source.
    pub fn collect(sources: &[DataSource]) -> Self {
        LakeStatistics {
            sources: sources
                .iter()
                .map(|s| (s.id().to_string(), SourceStatistics::collect(s)))
                .collect(),
        }
    }

    /// The statistics of one source.
    pub fn source(&self, id: &str) -> Option<&SourceStatistics> {
        self.sources.get(id)
    }

    /// Mutable statistics of one source (see
    /// [`crate::DataLake::statistics_mut`] for why drift is allowed).
    pub fn source_mut(&mut self, id: &str) -> Option<&mut SourceStatistics> {
        self.sources.get_mut(id)
    }

    /// Total triples across the lake.
    pub fn total_triples(&self) -> u64 {
        self.sources.values().map(|s| s.triples).sum()
    }
}

/// Classic equi-join estimate: `|L ⋈ R| = |L|·|R| / max(d_L, d_R)` where
/// `d_L`/`d_R` are the distinct join-key counts of the two sides.
/// Monotone in both input cardinalities; floored at one row.
pub fn join_estimate(l_rows: f64, l_distinct: f64, r_rows: f64, r_distinct: f64) -> f64 {
    let d = l_distinct.max(r_distinct).max(1.0);
    ((l_rows.max(1.0) * r_rows.max(1.0)) / d).max(1.0)
}

/// A federated plan's estimated cost, decomposed the way the Odyssey-style
/// cost models do: engine cpu work, source io work, network transfer, and
/// the parallelism credit (network time hidden by overlapped source I/O).
///
/// `total_us = cpu + io + network - parallelism`; the planner minimizes
/// the total, the decomposition is kept for EXPLAIN and the metrics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FederationCost {
    /// Engine-side cpu work (probes, filter evaluations, row handling), µs.
    pub cpu_us: f64,
    /// Source-side work (scans, index probes, SPARQL evaluation), µs.
    pub io_us: f64,
    /// Network transfer (per-message delay + overhead, per-row cost), µs.
    pub network_us: f64,
    /// Network time hidden by overlapping independent source fetches, µs
    /// (0 under the serialized schedule). Never exceeds `network_us`.
    pub parallelism_us: f64,
}

impl FederationCost {
    /// The zero cost.
    pub const ZERO: FederationCost =
        FederationCost { cpu_us: 0.0, io_us: 0.0, network_us: 0.0, parallelism_us: 0.0 };

    /// The scalar the planner minimizes.
    pub fn total_us(&self) -> f64 {
        self.cpu_us + self.io_us + (self.network_us - self.parallelism_us).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedlake_mapping::{DatasetMapping, IriTemplate, TableMapping};
    use fedlake_rdf::Graph;
    use fedlake_relational::Database;

    fn graph_source() -> DataSource {
        let mut g = Graph::new();
        for i in 0..4 {
            let s = format!("http://d/g{i}");
            g.insert_terms(
                Term::iri(&s),
                Term::iri(vocab::rdf::TYPE),
                Term::iri("http://v/Gene"),
            );
            g.insert_terms(Term::iri(&s), Term::iri("http://v/label"), Term::literal(format!("L{i}")));
            if i < 2 {
                g.insert_terms(
                    Term::iri(&s),
                    Term::iri("http://v/disease"),
                    Term::iri("http://d/d0"),
                );
            }
        }
        DataSource::sparql("g", g)
    }

    fn rel_source() -> DataSource {
        let mut db = Database::new("d");
        db.execute("CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT, disease TEXT)").unwrap();
        db.execute("INSERT INTO gene VALUES ('g1', 'BRCA1', 'd0')").unwrap();
        db.execute("INSERT INTO gene VALUES ('g2', 'TP53', 'd0')").unwrap();
        db.execute("INSERT INTO gene VALUES ('g3', 'EGFR', NULL)").unwrap();
        let mapping = DatasetMapping::new("d").with_table(
            TableMapping::new("gene", "http://v/Gene", IriTemplate::new("http://d/gene/{}"), "id")
                .with_literal("label", "http://v/label")
                .with_reference("disease", "http://v/disease", IriTemplate::new("http://d/disease/{}")),
        );
        DataSource::relational("d", db, mapping)
    }

    #[test]
    fn sparql_collection_counts() {
        let s = SourceStatistics::collect(&graph_source());
        assert_eq!(s.subjects, 4);
        assert_eq!(s.triples, 10);
        let label = &s.predicates["http://v/label"];
        assert_eq!(label.count, 4);
        assert_eq!(label.distinct_subjects, 4);
        assert_eq!(label.distinct_objects, 4);
        let disease = &s.predicates["http://v/disease"];
        assert_eq!(disease.count, 2);
        assert_eq!(disease.distinct_objects, 1);
        // Two characteristic sets: {label} and {label, disease}.
        assert_eq!(s.characteristic_sets.len(), 2);
        assert_eq!(s.characteristic_sets[&vec!["http://v/label".to_string()]], 2);
        assert_eq!(s.star_subjects(&["http://v/label"]), 4.0);
        assert_eq!(s.star_subjects(&["http://v/label", "http://v/disease"]), 2.0);
        assert_eq!(s.star_subjects(&["http://v/nope"]), 0.0);
    }

    #[test]
    fn relational_collection_counts() {
        let s = SourceStatistics::collect(&rel_source());
        assert_eq!(s.subjects, 3);
        // 3 type + 3 label + 2 disease.
        assert_eq!(s.triples, 8);
        let disease = &s.predicates["http://v/disease"];
        assert_eq!(disease.count, 2);
        assert_eq!(disease.distinct_subjects, 2);
        assert_eq!(disease.distinct_objects, 1);
        assert_eq!(s.star_subjects(&["http://v/label", "http://v/disease"]), 2.0);
    }

    #[test]
    fn collection_is_deterministic() {
        for src in [graph_source(), rel_source()] {
            let a = SourceStatistics::collect(&src);
            let b = SourceStatistics::collect(&src);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn star_subjects_monotone_in_predicates() {
        let s = SourceStatistics::collect(&rel_source());
        // Requiring more predicates can only shrink the subject count.
        assert!(
            s.star_subjects(&["http://v/label", "http://v/disease"])
                <= s.star_subjects(&["http://v/label"])
        );
        assert!(s.star_subjects(&["http://v/label"]) <= s.star_subjects(&[]));
    }

    #[test]
    fn join_estimate_monotone_and_bounded() {
        let base = join_estimate(100.0, 50.0, 200.0, 80.0);
        assert!(join_estimate(150.0, 50.0, 200.0, 80.0) >= base, "monotone in |L|");
        assert!(join_estimate(100.0, 50.0, 300.0, 80.0) >= base, "monotone in |R|");
        // Bounded by the cross product and floored at one row.
        assert!(base <= 100.0 * 200.0);
        assert_eq!(join_estimate(0.0, 0.0, 0.0, 0.0), 1.0);
        // More distinct keys → fewer matches.
        assert!(join_estimate(100.0, 100.0, 200.0, 200.0) <= base);
    }

    #[test]
    fn federation_cost_total() {
        let c = FederationCost { cpu_us: 1.0, io_us: 2.0, network_us: 10.0, parallelism_us: 4.0 };
        assert!((c.total_us() - 9.0).abs() < 1e-9);
        assert_eq!(FederationCost::ZERO.total_us(), 0.0);
    }
}
