//! Deterministic per-endpoint health accounting for source selection.
//!
//! Odyssey-style: statistics observed while *executing* queries feed back
//! into *planning* the next one. After every query the engine folds each
//! link's transfer counters into this registry; at plan time the planner
//! orders replica endpoints healthiest-first and (with `degraded_ok`) can
//! skip a source whose endpoints are all past the failure threshold. The
//! registry is plain arithmetic over [`fedlake_netsim::link::LinkStats`]
//! counters, which are themselves deterministic, so two sessions replaying
//! the same queries reach identical health states and thus identical
//! plans.

use fedlake_netsim::Link;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex};

/// Observed reliability of one endpoint (a source id or a replica
/// endpoint id such as `"chebi#r1"`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointHealth {
    /// Messages delivered successfully.
    pub successes: u64,
    /// Failed transfer attempts (drops, truncations, outage hits).
    pub failures: u64,
}

/// The registry's guarded state: the counters plus their generation.
#[derive(Debug, Default)]
struct HealthState {
    endpoints: BTreeMap<String, EndpointHealth>,
    /// Bumped whenever a *planning-relevant* observation lands (failures
    /// change routing; successes never do) and on reset. The plan cache
    /// uses it as a cheap "health unchanged" fast path.
    generation: u64,
}

/// Session-scoped health registry: endpoint id → observed counters.
///
/// Lives on the engine behind a mutex so the `&self` executors can feed
/// it; snapshots are `BTreeMap`s so iteration order (and therefore every
/// routing decision derived from one) is deterministic.
#[derive(Debug, Default)]
pub struct SourceHealth {
    inner: Mutex<HealthState>,
}

impl SourceHealth {
    /// An empty registry (every endpoint presumed healthy).
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds `successes` delivered messages and `failures` failed attempts
    /// into the endpoint's counters.
    pub fn observe(&self, endpoint: &str, successes: u64, failures: u64) {
        if successes == 0 && failures == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if failures > 0 {
            inner.generation += 1;
        }
        let h = inner.endpoints.entry(endpoint.to_string()).or_default();
        h.successes += successes;
        h.failures += failures;
    }

    /// Folds a query's link counters into the registry, one entry per
    /// endpoint (the link map is keyed by endpoint id).
    pub fn record_links(&self, links: &HashMap<String, Arc<Link>>) {
        for (endpoint, link) in links {
            let s = link.stats();
            self.observe(endpoint, s.messages, s.faults());
        }
    }

    /// Failed attempts recorded against `endpoint`.
    pub fn failures_of(&self, endpoint: &str) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .endpoints
            .get(endpoint)
            .map_or(0, |h| h.failures)
    }

    /// A deterministic snapshot of all endpoint counters.
    pub fn snapshot(&self) -> BTreeMap<String, EndpointHealth> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).endpoints.clone()
    }

    /// Monotone generation of planning-relevant health state: moves when
    /// failures are recorded or the registry is reset, never on
    /// success-only traffic (successes cannot change a routing decision).
    pub fn generation(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).generation
    }

    /// Forgets everything (every endpoint presumed healthy again).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if !inner.endpoints.is_empty() {
            inner.generation += 1;
        }
        inner.endpoints.clear();
    }

    /// Exports the registry into `metrics` as
    /// `health.<endpoint>.successes` / `health.<endpoint>.failures`
    /// counters, so an exposition snapshot carries endpoint health next
    /// to the serve rollup. Read-only over the registry; iteration is the
    /// snapshot's `BTreeMap` order, so the export is deterministic.
    pub fn fold_into(&self, metrics: &mut crate::obs::MetricsRegistry) {
        for (endpoint, h) in self.snapshot() {
            metrics.counter_add(&format!("health.{endpoint}.successes"), h.successes);
            metrics.counter_add(&format!("health.{endpoint}.failures"), h.failures);
        }
    }
}

/// The planner's read-only view of session health: a failure snapshot
/// plus the demotion threshold an endpoint must stay under to count as
/// healthy.
#[derive(Debug, Clone, Default)]
pub struct HealthView {
    /// Endpoint id → counters, from [`SourceHealth::snapshot`].
    pub endpoints: BTreeMap<String, EndpointHealth>,
    /// Failure count at which an endpoint is considered degraded.
    pub threshold: u64,
    /// The registry generation the snapshot was taken at (see
    /// [`SourceHealth::generation`]); the plan cache's fast-path guard.
    pub generation: u64,
}

impl HealthView {
    /// An empty view: nothing observed, nothing degraded (the behaviour
    /// of a fresh session, and of every pre-health code path).
    pub fn empty() -> Self {
        HealthView { endpoints: BTreeMap::new(), threshold: u64::MAX, generation: 0 }
    }

    /// Recorded failures for `endpoint`.
    pub fn failures_of(&self, endpoint: &str) -> u64 {
        self.endpoints.get(endpoint).map_or(0, |h| h.failures)
    }

    /// True when the endpoint has reached the demotion threshold.
    pub fn is_degraded(&self, endpoint: &str) -> bool {
        self.failures_of(endpoint) >= self.threshold
    }

    /// True when *every* endpoint in `endpoints` is degraded — the
    /// condition for skipping a whole logical source.
    pub fn all_degraded<'a>(&self, mut endpoints: impl Iterator<Item = &'a str>) -> bool {
        endpoints.all(|e| self.is_degraded(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_accumulates() {
        let h = SourceHealth::new();
        h.observe("a#r0", 10, 2);
        h.observe("a#r0", 5, 1);
        h.observe("a#r1", 7, 0);
        h.observe("ghost", 0, 0); // no-op, no entry
        assert_eq!(h.failures_of("a#r0"), 3);
        assert_eq!(h.failures_of("a#r1"), 0);
        assert_eq!(h.failures_of("missing"), 0);
        let snap = h.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap["a#r0"], EndpointHealth { successes: 15, failures: 3 });
        h.reset();
        assert!(h.snapshot().is_empty());
    }

    #[test]
    fn generation_moves_only_on_planning_relevant_changes() {
        let h = SourceHealth::new();
        assert_eq!(h.generation(), 0);
        h.observe("a", 10, 0); // success-only traffic: no routing impact
        assert_eq!(h.generation(), 0);
        h.observe("a", 0, 1);
        assert_eq!(h.generation(), 1);
        h.observe("b", 3, 2);
        assert_eq!(h.generation(), 2);
        h.reset();
        assert_eq!(h.generation(), 3);
        h.reset(); // already empty: nothing forgotten, nothing bumped
        assert_eq!(h.generation(), 3);
    }

    #[test]
    fn view_thresholds() {
        let h = SourceHealth::new();
        h.observe("a#r0", 0, 8);
        h.observe("a#r1", 20, 1);
        let view = HealthView { endpoints: h.snapshot(), threshold: 8, generation: h.generation() };
        assert!(view.is_degraded("a#r0"));
        assert!(!view.is_degraded("a#r1"));
        assert!(!view.is_degraded("never-seen"));
        assert!(!view.all_degraded(["a#r0", "a#r1"].into_iter()));
        assert!(view.all_degraded(["a#r0"].into_iter()));
        // The empty view degrades nothing, ever.
        let empty = HealthView::empty();
        assert!(!empty.is_degraded("a#r0"));
    }
}
