//! FedQPL-style logical plan IR.
//!
//! [`LogicalPlan`] is an explicit logical algebra for federated plans —
//! `req` / `bgp-req` / `join` / `union` / `bind` over source-annotated
//! sub-expressions, after the FedQPL formalization. It is lowered from a
//! freshly built [`FedPlan`] *before* physical annotations (replica
//! routes) are assigned, so two plans that request the same work from the
//! same sources share one IR regardless of interner state or routing.
//!
//! The IR exists to be **serializable and hashable**:
//!
//! * [`LogicalPlan::normalized`] puts a plan in canonical normal form —
//!   adjacent commutative operators (joins, unions) are flattened to
//!   n-ary nodes and their children sorted by canonical text, so
//!   syntactically different but logically identical shapes coincide.
//! * [`LogicalPlan::canonical`] renders the normal form as a stable
//!   S-expression built only from term *text* (never interner ids), so
//!   fingerprints are interner-independent.
//! * [`LogicalPlan::fingerprint`] folds that text through FNV-1a into a
//!   stable 64-bit plan fingerprint — the identity used by EXPLAIN, the
//!   flight recorder and the normalized-plan cache.
//!
//! [`query_fingerprint`] and [`config_fingerprint`] provide the matching
//! *lookup-side* identities: a canonical rendering of the SPARQL AST and
//! of the planner-relevant configuration. Both are conservative — any
//! textual difference is a different key — so the plan cache can never
//! return a plan for a query it was not built from.

use crate::config::PlanConfig;
use crate::fedplan::{FedPlan, ServiceKind, SqlRequest};
use fedlake_sparql::ast::{GroupGraphPattern, Order, PatternElement, SelectQuery};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Incremental FNV-1a 64-bit folder — the deterministic, dependency-free
/// hash used for every fingerprint in this module and the plan cache.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// Fresh folder at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold raw bytes.
    pub fn push_bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Fold a string (its UTF-8 bytes plus a separator so that
    /// `"ab","c"` and `"a","bc"` fold differently).
    pub fn push_str(&mut self, s: &str) -> &mut Self {
        self.push_bytes(s.as_bytes());
        self.push_bytes(&[0xff]);
        self
    }

    /// Fold a 64-bit value (little-endian bytes).
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.push_bytes(&v.to_le_bytes())
    }

    /// The folded hash.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// The logical plan algebra, per FedQPL: requests, joins, unions and
/// dependent (bind) joins over source-annotated sub-expressions. All
/// payloads are plain text extracted from the physical plan so the IR is
/// trivially serializable and its hash interner-independent.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogicalPlan {
    /// `req`: one translated SQL request against one relational source.
    Req {
        /// Logical source id.
        source: String,
        /// The request text (outer query for the naive-merge form).
        sql: String,
    },
    /// `bgp-req`: one star-shaped BGP evaluated natively at a SPARQL
    /// source (the triple-pattern-fragment flavour of `req`).
    BgpReq {
        /// Logical source id.
        source: String,
        /// Canonical triple-pattern texts (query order).
        patterns: Vec<String>,
        /// Filters pushed to the endpoint.
        filters: Vec<String>,
    },
    /// `join`: n-ary engine-level join on the given variables.
    Join {
        /// Sub-expressions, sorted canonically in normal form.
        children: Vec<LogicalPlan>,
        /// Union of the binary join variables, sorted + deduped.
        on: Vec<String>,
    },
    /// Left (optional) join — not commutative, stays binary.
    LeftJoin {
        /// Required input.
        left: Box<LogicalPlan>,
        /// Optional input.
        right: Box<LogicalPlan>,
        /// Join variables.
        on: Vec<String>,
    },
    /// `union`: n-ary union of alternative sub-expressions.
    Union(Vec<LogicalPlan>),
    /// `bind`: dependent join — the input's bindings parameterize a
    /// request to the annotated source.
    Bind {
        /// The driving input.
        input: Box<LogicalPlan>,
        /// Logical source id of the parameterized request.
        source: String,
        /// The restricted star (table + selected columns + conjuncts).
        req: String,
        /// The shipped variable and restricted column.
        on: String,
    },
    /// Engine-level filter.
    Filter {
        /// Input.
        input: Box<LogicalPlan>,
        /// Conjunct texts (query order).
        exprs: Vec<String>,
    },
}

impl LogicalPlan {
    /// Lowers a physical plan to its logical IR. Routes and cardinality
    /// estimates are physical annotations and are deliberately dropped;
    /// every remaining payload is text.
    pub fn of(plan: &FedPlan) -> Self {
        match plan {
            FedPlan::Service(s) => match &s.kind {
                ServiceKind::Sparql { star, filters } => LogicalPlan::BgpReq {
                    source: s.source_id.clone(),
                    patterns: star.triples.iter().map(|t| t.to_string()).collect(),
                    filters: filters.iter().map(|e| e.to_string()).collect(),
                },
                ServiceKind::Sql { request, .. } => LogicalPlan::Req {
                    source: s.source_id.clone(),
                    sql: match request {
                        SqlRequest::Single(q) => format!("single:{}", q.sql),
                        SqlRequest::MergedOptimized(q) => format!("merged:{}", q.sql),
                        SqlRequest::MergedNaive { outer, inner, join } => format!(
                            "naive:{} inner:{}[{}] on:{}={}",
                            outer.sql,
                            inner.table,
                            inner.wheres.join(" AND "),
                            join.outer_var,
                            join.inner_col
                        ),
                    },
                },
            },
            FedPlan::Join { left, right, on } => LogicalPlan::Join {
                children: vec![Self::of(left), Self::of(right)],
                on: on.iter().map(|v| v.to_string()).collect(),
            },
            FedPlan::LeftJoin { left, right, on } => LogicalPlan::LeftJoin {
                left: Box::new(Self::of(left)),
                right: Box::new(Self::of(right)),
                on: on.iter().map(|v| v.to_string()).collect(),
            },
            FedPlan::Union(branches) => {
                LogicalPlan::Union(branches.iter().map(Self::of).collect())
            }
            FedPlan::BindJoin { left, right, batch_size } => LogicalPlan::Bind {
                input: Box::new(Self::of(left)),
                source: right.source_id.clone(),
                req: format!(
                    "{}[{}] batch:{batch_size}",
                    right.part.table,
                    right.part.wheres.join(" AND ")
                ),
                on: format!("{}={}", right.join_var, right.column),
            },
            FedPlan::Filter { input, exprs } => LogicalPlan::Filter {
                input: Box::new(Self::of(input)),
                exprs: exprs.iter().map(|e| e.to_string()).collect(),
            },
        }
    }

    /// Canonical normal form: flattens nested joins/unions into n-ary
    /// nodes (merging join variables) and sorts commutative children by
    /// canonical text. Idempotent.
    pub fn normalized(self) -> Self {
        match self {
            LogicalPlan::Join { children, on } => {
                let mut flat = Vec::new();
                let mut vars = on;
                for child in children {
                    match child.normalized() {
                        LogicalPlan::Join { children: inner, on: inner_on } => {
                            flat.extend(inner);
                            vars.extend(inner_on);
                        }
                        other => flat.push(other),
                    }
                }
                vars.sort_unstable();
                vars.dedup();
                flat.sort_by_key(|child| child.canonical());
                LogicalPlan::Join { children: flat, on: vars }
            }
            LogicalPlan::Union(branches) => {
                let mut flat = Vec::new();
                for b in branches {
                    match b.normalized() {
                        LogicalPlan::Union(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                flat.sort_by_key(|child| child.canonical());
                LogicalPlan::Union(flat)
            }
            LogicalPlan::LeftJoin { left, right, on } => LogicalPlan::LeftJoin {
                left: Box::new(left.normalized()),
                right: Box::new(right.normalized()),
                on,
            },
            LogicalPlan::Bind { input, source, req, on } => LogicalPlan::Bind {
                input: Box::new(input.normalized()),
                source,
                req,
                on,
            },
            LogicalPlan::Filter { input, exprs } => {
                LogicalPlan::Filter { input: Box::new(input.normalized()), exprs }
            }
            leaf @ (LogicalPlan::Req { .. } | LogicalPlan::BgpReq { .. }) => leaf,
        }
    }

    /// The serializable canonical form: a stable S-expression over term
    /// text only. Equal strings ⇔ equal normalized IR.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        self.write_canonical(&mut out);
        out
    }

    fn write_canonical(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            LogicalPlan::Req { source, sql } => {
                let _ = write!(out, "(req {source} {sql:?})");
            }
            LogicalPlan::BgpReq { source, patterns, filters } => {
                let _ = write!(out, "(bgp-req {source}");
                for p in patterns {
                    let _ = write!(out, " {p:?}");
                }
                for f in filters {
                    let _ = write!(out, " (filter {f:?})");
                }
                out.push(')');
            }
            LogicalPlan::Join { children, on } => {
                let _ = write!(out, "(join [{}]", on.join(","));
                for c in children {
                    out.push(' ');
                    c.write_canonical(out);
                }
                out.push(')');
            }
            LogicalPlan::LeftJoin { left, right, on } => {
                let _ = write!(out, "(leftjoin [{}] ", on.join(","));
                left.write_canonical(out);
                out.push(' ');
                right.write_canonical(out);
                out.push(')');
            }
            LogicalPlan::Union(branches) => {
                out.push_str("(union");
                for b in branches {
                    out.push(' ');
                    b.write_canonical(out);
                }
                out.push(')');
            }
            LogicalPlan::Bind { input, source, req, on } => {
                let _ = write!(out, "(bind {source} {req:?} [{on}] ");
                input.write_canonical(out);
                out.push(')');
            }
            LogicalPlan::Filter { input, exprs } => {
                out.push_str("(filter");
                for e in exprs {
                    let _ = write!(out, " {e:?}");
                }
                out.push(' ');
                input.write_canonical(out);
                out.push(')');
            }
        }
    }

    /// Stable 64-bit fingerprint of the canonical form. Call on a
    /// [`normalized`](Self::normalized) plan for the canonical identity.
    pub fn fingerprint(&self) -> u64 {
        Fnv64::new().push_str(&self.canonical()).finish()
    }
}

/// Canonical fingerprint of a SPARQL query AST — the lookup key the plan
/// cache computes *without* planning. Order-preserving (no commutative
/// sorting): identical ASTs always collide, different ASTs practically
/// never do, and a conservative key can only cause misses, never wrong
/// hits.
pub fn query_fingerprint(query: &SelectQuery) -> u64 {
    let mut h = Fnv64::new();
    h.push_str("select");
    for v in &query.projection {
        h.push_str(&v.to_string());
    }
    h.push_str(if query.distinct { "distinct" } else { "all" });
    fold_pattern(&mut h, &query.pattern);
    for key in &query.order_by {
        h.push_str(&key.var.to_string());
        h.push_str(match key.order {
            Order::Asc => "asc",
            Order::Desc => "desc",
        });
    }
    h.push_u64(query.limit.map_or(u64::MAX, |l| l as u64));
    h.push_u64(query.offset.map_or(u64::MAX, |o| o as u64));
    h.finish()
}

fn fold_pattern(h: &mut Fnv64, pattern: &GroupGraphPattern) {
    h.push_str("{");
    for el in &pattern.elements {
        match el {
            PatternElement::Triple(t) => {
                h.push_str("t");
                h.push_str(&t.to_string());
            }
            PatternElement::Filter(e) => {
                h.push_str("f");
                h.push_str(&e.to_string());
            }
            PatternElement::Optional(g) => {
                h.push_str("opt");
                fold_pattern(h, g);
            }
            PatternElement::Union(branches) => {
                h.push_str("union");
                for g in branches {
                    fold_pattern(h, g);
                }
            }
            PatternElement::Group(g) => {
                h.push_str("group");
                fold_pattern(h, g);
            }
        }
    }
    h.push_str("}");
}

/// Fingerprint of every configuration field that can influence a plan.
/// Hashes the full `Debug` rendering: over-approximating (fields that
/// cannot affect planning still separate entries) is safe — it only
/// splits cache lines, never shares a plan across configs that would
/// plan differently.
pub fn config_fingerprint(config: &PlanConfig) -> u64 {
    Fnv64::new().push_str(&format!("{config:?}")).finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fedplan::ServiceNode;
    use crate::translate::TranslatedQuery;
    use fedlake_sparql::binding::Var;
    use fedlake_sparql::parser::parse_query;

    fn req(source: &str, sql: &str) -> FedPlan {
        FedPlan::Service(ServiceNode {
            source_id: source.into(),
            route: None,
            kind: ServiceKind::Sql {
                request: SqlRequest::Single(TranslatedQuery {
                    sql: sql.into(),
                    outputs: Vec::new(),
                }),
                covers: Vec::new(),
            },
            estimated_rows: 10.0,
        })
    }

    fn join(left: FedPlan, right: FedPlan, on: &str) -> FedPlan {
        FedPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            on: vec![Var::new(on)],
        }
    }

    #[test]
    fn commuted_joins_share_a_fingerprint() {
        let ab = LogicalPlan::of(&join(req("a", "SELECT 1"), req("b", "SELECT 2"), "x"));
        let ba = LogicalPlan::of(&join(req("b", "SELECT 2"), req("a", "SELECT 1"), "x"));
        assert_ne!(ab, ba, "raw lowering preserves order");
        let (nab, nba) = (ab.normalized(), ba.normalized());
        assert_eq!(nab, nba, "normal form is order-free");
        assert_eq!(nab.fingerprint(), nba.fingerprint());
    }

    #[test]
    fn nested_joins_flatten_and_merge_variables() {
        let nested = join(
            join(req("a", "A"), req("b", "B"), "x"),
            req("c", "C"),
            "y",
        );
        match LogicalPlan::of(&nested).normalized() {
            LogicalPlan::Join { children, on } => {
                assert_eq!(children.len(), 3);
                assert_eq!(on, vec!["?x".to_string(), "?y".to_string()]);
            }
            other => panic!("expected flattened join, got {other:?}"),
        }
    }

    #[test]
    fn different_requests_fingerprint_differently() {
        let a = LogicalPlan::of(&req("a", "SELECT 1")).normalized();
        let b = LogicalPlan::of(&req("a", "SELECT 2")).normalized();
        let c = LogicalPlan::of(&req("b", "SELECT 1")).normalized();
        assert_ne!(a.fingerprint(), b.fingerprint(), "sql text distinguishes");
        assert_ne!(a.fingerprint(), c.fingerprint(), "source distinguishes");
    }

    #[test]
    fn normalization_is_idempotent() {
        let plan = LogicalPlan::of(&join(
            join(req("c", "C"), req("a", "A"), "x"),
            req("b", "B"),
            "x",
        ));
        let once = plan.normalized();
        assert_eq!(once.clone().normalized(), once);
    }

    #[test]
    fn query_fingerprint_separates_queries_and_is_stable() {
        let q1 = parse_query("SELECT ?s WHERE { ?s ?p ?o . }").unwrap();
        let q1b = parse_query("SELECT ?s WHERE { ?s ?p ?o . }").unwrap();
        let q2 = parse_query("SELECT ?s WHERE { ?s ?p ?o . } LIMIT 5").unwrap();
        let q3 = parse_query("SELECT DISTINCT ?s WHERE { ?s ?p ?o . }").unwrap();
        assert_eq!(query_fingerprint(&q1), query_fingerprint(&q1b));
        assert_ne!(query_fingerprint(&q1), query_fingerprint(&q2));
        assert_ne!(query_fingerprint(&q1), query_fingerprint(&q3));
    }

    #[test]
    fn config_fingerprint_tracks_planner_relevant_fields() {
        let base = PlanConfig::default();
        let mut cost = base;
        cost.cost_based = !cost.cost_based;
        assert_eq!(config_fingerprint(&base), config_fingerprint(&base));
        assert_ne!(config_fingerprint(&base), config_fingerprint(&cost));
    }
}
