//! `EXPLAIN` rendering of physical plans.

use crate::plan::{AccessPath, JoinAlgo, PhysicalPlan};

/// Renders a plan as an indented text tree, one operator per line.
pub fn explain(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn render(plan: &PhysicalPlan, depth: usize, out: &mut String) {
    indent(out, depth);
    match plan {
        PhysicalPlan::Scan(s) => {
            let path = match &s.path {
                AccessPath::SeqScan => "SeqScan".to_string(),
                AccessPath::IndexEq { index, key } => format!("IndexScan[{index} = {key}]"),
                AccessPath::IndexRange { index, .. } => format!("IndexRangeScan[{index}]"),
                AccessPath::IndexInList { index, keys } => {
                    format!("IndexInScan[{index}, {} keys]", keys.len())
                }
            };
            out.push_str(&format!(
                "{path} {} AS {} (est {:.1} rows)",
                s.table, s.alias, s.estimated_rows
            ));
            if !s.residual.is_empty() {
                let preds: Vec<String> = s.residual.iter().map(|p| p.to_string()).collect();
                out.push_str(&format!(" filter: {}", preds.join(" AND ")));
            }
            out.push('\n');
        }
        PhysicalPlan::Join { left, right, algo, left_key, right_key } => {
            let name = match algo {
                JoinAlgo::Hash => "HashJoin",
                JoinAlgo::IndexNestedLoop => "IndexNestedLoopJoin",
                JoinAlgo::Cross => "CrossJoin",
            };
            match (left_key, right_key) {
                (Some(l), Some(r)) => out.push_str(&format!("{name} on {l} = {r}\n")),
                _ => out.push_str(&format!("{name}\n")),
            }
            render(left, depth + 1, out);
            // Render the right scan as a child line.
            render(&PhysicalPlan::Scan(right.clone()), depth + 1, out);
        }
        PhysicalPlan::Filter { input, predicates } => {
            let preds: Vec<String> = predicates.iter().map(|p| p.to_string()).collect();
            out.push_str(&format!("Filter: {}\n", preds.join(" AND ")));
            render(input, depth + 1, out);
        }
        PhysicalPlan::Project { input, columns, .. } => {
            let cols: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
            out.push_str(&format!("Project: {}\n", cols.join(", ")));
            render(input, depth + 1, out);
        }
        PhysicalPlan::Distinct(input) => {
            out.push_str("Distinct\n");
            render(input, depth + 1, out);
        }
        PhysicalPlan::Sort { input, keys } => {
            let ks: Vec<String> = keys
                .iter()
                .map(|k| format!("{}{}", k.col, if k.asc { "" } else { " DESC" }))
                .collect();
            out.push_str(&format!("Sort: {}\n", ks.join(", ")));
            render(input, depth + 1, out);
        }
        PhysicalPlan::Limit { input, n } => {
            out.push_str(&format!("Limit {n}\n"));
            render(input, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ScanNode;

    #[test]
    fn explain_scan() {
        let plan = PhysicalPlan::Scan(ScanNode {
            table: "gene".into(),
            alias: "g".into(),
            path: AccessPath::SeqScan,
            residual: Vec::new(),
            estimated_rows: 20.0,
        });
        let text = explain(&plan);
        assert!(text.contains("SeqScan gene AS g"));
        assert!(text.contains("est 20.0 rows"));
    }

    #[test]
    fn explain_nested() {
        let scan = ScanNode {
            table: "gene".into(),
            alias: "g".into(),
            path: AccessPath::IndexEq {
                index: "pk_gene".into(),
                key: crate::value::Value::text("g1"),
            },
            residual: Vec::new(),
            estimated_rows: 1.0,
        };
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Scan(scan)),
            n: 5,
        };
        let text = explain(&plan);
        assert!(text.starts_with("Limit 5"));
        assert!(text.contains("IndexScan[pk_gene = 'g1']"));
    }
}
