//! SQL values and data types.

use std::cmp::Ordering;
use std::fmt;

/// The column types supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Double,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataType::Int => "INT",
            DataType::Double => "DOUBLE",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
        })
    }
}

/// A SQL value. `Null` is a first-class value with SQL-style semantics in
/// comparisons (it never equals anything, including itself, in predicate
/// evaluation) but a stable position in the index/sort total order.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Double(f64),
    /// String value.
    Text(String),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// The value's data type, `None` for `Null`.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Double(_) => Some(DataType::Double),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// True for `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Creates a text value.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// Numeric view (ints widen to double).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Double(d) => Some(*d),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// SQL comparison: `None` when either side is NULL or the types are
    /// incomparable (three-valued logic's UNKNOWN).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// True when this value matches a SQL `LIKE` pattern (`%` = any run,
    /// `_` = any single char).
    pub fn like(&self, pattern: &str) -> bool {
        match self {
            Value::Text(s) => like_match(s, pattern),
            _ => false,
        }
    }
}

/// Index/sort total order: NULL < Bool < numeric < Text. Used by B-tree
/// index keys and ORDER BY; distinct from [`Value::sql_cmp`], which carries
/// SQL NULL semantics.
impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Double(_) => 2,
                Value::Text(_) => 3,
            }
        }
        if rank(self) != rank(other) {
            return rank(self).cmp(&rank(other));
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            _ => {
                let a = self.as_f64().expect("rank 2 implies numeric");
                let b = other.as_f64().expect("rank 2 implies numeric");
                a.total_cmp(&b)
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and doubles that compare equal must hash equally.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Double(d) => {
                2u8.hash(state);
                d.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Double(d) => write!(f, "{d}"),
            Value::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// SQL LIKE matching with `%` and `_` wildcards.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    // Classic two-pointer algorithm with backtracking on '%'.
    let (mut si, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while si < s.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi, si));
            pi += 1;
        } else if let Some((spi, ssi)) = star {
            pi = spi + 1;
            si = ssi + 1;
            star = Some((spi, ssi + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_cmp_numeric_cross_type() {
        assert_eq!(
            Value::Int(3).sql_cmp(&Value::Double(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Double(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn sql_cmp_null_is_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_type_mismatch_is_unknown() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::text("1")), None);
    }

    #[test]
    fn total_order_ranks_types() {
        let mut vals = [Value::text("a"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Double(0.5)];
        vals.sort();
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Double(0.5));
        assert_eq!(vals[3], Value::Int(1));
        assert_eq!(vals[4], Value::text("a"));
    }

    #[test]
    fn eq_and_hash_agree_across_numeric_types() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(3));
        assert!(set.contains(&Value::Double(3.0)));
    }

    #[test]
    fn like_wildcards() {
        assert!(like_match("Homo sapiens", "Homo%"));
        assert!(like_match("Homo sapiens", "%sapiens"));
        assert!(like_match("Homo sapiens", "%o sap%"));
        assert!(like_match("Homo sapiens", "H_mo sapiens"));
        assert!(!like_match("Homo sapiens", "Mus%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "ab"));
    }

    #[test]
    fn like_requires_text() {
        assert!(!Value::Int(5).like("%5%"));
        assert!(Value::text("x5y").like("%5%"));
    }

    #[test]
    fn display_quotes_text() {
        assert_eq!(Value::text("o'clock").to_string(), "'o''clock'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-2).to_string(), "-2");
    }
}
