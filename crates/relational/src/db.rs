//! The database facade: catalog plus SQL entry point.

use crate::error::SqlError;
use crate::exec::{execute, CostStats};
use crate::explain::explain;
use crate::optimizer::plan_select;
use crate::plan::PhysicalPlan;
use crate::schema::TableSchema;
use crate::sql::{parse, SelectStmt, Statement};
use crate::stats::{table_stats, TableStats};
use crate::storage::Table;
use crate::value::Value;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// The result of executing a statement.
#[derive(Debug, Clone)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Work performed, for the cost simulation.
    pub cost: CostStats,
    /// `EXPLAIN` text, when the statement was an `EXPLAIN`.
    pub explain: Option<String>,
}

impl ResultSet {
    fn empty() -> Self {
        ResultSet {
            columns: Vec::new(),
            rows: Vec::new(),
            cost: CostStats::default(),
            explain: None,
        }
    }
}

/// An embedded relational database: one named catalog of tables.
#[derive(Debug, Default)]
pub struct Database {
    name: String,
    tables: HashMap<String, Table>,
    /// Materialized results of previously executed `SELECT`s, keyed by the
    /// SQL text. Sources in a federation answer the same subqueries over
    /// and over (replica failover, repeated executions, benchmark loops);
    /// serving the memoized result — cost statistics included, so the
    /// simulated charge is identical — skips the re-scan. Any mutation
    /// clears the cache.
    cache: Mutex<HashMap<String, Arc<ResultSet>>>,
}

impl Clone for Database {
    fn clone(&self) -> Self {
        // The clone gets its own (empty) cache: the two catalogs may
        // diverge afterwards, and cached results must never outlive the
        // table state they were computed from.
        Database {
            name: self.name.clone(),
            tables: self.tables.clone(),
            cache: Mutex::new(HashMap::new()),
        }
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new(name: impl Into<String>) -> Self {
        Database {
            name: name.into(),
            tables: HashMap::new(),
            cache: Mutex::new(HashMap::new()),
        }
    }

    fn invalidate_cache(&mut self) {
        self.cache.get_mut().unwrap_or_else(|e| e.into_inner()).clear();
    }

    /// The database name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Executes one SQL statement.
    pub fn execute(&mut self, sql: &str) -> Result<ResultSet, SqlError> {
        match parse(sql)? {
            Statement::CreateTable(schema) => {
                self.create_table(schema)?;
                Ok(ResultSet::empty())
            }
            Statement::CreateIndex { name, table, columns, unique } => {
                self.create_index(&table, &name, &columns, unique)?;
                Ok(ResultSet::empty())
            }
            Statement::Insert { table, rows } => {
                self.invalidate_cache();
                let t = self
                    .tables
                    .get_mut(&table)
                    .ok_or_else(|| SqlError::UnknownTable(table.clone()))?;
                for row in rows {
                    t.insert(row)?;
                }
                Ok(ResultSet::empty())
            }
            Statement::Select(stmt) => self.run_select(&stmt),
            Statement::Explain(stmt) => {
                let plan = self.plan(&stmt)?;
                Ok(ResultSet {
                    columns: Vec::new(),
                    rows: Vec::new(),
                    cost: CostStats::default(),
                    explain: Some(explain(&plan)),
                })
            }
        }
    }

    /// Plans a `SELECT` without executing it.
    pub fn plan(&self, stmt: &SelectStmt) -> Result<PhysicalPlan, SqlError> {
        plan_select(stmt, &self.tables)
    }

    /// Plans and executes a `SELECT` statement.
    pub fn run_select(&self, stmt: &SelectStmt) -> Result<ResultSet, SqlError> {
        let plan = self.plan(stmt)?;
        self.run_plan(&plan)
    }

    /// Executes an already-built physical plan.
    pub fn run_plan(&self, plan: &PhysicalPlan) -> Result<ResultSet, SqlError> {
        let (rel, cost) = execute(plan, &self.tables)?;
        let columns = match plan {
            PhysicalPlan::Project { names, .. } => names.clone(),
            PhysicalPlan::Distinct(inner) | PhysicalPlan::Limit { input: inner, .. } => {
                project_names(inner).unwrap_or_else(|| {
                    rel.schema.iter().map(|c| c.column.clone()).collect()
                })
            }
            _ => rel.schema.iter().map(|c| c.column.clone()).collect(),
        };
        Ok(ResultSet { columns, rows: rel.rows, cost, explain: None })
    }

    /// Parses and runs a `SELECT`-only SQL string (convenience for
    /// wrappers that must not mutate).
    pub fn query(&self, sql: &str) -> Result<ResultSet, SqlError> {
        match parse(sql)? {
            Statement::Select(stmt) => self.run_select(&stmt),
            _ => Err(SqlError::Internal("query() accepts only SELECT".into())),
        }
    }

    /// Like [`Database::query`], but memoized: the first execution of a
    /// given `SELECT` materializes and caches its full result (rows *and*
    /// cost statistics); later executions of the same SQL text share it.
    /// Callers must charge the returned `cost` exactly as for an uncached
    /// run — a cache hit changes wall-clock time only, never the simulated
    /// execution. Errors are not cached.
    pub fn query_cached(&self, sql: &str) -> Result<Arc<ResultSet>, SqlError> {
        if let Some(hit) = self
            .cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(sql)
        {
            return Ok(Arc::clone(hit));
        }
        let rs = Arc::new(self.query(sql)?);
        self.cache
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(sql.to_string(), Arc::clone(&rs));
        Ok(rs)
    }

    /// Creates a table from a schema.
    pub fn create_table(&mut self, schema: TableSchema) -> Result<(), SqlError> {
        self.invalidate_cache();
        if self.tables.contains_key(&schema.name) {
            return Err(SqlError::AlreadyExists(schema.name));
        }
        let name = schema.name.clone();
        self.tables.insert(name, Table::new(schema)?);
        Ok(())
    }

    /// Creates an index on `table(columns)`.
    pub fn create_index(
        &mut self,
        table: &str,
        name: &str,
        columns: &[String],
        unique: bool,
    ) -> Result<(), SqlError> {
        self.invalidate_cache();
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| SqlError::UnknownTable(table.to_string()))?;
        t.create_index(name, columns, unique)
    }

    /// Inserts a row through the typed API.
    pub fn insert_row(&mut self, table: &str, row: Vec<Value>) -> Result<(), SqlError> {
        self.invalidate_cache();
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| SqlError::UnknownTable(table.to_string()))?;
        t.insert(row)?;
        Ok(())
    }

    /// Immutable table access.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_lowercase())
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Statistics for one table.
    pub fn stats(&self, table: &str) -> Option<TableStats> {
        self.table(table).map(table_stats)
    }

    /// True when `table.column` carries an index with that column as the
    /// leading key — the physical-design question the paper's heuristics
    /// ask of each source.
    pub fn has_index_on(&self, table: &str, column: &str) -> bool {
        self.table(table).is_some_and(|t| t.has_index_on(column))
    }
}

fn project_names(plan: &PhysicalPlan) -> Option<Vec<String>> {
    match plan {
        PhysicalPlan::Project { names, .. } => Some(names.clone()),
        PhysicalPlan::Distinct(inner)
        | PhysicalPlan::Limit { input: inner, .. }
        | PhysicalPlan::Sort { input: inner, .. } => project_names(inner),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lake_db() -> Database {
        let mut db = Database::new("diseasome");
        db.execute(
            "CREATE TABLE gene (id TEXT PRIMARY KEY, label TEXT, species TEXT)",
        )
        .unwrap();
        db.execute(
            "CREATE TABLE disease (id TEXT PRIMARY KEY, name TEXT, class TEXT)",
        )
        .unwrap();
        db.execute(
            "CREATE TABLE gene_disease (gene TEXT, disease TEXT, PRIMARY KEY (gene, disease), \
             FOREIGN KEY (gene) REFERENCES gene (id), \
             FOREIGN KEY (disease) REFERENCES disease (id))",
        )
        .unwrap();
        for i in 0..30 {
            db.execute(&format!(
                "INSERT INTO gene VALUES ('g{i}', 'gene {i}', '{}')",
                if i % 3 == 0 { "Homo sapiens" } else { "Mus musculus" }
            ))
            .unwrap();
            db.execute(&format!(
                "INSERT INTO disease VALUES ('d{i}', 'disease {i}', 'class{}')",
                i % 5
            ))
            .unwrap();
        }
        for i in 0..30 {
            db.execute(&format!(
                "INSERT INTO gene_disease VALUES ('g{i}', 'd{}')",
                (i * 7) % 30
            ))
            .unwrap();
        }
        db
    }

    #[test]
    fn ddl_and_inserts() {
        let db = lake_db();
        assert_eq!(db.table("gene").unwrap().len(), 30);
        assert_eq!(db.table_names(), vec!["disease", "gene", "gene_disease"]);
    }

    #[test]
    fn point_query_via_pk() {
        let db = lake_db();
        let rs = db.query("SELECT label FROM gene WHERE id = 'g7'").unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::text("gene 7"));
        // PK access must go through the index, not a scan.
        assert_eq!(rs.cost.rows_scanned, 0);
        assert_eq!(rs.cost.index_probes, 1);
    }

    #[test]
    fn filter_without_index_scans() {
        let db = lake_db();
        let rs = db
            .query("SELECT id FROM gene WHERE species = 'Homo sapiens'")
            .unwrap();
        assert_eq!(rs.rows.len(), 10);
        assert_eq!(rs.cost.rows_scanned, 30);
    }

    #[test]
    fn three_way_join() {
        let db = lake_db();
        let rs = db
            .query(
                "SELECT g.label, d.name FROM gene g \
                 JOIN gene_disease gd ON g.id = gd.gene \
                 JOIN disease d ON gd.disease = d.id",
            )
            .unwrap();
        assert_eq!(rs.rows.len(), 30);
        assert_eq!(rs.columns, vec!["label", "name"]);
    }

    #[test]
    fn join_answers_match_manual() {
        let db = lake_db();
        let rs = db
            .query(
                "SELECT d.name FROM gene g \
                 JOIN gene_disease gd ON g.id = gd.gene \
                 JOIN disease d ON gd.disease = d.id \
                 WHERE g.id = 'g3'",
            )
            .unwrap();
        // g3 → d21.
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::text("disease 21"));
    }

    #[test]
    fn order_and_limit() {
        let db = lake_db();
        let rs = db
            .query("SELECT id FROM gene ORDER BY id DESC LIMIT 3")
            .unwrap();
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0][0], Value::text("g9"));
    }

    #[test]
    fn distinct() {
        let db = lake_db();
        let rs = db.query("SELECT DISTINCT species FROM gene").unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn like_filter() {
        let db = lake_db();
        let rs = db
            .query("SELECT id FROM gene WHERE species LIKE '%sapiens%'")
            .unwrap();
        assert_eq!(rs.rows.len(), 10);
    }

    #[test]
    fn explain_shows_index_use() {
        let mut db = lake_db();
        let rs = db.execute("EXPLAIN SELECT * FROM gene WHERE id = 'g1'").unwrap();
        let text = rs.explain.unwrap();
        assert!(text.contains("IndexScan"), "plan was: {text}");
        let rs = db
            .execute("EXPLAIN SELECT * FROM gene WHERE species = 'Homo sapiens'")
            .unwrap();
        let text = rs.explain.unwrap();
        assert!(text.contains("SeqScan"), "plan was: {text}");
    }

    #[test]
    fn creating_secondary_index_changes_plan_and_cost() {
        let mut db = lake_db();
        let before = db
            .query("SELECT id FROM disease WHERE class = 'class2'")
            .unwrap();
        assert!(before.cost.rows_scanned > 0);
        db.execute("CREATE INDEX idx_class ON disease (class)").unwrap();
        let after = db
            .query("SELECT id FROM disease WHERE class = 'class2'")
            .unwrap();
        assert_eq!(after.cost.rows_scanned, 0);
        assert!(after.cost.index_probes >= 1);
        // Same answers either way.
        assert_eq!(before.rows.len(), after.rows.len());
    }

    #[test]
    fn stats_and_has_index() {
        let db = lake_db();
        assert!(db.has_index_on("gene", "id"));
        assert!(!db.has_index_on("gene", "species"));
        let stats = db.stats("gene").unwrap();
        // Mus musculus occurs in 2/3 of rows — above the 15 % threshold.
        assert!(!stats.column("species").unwrap().is_indexable());
        assert!(stats.column("id").unwrap().is_indexable());
    }

    #[test]
    fn insert_violating_pk_fails() {
        let mut db = lake_db();
        assert!(db
            .execute("INSERT INTO gene VALUES ('g1', 'dup', 'x')")
            .is_err());
    }

    #[test]
    fn cached_query_matches_and_invalidates() {
        let mut db = lake_db();
        let sql = "SELECT id FROM gene WHERE species = 'Homo sapiens'";
        let fresh = db.query(sql).unwrap();
        let first = db.query_cached(sql).unwrap();
        let second = db.query_cached(sql).unwrap();
        // Hit shares the materialization and reports the original cost.
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(first.rows, fresh.rows);
        assert_eq!(first.cost.rows_scanned, fresh.cost.rows_scanned);
        // Mutations invalidate: the new row must be visible.
        db.execute("INSERT INTO gene VALUES ('g99', 'late', 'Homo sapiens')")
            .unwrap();
        let third = db.query_cached(sql).unwrap();
        assert_eq!(third.rows.len(), fresh.rows.len() + 1);
    }

    #[test]
    fn query_rejects_ddl() {
        let db = lake_db();
        assert!(db.query("CREATE TABLE x (a INT)").is_err());
    }

    #[test]
    fn explain_join_shows_algorithm() {
        let mut db = lake_db();
        let rs = db
            .execute(
                "EXPLAIN SELECT g.label, d.name FROM gene g \
                 JOIN gene_disease gd ON g.id = gd.gene \
                 JOIN disease d ON gd.disease = d.id",
            )
            .unwrap();
        let text = rs.explain.unwrap();
        // Both join steps resolve through indexes (PKs).
        assert!(text.contains("IndexNestedLoopJoin"), "plan was: {text}");
        assert!(text.contains("Project: "), "plan was: {text}");
    }

    #[test]
    fn in_list_ignores_null_values_in_rows() {
        let mut db = Database::new("nulls");
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
        db.execute("INSERT INTO t VALUES (1, 'a'), (2, NULL), (3, 'b')").unwrap();
        let rs = db.query("SELECT id FROM t WHERE v IN ('a', 'b', 'c')").unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn in_list_query() {
        let db = lake_db();
        let rs = db
            .query("SELECT id FROM gene WHERE id IN ('g1', 'g2', 'zzz')")
            .unwrap();
        assert_eq!(rs.rows.len(), 2);
        assert_eq!(rs.cost.index_probes, 3);
    }

    #[test]
    fn range_query_on_pk() {
        let mut db = Database::new("r");
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
        for i in 0..100 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'v{i}')")).unwrap();
        }
        let rs = db.query("SELECT id FROM t WHERE id >= 90").unwrap();
        assert_eq!(rs.rows.len(), 10);
        assert_eq!(rs.cost.rows_scanned, 0);
    }
}
