//! Plan execution with cost accounting.
//!
//! Every operator records the work it performs in a [`CostStats`]. The
//! network/cost simulation (`fedlake-netsim`) converts these counters into
//! simulated time, which is how the experiments price an indexed lookup
//! differently from a full scan without depending on wall-clock noise.

use crate::error::SqlError;
use crate::optimizer::CatalogView;
use crate::plan::{AccessPath, JoinAlgo, PhysicalPlan, ScanNode};
use crate::sql::ast::{ColumnRef, Operand, Predicate, SortKey, SqlCmpOp};
use crate::storage::Table;
use crate::value::Value;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Work counters accumulated during execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostStats {
    /// Heap rows visited by sequential scans.
    pub rows_scanned: u64,
    /// Index lookups (point, range or IN-list probes).
    pub index_probes: u64,
    /// Rows fetched through an index.
    pub index_rows: u64,
    /// Predicate evaluations.
    pub filter_evals: u64,
    /// Rows inserted into join hash tables.
    pub hash_build_rows: u64,
    /// Rows probed against join hash tables.
    pub hash_probe_rows: u64,
    /// Rows passed through sort operators.
    pub sort_rows: u64,
    /// Rows in the final result.
    pub rows_output: u64,
}

impl CostStats {
    /// Accumulates another operator's counters.
    pub fn merge(&mut self, other: &CostStats) {
        self.rows_scanned += other.rows_scanned;
        self.index_probes += other.index_probes;
        self.index_rows += other.index_rows;
        self.filter_evals += other.filter_evals;
        self.hash_build_rows += other.hash_build_rows;
        self.hash_probe_rows += other.hash_probe_rows;
        self.sort_rows += other.sort_rows;
        self.rows_output += other.rows_output;
    }
}

/// An intermediate relation: alias-qualified schema plus row data.
#[derive(Debug, Clone)]
pub struct Relation {
    /// Column descriptors.
    pub schema: Vec<ColumnRef>,
    /// Row data, one `Vec<Value>` per row, aligned with `schema`.
    pub rows: Vec<Vec<Value>>,
}

impl Relation {
    /// Index of a column in this relation's schema.
    pub fn col_index(&self, c: &ColumnRef) -> Option<usize> {
        self.schema.iter().position(|s| s == c)
    }
}

/// Executes a physical plan against a catalog.
pub fn execute<C: CatalogView>(
    plan: &PhysicalPlan,
    catalog: &C,
) -> Result<(Relation, CostStats), SqlError> {
    let mut cost = CostStats::default();
    let rel = exec_node(plan, catalog, &mut cost)?;
    cost.rows_output = rel.rows.len() as u64;
    Ok((rel, cost))
}

fn exec_node<C: CatalogView>(
    plan: &PhysicalPlan,
    catalog: &C,
    cost: &mut CostStats,
) -> Result<Relation, SqlError> {
    match plan {
        PhysicalPlan::Scan(scan) => exec_scan(scan, catalog, cost),
        PhysicalPlan::Join { left, right, algo, left_key, right_key } => {
            let left_rel = exec_node(left, catalog, cost)?;
            exec_join(left_rel, right, *algo, left_key, right_key, catalog, cost)
        }
        PhysicalPlan::Filter { input, predicates } => {
            let rel = exec_node(input, catalog, cost)?;
            let mut rows = Vec::with_capacity(rel.rows.len());
            for row in rel.rows {
                cost.filter_evals += predicates.len() as u64;
                if predicates
                    .iter()
                    .all(|p| eval_predicate(p, &rel.schema, &row))
                {
                    rows.push(row);
                }
            }
            Ok(Relation { schema: rel.schema, rows })
        }
        PhysicalPlan::Project { input, columns, names: _ } => {
            let rel = exec_node(input, catalog, cost)?;
            let idx: Vec<usize> = columns
                .iter()
                .map(|c| {
                    rel.col_index(c)
                        .ok_or_else(|| SqlError::Internal(format!("projection column {c} missing")))
                })
                .collect::<Result<_, _>>()?;
            let rows = rel
                .rows
                .into_iter()
                .map(|row| idx.iter().map(|&i| row[i].clone()).collect())
                .collect();
            Ok(Relation { schema: columns.clone(), rows })
        }
        PhysicalPlan::Distinct(input) => {
            let rel = exec_node(input, catalog, cost)?;
            let mut seen = std::collections::HashSet::new();
            let mut rows = Vec::new();
            for row in rel.rows {
                if seen.insert(row.clone()) {
                    rows.push(row);
                }
            }
            Ok(Relation { schema: rel.schema, rows })
        }
        PhysicalPlan::Sort { input, keys } => {
            let rel = exec_node(input, catalog, cost)?;
            let idx: Vec<(usize, bool)> = keys
                .iter()
                .map(|SortKey { col, asc }| {
                    rel.col_index(col)
                        .map(|i| (i, *asc))
                        .ok_or_else(|| SqlError::Internal(format!("sort column {col} missing")))
                })
                .collect::<Result<_, _>>()?;
            cost.sort_rows += rel.rows.len() as u64;
            let mut rows = rel.rows;
            rows.sort_by(|a, b| {
                for &(i, asc) in &idx {
                    let ord = a[i].cmp(&b[i]);
                    let ord = if asc { ord } else { ord.reverse() };
                    if ord != Ordering::Equal {
                        return ord;
                    }
                }
                Ordering::Equal
            });
            Ok(Relation { schema: rel.schema, rows })
        }
        PhysicalPlan::Limit { input, n } => {
            let mut rel = exec_node(input, catalog, cost)?;
            rel.rows.truncate(*n);
            Ok(rel)
        }
    }
}

fn table_schema_refs(table: &Table, alias: &str) -> Vec<ColumnRef> {
    table
        .schema
        .columns
        .iter()
        .map(|c| ColumnRef::qualified(alias, &c.name))
        .collect()
}

fn exec_scan<C: CatalogView>(
    scan: &ScanNode,
    catalog: &C,
    cost: &mut CostStats,
) -> Result<Relation, SqlError> {
    let table = catalog
        .table(&scan.table)
        .ok_or_else(|| SqlError::UnknownTable(scan.table.clone()))?;
    let schema = table_schema_refs(table, &scan.alias);
    let rids: Vec<usize> = match &scan.path {
        AccessPath::SeqScan => {
            cost.rows_scanned += table.len() as u64;
            (0..table.len()).collect()
        }
        AccessPath::IndexEq { index, key } => {
            cost.index_probes += 1;
            let idx = find_index(table, index)?;
            let rids = idx.lookup(std::slice::from_ref(key)).to_vec();
            cost.index_rows += rids.len() as u64;
            rids
        }
        AccessPath::IndexRange { index, low, high } => {
            cost.index_probes += 1;
            let idx = find_index(table, index)?;
            let rids = idx.range(
                low.as_ref().map(|(v, inc)| (v, *inc)),
                high.as_ref().map(|(v, inc)| (v, *inc)),
            );
            cost.index_rows += rids.len() as u64;
            rids
        }
        AccessPath::IndexInList { index, keys } => {
            let idx = find_index(table, index)?;
            let mut rids = Vec::new();
            for key in keys {
                cost.index_probes += 1;
                rids.extend_from_slice(idx.lookup(std::slice::from_ref(key)));
            }
            cost.index_rows += rids.len() as u64;
            rids
        }
    };
    let mut rows = Vec::with_capacity(rids.len());
    for rid in rids {
        let row = table
            .row(rid)
            .ok_or_else(|| SqlError::Internal(format!("dangling rid {rid}")))?;
        if !scan.residual.is_empty() {
            cost.filter_evals += scan.residual.len() as u64;
            if !scan
                .residual
                .iter()
                .all(|p| eval_predicate(p, &schema, row))
            {
                continue;
            }
        }
        rows.push(row.to_vec());
    }
    Ok(Relation { schema, rows })
}

fn find_index<'t>(
    table: &'t Table,
    name: &str,
) -> Result<&'t crate::index::BTreeIndex, SqlError> {
    table
        .indexes()
        .iter()
        .find(|i| i.name == name)
        .ok_or_else(|| SqlError::Internal(format!("index {name} disappeared")))
}

#[allow(clippy::too_many_arguments)]
fn exec_join<C: CatalogView>(
    left: Relation,
    right: &ScanNode,
    algo: JoinAlgo,
    left_key: &Option<ColumnRef>,
    right_key: &Option<ColumnRef>,
    catalog: &C,
    cost: &mut CostStats,
) -> Result<Relation, SqlError> {
    let table = catalog
        .table(&right.table)
        .ok_or_else(|| SqlError::UnknownTable(right.table.clone()))?;
    let right_schema = table_schema_refs(table, &right.alias);
    let mut out_schema = left.schema.clone();
    out_schema.extend(right_schema.iter().cloned());

    match algo {
        JoinAlgo::Cross => {
            let right_rel = exec_scan(right, catalog, cost)?;
            let mut rows = Vec::new();
            for l in &left.rows {
                for r in &right_rel.rows {
                    let mut row = l.clone();
                    row.extend(r.iter().cloned());
                    rows.push(row);
                }
            }
            Ok(Relation { schema: out_schema, rows })
        }
        JoinAlgo::Hash => {
            let lk = left_key
                .as_ref()
                .ok_or_else(|| SqlError::Internal("hash join without key".into()))?;
            let rk = right_key
                .as_ref()
                .ok_or_else(|| SqlError::Internal("hash join without key".into()))?;
            let li = left
                .schema
                .iter()
                .position(|c| c == lk)
                .ok_or_else(|| SqlError::Internal(format!("join key {lk} missing")))?;
            let right_rel = exec_scan(right, catalog, cost)?;
            let ri = right_rel
                .schema
                .iter()
                .position(|c| c == rk)
                .ok_or_else(|| SqlError::Internal(format!("join key {rk} missing")))?;
            // Build on the smaller input.
            let mut ht: HashMap<Value, Vec<usize>> = HashMap::new();
            let (build, probe, build_is_left) = if left.rows.len() <= right_rel.rows.len() {
                (&left.rows, &right_rel.rows, true)
            } else {
                (&right_rel.rows, &left.rows, false)
            };
            let (bi, pi) = if build_is_left { (li, ri) } else { (ri, li) };
            for (n, row) in build.iter().enumerate() {
                cost.hash_build_rows += 1;
                if row[bi].is_null() {
                    continue;
                }
                ht.entry(row[bi].clone()).or_default().push(n);
            }
            let mut rows = Vec::new();
            for prow in probe {
                cost.hash_probe_rows += 1;
                if prow[pi].is_null() {
                    continue;
                }
                if let Some(matches) = ht.get(&prow[pi]) {
                    for &bn in matches {
                        let brow = &build[bn];
                        let (l, r) = if build_is_left { (brow, prow) } else { (prow, brow) };
                        let mut row = l.clone();
                        row.extend(r.iter().cloned());
                        rows.push(row);
                    }
                }
            }
            Ok(Relation { schema: out_schema, rows })
        }
        JoinAlgo::IndexNestedLoop => {
            let lk = left_key
                .as_ref()
                .ok_or_else(|| SqlError::Internal("INLJ without key".into()))?;
            let rk = right_key
                .as_ref()
                .ok_or_else(|| SqlError::Internal("INLJ without key".into()))?;
            let li = left
                .schema
                .iter()
                .position(|c| c == lk)
                .ok_or_else(|| SqlError::Internal(format!("join key {lk} missing")))?;
            let idx = table
                .index_on(&rk.column)
                .ok_or_else(|| SqlError::Internal(format!("no index on {rk} for INLJ")))?;
            let mut rows = Vec::new();
            for lrow in &left.rows {
                let key = &lrow[li];
                if key.is_null() {
                    continue;
                }
                cost.index_probes += 1;
                for &rid in idx.lookup_prefix(std::slice::from_ref(key)).iter() {
                    let rrow = table
                        .row(rid)
                        .ok_or_else(|| SqlError::Internal(format!("dangling rid {rid}")))?;
                    cost.index_rows += 1;
                    // Apply the right side's residual predicates.
                    if !right.residual.is_empty() {
                        cost.filter_evals += right.residual.len() as u64;
                        if !right
                            .residual
                            .iter()
                            .all(|p| eval_predicate(p, &right_schema, rrow))
                        {
                            continue;
                        }
                    }
                    // And its access-path restriction, if any (the planner
                    // may have both an index path and a join; the path then
                    // acts as an extra filter).
                    if !path_accepts(&right.path, table, rrow) {
                        continue;
                    }
                    let mut row = lrow.clone();
                    row.extend(rrow.iter().cloned());
                    rows.push(row);
                }
            }
            Ok(Relation { schema: out_schema, rows })
        }
    }
}

/// When an INLJ drives row fetches, the scan's own access path becomes a
/// residual restriction on the fetched rows.
fn path_accepts(path: &AccessPath, table: &Table, row: &[Value]) -> bool {
    match path {
        AccessPath::SeqScan => true,
        AccessPath::IndexEq { index, key } => key_of(table, index, row)
            .map(|k| k.first() == Some(key))
            .unwrap_or(false),
        AccessPath::IndexRange { index, low, high } => {
            let Some(k) = key_of(table, index, row).and_then(|k| k.into_iter().next()) else {
                return false;
            };
            if k.is_null() {
                return false;
            }
            let lo_ok = low.as_ref().is_none_or(|(v, inc)| match k.sql_cmp(v) {
                Some(Ordering::Greater) => true,
                Some(Ordering::Equal) => *inc,
                _ => false,
            });
            let hi_ok = high.as_ref().is_none_or(|(v, inc)| match k.sql_cmp(v) {
                Some(Ordering::Less) => true,
                Some(Ordering::Equal) => *inc,
                _ => false,
            });
            lo_ok && hi_ok
        }
        AccessPath::IndexInList { index, keys } => key_of(table, index, row)
            .and_then(|k| k.into_iter().next())
            .map(|k| keys.contains(&k))
            .unwrap_or(false),
    }
}

fn key_of(table: &Table, index_name: &str, row: &[Value]) -> Option<Vec<Value>> {
    table
        .indexes()
        .iter()
        .find(|i| i.name == index_name)
        .map(|i| i.key_of(row))
}

/// Evaluates a predicate against a row under the given schema.
pub fn eval_predicate(p: &Predicate, schema: &[ColumnRef], row: &[Value]) -> bool {
    let resolve = |c: &ColumnRef| -> Option<usize> {
        schema.iter().position(|s| {
            s.column == c.column && (c.table.is_none() || s.table == c.table)
        })
    };
    match p {
        Predicate::Compare { left, op, right } => {
            let Some(li) = resolve(left) else { return false };
            let lv = &row[li];
            let rv = match right {
                Operand::Literal(v) => v.clone(),
                Operand::Column(c) => {
                    let Some(ri) = resolve(c) else { return false };
                    row[ri].clone()
                }
            };
            match lv.sql_cmp(&rv) {
                None => false,
                Some(ord) => match op {
                    SqlCmpOp::Eq => ord == Ordering::Equal,
                    SqlCmpOp::Ne => ord != Ordering::Equal,
                    SqlCmpOp::Lt => ord == Ordering::Less,
                    SqlCmpOp::Le => ord != Ordering::Greater,
                    SqlCmpOp::Gt => ord == Ordering::Greater,
                    SqlCmpOp::Ge => ord != Ordering::Less,
                },
            }
        }
        Predicate::Like { col, pattern, negated } => {
            let Some(i) = resolve(col) else { return false };
            if row[i].is_null() {
                return false;
            }
            row[i].like(pattern) != *negated
        }
        Predicate::IsNull { col, negated } => {
            let Some(i) = resolve(col) else { return false };
            row[i].is_null() != *negated
        }
        Predicate::InList { col, values } => {
            let Some(i) = resolve(col) else { return false };
            let v = &row[i];
            if v.is_null() {
                return false;
            }
            values
                .iter()
                .any(|w| v.sql_cmp(w) == Some(Ordering::Equal))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::Operand;

    fn schema() -> Vec<ColumnRef> {
        vec![
            ColumnRef::qualified("t", "id"),
            ColumnRef::qualified("t", "name"),
        ]
    }

    #[test]
    fn predicate_eval_compare() {
        let row = vec![Value::Int(5), Value::text("abc")];
        let p = Predicate::Compare {
            left: ColumnRef::qualified("t", "id"),
            op: SqlCmpOp::Gt,
            right: Operand::Literal(Value::Int(3)),
        };
        assert!(eval_predicate(&p, &schema(), &row));
    }

    #[test]
    fn predicate_eval_unqualified_matches() {
        let row = vec![Value::Int(5), Value::text("abc")];
        let p = Predicate::Compare {
            left: ColumnRef::new("name"),
            op: SqlCmpOp::Eq,
            right: Operand::Literal(Value::text("abc")),
        };
        assert!(eval_predicate(&p, &schema(), &row));
    }

    #[test]
    fn predicate_null_semantics() {
        let row = vec![Value::Null, Value::Null];
        let eq = Predicate::Compare {
            left: ColumnRef::new("id"),
            op: SqlCmpOp::Eq,
            right: Operand::Literal(Value::Null),
        };
        // NULL = NULL is UNKNOWN → filtered out.
        assert!(!eval_predicate(&eq, &schema(), &row));
        let isnull = Predicate::IsNull { col: ColumnRef::new("id"), negated: false };
        assert!(eval_predicate(&isnull, &schema(), &row));
    }

    #[test]
    fn cost_merge() {
        let mut a = CostStats { rows_scanned: 1, ..Default::default() };
        let b = CostStats { rows_scanned: 2, index_probes: 3, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.rows_scanned, 3);
        assert_eq!(a.index_probes, 3);
    }
}
