//! Physical query plans.
//!
//! Plans are left-deep: the right side of every join is a base-table scan.
//! This mirrors the shape of plans MySQL produces for the star-shaped
//! queries the paper's workload consists of, and keeps the cost accounting
//! interpretable.

use crate::sql::ast::{ColumnRef, Predicate, SortKey};
use crate::value::Value;

/// How a base table is accessed.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessPath {
    /// Full heap scan.
    SeqScan,
    /// Point lookup on an index's leading column.
    IndexEq {
        /// Index name.
        index: String,
        /// Lookup key.
        key: Value,
    },
    /// Range scan on an index's leading column.
    IndexRange {
        /// Index name.
        index: String,
        /// Lower bound (value, inclusive).
        low: Option<(Value, bool)>,
        /// Upper bound (value, inclusive).
        high: Option<(Value, bool)>,
    },
    /// A batch of point lookups (`IN` list).
    IndexInList {
        /// Index name.
        index: String,
        /// Lookup keys.
        keys: Vec<Value>,
    },
}

impl AccessPath {
    /// True when this path uses an index.
    pub fn uses_index(&self) -> bool {
        !matches!(self, AccessPath::SeqScan)
    }
}

/// A base-table scan with residual predicates evaluated after access.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanNode {
    /// Table name.
    pub table: String,
    /// Alias the scan's columns are exposed under.
    pub alias: String,
    /// Access path chosen by the optimizer.
    pub path: AccessPath,
    /// Single-table predicates applied after row fetch.
    pub residual: Vec<Predicate>,
    /// Optimizer's cardinality estimate after residual filters.
    pub estimated_rows: f64,
}

/// Join algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgo {
    /// Build a hash table on the accumulated left side, probe with the
    /// right scan.
    Hash,
    /// For each left row, probe the right table's index on the join key.
    IndexNestedLoop,
    /// Cartesian product (no join condition).
    Cross,
}

/// A physical plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalPlan {
    /// Leaf scan.
    Scan(ScanNode),
    /// Left-deep join step.
    Join {
        /// Accumulated left input.
        left: Box<PhysicalPlan>,
        /// Right base-table scan.
        right: ScanNode,
        /// Algorithm.
        algo: JoinAlgo,
        /// Join key on the left input (alias-qualified), unless `Cross`.
        left_key: Option<ColumnRef>,
        /// Join key on the right table, unless `Cross`.
        right_key: Option<ColumnRef>,
    },
    /// Residual multi-table filter.
    Filter {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Conjunctive predicates.
        predicates: Vec<Predicate>,
    },
    /// Column projection.
    Project {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Projected columns (alias-qualified).
        columns: Vec<ColumnRef>,
        /// Output names for the projected columns.
        names: Vec<String>,
    },
    /// Duplicate elimination.
    Distinct(Box<PhysicalPlan>),
    /// Sorting.
    Sort {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Sort keys.
        keys: Vec<SortKey>,
    },
    /// Row-count limit.
    Limit {
        /// Input plan.
        input: Box<PhysicalPlan>,
        /// Maximum rows.
        n: usize,
    },
}

impl PhysicalPlan {
    /// Number of base-table scans in the plan.
    pub fn scan_count(&self) -> usize {
        match self {
            PhysicalPlan::Scan(_) => 1,
            PhysicalPlan::Join { left, .. } => 1 + left.scan_count(),
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => input.scan_count(),
            PhysicalPlan::Distinct(input) => input.scan_count(),
        }
    }

    /// Number of scans that use an index.
    pub fn indexed_scan_count(&self) -> usize {
        match self {
            PhysicalPlan::Scan(s) => usize::from(s.path.uses_index()),
            PhysicalPlan::Join { left, right, algo, .. } => {
                // An INLJ uses the right table's index even though the scan
                // node itself may be a seq scan descriptor.
                let right_indexed = right.path.uses_index()
                    || *algo == JoinAlgo::IndexNestedLoop;
                left.indexed_scan_count() + usize::from(right_indexed)
            }
            PhysicalPlan::Filter { input, .. }
            | PhysicalPlan::Project { input, .. }
            | PhysicalPlan::Sort { input, .. }
            | PhysicalPlan::Limit { input, .. } => input.indexed_scan_count(),
            PhysicalPlan::Distinct(input) => input.indexed_scan_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(table: &str, path: AccessPath) -> ScanNode {
        ScanNode {
            table: table.into(),
            alias: table.into(),
            path,
            residual: Vec::new(),
            estimated_rows: 1.0,
        }
    }

    #[test]
    fn access_path_classification() {
        assert!(!AccessPath::SeqScan.uses_index());
        assert!(AccessPath::IndexEq { index: "i".into(), key: Value::Int(1) }.uses_index());
    }

    #[test]
    fn scan_counts() {
        let plan = PhysicalPlan::Join {
            left: Box::new(PhysicalPlan::Scan(scan("a", AccessPath::SeqScan))),
            right: scan(
                "b",
                AccessPath::IndexEq { index: "i".into(), key: Value::Int(1) },
            ),
            algo: JoinAlgo::Hash,
            left_key: Some(ColumnRef::qualified("a", "x")),
            right_key: Some(ColumnRef::qualified("b", "y")),
        };
        assert_eq!(plan.scan_count(), 2);
        assert_eq!(plan.indexed_scan_count(), 1);
    }

    #[test]
    fn inlj_counts_as_indexed() {
        let plan = PhysicalPlan::Join {
            left: Box::new(PhysicalPlan::Scan(scan("a", AccessPath::SeqScan))),
            right: scan("b", AccessPath::SeqScan),
            algo: JoinAlgo::IndexNestedLoop,
            left_key: Some(ColumnRef::qualified("a", "x")),
            right_key: Some(ColumnRef::qualified("b", "y")),
        };
        assert_eq!(plan.indexed_scan_count(), 1);
    }
}
